//! Scale-out executor demo: a 256-GPU expert-parallel MoE training
//! iteration on a 4-worker bounded lane pool.
//!
//! Before ISSUE 9 this run would have spawned 512 OS threads (one lane
//! plus one spine drainer per device); here at most `max_lane_threads`
//! lane workers are ever live, drain duty rides the same pool, and the
//! session-end merge folds the 256 shards as a pairwise tree.
//!
//! ```sh
//! cargo run --release --example scale_out
//! ```

use pasta::core::tool::LaunchCounter;
use pasta::dl::parallel::{self, MoeConfig};
use pasta::prelude::*;

const LANES: u32 = 256;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let parallel_cfg = ParallelConfig {
        max_lane_threads: 4,
        max_merge_threads: 4,
        max_drain_threads: 2,
    };
    let mut session = Pasta::builder()
        .devices(vec![DeviceSpec::a100_80gb(); LANES as usize])
        .tool(LaunchCounter::default())
        .parallel(parallel_cfg)
        .build()?;

    let devices: Vec<DeviceId> = (0..LANES).map(DeviceId).collect();
    let moe = MoeConfig::tiny();
    let (report, d2d) = session.run_parallel(&devices, |lanes| {
        let report = parallel::train_iter_expert_parallel_with(lanes, 1, &moe)?;
        // Every lane routed tokens to its 255 peers each layer: the
        // all-to-all shows up as device-to-device copy traffic.
        let d2d: u64 = lanes
            .iter()
            .map(|lane| lane.session.runtime().stats(lane.device()).copies)
            .sum();
        Ok((report, d2d))
    })?;

    println!(
        "{} lanes of {} on a {}-worker pool:",
        LANES,
        report.strategy.label(),
        parallel_cfg.max_lane_threads
    );
    println!(
        "  peak concurrent lane workers: {}",
        session.pool_high_water()
    );
    println!(
        "  kernel launches: {} total across {} lanes",
        report.launches.iter().sum::<u64>(),
        report.launches.len()
    );

    println!("  device-to-device copy operations (all-to-all routing): {d2d}");

    let merged = session.merged_report();
    println!(
        "  merged report: {} shards folded as a tree, {} events processed",
        merged.per_device.len(),
        merged.events_processed
    );
    Ok(())
}
