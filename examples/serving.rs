//! Inference-serving offered-load sweep: tail latency against the UVM
//! bill as KV growth oversubscribes the device budget.
//!
//! A seeded request stream (mixed prompt/decode lengths, uniform
//! interarrival gaps) is served by a continuous-batching scheduler on
//! 4 device lanes. Each conversation's KV cache lives in managed pages
//! that register with the UVM residency model on allocation and
//! unregister at retirement; the ~16 MiB shared weight range is
//! registered as a peer-duplicated shared range owned by lane 0.
//!
//! The sweep raises offered load (shorter mean interarrival) under a
//! budget pinned *below* weights + peak KV: deeper batches hold more KV
//! pages live, cold conversations page out, and the decode kernel that
//! reads a conversation's whole cache pays the demand faults to bring it
//! back — so the p95/p99 columns climb together with the eviction and
//! peer columns. A final unconstrained row shows the same loads with
//! nothing evicted, as the baseline.
//!
//! ```sh
//! cargo run --release --example serving
//! ```

use pasta::core::{Pasta, PastaSession, UvmSetup};
use pasta::dl::serving::{self, ServingConfig};
use pasta::sim::{DeviceId, DeviceSpec};
use pasta::tools::ServingReport;

const LANES: usize = 4;

fn session(budget: Option<u64>) -> PastaSession {
    Pasta::builder()
        .devices(vec![DeviceSpec::a100_80gb(); LANES])
        .uvm(UvmSetup {
            budget_bytes: budget,
            ..UvmSetup::default()
        })
        .build()
        .expect("session builds")
}

fn serve(mean_interarrival: u64, budget: Option<u64>) -> ServingReport {
    let cfg = ServingConfig {
        mean_interarrival_steps: mean_interarrival,
        ..ServingConfig::small()
    };
    let mut s = session(budget);
    let ids: Vec<DeviceId> = (0..LANES as u32).map(DeviceId).collect();
    let run = s
        .run_parallel(&ids, |lanes| serving::serve(lanes, &cfg))
        .expect("serving completes");
    ServingReport::from_run(&run, s.uvm_report().as_ref())
}

fn ns(v: Option<u64>) -> String {
    match v {
        None => "-".into(),
        Some(n) => format!("{:.1}", n as f64 / 1e3),
    }
}

fn row(load: &str, r: &ServingReport) {
    println!(
        "  {load:>9}  {:>9} {:>9} {:>9}  {:>9} {:>9} {:>9}  {:>8} {:>8} {:>8}",
        ns(r.ttft_p50_ns),
        ns(r.ttft_p95_ns),
        ns(r.ttft_p99_ns),
        ns(r.decode_p50_ns),
        ns(r.decode_p95_ns),
        ns(r.decode_p99_ns),
        r.demand_pages_in,
        r.pages_evicted,
        r.peer_pages_in,
    );
}

fn main() {
    let cfg = ServingConfig::small();
    let weights = cfg.dims.param_bytes(pasta::dl::DType::F32);
    // Pin the budget below the weight range alone: once a lane's batch
    // deepens, its KV pages and the weight pages fight for residency.
    let budget = weights * 9 / 8;
    println!(
        "serving {} requests on {LANES} lanes — weights {} MiB, budget {} MiB/device, \
         kv page {} KiB",
        cfg.requests,
        weights >> 20,
        budget >> 20,
        cfg.kv_page_bytes() >> 10,
    );
    println!(
        "  {:>9}  {:>29}  {:>29}  {:>26}",
        "load", "ttft p50/p95/p99 (us)", "decode p50/p95/p99 (us)", "faults/evicted/peer (pages)"
    );

    // Offered load rises left to right: mean interarrival steps 8 → 0
    // (0 = every request arrives at step 0, peak load).
    for mean in [8u64, 4, 2, 1, 0] {
        let label = if mean == 0 {
            "burst".to_string()
        } else {
            format!("1/{mean} step")
        };
        row(&label, &serve(mean, Some(budget)));
    }

    let unconstrained = serve(1, None);
    row("no budget", &unconstrained);
    assert_eq!(
        unconstrained.pages_evicted, 0,
        "the unconstrained baseline must not evict"
    );
    println!(
        "\nunconstrained baseline keeps every page resident; the swept rows above \
         pay {} evictions at their heaviest load",
        serve(0, Some(budget)).pages_evicted,
    );
}
