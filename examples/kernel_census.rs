//! Kernel-census across the whole model zoo — the Fig. 7 workflow as a
//! library consumer would run it: which kernels dominate each model?
//!
//! ```sh
//! cargo run --example kernel_census
//! ```

use pasta::core::Pasta;
use pasta::dl::models::{ModelZoo, RunKind};
use pasta::tools::KernelFrequencyTool;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for model in ModelZoo::all() {
        let mut session = Pasta::builder()
            .a100()
            .tool(KernelFrequencyTool::new())
            .build()?;
        // Batch divided by 4 to keep the example snappy; experiments use
        // the paper's full batch sizes.
        let report = session.run_model_scaled(model, RunKind::Inference, 1, 4)?;
        let top = session
            .with_tool_mut("kernel-frequency", |t: &mut KernelFrequencyTool| t.top(5))
            .expect("tool registered");

        println!(
            "{:<16} {:>6} launches — top kernels:",
            model.spec().name,
            report.kernel_launches
        );
        for (kernel, count) in top {
            println!("    {count:>6}× {kernel}");
        }
        println!();
    }
    Ok(())
}
