//! Multi-GPU memory-behaviour comparison (the Fig. 15 workflow): run one
//! Megatron GPT-2 345M training iteration under data, tensor and pipeline
//! parallelism on two simulated A100s, watching per-GPU memory timelines.
//!
//! ```sh
//! cargo run --example multi_gpu
//! ```

use pasta::core::Pasta;
use pasta::dl::parallel::{self, Parallelism};
use pasta::sim::DeviceId;
use pasta::tools::MemoryTimelineTool;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for strategy in [
        Parallelism::Data,
        Parallelism::Tensor,
        Parallelism::Pipeline,
    ] {
        let mut session = Pasta::builder()
            .a100_x2()
            .tool(MemoryTimelineTool::new())
            .build()?;
        // One pooled lane per GPU: the sharded hub absorbs the concurrent
        // emission, and the merged view below folds both shards together.
        session.run_parallel(&[DeviceId(0), DeviceId(1)], |lanes| {
            parallel::train_iter(lanes, strategy, 1).map(|_| ())
        })?;
        let (peaks, events) = session
            .with_merged_tool("memory-timeline", |t: &MemoryTimelineTool| {
                (
                    [t.peak_for(DeviceId(0)), t.peak_for(DeviceId(1))],
                    [t.events_for(DeviceId(0)), t.events_for(DeviceId(1))],
                )
            })
            .expect("tool registered");
        println!("{}:", strategy.label());
        for gpu in 0..2 {
            println!(
                "  GPU{gpu}: peak {:>6} MB over {:>6} tensor events",
                peaks[gpu] >> 20,
                events[gpu]
            );
        }
        let ratio = peaks[1] as f64 / peaks[0].max(1) as f64;
        println!("  GPU1/GPU0 peak ratio: {ratio:.2}\n");
    }
    Ok(())
}
