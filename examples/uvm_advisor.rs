//! Tensor-aware UVM prefetching, end to end (the §V-C case study):
//!
//! 1. profile a UVM run of ResNet-18 to learn kernel↔object↔tensor
//!    correlations;
//! 2. generate object-level and tensor-level prefetch plans;
//! 3. replay each plan (and a no-prefetch baseline) under memory
//!    oversubscription and compare execution times.
//!
//! ```sh
//! cargo run --example uvm_advisor
//! ```

use pasta::core::{Pasta, UvmSetup};
use pasta::dl::models::{ModelZoo, RunKind};
use pasta::tools::UvmPrefetchAdvisor;
use pasta::uvm::PrefetchGranularity;

const MODEL: ModelZoo = ModelZoo::ResNet18;
const BATCH_DIVISOR: usize = 4;
/// Oversubscription factor applied to the measured footprint (paper §V-A).
const OVERSUBSCRIPTION: u64 = 2;

fn profiled_run(
    plan: Option<pasta::uvm::PrefetchPlan>,
    budget: u64,
) -> Result<(u64, UvmPrefetchAdvisor, u64), Box<dyn std::error::Error>> {
    let mut session = Pasta::builder()
        .rtx_3060()
        .tool(UvmPrefetchAdvisor::new())
        .uvm(UvmSetup {
            budget_bytes: Some(budget),
            ..UvmSetup::default()
        })
        .build()?;
    if let Some(plan) = plan {
        session.set_prefetch_plan(plan);
    }
    let report = session.run_model_scaled(MODEL, RunKind::Inference, 1, BATCH_DIVISOR)?;
    let advisor = session
        .with_tool_mut("uvm-prefetch-advisor", |t: &mut UvmPrefetchAdvisor| {
            std::mem::take(t)
        })
        .expect("advisor registered");
    Ok((
        report.profiled_time.as_nanos(),
        advisor,
        report.peak_reserved,
    ))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "profiling {} under UVM to learn access correlations …",
        MODEL.spec().name
    );
    // Measure the footprint first, then restrict memory (paper §V-A).
    let (_, _, footprint) = profiled_run(None, u64::MAX >> 1)?;
    let budget = footprint / OVERSUBSCRIPTION;
    println!(
        "  footprint {} MB → budget {} MB ({OVERSUBSCRIPTION}x oversubscription)",
        footprint >> 20,
        budget >> 20
    );
    let (baseline_ns, advisor, _) = profiled_run(None, budget)?;
    let (obj_bytes, ten_bytes) = advisor.object_vs_tensor_bytes();
    println!(
        "  object-level plan would move {} MB; tensor-level {} MB ({}x overfetch)",
        obj_bytes >> 20,
        ten_bytes >> 20,
        if ten_bytes > 0 {
            obj_bytes / ten_bytes.max(1)
        } else {
            0
        }
    );

    for granularity in [PrefetchGranularity::Object, PrefetchGranularity::Tensor] {
        let plan = advisor.build_plan(granularity);
        let (time_ns, _, _) = profiled_run(Some(plan), budget)?;
        println!(
            "  {:<13} execution {:>12} ns  ({:.2}x vs no-prefetch)",
            granularity.label(),
            time_ns,
            time_ns as f64 / baseline_ns as f64
        );
    }
    println!(
        "  {:<13} execution {baseline_ns:>12} ns  (1.00x)",
        "no-prefetch"
    );
    Ok(())
}
