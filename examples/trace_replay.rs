//! Trace capture + offline replay: profile once, analyze later.
//!
//! Captures one scaled BERT inference run into a binary `.pastatrace`
//! file, then — as an "offline" consumer that never touches the
//! simulator — loads it back and replays the stream through a fresh tool
//! suite. The replayed [`MergedReport`] is asserted equal to the live
//! one, byte for byte.
//!
//! ```sh
//! cargo run --example trace_replay
//! ```
//!
//! [`MergedReport`]: pasta::core::report::MergedReport

use pasta::core::{Pasta, ToolCollection};
use pasta::dl::models::{ModelZoo, RunKind};
use pasta::prelude::*;
use pasta::trace::{replay, Trace, TraceWriter};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ── Capture ─────────────────────────────────────────────────────────
    let mut session = Pasta::builder()
        .rtx_3060()
        .tool(KernelFrequencyTool::new())
        .tool(BarrierStallTool::new())
        .tool(MemoryCharacteristicsTool::new())
        .build()?;
    let writer = TraceWriter::attach(&session);
    session.run_model_scaled(ModelZoo::Bert, RunKind::Inference, 1, 8)?;
    let trace = writer.finish(&session);
    let live = session.merged_report();

    let path = std::env::temp_dir().join("pasta_example.pastatrace");
    trace.save(&path)?;
    println!(
        "captured {} events into {} ({} bytes, {:.2} bytes/event)",
        live.events_processed,
        path.display(),
        trace.len(),
        trace.len() as f64 / live.events_processed as f64
    );

    // ── Replay (no simulator, no workload — just the trace bytes) ──────
    let loaded = Trace::load(&path)?;
    std::fs::remove_file(&path).ok();

    let mut tools = ToolCollection::new();
    tools.register(Box::new(KernelFrequencyTool::new()));
    tools.register(Box::new(BarrierStallTool::new()));
    tools.register(Box::new(MemoryCharacteristicsTool::new()));
    let replayed = replay(&loaded, &mut tools)?;

    assert_eq!(live, replayed, "offline replay matches the live report");
    println!(
        "replayed {} events — reports identical\n",
        replayed.events_processed
    );
    println!("{replayed}");
    Ok(())
}
