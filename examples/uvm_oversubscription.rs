//! The Fig. 12-style oversubscribed multi-GPU sweep: scale the managed
//! budget (`UvmSetup::budget_bytes`) below the working-set size across
//! 2–4 devices and watch the fault/eviction/peer-traffic curves.
//!
//! Two workloads, both driven through `train_iter_*` over `run_parallel`
//! lanes:
//!
//! * **Tensor parallelism, 2 GPUs** — the lanes share a managed range
//!   (Megatron's replicated parameters, rank 0 owning the home copy), so
//!   shrinking the budget also forces evicted duplicates to re-travel
//!   the peer link: the peer-traffic curve climbs with oversubscription.
//! * **Data parallelism, 4 GPUs** — fully private replicas; the classic
//!   Fig. 12 fault/eviction blow-up, one curve per budget point.
//!
//! The working set is measured first with an unconstrained budget (at
//! 100% nothing evicts, so pages-faulted-once == pages touched), then
//! the sweep pins the budget to fractions of it.
//!
//! ```sh
//! cargo run --release --example uvm_oversubscription
//! ```

use pasta::core::{Pasta, PastaSession, UvmSetup};
use pasta::dl::parallel::{self, Parallelism};
use pasta::sim::{DeviceId, DeviceSpec};
use pasta::uvm::PAGE_SIZE;

fn session(devices: usize, budget: Option<u64>) -> PastaSession {
    Pasta::builder()
        .devices(vec![DeviceSpec::a100_80gb(); devices])
        .uvm(UvmSetup {
            budget_bytes: budget,
            ..UvmSetup::default()
        })
        .build()
        .expect("session builds")
}

fn run(
    devices: usize,
    strategy: Parallelism,
    budget: Option<u64>,
) -> pasta::core::report::UvmReport {
    let mut s = session(devices, budget);
    let ids: Vec<DeviceId> = (0..devices as u32).map(DeviceId).collect();
    s.run_parallel(&ids, |lanes| {
        parallel::train_iter(lanes, strategy, 1).map(|_| ())
    })
    .expect("training iteration");
    s.uvm_report().expect("uvm attached")
}

fn sweep(devices: usize, strategy: Parallelism) {
    // 100% point doubles as the working-set measurement: nothing evicts,
    // so the per-lane demand pages are exactly the pages touched.
    let full = run(devices, strategy, None);
    let ws = full
        .per_device
        .iter()
        .map(|(_, s)| (s.demand_pages_in + s.peer_pages_in) * PAGE_SIZE)
        .max()
        .unwrap_or(0);
    println!(
        "{} on {} GPUs — per-device working set {} MiB",
        strategy.label(),
        devices,
        ws >> 20
    );
    println!(
        "  {:>7}  {:>12}  {:>12}  {:>12}  {:>12}  {:>10}",
        "budget", "faults", "pages-in", "evicted-MiB", "peer-MiB", "stall-ms"
    );
    for percent in [100u64, 75, 50, 25] {
        let budget = ws * percent / 100;
        let report = run(devices, strategy, Some(budget));
        let s = report.stats;
        println!(
            "  {percent:>6}%  {:>12}  {:>12}  {:>12}  {:>12}  {:>10.1}",
            s.fault_groups,
            s.pages_in(),
            (s.pages_evicted * PAGE_SIZE) >> 20,
            (s.peer_pages_in * PAGE_SIZE) >> 20,
            s.total_stall_ns() as f64 / 1e6,
        );
        for ((src, dst), bytes) in &report.peer_bytes {
            println!(
                "           peer {src}->{dst}: {} MiB duplicated",
                bytes >> 20
            );
        }
    }
    println!();
}

fn main() {
    // 2-GPU tensor parallelism: the shared replicated parameters make
    // the peer-traffic column move with the budget.
    sweep(2, Parallelism::Tensor);
    // 4-GPU data parallelism: private replicas, the pure Fig. 12 curve.
    sweep(4, Parallelism::Data);
}
