//! UVM under parallel workloads: run Megatron GPT-2 345M training
//! iterations under data, tensor and pipeline parallelism on two
//! simulated A100s with *managed* memory, and watch where the page
//! faults land.
//!
//! Each lane of `run_parallel` carries its own UVM manager forked from
//! the session's (`UvmManager::fork`), so both GPUs fault, migrate and
//! evict concurrently with no shared lock; at the end of the parallel
//! region the lane managers merge back deterministically and the
//! per-device breakdown below comes out of `session.uvm_report()`.
//!
//! ```sh
//! cargo run --example uvm_parallel
//! ```

use pasta::core::{Pasta, UvmSetup};
use pasta::dl::parallel::{self, Parallelism};
use pasta::sim::DeviceId;
use pasta::tools::{MemoryTimelineTool, UvmPrefetchAdvisor};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for strategy in [
        Parallelism::Data,
        Parallelism::Tensor,
        Parallelism::Pipeline,
    ] {
        let mut session = Pasta::builder()
            .a100_x2()
            .uvm(UvmSetup::default())
            .tool(UvmPrefetchAdvisor::new())
            .tool(MemoryTimelineTool::new())
            .build()?;
        session.run_parallel(&[DeviceId(0), DeviceId(1)], |lanes| {
            parallel::train_iter(lanes, strategy, 1).map(|_| ())
        })?;

        println!("{}:", strategy.label());
        let uvm = session.uvm_report().expect("UVM attached");
        for (device, stats) in &uvm.per_device {
            println!(
                "  {device}: {:>6} pages in, {:>5} fault groups, {:>6.1} ms stall",
                stats.pages_in(),
                stats.fault_groups,
                stats.total_stall_ns() as f64 / 1e6,
            );
        }
        // The same attribution is visible through the merged tool view:
        // each shard only ever saw its own device's faults.
        let migrated = session
            .with_merged_tool("uvm-prefetch-advisor", |t: &UvmPrefetchAdvisor| {
                [
                    t.uvm_activity_for(DeviceId(0)).migrated_bytes,
                    t.uvm_activity_for(DeviceId(1)).migrated_bytes,
                ]
            })
            .expect("tool registered");
        println!(
            "  migrated: GPU0 {:>6} MB, GPU1 {:>6} MB\n",
            migrated[0] >> 20,
            migrated[1] >> 20
        );
    }
    Ok(())
}
