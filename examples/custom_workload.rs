//! Custom workloads: profiling things the model zoo cannot express.
//!
//! Three scenarios, all through the same `PastaSession::run(&mut dyn
//! Workload)` entry point the figures use:
//!
//! 1. a raw [`KernelSweepWorkload`] of synthetic compute kernels;
//! 2. an [`FnWorkload`] closure staging tensor traffic by hand;
//! 3. a hand-written [`Workload`] type mixing both, with region
//!    annotations so range-filtered tools see structure.
//!
//! ```sh
//! cargo run --example custom_workload
//! ```

use pasta::dl::dtype::DType;
use pasta::prelude::*;

/// A hand-rolled workload: a two-phase pipeline whose second phase is
/// bracketed with `pasta.start()/stop()`-style region annotations.
struct StagedPipeline {
    rounds: usize,
}

impl Workload for StagedPipeline {
    fn name(&self) -> &str {
        "staged-pipeline"
    }

    fn run(&mut self, cx: &mut WorkloadCx<'_, '_>) -> Result<WorkloadStats, PastaError> {
        let mut launches = 0;
        let input = cx.alloc_tensor(&[1 << 20], DType::F32)?;
        for round in 0..self.rounds {
            // Phase 1: a streaming pass over the input.
            let desc = KernelDesc::new(
                format!("pipeline_stream_{round}"),
                Dim3::linear(256),
                Dim3::linear(256),
            )
            .arg(input.ptr, input.bytes)
            .body(KernelBody::streaming(input.bytes, 0));
            cx.launch_kernel(desc)?;
            launches += 1;

            // Phase 2: the annotated hot region a range filter can gate on.
            cx.region_start("reduce");
            let desc = KernelDesc::new("pipeline_reduce", Dim3::linear(64), Dim3::linear(256))
                .arg(input.ptr, input.bytes)
                .body(KernelBody::compute(1 << 22));
            cx.launch_kernel(desc)?;
            launches += 1;
            cx.region_end("reduce");
        }
        cx.synchronize();
        cx.free_tensor(&input);
        Ok(WorkloadStats::new(launches))
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut session = Pasta::builder()
        .rtx_3060()
        .tool(KernelFrequencyTool::new())
        .tool(MemoryCharacteristicsTool::new())
        .build()?;

    // 1. Raw kernel sweep: pure-compute kernels need no buffers, so the
    //    descriptors can be staged up front.
    let mut sweep = KernelSweepWorkload::new("gemm-shape-sweep")
        .kernels((0..4).map(|i| {
            KernelDesc::new(
                format!("synthetic_gemm_{}x{}", 128 << i, 128 << i),
                Dim3::linear(64 << i),
                Dim3::linear(256),
            )
            .body(KernelBody::compute((1 << 24) << i))
        }))
        .repeats(2);
    let report = session.run(&mut sweep)?;
    println!(
        "{:<18} {:>4} launches, {}",
        report.workload, report.kernel_launches, report.profiled_time
    );

    // 2. Closure workload: tensor traffic without defining a type.
    let mut staging = FnWorkload::new("h2d-staging", |cx| {
        let t = cx.alloc_tensor(&[4096, 1024], DType::F32)?;
        let desc = KernelDesc::new("zero_fill", Dim3::linear(128), Dim3::linear(256))
            .arg(t.ptr, t.bytes)
            .body(KernelBody::streaming(0, t.bytes));
        cx.launch_kernel(desc)?;
        cx.free_tensor(&t);
        Ok(WorkloadStats::new(1))
    });
    let report = session.run(&mut staging)?;
    println!(
        "{:<18} {:>4} launches, {}",
        report.workload, report.kernel_launches, report.profiled_time
    );

    // 3. Hand-written type, dispatched dynamically like the others.
    let mut pipeline = StagedPipeline { rounds: 3 };
    let workloads: &mut dyn Workload = &mut pipeline;
    let report = session.run(workloads)?;
    println!(
        "{:<18} {:>4} launches, {}",
        report.workload, report.kernel_launches, report.profiled_time
    );

    println!();
    for tool_report in session.reports() {
        println!("{tool_report}");
    }
    Ok(())
}
