//! Cross-layer call-stack location (the Fig. 4 workflow): find the kernel
//! with the most memory references during BERT inference and print its
//! joined Python + C/C++ stack.
//!
//! ```sh
//! cargo run --example cross_stack
//! ```

use pasta::core::{Knob, Pasta};
use pasta::dl::models::{ModelZoo, RunKind};
use pasta::tools::MemoryCharacteristicsTool;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut session = Pasta::builder()
        .a100()
        .tool(MemoryCharacteristicsTool::new())
        .capture_knob(Some(Knob::MaxMemReferencedKernel))
        .build()?;
    session.run_model_scaled(ModelZoo::Bert, RunKind::Inference, 1, 2)?;

    let (kernel, agg) = session
        .knob_selection(Knob::MaxMemReferencedKernel)
        .expect("a kernel was selected");
    println!("MAX_MEM_REFERENCED_KERNEL: {kernel}");
    println!(
        "  {} memory records, {} calls, {} bytes",
        agg.memory_records, agg.calls, agg.bytes
    );
    println!();
    match session.cross_layer_stack(&kernel) {
        Some(stack) => println!("{}", stack.render()),
        None => println!("(no stack captured)"),
    }
    Ok(())
}
