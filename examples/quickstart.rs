//! Quickstart: profile BERT inference with two tools on a simulated A100.
//!
//! Mirrors the paper's `accelprof -v -t <tool> <executable>` flow: pick a
//! device, pick tools, run a workload, read the reports.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use pasta::core::{AnalysisMode, Pasta};
use pasta::dl::models::{ModelZoo, RunKind};
use pasta::tools::{KernelFrequencyTool, LaunchCensusTool};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut session = Pasta::builder()
        .a100()
        .tool(KernelFrequencyTool::new())
        .tool(LaunchCensusTool::new())
        .analysis_mode(AnalysisMode::GpuResident)
        .build()?;

    println!("profiling one BERT inference batch on a simulated A100 …");
    let report = session.run_model(ModelZoo::Bert, RunKind::Inference, 1)?;

    println!();
    println!("workload        : {}", report.workload);
    println!("kernel launches : {}", report.kernel_launches);
    println!("profiled time   : {}", report.profiled_time);
    println!(
        "overhead        : collection {}ns / transfer {}ns / analysis {}ns",
        report.overhead.collection_ns, report.overhead.transfer_ns, report.overhead.analysis_ns
    );
    println!();

    for tool_report in session.reports() {
        println!("{tool_report}");
    }
    Ok(())
}
