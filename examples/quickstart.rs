//! Quickstart: profile BERT inference with two tools on a simulated A100.
//!
//! Mirrors the paper's `accelprof -v -t <tool> <executable>` flow: pick a
//! device, pick tools, wrap the workload, run it, read the reports. The
//! workload here is a [`ModelWorkload`], but `PastaSession::run` takes any
//! `&mut dyn Workload` — see `examples/custom_workload.rs`.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use pasta::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut session = Pasta::builder()
        .a100()
        .tool(KernelFrequencyTool::new())
        .tool(LaunchCensusTool::new())
        .analysis_mode(AnalysisMode::GpuResident)
        .build()?;

    println!("profiling one BERT inference batch on a simulated A100 …");
    let mut workload = ModelWorkload::new(ModelZoo::Bert, RunKind::Inference);
    let report = session.run(&mut workload)?;

    println!();
    println!("workload        : {}", report.workload);
    println!("kernel launches : {}", report.kernel_launches);
    println!("profiled time   : {}", report.profiled_time);
    println!(
        "overhead        : collection {}ns / transfer {}ns / analysis {}ns",
        report.overhead.collection_ns, report.overhead.transfer_ns, report.overhead.analysis_ns
    );
    println!();

    for tool_report in session.reports() {
        println!("{tool_report}");
    }
    Ok(())
}
