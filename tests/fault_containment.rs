//! Fault containment and graceful degradation (ISSUE 7).
//!
//! A profiler must never lose a run to one bad lane or one buggy tool:
//!
//! * a panicking parallel lane is contained at the lane boundary and the
//!   survivors' shard + UVM state still merges into a salvaged report;
//! * a panicking tool callback quarantines that tool while its siblings
//!   keep producing byte-identical results;
//! * a trace writer aborted mid-run (or simply dropped) leaves a fully
//!   parseable trace / a recorder-free session behind.
//!
//! Every injected panic carries the `fault-injection` marker so the quiet
//! panic hook below can suppress its backtrace noise without hiding real
//! failures. CI runs this suite single-threaded (`--test-threads=1`): the
//! process-global panic hook and the deliberately panicking threads must
//! not interleave with unrelated tests' output.

use pasta::core::tool::{Interest, LaunchCounter};
use pasta::core::{
    Event, LaneFailure, Pasta, PastaError, PastaSession, Tool, ToolCollection, UvmSetup,
};
use pasta::prelude::*;
use pasta::sim::{DeviceId, Dim3, KernelBody, KernelDesc};
use pasta::trace::{replay, TraceReader, TraceWriter};

/// Suppresses panic output for payloads carrying the `fault-injection`
/// marker; everything else goes to the default hook unchanged.
fn quiet_injected_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .map(|s| s.contains("fault-injection"))
                .or_else(|| {
                    info.payload()
                        .downcast_ref::<String>()
                        .map(|s| s.contains("fault-injection"))
                })
                .unwrap_or(false);
            if !injected {
                default(info);
            }
        }));
    });
}

fn lane_kernel(t: &pasta::dl::tensor::Tensor) -> KernelDesc {
    KernelDesc::new("lane_kernel", Dim3::linear(8), Dim3::linear(128))
        .arg(t.ptr, t.bytes)
        .body(KernelBody::streaming(t.bytes / 2, t.bytes / 2))
}

fn two_device_uvm_session() -> PastaSession {
    Pasta::builder()
        .a100_x2()
        .uvm(UvmSetup::default())
        .tool(LaunchCounter::default())
        .build()
        .expect("session builds")
}

#[test]
fn panicking_lane_is_salvaged_with_survivor_state() {
    quiet_injected_panics();
    let mut session = two_device_uvm_session();
    let devices = [DeviceId(0), DeviceId(1)];
    let err = session
        .run_parallel_each(&devices, |_i, lane| {
            if lane.device() == DeviceId(1) {
                panic!("fault-injection: lane 1 dies");
            }
            // The surviving lane does real work: managed tensor traffic
            // plus three launches that fault pages in.
            let s = &mut lane.session;
            let t = s.alloc_tensor(&[1 << 18], pasta::dl::dtype::DType::F32)?;
            for _ in 0..3 {
                s.launch(lane_kernel(&t))?;
            }
            s.free_tensor(&t);
            Ok(())
        })
        .expect_err("a panicking lane must fail the run");

    // The failure is typed, attributed to device 1, and carries the
    // salvage payload.
    let PastaError::Salvaged(salvaged) = &err else {
        panic!("expected PastaError::Salvaged, got {err:?}");
    };
    assert_eq!(salvaged.failures.len(), 1);
    assert_eq!(
        salvaged.failures[0],
        LaneFailure {
            device: Some(DeviceId(1)),
            payload: "fault-injection: lane 1 dies".into(),
        }
    );
    assert!(err.to_string().contains("gpu1"), "{err}");
    use std::error::Error;
    assert!(err.source().expect("sourced").to_string().contains("gpu1"));

    // The salvaged report exposes the survivor's merged shard state...
    let launches = salvaged
        .report
        .tools
        .iter()
        .find(|r| r.tool == "launch-counter")
        .and_then(|r| r.get("launches"))
        .expect("survivor's tool report merged");
    assert_eq!(launches, 3.0, "device 0's three launches survived");
    // ...its UVM activity (the dead lane's manager harvests as zeros)...
    let uvm = salvaged.report.uvm.as_ref().expect("uvm slice present");
    let lane_stats = |d: DeviceId| {
        uvm.per_device
            .iter()
            .find(|(dev, _)| *dev == d)
            .map(|(_, s)| *s)
            .expect("lane harvested")
    };
    assert!(lane_stats(DeviceId(0)).fault_groups > 0, "survivor faulted");
    assert_eq!(lane_stats(DeviceId(1)).fault_groups, 0, "dead lane idle");
    // ...and the per-lane health overlay.
    assert_eq!(salvaged.report.lane_failures, salvaged.failures);
    assert_eq!(session.lane_failures(), &salvaged.failures[..]);
    assert!(salvaged.report.to_string().contains("== health =="));

    // The session remains usable: a healthy follow-up run works, and
    // resetting analysis clears the health overlay.
    session
        .run_parallel_each(&devices, |_i, lane| {
            let s = &mut lane.session;
            let t = s.alloc_tensor(&[1024], pasta::dl::dtype::DType::F32)?;
            s.launch(lane_kernel(&t))?;
            s.free_tensor(&t);
            Ok(())
        })
        .expect("healthy run after a salvaged one");
    session.reset_analysis();
    assert!(session.lane_failures().is_empty());
    assert!(session.merged_report().lane_failures.is_empty());
}

#[test]
fn orchestration_closure_panic_is_contained_too() {
    quiet_injected_panics();
    let mut session = two_device_uvm_session();
    let err = session
        .run_parallel(&[DeviceId(0), DeviceId(1)], |lanes| {
            let s = &mut lanes[0].session;
            let t = s.alloc_tensor(&[1 << 16], pasta::dl::dtype::DType::F32)?;
            let rec = s.launch(lane_kernel(&t))?;
            if rec.uvm_faults > 0 {
                panic!("fault-injection: orchestrator dies");
            }
            Ok(())
        })
        .expect_err("panic must surface as an error");
    let PastaError::Salvaged(salvaged) = &err else {
        panic!("expected PastaError::Salvaged, got {err:?}");
    };
    // Unattributable to a single lane: the closure itself died.
    assert_eq!(salvaged.failures[0].device, None);
    assert!(salvaged.failures[0].payload.contains("orchestrator dies"));
    // Work done before the panic still merged.
    let launches = salvaged
        .report
        .tools
        .iter()
        .find(|r| r.tool == "launch-counter")
        .and_then(|r| r.get("launches"));
    assert_eq!(launches, Some(1.0));
}

/// A tool whose event callback panics on the `n`th Kernel-class event.
struct PanickyTool {
    panic_after: u64,
    seen: u64,
}

impl Tool for PanickyTool {
    fn name(&self) -> &str {
        "panicky"
    }
    fn interest(&self) -> Interest {
        Interest::coarse()
    }
    fn on_event(&mut self, _event: &Event) {
        if self.seen == self.panic_after {
            panic!("fault-injection: tool callback dies");
        }
        self.seen += 1;
    }
    fn fork(&self) -> Option<Box<dyn Tool>> {
        Some(Box::new(PanickyTool {
            panic_after: self.panic_after,
            seen: 0,
        }))
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[test]
fn panicking_tool_is_quarantined_and_siblings_stay_byte_identical() {
    quiet_injected_panics();
    let run = |with_panicky: bool| {
        let mut builder = Pasta::builder().rtx_3060().tool(LaunchCounter::default());
        if with_panicky {
            builder = builder.tool(PanickyTool {
                panic_after: 2,
                seen: 0,
            });
        }
        let mut session = builder.build().expect("session builds");
        let mut sweep = KernelSweepWorkload::new("sweep")
            .kernel(
                KernelDesc::new("k_a", Dim3::linear(8), Dim3::linear(128))
                    .body(KernelBody::compute(1 << 18)),
            )
            .repeats(5);
        session.run(&mut sweep).expect("workload itself succeeds");
        session
    };

    let healthy = run(false);
    let degraded = run(true);

    // The sibling tool's report is byte-identical with and without the
    // quarantined tool in the collection.
    let counter = |s: &PastaSession| {
        s.reports()
            .into_iter()
            .find(|r| r.tool == "launch-counter")
            .expect("launch-counter reports")
    };
    assert_eq!(counter(&healthy), counter(&degraded));

    // The quarantine is reported with the first panic message...
    let quarantines = degraded.quarantined_tools();
    assert_eq!(quarantines.len(), 1);
    assert_eq!(quarantines[0].tool, "panicky");
    assert!(
        quarantines[0].message.contains("tool callback dies"),
        "{}",
        quarantines[0].message
    );
    // ...surfaces in the merged report's health section...
    let merged = degraded.merged_report();
    assert_eq!(merged.quarantined, quarantines);
    assert!(merged.to_string().contains("`panicky` quarantined"));
    // ...and through the strict check as a typed error.
    let err = degraded
        .check_tool_health()
        .expect_err("degraded session fails strict health");
    assert!(matches!(err, PastaError::ToolQuarantined(_)), "{err:?}");
    healthy.check_tool_health().expect("healthy session passes");
}

#[test]
fn mid_run_abort_yields_a_parseable_replayable_trace() {
    quiet_injected_panics();
    let mut session = Pasta::builder()
        .rtx_3060()
        .tool(LaunchCounter::default())
        .build()
        .expect("session builds");
    let writer = TraceWriter::attach(&session);
    let mut doomed = FnWorkload::new("doomed", |cx| {
        for _ in 0..4 {
            cx.launch_kernel(
                KernelDesc::new("pre_crash", Dim3::linear(4), Dim3::linear(64))
                    .body(KernelBody::compute(1 << 16)),
            )?;
        }
        panic!("fault-injection: workload dies mid-run");
    });
    let err = session.run(&mut doomed).expect_err("workload panicked");
    let PastaError::Salvaged(salvaged) = &err else {
        panic!("expected PastaError::Salvaged, got {err:?}");
    };
    assert_eq!(
        salvaged.failures[0].device, None,
        "sequential workloads belong to no lane"
    );

    // Abort-finalization: everything captured up to the panic becomes a
    // complete trace — parseable and replayable.
    let trace = writer.abort();
    let reader = TraceReader::parse(trace.as_bytes()).expect("aborted trace parses");
    assert!(reader.uvm().is_none(), "abort writes no UVM footer");
    let mut tools = ToolCollection::new();
    tools.register(Box::<LaunchCounter>::default());
    let replayed = replay(&trace, &mut tools).expect("aborted trace replays");
    let launches = replayed
        .tools
        .iter()
        .find(|r| r.tool == "launch-counter")
        .and_then(|r| r.get("launches"));
    assert_eq!(launches, Some(4.0), "all pre-panic launches captured");

    // The session carries no recorder anymore: nothing left to detach.
    assert!(session.detach_event_recorders().is_empty());
}

#[test]
fn dropped_writer_detaches_its_recorders() {
    let mut session = Pasta::builder()
        .rtx_3060()
        .tool(LaunchCounter::default())
        .build()
        .expect("session builds");
    {
        let _writer = TraceWriter::attach(&session);
        // Dropped here without finish(): the Drop impl must detach.
    }
    assert!(
        session.detach_event_recorders().is_empty(),
        "a dropped writer leaves no recorder behind"
    );
    // Events after the drop are not captured by a fresh writer's count
    // until it attaches — and the session still profiles normally.
    let writer = TraceWriter::attach(&session);
    assert_eq!(writer.events_captured(), 0);
    let mut sweep = KernelSweepWorkload::new("after-drop").kernel(
        KernelDesc::new("k", Dim3::linear(2), Dim3::linear(32)).body(KernelBody::compute(1 << 12)),
    );
    session.run(&mut sweep).expect("session still profiles");
    assert!(writer.events_captured() > 0, "fresh writer captures again");
    let trace = writer.finish(&session);
    TraceReader::parse(trace.as_bytes()).expect("finished trace parses");
}
