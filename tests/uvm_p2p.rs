//! Shared managed ranges across lanes (ISSUE 5).
//!
//! The differential suite for peer-to-peer UVM: a *concurrent* 2-lane
//! tensor-parallel run whose lanes share a managed range (the replicated
//! Megatron parameters, owner = rank 0) must produce a merged
//! [`UvmReport`] — and a full merged report — byte-identical to the
//! sequential single-device-at-a-time reference
//! (`train_iter_sequential_reference`). The coherence model classifies
//! remote reads statically (owner demand-faults from the host, every
//! other rank read-duplicates over the peer link), so each lane's peer
//! traffic depends only on its own stream and the schedule cannot leak
//! into the counters.
//!
//! Alongside it: the write-invalidation regression — a write to a shared
//! range must never leave a stale duplicate counted as resident, on the
//! unforked (eager) manager and across forked lanes (lazy drain) alike.
//!
//! Run with `--test-threads=1` in CI next to the concurrency suites.
//!
//! [`UvmReport`]: pasta::core::report::UvmReport

use pasta::core::{Pasta, UvmSetup};
use pasta::dl::parallel::{self, Parallelism};
use pasta::prelude::*;
use pasta::sim::{AccessKind, DeviceId, ResidencyModel};
use pasta::tools::{
    MemoryCharacteristicsTool, MemoryTimelineTool, PeerTraffic, UvmPrefetchAdvisor,
};
use pasta::uvm::{UvmConfig, UvmManager, PAGE_SIZE};

fn uvm_session() -> PastaSession {
    Pasta::builder()
        .a100_x2()
        .uvm(UvmSetup::default())
        .tool(UvmPrefetchAdvisor::new())
        .tool(MemoryTimelineTool::new())
        .tool(MemoryCharacteristicsTool::new())
        .build()
        .unwrap()
}

/// The acceptance gate: concurrent TP over a shared managed range is
/// byte-identical to the sequential single-manager reference — UVM
/// statistics, per-lane breakdown, peer-traffic matrix, tool reports,
/// event counts, everything in the merged report.
#[test]
fn concurrent_tp_shared_ranges_match_sequential_reference_byte_identically() {
    let mut concurrent = uvm_session();
    concurrent
        .run_parallel(&[DeviceId(0), DeviceId(1)], |lanes| {
            parallel::train_iter(lanes, Parallelism::Tensor, 1).map(|_| ())
        })
        .unwrap();

    let mut sequential = uvm_session();
    sequential
        .run_parallel(&[DeviceId(0), DeviceId(1)], |lanes| {
            parallel::train_iter_sequential_reference(lanes, Parallelism::Tensor, 1).map(|_| ())
        })
        .unwrap();

    let a = concurrent.uvm_report().expect("uvm attached");
    let b = sequential.uvm_report().expect("uvm attached");
    assert_eq!(
        a, b,
        "concurrent UvmReport diverged from the sequential reference"
    );
    assert_eq!(
        concurrent.merged_report(),
        sequential.merged_report(),
        "the full merged report must agree to the byte"
    );

    // The run genuinely exercised sharing: rank 1 read-duplicated the
    // replicated parameters from rank 0 over the peer link...
    assert!(a.stats.peer_pages_in > 0, "TP lanes shared a managed range");
    assert_eq!(a.peer_bytes.len(), 1, "one (src, dst) pair");
    let ((src, dst), bytes) = a.peer_bytes[0];
    assert_eq!((src, dst), (DeviceId(0), DeviceId(1)));
    assert_eq!(bytes, a.stats.peer_pages_in * PAGE_SIZE);
    // ...and never wrote it, so no duplicate was invalidated.
    assert_eq!(a.stats.duplicates_invalidated, 0);

    // Peer traffic landed in the *destination* lane's statistics and in
    // the destination shard's tools.
    let by_device: std::collections::BTreeMap<_, _> = a.per_device.iter().copied().collect();
    assert_eq!(by_device[&DeviceId(0)].peer_pages_in, 0, "rank 0 owns");
    assert_eq!(
        by_device[&DeviceId(1)].peer_pages_in,
        a.stats.peer_pages_in,
        "rank 1 duplicated"
    );
    let (matrix_a, matrix_b) = (
        concurrent
            .with_merged_tool("uvm-prefetch-advisor", UvmPrefetchAdvisor::peer_matrix)
            .unwrap(),
        sequential
            .with_merged_tool("uvm-prefetch-advisor", UvmPrefetchAdvisor::peer_matrix)
            .unwrap(),
    );
    assert_eq!(matrix_a, matrix_b);
    assert_eq!(matrix_a.len(), 1);
    assert_eq!(matrix_a[0].0, (DeviceId(0), DeviceId(1)));
    assert_eq!(matrix_a[0].1.bytes, bytes);
}

/// Data parallelism registers nothing shared — its merged reports must
/// stay byte-identical too, with zero peer traffic (the shared-range
/// machinery must not perturb fully private runs).
#[test]
fn concurrent_dp_stays_reference_identical_with_zero_peer_traffic() {
    let mut concurrent = uvm_session();
    concurrent
        .run_parallel(&[DeviceId(0), DeviceId(1)], |lanes| {
            parallel::train_iter(lanes, Parallelism::Data, 1).map(|_| ())
        })
        .unwrap();
    let mut sequential = uvm_session();
    sequential
        .run_parallel(&[DeviceId(0), DeviceId(1)], |lanes| {
            parallel::train_iter_sequential_reference(lanes, Parallelism::Data, 1).map(|_| ())
        })
        .unwrap();
    assert_eq!(concurrent.merged_report(), sequential.merged_report());
    let uvm = concurrent.uvm_report().unwrap();
    assert_eq!(uvm.stats.peer_pages_in, 0);
    assert!(uvm.peer_bytes.is_empty());
}

/// Review regression (round 4): the TP replica owner is the lowest-id
/// lane *in the run*, not a hardcoded device 0 — a lane set that skips
/// device 0 must still have a real owner demand-faulting the home copy
/// and peer traffic sourced from a participating device.
#[test]
fn tp_owner_derives_from_the_lane_set() {
    let mut session = Pasta::builder()
        .devices(vec![pasta::sim::DeviceSpec::a100_80gb(); 3])
        .uvm(UvmSetup::default())
        .build()
        .unwrap();
    session
        .run_parallel(&[DeviceId(1), DeviceId(2)], |lanes| {
            parallel::train_iter(lanes, Parallelism::Tensor, 1).map(|_| ())
        })
        .unwrap();
    let uvm = session.uvm_report().unwrap();
    assert_eq!(
        uvm.peer_bytes
            .iter()
            .map(|&(pair, _)| pair)
            .collect::<Vec<_>>(),
        vec![(DeviceId(1), DeviceId(2))],
        "the home copy lives on the lowest participating lane"
    );
    let by_device: std::collections::BTreeMap<_, _> = uvm.per_device.iter().copied().collect();
    assert_eq!(by_device[&DeviceId(1)].peer_pages_in, 0, "gpu1 owns");
    assert!(by_device[&DeviceId(2)].peer_pages_in > 0, "gpu2 duplicates");
    assert!(
        !uvm.per_device.iter().any(|&(d, _)| d == DeviceId(0)),
        "device 0 never participated"
    );
}

const BASE: u64 = 0x4000_0000_0000;

fn two_device_manager() -> UvmManager {
    let mut m = UvmManager::new(UvmConfig::default());
    m.add_device(512 << 20, 24.0, 25_000);
    m.add_device(512 << 20, 24.0, 25_000);
    m.register(BASE, 2 << 20);
    m.register_shared(BASE, 2 << 20, DeviceId(0));
    m
}

/// Regression: write-invalidation never leaves a stale duplicate counted
/// as resident. Unforked manager — the invalidation is eager.
#[test]
fn write_invalidation_leaves_no_stale_resident_duplicate_eager() {
    let mut m = two_device_manager();
    let len = 2 << 20;
    m.on_kernel_access(DeviceId(1), BASE, len, len, AccessKind::Load);
    assert!(m.page_resident(DeviceId(1), BASE), "duplicate resident");
    assert_eq!(m.resident_bytes(DeviceId(1)), len);

    m.on_kernel_access(DeviceId(0), BASE, len, len, AccessKind::Store);
    assert_eq!(
        m.resident_bytes(DeviceId(1)),
        0,
        "stale duplicate still counted as resident after the write"
    );
    assert!(!m.page_resident(DeviceId(1), BASE));
    let dir = m.directory().range_containing(BASE).unwrap();
    assert_eq!(dir.holders(BASE / PAGE_SIZE), vec![DeviceId(0)]);
    assert_eq!(m.stats().duplicates_invalidated, len / PAGE_SIZE);
}

/// Regression, forked-lane flavor: the writer cannot reach the victim
/// lane's residency, but (a) the directory drops the holder at write
/// time — the stale copy is never *served* — and (b) the victim's next
/// touch of the range drains the pending invalidations, drops the pages
/// and refaults them over the peer link.
#[test]
fn write_invalidation_leaves_no_stale_resident_duplicate_across_lanes() {
    let parent = two_device_manager();
    let mut lane0 = parent.fork(DeviceId(0));
    let mut lane1 = parent.fork(DeviceId(1));
    let len = 2 << 20;

    lane1.on_kernel_access(DeviceId(1), BASE, len, len, AccessKind::Load);
    lane0.on_kernel_access(DeviceId(0), BASE, len, len, AccessKind::Store);

    let dir = parent.directory().range_containing(BASE).unwrap();
    assert_eq!(
        dir.holders(BASE / PAGE_SIZE),
        vec![DeviceId(0)],
        "the directory never lists the stale duplicate as a holder"
    );
    // The victim's next access settles its private residency: the stale
    // pages drop first, then refault as fresh peer duplicates — they can
    // never satisfy the access as if still valid.
    let before = lane1.stats().peer_pages_in;
    let out = lane1.on_kernel_access(DeviceId(1), BASE, len, len, AccessKind::Load);
    assert_eq!(out.peer_in_bytes, len, "every stale page refaulted");
    assert_eq!(lane1.stats().peer_pages_in, before + len / PAGE_SIZE);
    assert_eq!(lane1.resident_bytes(DeviceId(1)), len);
    assert_eq!(
        dir.holders(BASE / PAGE_SIZE),
        vec![DeviceId(0), DeviceId(1)],
        "re-duplication re-registers the holder"
    );
}

/// Peer traffic surfaces end to end through events: the destination
/// shard's tools see the duplication, the source shard sees nothing.
#[test]
fn peer_migrate_events_land_in_the_destination_shard() {
    let mut session = uvm_session();
    session
        .run_parallel(&[DeviceId(0), DeviceId(1)], |lanes| {
            std::thread::scope(|scope| {
                for lane in lanes.iter_mut() {
                    scope.spawn(move || {
                        let device = lane.device();
                        let s = &mut lane.session;
                        let t = s
                            .alloc_tensor(&[1 << 20], pasta::dl::dtype::DType::F32)
                            .unwrap();
                        if let Some(res) = s.runtime_mut().residency_mut() {
                            res.register_shared(t.ptr.addr(), t.bytes, DeviceId(0));
                        }
                        let desc = KernelDesc::new(
                            "shared_read_kernel",
                            Dim3::linear(64),
                            Dim3::linear(128),
                        )
                        .arg(t.ptr, t.bytes)
                        .body(
                            KernelBody::default().access(pasta::sim::AccessSpec::load(0, t.bytes)),
                        );
                        let rec = s.launch(desc).unwrap();
                        if device == DeviceId(0) {
                            assert!(rec.uvm_faults > 0, "owner demand-faults");
                            assert_eq!(rec.uvm_peer_bytes, 0);
                        } else {
                            assert_eq!(rec.uvm_faults, 0);
                            assert_eq!(rec.uvm_peer_bytes, t.bytes, "remote duplicates");
                        }
                        s.free_tensor(&t);
                    });
                }
            });
            Ok(())
        })
        .unwrap();

    // Shard 0 (the primary) holds only the owner's host faults; the peer
    // duplication event routed to shard 1 by its destination device.
    let shard0 = session
        .with_tool_mut("uvm-prefetch-advisor", |t: &mut UvmPrefetchAdvisor| {
            t.peer_matrix()
        })
        .unwrap();
    assert!(shard0.is_empty(), "no peer traffic in the source shard");
    let merged = session
        .with_merged_tool("uvm-prefetch-advisor", UvmPrefetchAdvisor::peer_matrix)
        .unwrap();
    assert_eq!(merged.len(), 1);
    let ((src, dst), traffic) = merged[0];
    assert_eq!((src, dst), (DeviceId(0), DeviceId(1)));
    assert_eq!(traffic.bytes, 4 << 20);
    assert_eq!(
        traffic,
        PeerTraffic {
            duplicated_pages: (4 << 20) / PAGE_SIZE,
            invalidated_pages: 0,
            bytes: 4 << 20,
            stall_ns: traffic.stall_ns,
        }
    );
    assert!(traffic.stall_ns > 0);
    // The timeline overlay attributes the same bytes to the destination.
    let peer_in = session
        .with_merged_tool("memory-timeline", |t: &MemoryTimelineTool| {
            [
                t.uvm_for(DeviceId(0)).peer_in_bytes,
                t.uvm_for(DeviceId(1)).peer_in_bytes,
            ]
        })
        .unwrap();
    assert_eq!(peer_in, [0, 4 << 20]);
    // And the session report carries the matrix.
    let uvm = session.uvm_report().unwrap();
    assert_eq!(uvm.peer_bytes, vec![((DeviceId(0), DeviceId(1)), 4 << 20)]);
}
