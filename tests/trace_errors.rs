//! Malformed-trace regression suite (ISSUE 6, satellite 1).
//!
//! Readers treat trace bytes as untrusted input: wrong magic, a future
//! format version, truncation at *any* byte offset, a smashed end
//! marker, trailing garbage — each yields a typed [`TraceError`], never
//! a panic. The truncation loop cuts a valid trace at every single byte
//! offset, which subsumes "several offsets" and pins every mid-record
//! and mid-header cut at once.

use pasta::core::report::UvmReport;
use pasta::core::Event;
use pasta::sim::{DeviceId, Dim3, LaunchId, SimTime};
use pasta::trace::{Trace, TraceError, TraceReader, FORMAT_VERSION};
use pasta::uvm::UvmStats;

/// A small but representative trace: two shards, symbols, deltas, a UVM
/// footer.
fn valid_trace() -> Trace {
    let shard0 = vec![
        Event::KernelLaunchBegin {
            launch: LaunchId(0),
            device: DeviceId(0),
            stream: 1,
            name: "ampere_sgemm".into(),
            grid: Dim3::linear(64),
            block: Dim3::linear(128),
        },
        Event::Barrier {
            launch: LaunchId(0),
            count: 512,
            cluster: false,
        },
        Event::KernelLaunchEnd {
            launch: LaunchId(0),
            device: DeviceId(0),
            name: "ampere_sgemm".into(),
            start: SimTime(1_000),
            end: SimTime(9_000),
        },
    ];
    let shard1 = vec![
        Event::UvmFault {
            launch: LaunchId(1),
            device: DeviceId(1),
            groups: 3,
            migrated_bytes: 1 << 20,
            evicted_bytes: 0,
            stall_ns: 700,
            at: SimTime(2_000),
        },
        Event::Sync {
            device: DeviceId(1),
            at: SimTime(2_500),
        },
    ];
    let uvm = UvmReport {
        stats: UvmStats {
            fault_groups: 3,
            demand_pages_in: 256,
            fault_stall_ns: 700,
            ..UvmStats::default()
        },
        per_device: vec![(DeviceId(1), UvmStats::default())],
        peer_bytes: vec![((DeviceId(0), DeviceId(1)), 4096)],
    };
    Trace::from_shards(
        [
            (DeviceId(0), shard0.as_slice()),
            (DeviceId(1), shard1.as_slice()),
        ],
        Some(&uvm),
    )
}

#[test]
fn the_fixture_itself_parses() {
    let reader = TraceReader::parse(valid_trace().as_bytes()).expect("valid trace parses");
    assert_eq!(reader.shards().len(), 2);
    assert_eq!(reader.events_total(), 5);
    assert!(reader.uvm().is_some());
}

#[test]
fn truncation_at_every_byte_offset_is_a_typed_error_never_a_panic() {
    let bytes = valid_trace().into_bytes();
    for cut in 0..bytes.len() {
        match TraceReader::parse(&bytes[..cut]) {
            Ok(_) => panic!("truncated at byte {cut}: a strict prefix must never parse"),
            // Cuts inside the magic are Truncated; anywhere later they are
            // Truncated or (when a length field now disagrees with the
            // remaining bytes) Corrupt. Never an Io error, never a panic.
            Err(TraceError::Truncated { .. } | TraceError::Corrupt { .. }) => {}
            Err(other) => panic!("truncated at byte {cut}: unexpected error {other:?}"),
        }
    }
}

#[test]
fn bad_magic_is_reported_with_the_found_bytes() {
    let mut bytes = valid_trace().into_bytes();
    bytes[0] = b'X';
    match TraceReader::parse(&bytes) {
        Err(TraceError::BadMagic { found }) => assert_eq!(found[0], b'X'),
        other => panic!("expected BadMagic, got {other:?}"),
    }
}

#[test]
fn future_format_version_is_rejected() {
    let mut bytes = valid_trace().into_bytes();
    bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
    match TraceReader::parse(&bytes) {
        Err(TraceError::UnsupportedVersion { found, supported }) => {
            assert_eq!(found, 99);
            assert_eq!(supported, FORMAT_VERSION);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn smashed_end_marker_is_corruption() {
    let mut bytes = valid_trace().into_bytes();
    let last = bytes.len() - 1;
    bytes[last] = 0xff;
    assert!(matches!(
        TraceReader::parse(&bytes),
        Err(TraceError::Corrupt { .. })
    ));
}

#[test]
fn trailing_garbage_is_corruption() {
    let mut bytes = valid_trace().into_bytes();
    bytes.push(0);
    assert!(matches!(
        TraceReader::parse(&bytes),
        Err(TraceError::Corrupt { .. })
    ));
}

#[test]
fn empty_input_is_truncated_not_bad_magic() {
    assert!(matches!(
        TraceReader::parse(&[]),
        Err(TraceError::Truncated { .. })
    ));
}

#[test]
fn errors_render_human_readable_messages() {
    let display = TraceError::UnsupportedVersion {
        found: 2,
        supported: 1,
    }
    .to_string();
    assert!(display.contains("version 2"), "{display}");
    let display = TraceError::Truncated { offset: 42 }.to_string();
    assert!(display.contains("42"), "{display}");
}
