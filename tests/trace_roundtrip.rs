//! Byte-identity round trips for trace capture + replay (ISSUE 6).
//!
//! The acceptance gate of the trace subsystem: a [`MergedReport`]
//! replayed offline from a captured trace must equal the live session's
//! report *byte for byte* — merged tool reports, per-device breakdown,
//! event counts, and the UVM slice — for all three workload shapes:
//!
//! * a sequential single-device run,
//! * a 2-device `run_parallel` Megatron tensor-parallel training
//!   iteration (one stream per shard, stitched under a shared header),
//! * a UVM run whose stream carries `UvmFault` and `UvmPeerMigrate`
//!   events and whose footer carries the manager overlay.
//!
//! Run with `--test-threads=1` in CI next to the concurrency suites.
//!
//! [`MergedReport`]: pasta::core::report::MergedReport

use pasta::core::{Event, Pasta, PastaSession, Tool, ToolCollection, UvmSetup};
use pasta::dl::parallel::{self, Parallelism};
use pasta::prelude::*;
use pasta::tools::MemoryTimelineTool;
use pasta::trace::{replay, Trace, TraceReader, TraceWriter};

fn suite() -> Vec<Box<dyn Tool>> {
    vec![
        Box::new(KernelFrequencyTool::new()),
        Box::new(BarrierStallTool::new()),
        Box::new(HotnessTool::new(64)),
        Box::new(OpKernelMapTool::new()),
        Box::new(MemoryCharacteristicsTool::new()),
    ]
}

fn suite_session(builder: PastaBuilder) -> PastaSession {
    builder
        .tool(KernelFrequencyTool::new())
        .tool(BarrierStallTool::new())
        .tool(HotnessTool::new(64))
        .tool(OpKernelMapTool::new())
        .tool(MemoryCharacteristicsTool::new())
        .build()
        .expect("session builds")
}

fn fresh_tools(tools: Vec<Box<dyn Tool>>) -> ToolCollection {
    let mut collection = ToolCollection::new();
    for tool in tools {
        collection.register(tool);
    }
    collection
}

#[test]
fn sequential_run_replays_byte_identically() {
    let mut session = suite_session(Pasta::builder().rtx_3060());
    let writer = TraceWriter::attach(&session);
    session
        .run_model_scaled(ModelZoo::Bert, RunKind::Inference, 1, 8)
        .expect("profiled run succeeds");
    let captured = writer.events_captured();
    let trace = writer.finish(&session);
    let live = session.merged_report();
    assert!(captured > 0, "capture saw the run");
    assert_eq!(
        captured, live.events_processed,
        "the recorder sees exactly the counted events"
    );

    let mut tools = fresh_tools(suite());
    let replayed = replay(&trace, &mut tools).expect("replay succeeds");
    assert_eq!(live, replayed, "offline replay must match live to the byte");

    // The returned collection holds the analyzed state: its reports are
    // the merged reports of the single-shard run.
    assert_eq!(tools.reports(), live.tools);
}

#[test]
fn trace_survives_a_disk_round_trip() {
    let mut session = suite_session(Pasta::builder().rtx_3060());
    let writer = TraceWriter::attach(&session);
    session
        .run_model_scaled(ModelZoo::Bert, RunKind::Inference, 1, 4)
        .expect("profiled run succeeds");
    let trace = writer.finish(&session);
    let live = session.merged_report();

    let path = std::env::temp_dir().join(format!(
        "pasta_trace_roundtrip_{}.trace",
        std::process::id()
    ));
    trace.save(&path).expect("save succeeds");
    let loaded = Trace::load(&path).expect("load succeeds");
    std::fs::remove_file(&path).ok();
    assert_eq!(trace, loaded, "bytes identical after the disk round trip");

    let mut tools = fresh_tools(suite());
    assert_eq!(live, replay(&loaded, &mut tools).expect("replay succeeds"));
}

#[test]
fn two_device_megatron_run_replays_byte_identically() {
    let mut session = suite_session(Pasta::builder().a100_x2());
    let writer = TraceWriter::attach(&session);
    session
        .run_parallel(&[DeviceId(0), DeviceId(1)], |lanes| {
            parallel::train_iter(lanes, Parallelism::Tensor, 1).map(|_| ())
        })
        .expect("parallel run succeeds");
    let trace = writer.finish(&session);
    let live = session.merged_report();
    assert_eq!(live.per_device.len(), 2, "two shards merged live");

    // Two streams under one header, one per device shard, both non-empty.
    let reader = TraceReader::parse(trace.as_bytes()).expect("parses");
    assert_eq!(reader.shards().len(), 2);
    assert_eq!(reader.shards()[0].device, DeviceId(0));
    assert_eq!(reader.shards()[1].device, DeviceId(1));
    for shard in reader.shards() {
        assert!(
            !shard.events.is_empty(),
            "{:?} captured its lane's stream",
            shard.device
        );
    }

    let mut tools = fresh_tools(suite());
    let replayed = replay(&trace, &mut tools).expect("replay succeeds");
    assert_eq!(
        live, replayed,
        "2-device Megatron TP replay must match live to the byte"
    );
}

fn uvm_session() -> PastaSession {
    Pasta::builder()
        .a100_x2()
        .uvm(UvmSetup::default())
        .tool(UvmPrefetchAdvisor::new())
        .tool(MemoryTimelineTool::new())
        .tool(MemoryCharacteristicsTool::new())
        .build()
        .expect("session builds")
}

fn uvm_fresh_tools() -> ToolCollection {
    let mut collection = ToolCollection::new();
    collection.register(Box::new(UvmPrefetchAdvisor::new()));
    collection.register(Box::new(MemoryTimelineTool::new()));
    collection.register(Box::new(MemoryCharacteristicsTool::new()));
    collection
}

#[test]
fn uvm_run_replays_byte_identically_with_the_footer_overlay() {
    let mut session = uvm_session();
    let writer = TraceWriter::attach(&session);
    session
        .run_parallel(&[DeviceId(0), DeviceId(1)], |lanes| {
            parallel::train_iter(lanes, Parallelism::Tensor, 1).map(|_| ())
        })
        .expect("uvm run succeeds");
    let trace = writer.finish(&session);
    let live = session.merged_report();
    let live_uvm = live.uvm.as_ref().expect("uvm attached");
    assert!(live_uvm.stats.pages_in() > 0, "the run faulted pages in");
    assert!(
        live_uvm.stats.peer_pages_in > 0,
        "TP lanes shared a managed range over the peer link"
    );

    // The stream itself carries the managed-memory events...
    let reader = TraceReader::parse(trace.as_bytes()).expect("parses");
    let events: Vec<&Event> = reader.shards().iter().flat_map(|s| &s.events).collect();
    assert!(
        events.iter().any(|e| matches!(e, Event::UvmFault { .. })),
        "trace carries UvmFault events"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e, Event::UvmPeerMigrate { .. })),
        "trace carries UvmPeerMigrate events"
    );
    // ...while the manager overlay rides in the footer.
    assert_eq!(reader.uvm(), Some(live_uvm));

    let mut tools = uvm_fresh_tools();
    let replayed = replay(&trace, &mut tools).expect("replay succeeds");
    assert_eq!(
        live, replayed,
        "UVM replay must match live to the byte, footer overlay included"
    );
}

#[test]
fn detach_stops_capture_mid_session() {
    let mut session = suite_session(Pasta::builder().rtx_3060());
    let writer = TraceWriter::attach(&session);
    session
        .run_model_scaled(ModelZoo::Bert, RunKind::Inference, 1, 4)
        .expect("first run succeeds");
    let trace = writer.finish(&session);
    let after_first = session.merged_report().events_processed;

    // A second run after finish() must not grow the trace.
    session
        .run_model_scaled(ModelZoo::Bert, RunKind::Inference, 1, 4)
        .expect("second run succeeds");
    assert!(
        session.merged_report().events_processed > after_first,
        "the session kept processing"
    );
    let reader = TraceReader::parse(trace.as_bytes()).expect("parses");
    assert_eq!(
        reader.events_total(),
        after_first,
        "capture stopped at finish(): the trace covers only the first run"
    );
}
