//! Property suite for the trace codec (ISSUE 6, satellite 3).
//!
//! `encode → decode` must be lossless over *arbitrary* event streams:
//! every [`Event`] variant, arbitrary symbols (empty, unicode, shared,
//! distinct), arbitrary `u64` payloads, and timestamps that are not
//! monotone — neither within a shard nor across shards, exactly what a
//! multi-lane capture interleaves.
//!
//! Variant exhaustiveness is pinned twice: the encoder's match over
//! [`Event`] has no wildcard arm, so adding a variant without a codec
//! breaks the *build* (not silently drops the variant from traces); and
//! [`every_variant_round_trips`] drives one of each through the full
//! pipeline at runtime, with the constructor list below failing to cover
//! a new variant only by failing to compile against `VARIANTS`.

use pasta::core::Event;
use pasta::dl::callbacks::Pass;
use pasta::dl::pycall::PyFrame;
use pasta::dl::tensor::TensorId;
use pasta::sim::{
    AccessBatch, AccessKind, AccessPattern, DeviceId, Dim3, KernelTraceSummary, LaunchId, MemSpace,
    SimTime,
};
use pasta::trace::{Trace, TraceReader};
use proptest::prelude::*;

/// Number of [`Event`] variants the generator below covers. The codec's
/// own exhaustive match is the primary pin; this constant keeps the
/// *generator* honest alongside it.
const VARIANTS: usize = 31;

/// Symbol palette: empty, ascii, unicode, and collision-prone names.
const NAMES: [&str; 7] = [
    "",
    "gemm",
    "ampere_sgemm_128x64_tn",
    "αβγ_kernel·∇",
    "layer/0/attention",
    "mem_prefetch",
    "a",
];

fn name(a: u64) -> &'static str {
    NAMES[(a % NAMES.len() as u64) as usize]
}

fn dev(a: u64) -> DeviceId {
    DeviceId((a % 8) as u32)
}

fn batch(a: u64, b: u64, c: u64) -> AccessBatch {
    AccessBatch {
        launch: LaunchId(b),
        spec_index: (a % 7) as usize,
        base: a,
        len: b,
        records: c,
        bytes: a ^ b,
        elem_size: (c % 16) as u32,
        kind: match a % 3 {
            0 => AccessKind::Load,
            1 => AccessKind::Store,
            _ => AccessKind::Atomic,
        },
        space: match b % 4 {
            0 => MemSpace::Global,
            1 => MemSpace::Shared,
            2 => MemSpace::RemoteShared,
            _ => MemSpace::Local,
        },
        pattern: match c % 3 {
            0 => AccessPattern::Sequential,
            1 => AccessPattern::Strided { stride: a ^ c },
            _ => AccessPattern::Random,
        },
    }
}

/// Deterministically builds one event of the selected variant from three
/// arbitrary words — timestamps and ids are raw `u64`s, so streams are
/// wildly non-monotone by construction.
fn make_event(variant: usize, a: u64, b: u64, c: u64) -> Event {
    match variant {
        0 => Event::DriverApi {
            name: name(a).into(),
            device: dev(b),
            at: SimTime(c),
        },
        1 => Event::RuntimeApi {
            name: name(a).into(),
            device: dev(b),
            at: SimTime(c),
        },
        2 => Event::Sync {
            device: dev(a),
            at: SimTime(c),
        },
        3 => Event::KernelLaunchBegin {
            launch: LaunchId(a),
            device: dev(b),
            stream: (b % 17) as u32,
            name: name(c).into(),
            grid: Dim3::new((a % 65_536) as u32, (b % 64) as u32, (c % 8) as u32),
            block: Dim3::linear((c % 1_024) as u32),
        },
        4 => Event::KernelLaunchEnd {
            launch: LaunchId(a),
            device: dev(b),
            name: name(a).into(),
            start: SimTime(b),
            end: SimTime(c),
        },
        5 => Event::MemCopy {
            device: dev(a),
            direction: match a % 4 {
                0 => pasta::sim::CopyDirection::HostToDevice,
                1 => pasta::sim::CopyDirection::DeviceToHost,
                2 => pasta::sim::CopyDirection::DeviceToDevice,
                _ => pasta::sim::CopyDirection::HostToHost,
            },
            bytes: b,
            at: SimTime(c),
        },
        6 => Event::MemSet {
            device: dev(a),
            addr: b,
            bytes: c,
            at: SimTime(a ^ b),
        },
        7 => Event::ResourceAlloc {
            device: dev(a),
            addr: b,
            bytes: c,
            managed: a & 1 == 1,
            at: SimTime(c),
        },
        8 => Event::ResourceFree {
            device: dev(a),
            addr: b,
            bytes: c,
            at: SimTime(b ^ c),
        },
        9 => Event::BatchMemOp {
            device: dev(a),
            op: name(b).into(),
            addr: b,
            bytes: c,
            at: SimTime(a),
        },
        10 => Event::UvmFault {
            launch: LaunchId(a),
            device: dev(b),
            groups: a % 1_000,
            migrated_bytes: b,
            evicted_bytes: c,
            stall_ns: a ^ c,
            at: SimTime(c),
        },
        11 => Event::UvmPeerMigrate {
            launch: LaunchId(a),
            src: dev(b),
            dst: dev(c),
            duplicated_pages: a,
            invalidated_pages: b,
            bytes: c,
            stall_ns: b ^ c,
            at: SimTime(a),
        },
        12 => Event::BlockBoundary {
            launch: LaunchId(a),
            count: b,
        },
        13 => Event::GlobalAccess {
            launch: LaunchId(a),
            kernel: name(b).into(),
            batch: batch(a, b, c),
        },
        14 => Event::SharedAccess {
            launch: LaunchId(a),
            kernel: name(c).into(),
            batch: batch(c, a, b),
        },
        15 => Event::Barrier {
            launch: LaunchId(a),
            count: b,
            cluster: c & 1 == 1,
        },
        16 => Event::DeviceFuncCall {
            launch: LaunchId(a),
            count: b,
        },
        17 => Event::DeviceMalloc {
            launch: LaunchId(a),
            bytes: b,
        },
        18 => Event::DeviceFree {
            launch: LaunchId(a),
            bytes: b,
        },
        19 => Event::GlobalToSharedCopy {
            launch: LaunchId(a),
            bytes: b,
        },
        20 => Event::PipelineOp {
            launch: LaunchId(a),
            count: b,
        },
        21 => Event::Instructions {
            launch: LaunchId(a),
            count: b,
        },
        22 => Event::KernelTrace {
            launch: LaunchId(a),
            kernel: name(b).into(),
            summary: KernelTraceSummary {
                global_records: a,
                shared_records: b,
                barriers: c,
                blocks: a ^ b,
                instructions: b ^ c,
                global_bytes: a ^ c,
            },
        },
        23 => Event::OpStart {
            seq: a,
            name: name(b).into(),
            device: dev(c),
            py_stack: (0..(a % 4))
                .map(|i| PyFrame::new(name(b + i), ((c + i) % 100_000) as u32, name(a + i)))
                .collect(),
        },
        24 => Event::OpEnd {
            seq: a,
            name: name(b).into(),
            device: dev(c),
        },
        25 => Event::TensorAlloc {
            tensor: TensorId(a),
            addr: b,
            bytes: c,
            allocated_total: a ^ b,
            reserved_total: b ^ c,
            device: dev(a),
        },
        26 => Event::TensorFree {
            tensor: TensorId(a),
            addr: b,
            bytes: c,
            allocated_total: a ^ b,
            reserved_total: b ^ c,
            device: dev(c),
        },
        27 => Event::LayerBoundary {
            name: name(a).into(),
            index: b as usize,
            device: dev(c),
        },
        28 => Event::PassBoundary {
            pass: match a % 3 {
                0 => Pass::Forward,
                1 => Pass::Backward,
                _ => Pass::Optimizer,
            },
            device: dev(b),
        },
        29 => Event::RegionStart {
            label: name(a).into(),
            device: dev(b),
        },
        30 => Event::RegionEnd {
            label: name(a).into(),
            device: dev(b),
        },
        _ => unreachable!("variant selector out of range"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn encode_decode_is_lossless_over_arbitrary_streams(
        specs in prop::collection::vec(
            (0usize..VARIANTS, any::<u64>(), any::<u64>(), any::<u64>()),
            1..120,
        ),
        nshards in 1usize..4,
    ) {
        // Deal events round-robin across shards: each shard's stream is
        // non-monotone in time on its own, and shard-to-shard timestamps
        // interleave arbitrarily.
        let mut shards: Vec<Vec<Event>> = vec![Vec::new(); nshards];
        for (i, &(variant, a, b, c)) in specs.iter().enumerate() {
            shards[i % nshards].push(make_event(variant, a, b, c));
        }
        let trace = Trace::from_shards(
            shards
                .iter()
                .enumerate()
                .map(|(d, events)| (DeviceId(d as u32), events.as_slice())),
            None,
        );
        let reader = TraceReader::parse(trace.as_bytes()).expect("own encoding parses");
        prop_assert_eq!(reader.shards().len(), nshards);
        for (d, events) in shards.iter().enumerate() {
            prop_assert_eq!(reader.shards()[d].device, DeviceId(d as u32));
            prop_assert_eq!(
                &reader.shards()[d].events,
                events,
                "shard {} diverged after the round trip",
                d
            );
        }
    }
}

/// One of each variant through the full pipeline: if the generator above
/// and the codec disagree about the variant universe, this fails at
/// runtime; if the `Event` enum grows a variant without a codec arm, the
/// build fails inside the encoder first.
#[test]
fn every_variant_round_trips() {
    let events: Vec<Event> = (0..VARIANTS)
        .map(|v| make_event(v, 0xDEAD_BEEF_0BAD_F00D, 7, u64::MAX))
        .collect();
    let trace = Trace::from_shards([(DeviceId(0), events.as_slice())], None);
    let reader = TraceReader::parse(trace.as_bytes()).expect("parses");
    assert_eq!(reader.shards()[0].events, events);
    assert_eq!(reader.events_total() as usize, VARIANTS);
}

/// Symbols decoded from a trace live in the reader's own table, not the
/// process-global one — and still compare equal by content.
#[test]
fn replayed_symbols_re_intern_into_a_fresh_table() {
    let original = make_event(4, 1, 2, 3); // KernelLaunchEnd carries a Symbol
    let events = [original.clone()];
    let trace = Trace::from_shards([(DeviceId(0), events.as_slice())], None);
    let reader = TraceReader::parse(trace.as_bytes()).expect("parses");
    assert!(!reader.symbols().is_empty(), "dictionary was re-interned");
    assert_eq!(reader.shards()[0].events[0], original);
}
