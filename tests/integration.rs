//! Cross-crate integration tests: full PASTA sessions over the simulated
//! stack, exercising vendor backends, analysis modes, range filtering,
//! sampling, UVM and the tool collection together.

use pasta::core::{AnalysisMode, BackendChoice, Knob, Pasta, RangeFilter, UvmSetup};
use pasta::dl::models::{ModelZoo, RunKind};
use pasta::nv::sanitizer::SanitizerConfig;
use pasta::sim::DeviceId;
use pasta::tools::{
    BarrierStallTool, HotnessTool, KernelFrequencyTool, MemoryCharacteristicsTool,
    MemoryTimelineTool, UvmPrefetchAdvisor,
};
use pasta::uvm::PrefetchGranularity;

const DIV: usize = 8; // batch divisor keeping tests quick

#[test]
fn same_model_runs_on_both_vendors() {
    let mut nv = Pasta::builder()
        .a100()
        .tool(KernelFrequencyTool::new())
        .build()
        .unwrap();
    let nv_report = nv
        .run_model_scaled(ModelZoo::ResNet18, RunKind::Inference, 1, DIV)
        .unwrap();

    let mut amd = Pasta::builder()
        .mi300x()
        .tool(KernelFrequencyTool::new())
        .build()
        .unwrap();
    let amd_report = amd
        .run_model_scaled(ModelZoo::ResNet18, RunKind::Inference, 1, DIV)
        .unwrap();

    assert!(nv_report.kernel_launches > 40);
    // The AMD backend decomposes fused epilogues into separate kernels, so
    // it launches strictly more (the Fig. 14 "more events" observation).
    assert!(
        amd_report.kernel_launches > nv_report.kernel_launches,
        "AMD {} vs NVIDIA {}",
        amd_report.kernel_launches,
        nv_report.kernel_launches
    );
}

#[test]
fn amd_peak_memory_is_slightly_lower_than_nvidia() {
    // Fig. 14: NVIDIA peak is slightly higher (bigger cuDNN workspaces),
    // AMD issues more alloc/free events.
    let mut nv = Pasta::builder()
        .a100()
        .tool(MemoryTimelineTool::new())
        .build()
        .unwrap();
    nv.run_model_scaled(ModelZoo::ResNet18, RunKind::Training, 1, DIV)
        .unwrap();
    let (nv_peak, nv_events) = nv
        .with_tool_mut("memory-timeline", |t: &mut MemoryTimelineTool| {
            (t.peak_for(DeviceId(0)), t.events_for(DeviceId(0)))
        })
        .unwrap();

    let mut amd = Pasta::builder()
        .mi300x()
        .tool(MemoryTimelineTool::new())
        .build()
        .unwrap();
    amd.run_model_scaled(ModelZoo::ResNet18, RunKind::Training, 1, DIV)
        .unwrap();
    let (amd_peak, amd_events) = amd
        .with_tool_mut("memory-timeline", |t: &mut MemoryTimelineTool| {
            (t.peak_for(DeviceId(0)), t.events_for(DeviceId(0)))
        })
        .unwrap();

    assert!(
        amd_events >= nv_events,
        "AMD {amd_events} vs NV {nv_events}"
    );
    assert!(amd_peak <= nv_peak, "AMD {amd_peak} vs NV {nv_peak}");
}

#[test]
fn gpu_resident_analysis_is_orders_of_magnitude_cheaper() {
    let run = |mode: AnalysisMode| {
        let mut session = Pasta::builder()
            .rtx_3060()
            .tool(MemoryCharacteristicsTool::new())
            .analysis_mode(mode)
            .build()
            .unwrap();
        let r = session
            .run_model_scaled(ModelZoo::AlexNet, RunKind::Inference, 1, DIV)
            .unwrap();
        (r.overhead.total_ns(), r.records)
    };
    let (gpu_overhead, gpu_records) = run(AnalysisMode::GpuResident);
    let (cpu_overhead, cpu_records) = run(AnalysisMode::CpuPostProcess);
    assert_eq!(gpu_records, cpu_records, "same records either way");
    let ratio = cpu_overhead as f64 / gpu_overhead.max(1) as f64;
    assert!(
        ratio > 100.0,
        "CPU-analysis overhead must dwarf GPU-resident: ratio {ratio}"
    );
}

#[test]
fn nvbit_costs_more_than_sanitizer() {
    let sanitizer = {
        let mut s = Pasta::builder()
            .rtx_3060()
            .tool(MemoryCharacteristicsTool::new())
            .backend(BackendChoice::Sanitizer(SanitizerConfig::cpu_post_process()))
            .build()
            .unwrap();
        s.run_model_scaled(ModelZoo::Bert, RunKind::Inference, 1, DIV)
            .unwrap()
            .overhead
            .total_ns()
    };
    let nvbit = {
        let mut s = Pasta::builder()
            .rtx_3060()
            .tool(MemoryCharacteristicsTool::new())
            .backend(BackendChoice::Nvbit(pasta::nv::NvbitConfig::default()))
            .build()
            .unwrap();
        s.run_model_scaled(ModelZoo::Bert, RunKind::Inference, 1, DIV)
            .unwrap()
            .overhead
            .total_ns()
    };
    assert!(
        nvbit as f64 > sanitizer as f64 * 5.0,
        "NVBit {nvbit} vs Sanitizer {sanitizer}"
    );
}

#[test]
fn sampling_reduces_records_proportionally() {
    let run = |rate: u32| {
        let mut session = Pasta::builder()
            .rtx_3060()
            .tool(MemoryCharacteristicsTool::new())
            .sampling(rate)
            .build()
            .unwrap();
        session
            .run_model_scaled(ModelZoo::ResNet18, RunKind::Inference, 1, DIV)
            .unwrap()
            .records
    };
    let full = run(1);
    let sampled = run(100);
    assert!(full > 0);
    let ratio = full as f64 / sampled.max(1) as f64;
    assert!(
        (20.0..500.0).contains(&ratio),
        "100x sampling should cut records ~100x, got {ratio} ({full} vs {sampled})"
    );
}

#[test]
fn grid_window_restricts_instrumentation() {
    let run = |range: RangeFilter| {
        let mut session = Pasta::builder()
            .rtx_3060()
            .tool(MemoryCharacteristicsTool::new())
            .range(range)
            .build()
            .unwrap();
        session
            .run_model_scaled(ModelZoo::ResNet18, RunKind::Inference, 1, DIV)
            .unwrap()
            .records
    };
    let full = run(RangeFilter::all());
    let windowed = run(RangeFilter::grid_window(0, 10));
    assert!(
        windowed < full / 2,
        "10-kernel window must collect far fewer records: {windowed} vs {full}"
    );
}

#[test]
fn knob_finds_hot_kernel_and_stack() {
    let mut session = Pasta::builder()
        .a100()
        .tool(MemoryCharacteristicsTool::new())
        .capture_knob(Some(Knob::MaxMemReferencedKernel))
        .build()
        .unwrap();
    session
        .run_model_scaled(ModelZoo::Bert, RunKind::Inference, 1, DIV)
        .unwrap();
    let (kernel, agg) = session
        .knob_selection(Knob::MaxMemReferencedKernel)
        .expect("selection");
    assert!(agg.memory_records > 0);
    // BERT's hottest memory kernel is a GEMM (Fig. 4's gemm_and_bias).
    assert!(
        kernel.contains("sgemm") || kernel.contains("indexSelect"),
        "unexpected hot kernel {kernel}"
    );
    let stack = session.cross_layer_stack(&kernel).expect("stack captured");
    let rendered = stack.render();
    assert!(rendered.contains("── C/C++ ──"));
    assert!(rendered.contains("── Python ──"));
}

/// One UVM run of ResNet-18 with the given budget, returning
/// `(time_ns, advisor, peak_reserved)`.
fn uvm_run(plan: Option<pasta::uvm::PrefetchPlan>, budget: u64) -> (u64, UvmPrefetchAdvisor, u64) {
    let mut session = Pasta::builder()
        .rtx_3060()
        .tool(UvmPrefetchAdvisor::new())
        .uvm(UvmSetup {
            budget_bytes: Some(budget),
            ..UvmSetup::default()
        })
        .build()
        .unwrap();
    if let Some(p) = plan {
        session.set_prefetch_plan(p);
    }
    let r = session
        .run_model_scaled(ModelZoo::ResNet18, RunKind::Inference, 1, 4)
        .unwrap();
    let advisor = session
        .with_tool_mut("uvm-prefetch-advisor", |t: &mut UvmPrefetchAdvisor| {
            std::mem::take(t)
        })
        .unwrap();
    (r.profiled_time.as_nanos(), advisor, r.peak_reserved)
}

#[test]
fn prefetching_wins_without_oversubscription_object_slightly_ahead() {
    // Fig. 11's shape: with memory to spare, both granularities beat
    // demand paging, and bulk object-level transfers edge out tensor-level.
    let (_, _, footprint) = uvm_run(None, u64::MAX >> 1);
    let budget = footprint * 2;
    let (baseline, advisor, _) = uvm_run(None, budget);
    let (obj, _, _) = uvm_run(
        Some(advisor.build_plan(PrefetchGranularity::Object)),
        budget,
    );
    let (ten, _, _) = uvm_run(
        Some(advisor.build_plan(PrefetchGranularity::Tensor)),
        budget,
    );
    assert!(obj < baseline, "object-level wins: {obj} vs {baseline}");
    assert!(ten < baseline, "tensor-level wins: {ten} vs {baseline}");
    assert!(obj <= ten, "object slightly ahead when memory is free");
}

#[test]
fn tensor_prefetch_beats_object_under_oversubscription() {
    // Fig. 12's shape: at 3x oversubscription (paper methodology: budget =
    // footprint / 3), object-level prefetching thrashes while tensor-level
    // still beats the baseline.
    let (_, _, footprint) = uvm_run(None, u64::MAX >> 1);
    let budget = footprint / 3;
    let (baseline, advisor, _) = uvm_run(None, budget);
    let (obj, _, _) = uvm_run(
        Some(advisor.build_plan(PrefetchGranularity::Object)),
        budget,
    );
    let (ten, _, _) = uvm_run(
        Some(advisor.build_plan(PrefetchGranularity::Tensor)),
        budget,
    );
    assert!(
        ten < obj,
        "tensor-level {ten} must beat object-level {obj} when oversubscribed"
    );
    assert!(
        obj as f64 > baseline as f64 * 1.3,
        "object-level prefetch thrashes under oversubscription: {obj} vs {baseline}"
    );
    assert!(
        ten < baseline,
        "tensor-level still wins: {ten} vs {baseline}"
    );
}

#[test]
fn hotness_tool_sees_persistent_parameter_blocks() {
    let mut session = Pasta::builder()
        .a100()
        .tool(HotnessTool::new(32))
        .build()
        .unwrap();
    session
        .run_model_scaled(ModelZoo::Bert, RunKind::Inference, 2, DIV)
        .unwrap();
    let (blocks, persistent) = session
        .with_tool_mut("hotness", |t: &mut HotnessTool| {
            let s = t.series();
            (s.blocks.len(), t.persistent_blocks(0.5).len())
        })
        .unwrap();
    assert!(blocks > 10, "BERT touches many 2 MiB blocks: {blocks}");
    assert!(
        persistent > 0,
        "parameters are accessed throughout execution"
    );
    assert!(persistent < blocks, "transients exist too");
}

#[test]
fn barrier_tool_attributes_stalls_to_gemms() {
    let mut session = Pasta::builder()
        .a100()
        .tool(BarrierStallTool::new())
        .build()
        .unwrap();
    session
        .run_model_scaled(ModelZoo::Bert, RunKind::Inference, 1, DIV)
        .unwrap();
    let ranking = session
        .with_tool_mut("barrier-stall", |t: &mut BarrierStallTool| t.ranking())
        .unwrap();
    assert!(!ranking.is_empty());
    assert!(
        ranking[0].0.contains("sgemm"),
        "GEMMs synchronize most: {}",
        ranking[0].0
    );
}

#[test]
fn training_emits_balanced_tensor_events() {
    let mut session = Pasta::builder()
        .a100()
        .tool(MemoryTimelineTool::new())
        .build()
        .unwrap();
    session
        .run_model_scaled(ModelZoo::Gpt2, RunKind::Training, 1, 2)
        .unwrap();
    let series: Vec<_> = session
        .with_tool_mut("memory-timeline", |t: &mut MemoryTimelineTool| {
            t.series_for(DeviceId(0)).to_vec()
        })
        .unwrap();
    assert!(
        series.len() > 500,
        "GPT-2 training is event-rich: {}",
        series.len()
    );
    // The run ends back at zero live bytes (model destroyed): ramp-down.
    assert_eq!(series.last().unwrap().allocated, 0);
    // Peak is strictly inside the run: the three-phase shape of Fig. 14.
    let peak_idx = series
        .iter()
        .enumerate()
        .max_by_key(|(_, p)| p.allocated)
        .map(|(i, _)| i)
        .unwrap();
    assert!(peak_idx > series.len() / 10);
    assert!(peak_idx < series.len() * 9 / 10);
}

#[test]
fn whisper_runs_all_components() {
    let mut session = Pasta::builder()
        .a100()
        .tool(KernelFrequencyTool::new())
        .build()
        .unwrap();
    let r = session
        .run_model_scaled(ModelZoo::Whisper, RunKind::Inference, 1, 8)
        .unwrap();
    assert!(r.kernel_launches > 200);
    let has_xattn = session
        .with_tool_mut("kernel-frequency", |t: &mut KernelFrequencyTool| {
            t.ranking().iter().any(|(k, _)| k.contains("xattn"))
        })
        .unwrap();
    assert!(has_xattn, "Whisper decoder runs cross-attention kernels");
}

/// The §IV-D multi-GPU injection scenario: a Megatron-style launch tree
/// spawns one CUDA worker per GPU plus a JIT-compilation helper that never
/// creates a CUDA context. `LD_PRELOAD` instruments the helper spuriously
/// (the failure mode the paper hit); `CUDA_INJECTION64_PATH` does not.
#[test]
fn injection_model_skips_cuda_less_helpers() {
    use pasta::nv::{is_spurious, should_instrument, InjectionMethod, ProcessKind};
    let launch_tree = [
        ProcessKind::CudaContextCreator, // rank 0
        ProcessKind::CudaContextCreator, // rank 1
        ProcessKind::Helper,             // JIT compile subprocess
    ];
    let count = |m: InjectionMethod| {
        launch_tree
            .iter()
            .filter(|&&k| should_instrument(m, k))
            .count()
    };
    let spurious = |m: InjectionMethod| launch_tree.iter().filter(|&&k| is_spurious(m, k)).count();
    assert_eq!(count(InjectionMethod::LdPreload), 3);
    assert_eq!(spurious(InjectionMethod::LdPreload), 1, "the paper's bug");
    assert_eq!(count(InjectionMethod::CudaInjection64Path), 2);
    assert_eq!(spurious(InjectionMethod::CudaInjection64Path), 0);
}
