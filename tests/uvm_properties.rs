//! Property tests for the shard-aware UVM subsystem (ISSUE 4).
//!
//! The contract under test: `UvmManager::fork` + `merge` over *any*
//! interleaving of per-lane page accesses equals the sequential
//! single-manager reference — the one manager that processes each lane's
//! stream device-at-a-time, in ascending device order. Statistics and
//! hotness both.
//!
//! Two structural facts make the property meaningful rather than
//! circular: (1) each forked manager only ever observes its own lane's
//! stream in program order, so the *interleaving* of lanes can influence
//! the result only if fork/merge leak cross-lane state — the test drives
//! a genuinely shuffled global schedule to prove they don't; (2) the
//! reference is a plain, never-forked `UvmManager`, so the equality pins
//! fork+merge to the semantics a single-threaded run always had.
//!
//! Run with `--test-threads=1` in CI alongside the concurrency suite, so
//! shard-ordering nondeterminism cannot hide behind scheduler luck.

use pasta::sim::{AccessKind, DeviceId, ResidencyModel};
use pasta::uvm::{UvmConfig, UvmManager, UvmStats, PAGE_SIZE};
use proptest::prelude::*;

const BASE: u64 = 0x4000_0000_0000;

/// One lane's access stream: (page offset, page count) pairs, each
/// becoming an `on_kernel_access` over that page range.
type LaneStream = Vec<(u64, u64)>;

fn manager(lanes: usize, budget_pages: u64, bin_events: u64) -> UvmManager {
    let config = UvmConfig {
        hotness_bin_events: bin_events,
        ..UvmConfig::default()
    };
    let mut m = UvmManager::new(config);
    for _ in 0..lanes {
        m.add_device(budget_pages * PAGE_SIZE, 24.0, 25_000);
    }
    m.register(BASE, 512 * PAGE_SIZE);
    m
}

fn drive(m: &mut UvmManager, device: DeviceId, stream: &[(u64, u64)]) {
    for &(page, pages) in stream {
        let base = BASE + page * PAGE_SIZE;
        let len = pages * PAGE_SIZE;
        m.on_kernel_access(device, base, len, len, AccessKind::Load);
    }
}

/// Folds lane managers into `parent` in ascending device order — the
/// deterministic merge `run_parallel` performs at session end.
fn merge_lanes(parent: &mut UvmManager, lanes: Vec<(DeviceId, UvmManager)>) {
    let mut lanes = lanes;
    lanes.sort_by_key(|&(d, _)| d);
    for (_, lane) in &lanes {
        parent.merge(lane);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Stats: forked lanes merged in device order equal the sequential
    /// single-manager reference, for any per-lane streams and any
    /// interleaving (the schedule below round-robins with a generated
    /// skew, standing in for an arbitrary thread schedule).
    #[test]
    fn fork_merge_stats_equal_sequential_reference(
        stream0 in prop::collection::vec((0u64..400, 1u64..64), 1..12),
        stream1 in prop::collection::vec((0u64..400, 1u64..64), 1..12),
        budget_pages in 16u64..256,
        skew in 1usize..4
    ) {
        let streams: [LaneStream; 2] = [stream0, stream1];

        // Reference: one never-forked manager, lanes device-at-a-time.
        let mut reference = manager(2, budget_pages, 64);
        for (i, stream) in streams.iter().enumerate() {
            drive(&mut reference, DeviceId(i as u32), stream);
        }

        // Forked lanes, driven through an interleaved global schedule:
        // lane 0 advances `skew` accesses per lane-1 access. Each lane
        // only sees its own sub-sequence, in order — as on real threads.
        let parent = manager(2, budget_pages, 64);
        let mut lanes: Vec<(DeviceId, UvmManager)> = (0..2)
            .map(|i| (DeviceId(i), parent.fork(DeviceId(i))))
            .collect();
        let mut cursors = [0usize; 2];
        while cursors.iter().zip(&streams).any(|(&c, s)| c < s.len()) {
            for (i, &(stream, steps)) in
                [(&streams[0], skew), (&streams[1], 1)].iter().enumerate()
            {
                for _ in 0..steps {
                    if cursors[i] < stream.len() {
                        let access = [stream[cursors[i]]];
                        drive(&mut lanes[i].1, DeviceId(i as u32), &access);
                        cursors[i] += 1;
                    }
                }
            }
        }
        let mut merged = manager(2, budget_pages, 64);
        merge_lanes(&mut merged, lanes);

        prop_assert_eq!(merged.stats(), reference.stats());
        // Residency stays lane-private: the merged parent holds no pages.
        prop_assert_eq!(merged.resident_bytes(DeviceId(0)), 0);
        prop_assert_eq!(merged.resident_bytes(DeviceId(1)), 0);
    }

    /// Hotness: with lane streams landing on bin boundaries (bin width 1
    /// makes every stream do so), the merged (block × time-bin) grid is
    /// byte-identical to the sequential single-manager reference.
    #[test]
    fn fork_merge_hotness_equals_sequential_reference(
        stream0 in prop::collection::vec((0u64..400, 1u64..32), 1..10),
        stream1 in prop::collection::vec((0u64..400, 1u64..32), 1..10),
        stream2 in prop::collection::vec((0u64..400, 1u64..32), 0..10)
    ) {
        let streams: [LaneStream; 3] = [stream0, stream1, stream2];

        let mut reference = manager(3, 512, 1);
        for (i, stream) in streams.iter().enumerate() {
            drive(&mut reference, DeviceId(i as u32), stream);
        }

        let parent = manager(3, 512, 1);
        // Merge order is ascending device id even when lanes finish (and
        // are collected) in another order — emulate that with a rotation.
        let mut lanes: Vec<(DeviceId, UvmManager)> = [2u32, 0, 1]
            .into_iter()
            .map(|i| {
                let mut lane = parent.fork(DeviceId(i));
                drive(&mut lane, DeviceId(i), &streams[i as usize]);
                (DeviceId(i), lane)
            })
            .collect();
        lanes.sort_by_key(|&(d, _)| d);
        let mut merged = manager(3, 512, 1);
        merge_lanes(&mut merged, lanes);

        prop_assert_eq!(merged.hotness().series(), reference.hotness().series());
        prop_assert_eq!(merged.stats(), reference.stats());
    }

    /// Shared ranges, ISSUE 5 bugfix pin: fork+merge equals the
    /// sequential reference **at any bin width and any stream length** —
    /// lane streams that do *not* land on bin boundaries included. Lane
    /// hotness logs its events and the merge replays them on the parent
    /// clock, so the partial-bin seam is exact (ISSUE 4's padded
    /// concatenation only guaranteed equality on boundaries).
    #[test]
    fn fork_merge_hotness_equals_reference_off_bin_boundaries(
        stream0 in prop::collection::vec((0u64..400, 1u64..32), 1..10),
        stream1 in prop::collection::vec((0u64..400, 1u64..32), 1..10),
        bin_events in 2u64..16,
        prior in 0usize..5
    ) {
        let streams: [LaneStream; 2] = [stream0, stream1];
        let mut reference = manager(2, 512, bin_events);
        let mut parent = manager(2, 512, bin_events);
        // The session manager may already sit mid-bin when the parallel
        // region starts.
        for i in 0..prior {
            let access = [(i as u64, 1u64)];
            drive(&mut reference, DeviceId(0), &access);
            drive(&mut parent, DeviceId(0), &access);
        }
        for (i, stream) in streams.iter().enumerate() {
            drive(&mut reference, DeviceId(i as u32), stream);
        }
        let mut lanes: Vec<(DeviceId, UvmManager)> = (0..2)
            .map(|i| {
                let mut lane = parent.fork(DeviceId(i));
                drive(&mut lane, DeviceId(i), &streams[i as usize]);
                (DeviceId(i), lane)
            })
            .collect();
        lanes.sort_by_key(|&(d, _)| d);
        for (_, lane) in &lanes {
            parent.merge(lane);
        }
        prop_assert_eq!(parent.hotness().series(), reference.hotness().series());
        prop_assert_eq!(parent.hotness().events_seen(), reference.hotness().events_seen());
    }

    /// Shared blocks conserve bytes under arbitrary read/write
    /// interleavings, against the never-forked single-manager oracle:
    /// every page ever brought in (host demand + peer duplication) is
    /// either still resident somewhere, was evicted, or was invalidated —
    /// and immediately after a write, no page of the written range is
    /// resident on two devices (the writer holds the only copy).
    #[test]
    fn shared_duplicates_and_invalidations_conserve_bytes(
        ops in prop::collection::vec(
            (0u32..3, 0u64..96, 1u64..32, any::<bool>()), 1..24),
        budget_pages in 24u64..256
    ) {
        let shared_pages = 96u64;
        let mut m = manager(3, budget_pages, 64);
        m.register_shared(BASE, shared_pages * PAGE_SIZE, DeviceId(0));
        for &(device, page, pages, write) in &ops {
            let device = DeviceId(device);
            let page = page.min(shared_pages - 1);
            let pages = pages.min(shared_pages - page);
            let base = BASE + page * PAGE_SIZE;
            let len = pages * PAGE_SIZE;
            let kind = if write { AccessKind::Store } else { AccessKind::Load };
            m.on_kernel_access(device, base, len, len, kind);
            if write {
                // Exclusivity: after a write, no device but the writer
                // holds a written page — no block double-counted
                // resident. (The writer itself may have lost the page
                // again if the written range exceeded its own budget and
                // the access's LRU thrash evicted it.)
                for p in page..page + pages {
                    let addr = BASE + p * PAGE_SIZE;
                    let holders = (0..3u32)
                        .filter(|&d| m.page_resident(DeviceId(d), addr))
                        .collect::<Vec<_>>();
                    prop_assert!(
                        holders.is_empty() || holders == vec![device.0],
                        "page {} resident on {:?} after a write by {:?}",
                        p, holders, device
                    );
                }
            }
        }
        // Flow balance: pages in == pages still resident + pages evicted
        // + duplicates invalidated (every shared access in this test, so
        // all resident pages are shared pages).
        let s = m.stats();
        let resident: u64 = (0..3u32)
            .map(|d| m.resident_bytes(DeviceId(d)) / PAGE_SIZE)
            .sum();
        prop_assert_eq!(
            s.demand_pages_in + s.peer_pages_in,
            resident + s.pages_evicted + s.duplicates_invalidated,
            "shared bytes leaked or double-counted"
        );
        // The directory's holder census agrees with actual residency.
        let dir = m.directory().range_containing(BASE).unwrap();
        prop_assert_eq!(dir.holder_entries(), resident);
    }

    /// Read-only shared streams through forked lanes equal the oracle
    /// byte-for-byte — statistics, peer traffic and hotness — for any
    /// per-lane streams, any interleaving and any budget. This is the
    /// determinism contract the `uvm_p2p` differential suite rests on:
    /// remote-read classification is static (owner vs. not), so the
    /// schedule cannot reach the counters.
    #[test]
    fn forked_shared_reads_equal_never_forked_oracle(
        stream0 in prop::collection::vec((0u64..96, 1u64..32), 1..10),
        stream1 in prop::collection::vec((0u64..96, 1u64..32), 1..10),
        stream2 in prop::collection::vec((0u64..96, 1u64..32), 0..10),
        budget_pages in 16u64..256,
        skew in 1usize..4
    ) {
        let shared_pages = 96u64;
        let clamp = |s: &LaneStream| -> LaneStream {
            s.iter()
                .map(|&(p, n)| {
                    let p = p.min(shared_pages - 1);
                    (p, n.min(shared_pages - p))
                })
                .collect()
        };
        let streams: [LaneStream; 3] =
            [clamp(&stream0), clamp(&stream1), clamp(&stream2)];

        let mut oracle = manager(3, budget_pages, 5);
        oracle.register_shared(BASE, shared_pages * PAGE_SIZE, DeviceId(0));
        for (i, stream) in streams.iter().enumerate() {
            drive(&mut oracle, DeviceId(i as u32), stream);
        }

        let mut parent = manager(3, budget_pages, 5);
        parent.register_shared(BASE, shared_pages * PAGE_SIZE, DeviceId(0));
        let mut lanes: Vec<(DeviceId, UvmManager)> = (0..3)
            .map(|i| (DeviceId(i), parent.fork(DeviceId(i))))
            .collect();
        // Interleave: lane 0 advances `skew` accesses per single access
        // of lanes 1 and 2 — standing in for an arbitrary schedule.
        let mut cursors = [0usize; 3];
        while cursors.iter().zip(&streams).any(|(&c, s)| c < s.len()) {
            for (i, steps) in [(0usize, skew), (1, 1), (2, 1)] {
                for _ in 0..steps {
                    if cursors[i] < streams[i].len() {
                        let access = [streams[i][cursors[i]]];
                        drive(&mut lanes[i].1, DeviceId(i as u32), &access);
                        cursors[i] += 1;
                    }
                }
            }
        }
        lanes.sort_by_key(|&(d, _)| d);
        for (_, lane) in &lanes {
            parent.merge(lane);
        }
        prop_assert_eq!(parent.stats(), oracle.stats());
        prop_assert_eq!(parent.peer_matrix(), oracle.peer_matrix());
        prop_assert_eq!(parent.hotness().series(), oracle.hotness().series());
    }

    /// Merging lane stats is interleaving-independent by construction,
    /// and equals the plain sum of per-lane stats.
    #[test]
    fn merged_stats_are_the_sum_of_lane_stats(
        stream0 in prop::collection::vec((0u64..400, 1u64..64), 0..10),
        stream1 in prop::collection::vec((0u64..400, 1u64..64), 0..10)
    ) {
        let parent = manager(2, 64, 64);
        let mut lane0 = parent.fork(DeviceId(0));
        let mut lane1 = parent.fork(DeviceId(1));
        drive(&mut lane0, DeviceId(0), &stream0);
        drive(&mut lane1, DeviceId(1), &stream1);
        let mut expected = UvmStats::default();
        expected.merge_from(&lane0.stats());
        expected.merge_from(&lane1.stats());
        let mut merged = manager(2, 64, 64);
        merge_lanes(&mut merged, vec![(DeviceId(0), lane0), (DeviceId(1), lane1)]);
        prop_assert_eq!(merged.stats(), expected);
    }
}
