//! Lock-free event spine stress suite (ISSUE 8).
//!
//! The SPSC rings between `HubSink`s and `DeviceShard`s are exercised
//! here end to end, under geometries small enough that every launch hits
//! wraparound and full-ring backpressure many times over. The oracle
//! throughout is the mutex-spine (`SpineMode::Inline`) reference: same
//! input stream, byte-identical merged reports, and — for the recorder
//! tests — the *exact same event sequence* delivered to each shard's
//! processor, each event exactly once.
//!
//! Run with `--test-threads=1` in CI: the stress tests spawn their own
//! emitter threads and time-share poorly with sibling tests.

use pasta::core::hub::{Hub, HubSink, SharedHub};
use pasta::core::processor::{EventProcessor, EventRecorder};
use pasta::core::report::MergedReport;
use pasta::core::spine::{SpineConfig, SpineDrainer, SpineMode};
use pasta::core::tool::{Interest, LaunchCounter, Tool};
use pasta::core::{Event, Pasta, PastaSession};
use pasta::prelude::*;
use pasta::sim::instrument::{DeviceTraceSink, TraceCtx};
use pasta::sim::{
    AccessBatch, AccessKind, AccessPattern, DeviceId, KernelTraceSummary, LaunchId, MemSpace,
};
use proptest::prelude::*;
use std::sync::{Arc, Mutex};

/// A geometry so small every test launch wraps the ring and exhausts the
/// buffer pool repeatedly — wraparound and backpressure on every path.
fn tiny() -> SpineConfig {
    SpineConfig {
        ring_slots: 2,
        pool_buffers: 1,
        batch_events: 3,
    }
}

/// Order-independent aggregate of everything the fine path delivers.
#[derive(Debug, Default)]
struct FineAggregator {
    batches: u64,
    records: u64,
    barriers: u64,
    launches: u64,
}

impl Tool for FineAggregator {
    fn name(&self) -> &str {
        "fine-aggregator"
    }
    fn interest(&self) -> Interest {
        Interest::all()
    }
    fn on_event(&mut self, event: &Event) {
        match event {
            Event::GlobalAccess { batch, .. } | Event::SharedAccess { batch, .. } => {
                self.batches += 1;
                self.records += batch.records;
            }
            Event::Barrier { count, .. } => self.barriers += count,
            Event::KernelLaunchBegin { .. } => self.launches += 1,
            _ => {}
        }
    }
    fn report(&self) -> pasta::core::ToolReport {
        pasta::core::ToolReport::new(self.name())
            .metric("batches", self.batches as f64)
            .metric("records", self.records as f64)
            .metric("barriers", self.barriers as f64)
            .metric("launches", self.launches as f64)
    }
    fn fork(&self) -> Option<Box<dyn Tool>> {
        Some(Box::<FineAggregator>::default())
    }
    fn merge(&mut self, other: &dyn Tool) {
        let other = other.as_any().downcast_ref::<FineAggregator>().unwrap();
        self.batches += other.batches;
        self.records += other.records;
        self.barriers += other.barriers;
        self.launches += other.launches;
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

fn sharded_hub(devices: u32) -> SharedHub {
    let shards: Vec<(DeviceId, EventProcessor)> = (0..devices)
        .map(|d| {
            let mut p = EventProcessor::new();
            p.tools.register(Box::<FineAggregator>::default());
            (DeviceId(d), p)
        })
        .collect();
    Arc::new(Hub::sharded(shards).unwrap())
}

fn ctx(device: u32, launch: u64) -> TraceCtx {
    TraceCtx {
        launch: LaunchId(launch),
        device: DeviceId(device),
        stream: 0,
        name: "spine_kernel".into(),
        grid: Dim3::linear(16),
        block: Dim3::linear(64),
    }
}

fn batch(launch: u64, i: u64) -> AccessBatch {
    AccessBatch {
        launch: LaunchId(launch),
        spec_index: 0,
        base: 0x2000 + i * 4096,
        len: 4096,
        records: 16,
        bytes: 4096,
        elem_size: 4,
        kind: AccessKind::Load,
        space: if i.is_multiple_of(4) {
            MemSpace::Shared
        } else {
            MemSpace::Global
        },
        pattern: AccessPattern::Sequential,
    }
}

/// One device's deterministic stream through a sink with the given spine.
fn drive_device(hub: &SharedHub, mode: SpineMode, config: SpineConfig, device: u32, launches: u64) {
    let mut sink = HubSink::with_spine(Arc::clone(hub), mode, config);
    for l in 0..launches {
        let launch = u64::from(device) * 10_000 + l;
        let ctx = ctx(device, launch);
        sink.on_kernel_begin(&ctx);
        for i in 0..200 {
            sink.on_batch(&ctx, &batch(launch, i));
            if i % 25 == 0 {
                sink.on_barriers(&ctx, 2);
            }
        }
        sink.on_kernel_end(&ctx, &KernelTraceSummary::default());
    }
}

fn merged_after(
    devices: u32,
    launches: u64,
    mode: SpineMode,
    config: SpineConfig,
    concurrent: bool,
) -> MergedReport {
    let hub = sharded_hub(devices);
    if concurrent {
        std::thread::scope(|scope| {
            for d in 0..devices {
                let hub = &hub;
                scope.spawn(move || drive_device(hub, mode, config, d, launches));
            }
        });
    } else {
        for d in 0..devices {
            drive_device(&hub, mode, config, d, launches);
        }
    }
    hub.quiesce();
    hub.merged_report()
}

/// Full-ring backpressure + pool exhaustion under concurrency, with no
/// background drainer: producers must fall back to draining their own
/// shard (lossless, never dropping) and still match the mutex reference.
#[test]
fn tiny_ring_wraparound_matches_inline_reference() {
    let reference = merged_after(2, 12, SpineMode::Inline, SpineConfig::default(), false);
    for _ in 0..3 {
        let ringed = merged_after(2, 12, SpineMode::Ring, tiny(), true);
        assert_eq!(
            ringed, reference,
            "ring spine under wraparound/backpressure must merge byte-identically"
        );
    }
}

/// Single-threaded producer with nobody draining: every ring-full push
/// takes the producer-side drain fallback. Exact event accounting.
#[test]
fn producer_drain_fallback_is_lossless() {
    let hub = sharded_hub(1);
    drive_device(&hub, SpineMode::Ring, tiny(), 0, 5);
    hub.quiesce();
    let report = hub.merged_report();
    let agg = &report.tools[0];
    assert_eq!(agg.get("launches"), Some(5.0));
    assert_eq!(agg.get("batches"), Some(5.0 * 200.0));
    assert_eq!(agg.get("records"), Some(5.0 * 200.0 * 16.0));
    assert_eq!(agg.get("barriers"), Some(5.0 * 8.0 * 2.0));
}

/// A sink dropped mid-launch (kernel-end never arrives) must surface its
/// buffered events after a quiesce — nothing is stranded in the ring.
#[test]
fn drop_mid_stream_events_surface_after_quiesce() {
    let hub = sharded_hub(1);
    {
        let mut sink = HubSink::with_spine(Arc::clone(&hub), SpineMode::Ring, tiny());
        let ctx = ctx(0, 42);
        sink.on_kernel_begin(&ctx);
        for i in 0..7 {
            sink.on_batch(&ctx, &batch(42, i));
        }
        // Dropped here: partial buffers spill to the ring and it closes.
    }
    hub.quiesce();
    let report = hub.merged_report();
    let agg = &report.tools[0];
    assert_eq!(agg.get("launches"), Some(1.0));
    assert_eq!(agg.get("batches"), Some(7.0), "no event lost at drop");
    // The closed, drained ring is pruned; later harvests see a quiet hub.
    assert_eq!(hub.quiesce(), 0, "nothing left after the first quiesce");
}

/// Background drainers (the `run_parallel` scheduling) racing concurrent
/// producers: merged output still byte-identical to the reference.
#[test]
fn background_drainer_matches_inline_reference() {
    let reference = merged_after(2, 12, SpineMode::Inline, SpineConfig::default(), false);
    let hub = sharded_hub(2);
    let devices = [DeviceId(0), DeviceId(1)];
    let drainer = SpineDrainer::start(Arc::clone(&hub), &devices);
    std::thread::scope(|scope| {
        for d in 0..2 {
            let hub = &hub;
            scope.spawn(move || drive_device(hub, SpineMode::Ring, tiny(), d, 12));
        }
    });
    drainer.stop();
    hub.quiesce();
    assert_eq!(hub.merged_report(), reference);
}

/// Records every event a shard's processor observes, in order.
#[derive(Debug, Default)]
struct CollectingRecorder {
    seen: Arc<Mutex<Vec<Event>>>,
}

impl EventRecorder for CollectingRecorder {
    fn record(&mut self, event: &Event) {
        self.seen.lock().unwrap().push(event.clone());
    }
}

fn recording_hub() -> (SharedHub, Arc<Mutex<Vec<Event>>>) {
    let seen = Arc::new(Mutex::new(Vec::new()));
    let mut p = EventProcessor::new();
    p.tools.register(Box::<FineAggregator>::default());
    p.set_recorder(Box::new(CollectingRecorder {
        seen: Arc::clone(&seen),
    }));
    let hub = Arc::new(Hub::sharded(vec![(DeviceId(0), p)]).unwrap());
    (hub, seen)
}

/// Trace recorders observe the exact same event sequence — each event
/// exactly once, same order — whether the spine is the ring or the mutex.
/// Sequential emission with a shared batch size makes the streams
/// comparable event for event.
#[test]
fn recorder_sees_identical_stream_on_both_spines() {
    let mut streams = Vec::new();
    for mode in [SpineMode::Ring, SpineMode::Inline] {
        let (hub, seen) = recording_hub();
        // Ring uses the default batch_events so flush points line up with
        // the inline reference; slots/pool stay tiny to force wraparound.
        let config = SpineConfig {
            ring_slots: 2,
            pool_buffers: 1,
            ..SpineConfig::default()
        };
        drive_device(&hub, mode, config, 0, 4);
        hub.quiesce();
        let events = seen.lock().unwrap().clone();
        assert!(!events.is_empty());
        streams.push(events);
    }
    assert_eq!(
        streams[0], streams[1],
        "ring spine must deliver the identical event sequence"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random launch/batch/barrier scripts replayed on both spines under
    /// the tiny geometry: merged reports stay byte-identical, so no
    /// interleaving of wraparound, backpressure and flush points can
    /// lose, duplicate or reroute an event.
    #[test]
    fn random_scripts_merge_identically_on_both_spines(
        script in prop::collection::vec(
            (0u32..2, 1u64..12, prop::collection::vec(any::<bool>(), 0..20)),
            1..8,
        )
    ) {
        let mut reports = Vec::new();
        for mode in [SpineMode::Ring, SpineMode::Inline] {
            let hub = sharded_hub(2);
            let config = if mode == SpineMode::Ring { tiny() } else { SpineConfig::default() };
            let mut sink = HubSink::with_spine(Arc::clone(&hub), mode, config);
            for (li, (device, _, ops)) in script.iter().enumerate() {
                let launch = u64::from(*device) * 10_000 + li as u64;
                let c = ctx(*device, launch);
                sink.on_kernel_begin(&c);
                for (i, is_batch) in ops.iter().enumerate() {
                    if *is_batch {
                        sink.on_batch(&c, &batch(launch, i as u64));
                    } else {
                        sink.on_barriers(&c, 1 + i as u64 % 3);
                    }
                }
                // Odd launch counts leave some launches without an end —
                // the drop/rebind path has to account for their events.
                if script[li].1 % 2 == 0 {
                    sink.on_kernel_end(&c, &KernelTraceSummary::default());
                }
            }
            drop(sink);
            hub.quiesce();
            reports.push(hub.merged_report());
        }
        prop_assert_eq!(&reports[0], &reports[1]);
    }
}

fn parallel_session(mode: SpineMode) -> PastaSession {
    Pasta::builder()
        .a100_x2()
        .tool(LaunchCounter::default())
        .spine_mode(mode)
        .build()
        .expect("session builds")
}

fn run_lanes(session: &mut PastaSession) -> MergedReport {
    let devices = [DeviceId(0), DeviceId(1)];
    session
        .run_parallel_each(&devices, |i, lane| {
            let s = &mut lane.session;
            let t = s.alloc_tensor(&[1 << 16], pasta::dl::dtype::DType::F32)?;
            for _ in 0..(2 + i) {
                let desc = KernelDesc::new("spine_lane", Dim3::linear(8), Dim3::linear(64))
                    .arg(t.ptr, t.bytes)
                    .body(KernelBody::streaming(t.bytes / 2, t.bytes / 2));
                s.launch(desc)?;
            }
            s.free_tensor(&t);
            Ok(())
        })
        .expect("parallel run succeeds");
    session.merged_report()
}

/// The tentpole oracle: `run_parallel` merged reports over the ring spine
/// are byte-identical to the mutex-spine reference.
#[test]
fn run_parallel_ring_spine_matches_mutex_reference() {
    let reference = run_lanes(&mut parallel_session(SpineMode::Inline));
    let ringed = run_lanes(&mut parallel_session(SpineMode::Ring));
    assert_eq!(ringed, reference);
}
