//! Scale-out executor suite (ISSUE 9).
//!
//! Three properties of the bounded executor must hold at any scale:
//!
//! * **Tree merges are byte-identical to linear folds.** The session-end
//!   merge of shards, UVM managers, and hotness trackers was rewritten as
//!   a pairwise tree reduction; the proptests here pit `tree_reduce`
//!   against `linear_reduce` over 2–64 shards and 1–8 worker threads.
//! * **Lane concurrency is bounded by the pool, not the device count.**
//!   A 256-device run must complete with at most `max_lane_threads` lane
//!   workers live at any instant — pinned on the *per-session*
//!   `PastaSession::pool_high_water` (ISSUE 10), which other sessions'
//!   pools cannot contaminate, so the pins hold at any test parallelism —
//!   with the MoE expert-parallel workload driving real all-to-all
//!   traffic.
//! * **Fault containment survives the pool.** A panicking lane runs on a
//!   *pooled* worker now, so the salvage path — and the `lane-dev{N}`
//!   thread name the panic hook observes — is pinned here.
//!
//! CI runs this suite `--test-threads=1` for the panic-hook test, which
//! must not interleave with other tests' lanes; the high-water pins no
//! longer need the serialization.

use std::sync::Mutex;

use pasta::core::merge::{linear_reduce, tree_reduce};
use pasta::core::tool::LaunchCounter;
use pasta::core::{LaneFailure, Pasta, PastaError, PastaSession};
use pasta::dl::parallel::{self, MoeConfig, Parallelism};
use pasta::prelude::*;
use pasta::uvm::{BlockHotness, UvmStats};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Tree reduction vs. linear fold: the byte-identity oracle.
// ---------------------------------------------------------------------------

/// Builds a fully-populated `UvmStats` from four random words so every
/// field participates in the merge (merge is per-field saturating-free
/// addition; any dropped or double-counted field shows up immediately).
fn stats_from(seed: (u64, u64, u64, u64)) -> UvmStats {
    let (a, b, c, d) = seed;
    UvmStats {
        fault_groups: a,
        demand_pages_in: b,
        prefetch_pages_in: c,
        pages_evicted: d,
        fault_stall_ns: a ^ b,
        prefetch_stall_ns: b.wrapping_mul(3),
        evict_stall_ns: c | d,
        prefetch_noops: a % 7,
        peer_pages_in: d / 2,
        peer_stall_ns: c % 11,
        duplicates_invalidated: a & d,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `tree_reduce` over UVM statistics equals the sequential fold for
    /// every shard count in 2..=64 and every pool width in 1..=8 — the
    /// shard-merge half of the ISSUE 9 byte-identity gate.
    #[test]
    fn uvm_stats_tree_merge_matches_linear_fold(
        raw in prop::collection::vec(
            (0u64..1_000_000, 0u64..1_000_000, 0u64..1_000_000, 0u64..1_000_000),
            2..65,
        ),
        threads in 1usize..9,
    ) {
        let items: Vec<UvmStats> = raw.iter().copied().map(stats_from).collect();
        let linear = linear_reduce(items.clone(), |acc: &mut UvmStats, next| {
            acc.merge_from(&next);
        })
        .expect("non-empty");
        let tree = tree_reduce(items, threads, |acc: &mut UvmStats, next| {
            acc.merge_from(&next);
        })
        .expect("non-empty");
        prop_assert_eq!(linear, tree);
    }

    /// Hotness trackers merge through `append_from` (log replay), which
    /// is associative over adjacent lanes: reducing the recording forks
    /// as a tree and replaying the combined log into a fresh parent must
    /// reproduce the lane-at-a-time linear append exactly, bin for bin.
    #[test]
    fn hotness_tree_append_matches_linear_append(
        records in prop::collection::vec((0u64..1_000_000, 1u64..5000, 1u64..64), 8..64),
        lanes in 2usize..9,
        threads in 1usize..9,
    ) {
        let parent = BlockHotness::new(4);
        let make_forks = || -> Vec<BlockHotness> {
            let mut forks: Vec<BlockHotness> =
                (0..lanes).map(|_| parent.fork_recording()).collect();
            for (i, &(base, len, n)) in records.iter().enumerate() {
                forks[i % lanes].record(base, len, n);
            }
            forks
        };

        let mut linear = parent.fork();
        for fork in &make_forks() {
            linear.append_from(fork);
        }

        let combined = tree_reduce(make_forks(), threads, |acc: &mut BlockHotness, next| {
            acc.append_from(&next);
        })
        .expect("non-empty");
        let mut tree = parent.fork();
        tree.append_from(&combined);

        prop_assert_eq!(linear.series(), tree.series());
    }
}

// ---------------------------------------------------------------------------
// Bounded pool at 256 devices.
// ---------------------------------------------------------------------------

fn devices(n: u32) -> Vec<DeviceId> {
    (0..n).map(DeviceId).collect()
}

fn scale_session(n: usize, cfg: ParallelConfig) -> PastaSession {
    Pasta::builder()
        .devices(vec![DeviceSpec::a100_80gb(); n])
        .tool(LaunchCounter::default())
        .parallel(cfg)
        .build()
        .expect("session builds")
}

/// 256 lanes of per-device kernel work through `run_parallel_each` on a
/// 4-worker pool: no thread-per-device, no per-device drainers — the
/// high-water mark proves at most `max_lane_threads` lanes ran at once,
/// and the merged report still covers all 256 shards.
#[test]
fn run_parallel_each_bounds_workers_at_256_devices() {
    let cfg = ParallelConfig {
        max_lane_threads: 4,
        max_merge_threads: 4,
        max_drain_threads: 2,
    };
    let mut session = scale_session(256, cfg);
    session
        .run_parallel_each(&devices(256), |_i, lane| {
            let s = &mut lane.session;
            let t = s.alloc_tensor(&[4096], pasta::dl::dtype::DType::F32)?;
            s.launch(
                KernelDesc::new("scale_out_probe", Dim3::linear(4), Dim3::linear(128))
                    .arg(t.ptr, t.bytes)
                    .body(KernelBody::streaming(t.bytes, 0)),
            )?;
            s.free_tensor(&t);
            Ok(())
        })
        .expect("256-lane run completes");

    let high = session.pool_high_water();
    assert!(
        (1..=4).contains(&high),
        "pool high water {high} must stay within max_lane_threads = 4"
    );

    let report = session.merged_report();
    assert_eq!(report.per_device.len(), 256, "every shard merged");
    let launches = report
        .tools
        .iter()
        .find(|r| r.tool == "launch-counter")
        .and_then(|r| r.get("launches"))
        .expect("counter merged");
    assert_eq!(launches, 256.0, "one launch per lane survived the merge");
}

/// The ISSUE 9 acceptance workload: a 256-lane expert-parallel MoE
/// iteration through `run_parallel` completes on a bounded pool, with
/// the all-to-all routing visible as device-to-device copies on every
/// lane.
#[test]
fn moe_256_lanes_complete_on_bounded_pool() {
    let cfg = ParallelConfig {
        max_lane_threads: 4,
        max_merge_threads: 4,
        max_drain_threads: 2,
    };
    let mut session = scale_session(256, cfg);
    let moe = MoeConfig::tiny();
    let report = session
        .run_parallel(&devices(256), |lanes| {
            parallel::train_iter_expert_parallel_with(lanes, 1, &moe)
        })
        .expect("256-lane MoE completes");

    let high = session.pool_high_water();
    assert!(
        (1..=4).contains(&high),
        "pool high water {high} must stay within max_lane_threads = 4"
    );
    assert_eq!(report.strategy, Parallelism::Expert);
    assert_eq!(report.launches.len(), 256, "one launch count per lane");
    assert!(report.launches.iter().all(|&n| n > 0));
}

/// Pooled expert-parallel MoE (3 workers multiplexing 8 lanes) is
/// byte-identical to the lane-at-a-time sequential reference — the
/// scheduling-independence gate for the new workload.
#[test]
fn moe_pooled_run_matches_sequential_reference() {
    let moe = MoeConfig::tiny();
    let cfg = |lane_threads| ParallelConfig {
        max_lane_threads: lane_threads,
        ..ParallelConfig::default()
    };

    let mut pooled = scale_session(8, cfg(3));
    pooled
        .run_parallel(&devices(8), |lanes| {
            parallel::train_iter_expert_parallel_with(lanes, 1, &moe).map(|_| ())
        })
        .expect("pooled MoE completes");

    let mut reference = scale_session(8, cfg(1));
    reference
        .run_parallel(&devices(8), |lanes| {
            parallel::train_iter_expert_sequential_reference_with(lanes, 1, &moe).map(|_| ())
        })
        .expect("sequential reference completes");

    assert_eq!(
        pooled.merged_report(),
        reference.merged_report(),
        "pooled MoE diverged from the sequential reference"
    );
}

// ---------------------------------------------------------------------------
// Fault containment on a pooled worker.
// ---------------------------------------------------------------------------

/// Thread name observed by the panic hook for the injected lane panic.
static PANIC_THREAD: Mutex<Option<String>> = Mutex::new(None);

/// Installs a hook that records the panicking thread's name for
/// `fault-injection` payloads (suppressing their backtrace noise) and
/// forwards everything else to the default hook.
fn record_injected_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .map(|s| s.contains("fault-injection"))
                .or_else(|| {
                    info.payload()
                        .downcast_ref::<String>()
                        .map(|s| s.contains("fault-injection"))
                })
                .unwrap_or(false);
            if injected {
                *PANIC_THREAD.lock().unwrap() = std::thread::current().name().map(str::to_owned);
            } else {
                default(info);
            }
        }));
    });
}

/// A lane panicking on a *pooled* worker is still contained at the lane
/// boundary — and the worker carries the `lane-dev{N}` name of the lane
/// it was seeded with, so crash logs attribute the panic to a device.
///
/// `max_lane_threads` is explicit: the auto width on a 1-CPU runner is a
/// single worker, which would run lane 1 on `lane-dev0` after finishing
/// lane 0. Two workers pin the seeded name.
#[test]
fn pooled_lane_panic_is_salvaged_and_names_its_worker() {
    record_injected_panics();
    *PANIC_THREAD.lock().unwrap() = None;

    let cfg = ParallelConfig {
        max_lane_threads: 2,
        ..ParallelConfig::default()
    };
    let mut session = scale_session(2, cfg);
    let err = session
        .run_parallel_each(&devices(2), |_i, lane| {
            if lane.device() == DeviceId(1) {
                panic!("fault-injection: pooled lane 1 dies");
            }
            let s = &mut lane.session;
            let t = s.alloc_tensor(&[1024], pasta::dl::dtype::DType::F32)?;
            s.launch(
                KernelDesc::new("survivor", Dim3::linear(2), Dim3::linear(64))
                    .arg(t.ptr, t.bytes)
                    .body(KernelBody::streaming(t.bytes, 0)),
            )?;
            s.free_tensor(&t);
            Ok(())
        })
        .expect_err("a panicking lane must fail the run");

    let PastaError::Salvaged(salvaged) = &err else {
        panic!("expected PastaError::Salvaged, got {err:?}");
    };
    assert_eq!(
        salvaged.failures,
        vec![LaneFailure {
            device: Some(DeviceId(1)),
            payload: "fault-injection: pooled lane 1 dies".into(),
        }]
    );
    assert_eq!(
        PANIC_THREAD.lock().unwrap().as_deref(),
        Some("lane-dev1"),
        "the pooled worker seeded with lane 1 carries its name"
    );
    // The survivor's work still merged.
    let launches = salvaged
        .report
        .tools
        .iter()
        .find(|r| r.tool == "launch-counter")
        .and_then(|r| r.get("launches"))
        .expect("survivor merged");
    assert_eq!(launches, 1.0);
}

// ---------------------------------------------------------------------------
// SpineConfig through the builder.
// ---------------------------------------------------------------------------

/// `SpineConfig` is now a first-class builder knob: degenerate capacities
/// are rejected at `build()` with a typed error, and a minimal legal
/// config still produces a working session.
#[test]
fn builder_validates_spine_config() {
    let err = Pasta::builder()
        .a100()
        .spine_config(SpineConfig {
            ring_slots: 1,
            ..SpineConfig::default()
        })
        .build()
        .expect_err("1-slot ring must be rejected");
    assert!(matches!(err, PastaError::Config(_)), "{err:?}");
    assert!(err.to_string().contains("ring_slots"), "{err}");

    let err = Pasta::builder()
        .a100()
        .spine_config(SpineConfig {
            batch_events: 0,
            ..SpineConfig::default()
        })
        .build()
        .expect_err("0-event batches must be rejected");
    assert!(err.to_string().contains("batch_events"), "{err}");

    // The minimal legal spine (2 slots, 1-event batches) still drains.
    let mut session = Pasta::builder()
        .a100_x2()
        .tool(LaunchCounter::default())
        .spine_config(SpineConfig {
            ring_slots: 2,
            pool_buffers: 1,
            batch_events: 1,
        })
        .build()
        .expect("minimal spine builds");
    session
        .run_parallel_each(&devices(2), |_i, lane| {
            let s = &mut lane.session;
            let t = s.alloc_tensor(&[1024], pasta::dl::dtype::DType::F32)?;
            s.launch(
                KernelDesc::new("tiny_spine", Dim3::linear(2), Dim3::linear(64))
                    .arg(t.ptr, t.bytes)
                    .body(KernelBody::streaming(t.bytes, 0)),
            )?;
            s.free_tensor(&t);
            Ok(())
        })
        .expect("minimal spine run completes");
    let launches = session
        .merged_report()
        .tools
        .iter()
        .find(|r| r.tool == "launch-counter")
        .and_then(|r| r.get("launches"))
        .expect("counter merged");
    assert_eq!(launches, 2.0);
}
