//! Zero-cost gating regression for trace capture (ISSUE 6, satellite 4).
//!
//! With no [`TraceWriter`] attached, the event hot path must pay exactly
//! one `Option` check for tracing: no allocation, no buffering, no
//! side table. A counting global allocator pins that — the fine-grained
//! drain over a recorder-free processor performs **zero** heap
//! allocations, attaching a recorder makes the very same drain allocate,
//! and detaching restores zero. The throughput side of the same gate is
//! `BENCH_event_path.json`, which must stay within noise of its baseline.
//!
//! Everything lives in one `#[test]` because the allocation counter is
//! process-global: parallel test threads would attribute each other's
//! allocations to the wrong phase.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use pasta::core::{Event, EventClass, EventProcessor, EventRecorder};
use pasta::sim::LaunchId;

struct CountingAlloc {
    allocs: AtomicU64,
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        self.allocs.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        self.allocs.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc {
    allocs: AtomicU64::new(0),
};

fn allocs() -> u64 {
    GLOBAL.allocs.load(Ordering::Relaxed)
}

/// A recorder that buffers events the simplest possible way — enough to
/// prove the gated branch really runs (and allocates) when attached.
#[derive(Debug)]
struct VecRecorder(Vec<Event>);

impl EventRecorder for VecRecorder {
    fn record(&mut self, event: &Event) {
        self.0.push(event.clone());
    }
}

#[test]
fn untraced_event_path_performs_zero_allocations() {
    // Pre-build everything the drain will touch; allocations from setup
    // must not be charged to the hot path.
    let events: Vec<Event> = (0..256)
        .map(|i| Event::Barrier {
            launch: LaunchId(i % 4),
            count: i,
            cluster: false,
        })
        .collect();
    let mut processor = EventProcessor::new();
    assert!(!processor.has_recorder());

    // Phase 1: no recorder attached — the trace gate is one Option check.
    let before = allocs();
    processor.process_class_batch(EventClass::DeviceControl, &events);
    assert_eq!(
        allocs() - before,
        0,
        "the untraced fine-grained drain must not allocate"
    );
    assert_eq!(processor.events_processed(), events.len() as u64);

    // Phase 2: recorder attached — the same drain now buffers, which is
    // observable as allocation. This proves phase 1 exercised a branch
    // that *would* have cost something, not a dead path.
    processor.set_recorder(Box::new(VecRecorder(Vec::new())));
    let before = allocs();
    processor.process_class_batch(EventClass::DeviceControl, &events);
    assert!(
        allocs() - before > 0,
        "an attached recorder buffers the stream"
    );

    // Phase 3: detached again — back to zero.
    let recorder = processor.take_recorder().expect("recorder was attached");
    drop(recorder);
    let before = allocs();
    processor.process_class_batch(EventClass::DeviceControl, &events);
    assert_eq!(
        allocs() - before,
        0,
        "detaching the recorder restores the allocation-free drain"
    );
    assert_eq!(processor.events_processed(), 3 * events.len() as u64);
}
