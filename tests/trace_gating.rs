//! Zero-cost gating regression for trace capture (ISSUE 6, satellite 4).
//!
//! With no [`TraceWriter`] attached, the event hot path must pay exactly
//! one `Option` check for tracing: no allocation, no buffering, no
//! side table. A counting global allocator pins that — the fine-grained
//! drain over a recorder-free processor performs **zero** heap
//! allocations, attaching a recorder makes the very same drain allocate,
//! and detaching restores zero. The throughput side of the same gate is
//! `BENCH_event_path.json`, which must stay within noise of its baseline.
//!
//! Everything lives in one `#[test]` because the allocation counter is
//! process-global: parallel test threads would attribute each other's
//! allocations to the wrong phase.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use pasta::core::hub::{Hub, HubSink};
use pasta::core::spine::{SpineConfig, SpineMode};
use pasta::core::tool::{Interest, Tool};
use pasta::core::{Event, EventClass, EventProcessor, EventRecorder};
use pasta::sim::instrument::{DeviceTraceSink, TraceCtx};
use pasta::sim::{
    AccessBatch, AccessKind, AccessPattern, DeviceId, Dim3, KernelTraceSummary, LaunchId, MemSpace,
};
use std::sync::Arc;

struct CountingAlloc {
    allocs: AtomicU64,
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        self.allocs.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        self.allocs.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc {
    allocs: AtomicU64::new(0),
};

fn allocs() -> u64 {
    GLOBAL.allocs.load(Ordering::Relaxed)
}

/// A recorder that buffers events the simplest possible way — enough to
/// prove the gated branch really runs (and allocates) when attached.
#[derive(Debug)]
struct VecRecorder(Vec<Event>);

impl EventRecorder for VecRecorder {
    fn record(&mut self, event: &Event) {
        self.0.push(event.clone());
    }
}

#[test]
fn untraced_event_path_performs_zero_allocations() {
    // Pre-build everything the drain will touch; allocations from setup
    // must not be charged to the hot path.
    let events: Vec<Event> = (0..256)
        .map(|i| Event::Barrier {
            launch: LaunchId(i % 4),
            count: i,
            cluster: false,
        })
        .collect();
    let mut processor = EventProcessor::new();
    assert!(!processor.has_recorder());

    // Phase 1: no recorder attached — the trace gate is one Option check.
    let before = allocs();
    processor.process_class_batch(EventClass::DeviceControl, &events);
    assert_eq!(
        allocs() - before,
        0,
        "the untraced fine-grained drain must not allocate"
    );
    assert_eq!(processor.events_processed(), events.len() as u64);

    // Phase 2: recorder attached — the same drain now buffers, which is
    // observable as allocation. This proves phase 1 exercised a branch
    // that *would* have cost something, not a dead path.
    processor.set_recorder(Box::new(VecRecorder(Vec::new())));
    let before = allocs();
    processor.process_class_batch(EventClass::DeviceControl, &events);
    assert!(
        allocs() - before > 0,
        "an attached recorder buffers the stream"
    );

    // Phase 3: detached again — back to zero.
    let recorder = processor.take_recorder().expect("recorder was attached");
    drop(recorder);
    let before = allocs();
    processor.process_class_batch(EventClass::DeviceControl, &events);
    assert_eq!(
        allocs() - before,
        0,
        "detaching the recorder restores the allocation-free drain"
    );
    assert_eq!(processor.events_processed(), 3 * events.len() as u64);

    // Phase 4 (ISSUE 8): the ring spine in steady state. After warmup —
    // ring registered, batch-buffer pool primed, kernel name interned —
    // whole launches through the SPSC path (emit, spill, push, the
    // producer-side backpressure drain, buffer recycle) must not allocate
    // either: every buffer the cycle touches is preallocated and comes
    // back through the free ring.
    let mut p = EventProcessor::new();
    p.tools.register(Box::<FlatCounter>::default());
    let hub = Arc::new(Hub::sharded(vec![(DeviceId(0), p)]).unwrap());
    let mut sink = HubSink::with_spine(
        Arc::clone(&hub),
        SpineMode::Ring,
        SpineConfig {
            ring_slots: 4,
            pool_buffers: 2,
            batch_events: 64,
        },
    );
    let ctx = TraceCtx {
        launch: LaunchId(1),
        device: DeviceId(0),
        stream: 0,
        name: "ring_kernel".into(),
        grid: Dim3::linear(8),
        block: Dim3::linear(64),
    };
    let access = AccessBatch {
        launch: LaunchId(1),
        spec_index: 0,
        base: 0x1000,
        len: 4096,
        records: 16,
        bytes: 4096,
        elem_size: 4,
        kind: AccessKind::Load,
        space: MemSpace::Global,
        pattern: AccessPattern::Sequential,
    };
    let launch = |sink: &mut HubSink| {
        sink.on_kernel_begin(&ctx);
        for _ in 0..32 {
            sink.on_batch(&ctx, &access);
            sink.on_barriers(&ctx, 2);
        }
        sink.on_kernel_end(&ctx, &KernelTraceSummary::default());
    };
    for _ in 0..3 {
        launch(&mut sink); // warmup: allocate the ring, pool, symbol
    }
    let before = allocs();
    for _ in 0..4 {
        launch(&mut sink);
    }
    assert_eq!(
        allocs() - before,
        0,
        "the untraced ring-spine steady state must not allocate"
    );
    hub.quiesce();
    let n = hub
        .primary()
        .tools
        .with_tool_mut("flat-counter", |t: &mut FlatCounter| t.seen)
        .unwrap();
    assert_eq!(n, 7 * (1 + 64 + 1), "every warmup+measured event arrived");
}

/// Counts events without touching the heap — safe inside the measured
/// allocation window.
#[derive(Debug, Default)]
struct FlatCounter {
    seen: u64,
}

impl Tool for FlatCounter {
    fn name(&self) -> &str {
        "flat-counter"
    }
    fn interest(&self) -> Interest {
        Interest::all()
    }
    fn on_event(&mut self, _event: &Event) {
        self.seen += 1;
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}
