//! Concurrent-emission stress tests for the sharded hub (ISSUE 3).
//!
//! Loom-free by construction: correctness never depends on the
//! interleaving, because threads emitting for different devices touch
//! disjoint shards. The tests hammer the hub from several OS threads and
//! assert that the *merged* report is byte-identical to a sequential
//! reference run — the determinism the merge stage (launch order within a
//! device, ascending device id across devices) guarantees.

use pasta::core::hub::{Hub, HubSink, SharedHub};
use pasta::core::processor::EventProcessor;
use pasta::core::report::MergedReport;
use pasta::core::tool::{Interest, Tool};
use pasta::core::Event;
use pasta::sim::instrument::{DeviceTraceSink, TraceCtx};
use pasta::sim::{
    AccessBatch, AccessKind, AccessPattern, DeviceId, Dim3, KernelTraceSummary, LaunchId, MemSpace,
};
use std::sync::Arc;

/// A forkable tool aggregating everything the fine path delivers.
#[derive(Debug, Default)]
struct FineAggregator {
    batches: u64,
    records: u64,
    barriers: u64,
    launches: u64,
}

impl Tool for FineAggregator {
    fn name(&self) -> &str {
        "fine-aggregator"
    }
    fn interest(&self) -> Interest {
        Interest::all()
    }
    fn on_event(&mut self, event: &Event) {
        match event {
            Event::GlobalAccess { batch, .. } | Event::SharedAccess { batch, .. } => {
                self.batches += 1;
                self.records += batch.records;
            }
            Event::Barrier { count, .. } => self.barriers += count,
            Event::KernelLaunchBegin { .. } => self.launches += 1,
            _ => {}
        }
    }
    fn report(&self) -> pasta::core::ToolReport {
        pasta::core::ToolReport::new(self.name())
            .metric("batches", self.batches as f64)
            .metric("records", self.records as f64)
            .metric("barriers", self.barriers as f64)
            .metric("launches", self.launches as f64)
    }
    fn fork(&self) -> Option<Box<dyn Tool>> {
        Some(Box::<FineAggregator>::default())
    }
    fn merge(&mut self, other: &dyn Tool) {
        let other = other.as_any().downcast_ref::<FineAggregator>().unwrap();
        self.batches += other.batches;
        self.records += other.records;
        self.barriers += other.barriers;
        self.launches += other.launches;
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

fn sharded_hub(devices: u32) -> SharedHub {
    let mut primary = EventProcessor::new();
    primary.tools.register(Box::<FineAggregator>::default());
    let shards: Vec<(DeviceId, EventProcessor)> = (0..devices)
        .map(|d| {
            let p = if d == 0 {
                let mut p = EventProcessor::new();
                p.tools.register(Box::<FineAggregator>::default());
                p
            } else {
                primary.fork().expect("FineAggregator forks")
            };
            (DeviceId(d), p)
        })
        .collect();
    Arc::new(Hub::sharded(shards).unwrap())
}

fn ctx(device: u32, launch: u64) -> TraceCtx {
    TraceCtx {
        launch: LaunchId(launch),
        device: DeviceId(device),
        stream: 0,
        name: "stress_kernel".into(),
        grid: Dim3::linear(32),
        block: Dim3::linear(128),
    }
}

fn batch(launch: u64, i: u64) -> AccessBatch {
    AccessBatch {
        launch: LaunchId(launch),
        spec_index: 0,
        base: 0x1000 + i * 4096,
        len: 4096,
        records: 32,
        bytes: 4096,
        elem_size: 4,
        kind: AccessKind::Load,
        space: if i.is_multiple_of(3) {
            MemSpace::Shared
        } else {
            MemSpace::Global
        },
        pattern: AccessPattern::Sequential,
    }
}

/// One device's deterministic fine-grained stream: `launches` kernels of
/// interleaved batches and barriers through a sink bound to that device.
fn drive_device(hub: &SharedHub, device: u32, launches: u64) {
    let mut sink = HubSink::new(Arc::clone(hub));
    for l in 0..launches {
        // Distinct launch-id spaces per device, as per-lane engines have.
        let launch = u64::from(device) * 10_000 + l;
        let ctx = ctx(device, launch);
        sink.on_kernel_begin(&ctx);
        for i in 0..300 {
            sink.on_batch(&ctx, &batch(launch, i));
            if i % 50 == 0 {
                sink.on_barriers(&ctx, 4);
            }
        }
        sink.on_kernel_end(&ctx, &KernelTraceSummary::default());
    }
}

fn merged_after(devices: u32, launches: u64, concurrent: bool) -> MergedReport {
    let hub = sharded_hub(devices);
    if concurrent {
        std::thread::scope(|scope| {
            for d in 0..devices {
                let hub = &hub;
                scope.spawn(move || drive_device(hub, d, launches));
            }
        });
    } else {
        for d in 0..devices {
            drive_device(&hub, d, launches);
        }
    }
    hub.merged_report()
}

#[test]
fn concurrent_emission_matches_sequential_reference() {
    let sequential = merged_after(2, 20, false);
    let concurrent = merged_after(2, 20, true);
    assert_eq!(
        concurrent, sequential,
        "merged report must not depend on thread interleaving"
    );
    // Sanity: the streams really flowed.
    let agg = &sequential.tools[0];
    assert_eq!(agg.get("launches"), Some(40.0));
    assert_eq!(agg.get("batches"), Some(2.0 * 20.0 * 300.0));
}

#[test]
fn four_threads_interleaving_stays_deterministic() {
    let reference = merged_after(4, 8, false);
    for _ in 0..3 {
        assert_eq!(merged_after(4, 8, true), reference);
    }
}

#[test]
fn per_shard_breakdown_is_disjoint_under_concurrency() {
    let merged = merged_after(3, 10, true);
    assert_eq!(merged.per_device.len(), 3);
    for (device, reports) in &merged.per_device {
        assert_eq!(
            reports[0].get("launches"),
            Some(10.0),
            "{device} got exactly its own launches"
        );
    }
    let total: f64 = merged
        .per_device
        .iter()
        .map(|(_, r)| r[0].get("batches").unwrap())
        .sum();
    assert_eq!(Some(total), merged.tools[0].get("batches"));
}
