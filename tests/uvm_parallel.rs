//! UVM under parallel workloads (ISSUE 4).
//!
//! The shard-aware memory subsystem end to end: `run_parallel` lanes
//! carry UVM managers forked from the session's, fault/migration events
//! route to the *faulting* device's shard, and the session-end merge —
//! tools, knobs and UVM statistics alike — is byte-identical between a
//! genuinely concurrent run and the sequential single-device-at-a-time
//! reference.

use pasta::core::{Pasta, UvmSetup};
use pasta::dl::parallel::{self, Parallelism};
use pasta::prelude::*;
use pasta::sim::DeviceId;
use pasta::tools::{
    MemoryCharacteristicsTool, MemoryTimelineTool, UvmActivity, UvmPrefetchAdvisor,
};

fn uvm_session() -> PastaSession {
    Pasta::builder()
        .a100_x2()
        .uvm(UvmSetup::default())
        .tool(UvmPrefetchAdvisor::new())
        .tool(MemoryTimelineTool::new())
        .tool(MemoryCharacteristicsTool::new())
        .build()
        .unwrap()
}

/// Regression (ISSUE 4 satellite): a 2-device run must never credit
/// device 0 with device 1's faults. Only the lane pinned to device 1
/// does managed work; every fault must land in device 1's shard and in
/// device 1's UVM lane statistics.
#[test]
fn faults_never_credit_the_wrong_device() {
    let mut session = uvm_session();
    session
        .run_parallel(&[DeviceId(0), DeviceId(1)], |lanes| {
            std::thread::scope(|scope| {
                for lane in lanes.iter_mut() {
                    if lane.device() != DeviceId(1) {
                        continue; // lane 0 stays idle
                    }
                    scope.spawn(move || {
                        let s = &mut lane.session;
                        let t = s
                            .alloc_tensor(&[1 << 20], pasta::dl::dtype::DType::F32)
                            .unwrap();
                        let desc = KernelDesc::new(
                            "gpu1_only_kernel",
                            Dim3::linear(64),
                            Dim3::linear(128),
                        )
                        .arg(t.ptr, t.bytes)
                        .body(KernelBody::streaming(t.bytes / 2, t.bytes / 2));
                        let rec = s.launch(desc).unwrap();
                        assert!(rec.uvm_faults > 0, "managed tensor faults cold");
                        s.free_tensor(&t);
                    });
                }
            });
            Ok(())
        })
        .unwrap();

    // Device 0's shard (the primary) must have seen zero UVM activity.
    let primary = session
        .with_tool_mut("uvm-prefetch-advisor", |t: &mut UvmPrefetchAdvisor| {
            (
                t.uvm_activity_for(DeviceId(0)),
                t.uvm_activity_for(DeviceId(1)),
            )
        })
        .unwrap();
    assert_eq!(
        primary.0,
        UvmActivity::default(),
        "device 0 credited with faults it never serviced"
    );
    assert_eq!(
        primary.1,
        UvmActivity::default(),
        "device 1's faults leaked into device 0's shard"
    );

    // The merged view attributes everything to device 1.
    let (gpu0, gpu1) = session
        .with_merged_tool("uvm-prefetch-advisor", |t: &UvmPrefetchAdvisor| {
            (
                t.uvm_activity_for(DeviceId(0)),
                t.uvm_activity_for(DeviceId(1)),
            )
        })
        .unwrap();
    assert_eq!(gpu0, UvmActivity::default());
    assert!(gpu1.fault_groups > 0, "device 1's shard holds its faults");
    // The streaming body touches half the 4 MiB tensor cold.
    assert!(gpu1.migrated_bytes >= 2 << 20);

    // And so does the UVM slice of the merged report.
    let uvm = session.uvm_report().unwrap();
    let by_device: std::collections::BTreeMap<_, _> = uvm.per_device.iter().copied().collect();
    assert_eq!(by_device[&DeviceId(0)].fault_groups, 0);
    assert!(by_device[&DeviceId(1)].fault_groups > 0);
    assert_eq!(uvm.stats.fault_groups, by_device[&DeviceId(1)].fault_groups);
}

/// The acceptance gate: `train_iter_{data,tensor}_parallel` with UVM
/// enabled produce merged reports — uvm_advisor, mem_timeline, memchar,
/// knobs, event counts and UVM statistics — byte-identical to the
/// sequential single-device-at-a-time reference run.
#[test]
fn parallel_training_merged_reports_match_sequential_reference() {
    for strategy in [Parallelism::Data, Parallelism::Tensor] {
        let mut concurrent = uvm_session();
        concurrent
            .run_parallel(&[DeviceId(0), DeviceId(1)], |lanes| {
                parallel::train_iter(lanes, strategy, 1).map(|_| ())
            })
            .unwrap();

        let mut sequential = uvm_session();
        sequential
            .run_parallel(&[DeviceId(0), DeviceId(1)], |lanes| {
                parallel::train_iter_sequential_reference(lanes, strategy, 1).map(|_| ())
            })
            .unwrap();

        let a = concurrent.merged_report();
        let b = sequential.merged_report();
        assert_eq!(
            a, b,
            "{strategy:?}: concurrent merged report diverged from the \
             sequential single-device-at-a-time reference"
        );
        assert!(
            a.uvm.as_ref().is_some_and(|u| u.stats.demand_pages_in > 0),
            "{strategy:?}: UVM was live during the run"
        );
        assert_eq!(a.uvm.as_ref().unwrap().per_device.len(), 2);
    }
}

/// Pipeline parallelism is sequenced by its activation handoffs, so its
/// reference is the standard driver: two independent runs must agree to
/// the byte.
#[test]
fn pipeline_parallel_uvm_report_is_reproducible() {
    let run = || {
        let mut session = uvm_session();
        session
            .run_parallel(&[DeviceId(0), DeviceId(1)], |lanes| {
                parallel::train_iter(lanes, Parallelism::Pipeline, 1).map(|_| ())
            })
            .unwrap();
        session.merged_report()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "pipeline UVM run must be deterministic");
    let uvm = a.uvm.expect("uvm attached");
    assert!(uvm.stats.demand_pages_in > 0);
    // Both stages did managed work on their own device.
    for (device, stats) in &uvm.per_device {
        assert!(
            stats.demand_pages_in > 0,
            "{device} ran a pipeline stage over managed memory"
        );
    }
}
