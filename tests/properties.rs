//! Property-based tests on the core data structures and invariants.

use pasta::dl::alloc::{AllocatorConfig, CachingAllocator};
use pasta::sim::{AccessKind, DeviceId, DeviceRuntime, DeviceSpec, ResidencyModel};
use pasta::uvm::{page_range, PrefetchPlan, Range, UvmConfig, UvmManager, PAGE_SIZE};
use proptest::prelude::*;
use vendor_nv::CudaContext;

/// Brute-force distinct-byte count for interval lists (oracle for
/// `merged_extent`).
fn brute_force_extent(ranges: &[(u64, u64)]) -> u64 {
    use std::collections::BTreeSet;
    let mut bytes = BTreeSet::new();
    for &(base, len) in ranges {
        for b in base..base + len {
            bytes.insert(b);
        }
    }
    bytes.len() as u64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merged_extent_matches_brute_force(
        ranges in prop::collection::vec((0u64..500, 0u64..50), 0..12)
    ) {
        let merged = pasta::tools::util::merged_extent(ranges.clone());
        prop_assert_eq!(merged, brute_force_extent(&ranges));
    }

    #[test]
    fn page_range_covers_exactly_the_touched_pages(
        base in 0u64..(1 << 30),
        len in 1u64..(8 << 20)
    ) {
        let r = page_range(base, len);
        // Every byte of the range lies in a covered page.
        prop_assert!(r.first * PAGE_SIZE <= base);
        prop_assert!((base + len - 1) / PAGE_SIZE < r.end);
        // No page is superfluous.
        prop_assert!(base < (r.first + 1) * PAGE_SIZE);
        prop_assert!(base + len > (r.end - 1) * PAGE_SIZE);
    }

    #[test]
    fn allocator_alloc_free_sequences_preserve_invariants(
        ops in prop::collection::vec((any::<bool>(), 1u64..(4 << 20)), 1..40)
    ) {
        let mut rt = CudaContext::new(vec![DeviceSpec::a100_80gb()]);
        let mut alloc = CachingAllocator::new(AllocatorConfig::default());
        let mut live: Vec<(pasta::sim::DevicePtr, u64)> = Vec::new();
        let mut expected_allocated = 0u64;
        for (is_alloc, size) in ops {
            if is_alloc || live.is_empty() {
                let (ptr, rounded) = alloc.alloc(&mut rt, size).unwrap();
                // No overlap with any live block.
                for &(p, r) in &live {
                    let disjoint = ptr.addr() + rounded <= p.addr()
                        || p.addr() + r <= ptr.addr();
                    prop_assert!(disjoint, "blocks overlap");
                }
                live.push((ptr, rounded));
                expected_allocated += rounded;
            } else {
                let (ptr, rounded) = live.swap_remove(size as usize % live.len());
                let freed = alloc.free(ptr);
                prop_assert_eq!(freed, rounded);
                expected_allocated -= rounded;
            }
            let stats = alloc.stats();
            prop_assert_eq!(stats.allocated, expected_allocated);
            prop_assert!(stats.reserved >= stats.allocated);
            prop_assert!(stats.peak_allocated >= stats.allocated);
        }
        // Free everything: allocated returns to zero, reserved stays cached.
        for (ptr, _) in live {
            alloc.free(ptr);
        }
        prop_assert_eq!(alloc.stats().allocated, 0);
        // Releasing cached segments returns every reserved byte.
        alloc.release_cached_segments(&mut rt);
        prop_assert_eq!(alloc.stats().reserved, 0);
    }

    #[test]
    fn uvm_residency_never_exceeds_budget(
        budget_pages in 4u64..64,
        accesses in prop::collection::vec((0u64..(64 << 20), 1u64..(8 << 20)), 1..25)
    ) {
        let base = 0x4000_0000_0000u64;
        let budget = budget_pages * PAGE_SIZE;
        let mut uvm = UvmManager::new(UvmConfig::default());
        uvm.add_device(budget, 24.0, 25_000);
        uvm.register(base, 64 << 20);
        for (off, len) in accesses {
            uvm.on_kernel_access(DeviceId(0), base + off, len, len, AccessKind::Load);
            prop_assert!(
                uvm.resident_bytes(DeviceId(0)) <= budget,
                "resident {} exceeds budget {}",
                uvm.resident_bytes(DeviceId(0)),
                budget
            );
        }
    }

    #[test]
    fn uvm_warm_reaccess_of_small_ranges_is_free(
        off in 0u64..(1 << 20),
        len in 1u64..(1 << 20)
    ) {
        let base = 0x4000_0000_0000u64;
        let mut uvm = UvmManager::new(UvmConfig::default());
        uvm.add_device(1 << 30, 24.0, 25_000); // plenty of room
        uvm.register(base, 4 << 20);
        uvm.on_kernel_access(DeviceId(0), base + off, len, len, AccessKind::Load);
        let again = uvm.on_kernel_access(DeviceId(0), base + off, len, len, AccessKind::Load);
        prop_assert_eq!(again.faults, 0, "resident pages never refault");
        prop_assert_eq!(again.extra_device_ns, 0);
    }

    #[test]
    fn prefetch_plan_total_bytes_is_sum_of_ranges(
        entries in prop::collection::vec((0usize..20, 0u64..(1 << 20), 1u64..(1 << 16)), 0..30)
    ) {
        let mut plan = PrefetchPlan::default();
        let mut expected = 0u64;
        let mut seen: Vec<(usize, Range)> = Vec::new();
        for (idx, base, len) in entries {
            let r = Range::new(base, len);
            if !seen.contains(&(idx, r)) {
                expected += len;
                seen.push((idx, r));
            }
            plan.add(idx, r);
        }
        prop_assert_eq!(plan.total_bytes(), expected);
    }

    #[test]
    fn device_allocator_find_containing_is_consistent(
        sizes in prop::collection::vec(1u64..(1 << 16), 1..20)
    ) {
        let mut rt = CudaContext::new(vec![DeviceSpec::rtx_3060()]);
        let mut ptrs = Vec::new();
        for size in &sizes {
            ptrs.push((rt.malloc(*size).unwrap(), *size));
        }
        let engine = rt.engine();
        for (ptr, size) in &ptrs {
            let found = engine
                .find_allocation(DeviceId(0), ptr.addr())
                .expect("base address resolves");
            prop_assert_eq!(found.addr, ptr.addr());
            let last = engine
                .find_allocation(DeviceId(0), ptr.addr() + size - 1)
                .expect("last byte resolves");
            prop_assert_eq!(last.addr, ptr.addr());
        }
    }
}

#[test]
fn simulator_is_deterministic_across_runs() {
    // Two identical profiled runs produce byte-identical counters — the
    // property that makes every experiment in this repo reproducible.
    let run = || {
        let mut session = pasta::core::Pasta::builder()
            .a100()
            .tool(pasta::tools::KernelFrequencyTool::new())
            .tool(pasta::tools::MemoryCharacteristicsTool::new())
            .build()
            .unwrap();
        let r = session
            .run_model_scaled(
                pasta::dl::models::ModelZoo::Bert,
                pasta::dl::models::RunKind::Inference,
                1,
                8,
            )
            .unwrap();
        (
            r.kernel_launches,
            r.records,
            r.profiled_time.as_nanos(),
            r.overhead.total_ns(),
        )
    };
    assert_eq!(run(), run());
}
