//! Integration tests for the `Workload`-trait session API: arbitrary
//! workloads run through the same instrumented pipeline as the zoo
//! models, and the historical model entry points forward losslessly.

use pasta::dl::dtype::DType;
use pasta::prelude::*;

#[test]
fn run_model_forwards_identically_through_run() {
    let build = || {
        Pasta::builder()
            .a100()
            .tool(KernelFrequencyTool::new())
            .build()
            .unwrap()
    };
    let legacy = build()
        .run_model_scaled(ModelZoo::Bert, RunKind::Inference, 1, 8)
        .unwrap();
    let mut workload = ModelWorkload::new(ModelZoo::Bert, RunKind::Inference).batch_divisor(8);
    let via_trait = build().run(&mut workload).unwrap();
    assert_eq!(legacy, via_trait);
    assert_eq!(via_trait.workload, "BERT inference");
}

#[test]
fn kernel_sweep_is_profiled_like_any_model() {
    let mut session = Pasta::builder()
        .rtx_3060()
        .tool(KernelFrequencyTool::new())
        .tool(MemoryCharacteristicsTool::new())
        .build()
        .unwrap();

    // Allocate a buffer first so the sweep kernels have real operands the
    // memory tools can characterize.
    let (ptr, bytes) = session
        .run_custom(|s| {
            let t = s.alloc_tensor(&[1 << 18], DType::F32)?;
            Ok((t.ptr, t.bytes))
        })
        .unwrap();

    let mut sweep = KernelSweepWorkload::new("saxpy-sweep")
        .kernels((0..3).map(|i| {
            KernelDesc::new(
                format!("saxpy_{i}"),
                Dim3::linear(32 << i),
                Dim3::linear(256),
            )
            .arg(ptr, bytes)
            .body(KernelBody::streaming(bytes, bytes))
        }))
        .repeats(2);
    let report = session.run(&mut sweep).unwrap();

    assert_eq!(report.kernel_launches, 6);
    assert!(report.records > 0, "device tools see the raw launches");
    let unique = session
        .with_tool_mut("kernel-frequency", |t: &mut KernelFrequencyTool| {
            t.ranking().len()
        })
        .unwrap();
    assert_eq!(unique, 3, "three distinct kernels in the census");
}

#[test]
fn dyn_workloads_compose_in_one_session() {
    let mut session = Pasta::builder()
        .rtx_3060()
        .tool(KernelFrequencyTool::new())
        .build()
        .unwrap();
    let mut model: Box<dyn Workload> =
        Box::new(ModelWorkload::new(ModelZoo::AlexNet, RunKind::Inference).batch_divisor(16));
    let mut closure: Box<dyn Workload> = Box::new(FnWorkload::new("probe", |cx| {
        let t = cx.alloc_tensor(&[4096], DType::F32)?;
        cx.free_tensor(&t);
        Ok(WorkloadStats::new(0))
    }));
    let mut reports = Vec::new();
    for w in [&mut model, &mut closure] {
        reports.push(session.run(w.as_mut()).unwrap());
    }
    assert!(reports[0].kernel_launches > 0);
    assert_eq!(reports[1].workload, "probe");
}
