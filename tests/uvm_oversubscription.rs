//! Oversubscription conformance (ISSUE 5) — the Fig. 12 regime.
//!
//! The paper's multi-GPU oversubscription analysis shrinks the managed
//! budget below the working set and watches faults and evictions climb.
//! These tests pin the monotonicity that analysis rests on, end to end
//! through `UvmSetup::budget_bytes` and `run_parallel`:
//!
//! * at 100% of the working set the run reports **zero evictions**;
//! * evicted bytes and fault counts are **monotonically non-decreasing**
//!   as the budget shrinks (100% → 75% → 50%);
//! * the same holds per lane on multi-GPU runs, and for peer traffic
//!   when the lanes share a managed range.
//!
//! Run with `--test-threads=1` in CI next to the other UVM suites.

use pasta::core::{Pasta, UvmSetup};
use pasta::prelude::*;
use pasta::sim::{AccessKind, DeviceId, ResidencyModel};
use pasta::uvm::{UvmConfig, UvmManager, UvmStats, PAGE_SIZE};

/// Per-lane working set: 32 MiB, streamed twice in 4 MiB windows.
const WS: u64 = 32 << 20;
const WINDOW: u64 = 4 << 20;

/// Streams the lane's working set twice in windows — pass two rereads
/// the pages pass one faulted in, so any budget below 100% must evict
/// and refault.
fn stream_working_set(lane: &mut pasta::dl::parallel::DeviceLane<'_>) {
    let s = &mut lane.session;
    let t = s
        .alloc_tensor(&[(WS / 4) as usize], pasta::dl::dtype::DType::F32)
        .unwrap();
    assert_eq!(t.bytes, WS);
    for pass in 0..2 {
        for w in 0..WS / WINDOW {
            let desc = KernelDesc::new("oversub_stream", Dim3::linear(64), Dim3::linear(128))
                .arg(t.ptr, t.bytes)
                .body(KernelBody::default().access(
                    pasta::sim::AccessSpec::load(0, WINDOW).with_range(w * WINDOW, WINDOW),
                ));
            let rec = s.launch(desc).unwrap();
            let _ = pass;
            let _ = rec;
        }
    }
    s.free_tensor(&t);
}

/// Runs the 2-device streaming workload with the given managed budget
/// and returns the merged UVM statistics.
fn run_with_budget(budget: u64) -> UvmStats {
    let mut session = Pasta::builder()
        .a100_x2()
        .uvm(UvmSetup {
            budget_bytes: Some(budget),
            ..UvmSetup::default()
        })
        .build()
        .unwrap();
    session
        .run_parallel(&[DeviceId(0), DeviceId(1)], |lanes| {
            std::thread::scope(|scope| {
                for lane in lanes.iter_mut() {
                    scope.spawn(move || stream_working_set(lane));
                }
            });
            Ok(())
        })
        .unwrap();
    session.uvm_report().expect("uvm attached").stats
}

#[test]
fn budget_at_full_working_set_reports_zero_evictions() {
    let s = run_with_budget(WS);
    assert_eq!(s.pages_evicted, 0, "100% budget must never evict");
    assert_eq!(
        s.demand_pages_in,
        2 * WS / PAGE_SIZE,
        "each lane faults its working set exactly once"
    );
    assert_eq!(s.evict_stall_ns, 0);
}

#[test]
fn faults_and_evictions_grow_monotonically_as_budget_shrinks() {
    let full = run_with_budget(WS);
    let three_quarters = run_with_budget(WS * 3 / 4);
    let half = run_with_budget(WS / 2);

    assert_eq!(full.pages_evicted, 0);
    for (tighter, looser, label) in [
        (&three_quarters, &full, "75% vs 100%"),
        (&half, &three_quarters, "50% vs 75%"),
    ] {
        assert!(
            tighter.pages_evicted >= looser.pages_evicted,
            "{label}: evicted pages decreased under a smaller budget \
             ({} < {})",
            tighter.pages_evicted,
            looser.pages_evicted
        );
        assert!(
            tighter.fault_groups >= looser.fault_groups,
            "{label}: fault groups decreased under a smaller budget \
             ({} < {})",
            tighter.fault_groups,
            looser.fault_groups
        );
        assert!(
            tighter.demand_pages_in >= looser.demand_pages_in,
            "{label}: demand pages decreased under a smaller budget"
        );
    }
    // Oversubscription genuinely bites: the 50% run must actually evict
    // and refault, not merely tie.
    assert!(half.pages_evicted > 0, "50% budget must evict");
    assert!(
        half.demand_pages_in > full.demand_pages_in,
        "refaults under pressure"
    );
}

/// The same monotonicity at the manager level across 4 devices — the
/// Fig. 12 sweep shape the example drives — plus peer traffic when the
/// ranges are shared: an oversubscribed non-owner evicts duplicates and
/// re-duplicates them, so peer pages climb as the budget shrinks too.
#[test]
fn four_device_shared_sweep_is_monotone_in_peer_traffic() {
    const BASE: u64 = 0x4000_0000_0000;
    let run = |budget: u64| -> UvmStats {
        let mut m = UvmManager::new(UvmConfig::default());
        for _ in 0..4 {
            m.add_device_p2p(budget, 24.0, 300.0, 25_000);
        }
        m.register(BASE, WS);
        m.register_shared(BASE, WS, DeviceId(0));
        for _pass in 0..2 {
            for w in 0..WS / WINDOW {
                for d in 0..4u32 {
                    m.on_kernel_access(
                        DeviceId(d),
                        BASE + w * WINDOW,
                        WINDOW,
                        WINDOW,
                        AccessKind::Load,
                    );
                }
            }
        }
        m.stats()
    };
    let full = run(WS);
    let three_quarters = run(WS * 3 / 4);
    let half = run(WS / 2);

    assert_eq!(full.pages_evicted, 0, "everything fits at 100%");
    assert_eq!(
        full.peer_pages_in,
        3 * WS / PAGE_SIZE,
        "three non-owners duplicate the set once each"
    );
    for (tighter, looser) in [(&three_quarters, &full), (&half, &three_quarters)] {
        assert!(tighter.pages_evicted >= looser.pages_evicted);
        assert!(tighter.fault_groups >= looser.fault_groups);
        assert!(
            tighter.peer_pages_in >= looser.peer_pages_in,
            "evicted duplicates must re-duplicate over the peer link"
        );
    }
    assert!(half.peer_pages_in > full.peer_pages_in);
    assert!(half.pages_evicted > 0);
}
