//! End-to-end tests of the paper's §III-F features: range-specific
//! analysis via `pasta.start()/stop()`-style annotations and grid-id
//! windows, plus the operator→kernel and transfer tools over real runs.

use pasta::core::{Pasta, RangeFilter};
use pasta::dl::dtype::DType;
use pasta::dl::models::{ModelZoo, RunKind};
use pasta::dl::ops::{self, Act};
use pasta::tools::{MemoryCharacteristicsTool, OpKernelMapTool, TransferTool};

/// The paper's Listing 1: annotate one region and only analyze inside it.
#[test]
fn annotated_region_gates_device_collection() {
    let run = |annotate: bool| {
        let mut session = Pasta::builder()
            .a100()
            .tool(MemoryCharacteristicsTool::new())
            .range(if annotate {
                RangeFilter::annotated_regions()
            } else {
                RangeFilter::all()
            })
            .build()
            .unwrap();
        session
            .run_custom(|s| {
                let x = s.alloc_tensor(&[64, 512], DType::F32)?;
                let w1 = s.alloc_tensor(&[512, 512], DType::F32)?;
                let w2 = s.alloc_tensor(&[512, 512], DType::F32)?;
                // Outside the region: a linear layer.
                let y1 = ops::linear(s, &x, &w1, None, Act::None)?;
                // The targeted region (pasta.start / pasta.stop).
                s.region_start("transformer_layer");
                let y2 = ops::linear(s, &y1, &w2, None, Act::Gelu)?;
                s.region_end("transformer_layer");
                // Outside again.
                let y3 = ops::linear(s, &y2, &w1, None, Act::None)?;
                for t in [&x, &w1, &w2, &y1, &y2, &y3] {
                    s.free_tensor(t);
                }
                s.release_workspaces();
                Ok(())
            })
            .unwrap();
        session.records()
    };
    let all = run(false);
    let gated = run(true);
    assert!(all > 0);
    assert!(
        gated < all && gated > 0,
        "annotation gating must collect a strict, non-empty subset: {gated} vs {all}"
    );
}

#[test]
fn op_kernel_map_exposes_hidden_mapping() {
    let mut session = Pasta::builder()
        .a100()
        .tool(OpKernelMapTool::new())
        .build()
        .unwrap();
    session
        .run_model_scaled(ModelZoo::Bert, RunKind::Inference, 1, 8)
        .unwrap();
    let ranking = session
        .with_tool_mut("op-kernel-map", |t: &mut OpKernelMapTool| t.ranking())
        .unwrap();
    assert!(
        ranking.len() >= 4,
        "several distinct operators: {}",
        ranking.len()
    );
    // aten::linear exists and maps to at least one GEMM kernel.
    let (_, linear) = ranking
        .iter()
        .find(|(op, _)| op == "aten::linear")
        .expect("aten::linear profiled");
    assert!(linear.kernels_per_call() >= 1.0);
    assert!(
        linear.kernel_counts.keys().any(|k| k.contains("sgemm")),
        "linear lowers to GEMMs: {:?}",
        linear.kernel_counts.keys().collect::<Vec<_>>()
    );
    // Attention ops nest multiple kernels per call.
    let (_, attn) = ranking
        .iter()
        .find(|(op, _)| op.contains("attention"))
        .expect("attention op profiled");
    // The QK/PV GEMMs attribute directly to the attention op; its QKV and
    // output projections attribute to the nested aten::linear ops.
    assert!(
        attn.kernels_per_call() >= 2.0,
        "attention runs several kernels per call: {}",
        attn.kernels_per_call()
    );
}

#[test]
fn transfer_tool_sees_explicit_copies_and_uvm_ops() {
    use accel_sim::{CopyDirection, DevicePtr};
    let mut session = Pasta::builder()
        .rtx_3060()
        .tool(TransferTool::new())
        .uvm(pasta::core::UvmSetup::default())
        .build()
        .unwrap();
    session
        .run_custom(|s| {
            let t = s.alloc_tensor(&[1 << 20], DType::F32)?;
            let rt = s.runtime_mut();
            rt.memcpy(
                t.ptr,
                DevicePtr(0x1000),
                4 << 20,
                CopyDirection::HostToDevice,
            )?;
            rt.memcpy(DevicePtr(0x1000), t.ptr, 1024, CopyDirection::DeviceToHost)?;
            rt.mem_prefetch(t.ptr, 4 << 20)?;
            s.free_tensor(&t);
            Ok(())
        })
        .unwrap();
    let stats = session
        .with_tool_mut("transfer-analysis", |t: &mut TransferTool| t.stats())
        .unwrap();
    assert_eq!(stats.h2d.0, 1);
    assert_eq!(stats.h2d.1, 4 << 20);
    assert_eq!(stats.d2h, (1, 1024));
    assert_eq!(
        stats.small_copies, 1,
        "the 1 KiB read-back is latency-bound"
    );
    assert!(stats.batch_ops.0 >= 1, "the UVM prefetch is visible");
}

/// Grid-window + annotation events compose with a real model run.
#[test]
fn grid_window_composes_with_model_runs() {
    let run = |range: RangeFilter| {
        let mut session = Pasta::builder()
            .a100()
            .tool(MemoryCharacteristicsTool::new())
            .range(range)
            .build()
            .unwrap();
        let r = session
            .run_model_scaled(ModelZoo::AlexNet, RunKind::Inference, 1, 16)
            .unwrap();
        (r.records, r.kernel_launches)
    };
    let (all_records, launches) = run(RangeFilter::all());
    // Restrict to the second quarter of launches.
    let (window_records, _) = run(RangeFilter::grid_window(launches / 4, launches / 2));
    assert!(window_records > 0);
    assert!(
        window_records < all_records,
        "{window_records} vs {all_records}"
    );
}
