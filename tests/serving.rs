//! Inference-serving suite (ISSUE 10).
//!
//! Three properties of the continuous-batching scenario must hold:
//!
//! * **Seeded replay is byte-identical.** The same `ServingConfig`
//!   through the same lane assignment produces the same `ServingRun`
//!   *and* the same session `MergedReport` whether the lanes ran on the
//!   bounded pool or one at a time on the calling thread — the serving
//!   extension of the scale-out scheduling-independence gate.
//! * **KV growth prices cold conversations.** With `budget_bytes` below
//!   the weights + live-KV footprint, the run must show demand faults,
//!   evictions *and* peer traffic (evicted shared-weight duplicates
//!   re-travel the peer link) — the serving analogue of the
//!   Fig. 12 oversubscription curves.
//! * **The cache actually churns.** Every retired conversation frees its
//!   managed pages (registration → teardown per request), and the pool
//!   high-water mark stays within the lane-thread budget.
//!
//! CI runs this suite `--test-threads=1` alongside the other lane-pool
//! suites so per-session UVM totals aren't perturbed by sibling tests'
//! allocator pressure on the shared build machine.

use pasta::core::{ParallelConfig, Pasta, PastaSession, UvmSetup};
use pasta::dl::serving::{self, RequestTrace, ServingConfig, ServingRun};
use pasta::prelude::*;
use pasta::tools::ServingReport;

fn session(devices: usize, lane_threads: usize, budget: Option<u64>) -> PastaSession {
    Pasta::builder()
        .devices(vec![DeviceSpec::a100_80gb(); devices])
        .parallel(ParallelConfig {
            max_lane_threads: lane_threads,
            ..ParallelConfig::default()
        })
        .uvm(UvmSetup {
            budget_bytes: budget,
            ..UvmSetup::default()
        })
        .build()
        .expect("session builds")
}

fn devices(n: usize) -> Vec<DeviceId> {
    (0..n as u32).map(DeviceId).collect()
}

fn serve_on(
    devices_n: usize,
    lane_threads: usize,
    budget: Option<u64>,
    pooled: bool,
) -> (ServingRun, PastaSession) {
    let cfg = ServingConfig::tiny();
    let mut s = session(devices_n, lane_threads, budget);
    let run = s
        .run_parallel(&devices(devices_n), |lanes| {
            if pooled {
                serving::serve(lanes, &cfg)
            } else {
                serving::serve_sequential_reference(lanes, &cfg)
            }
        })
        .expect("serving completes");
    (run, s)
}

/// The replay gate: pooled serving (3 workers multiplexing 4 lanes)
/// against the lane-at-a-time reference, under an oversubscribed budget
/// so the comparison covers the eviction and peer paths too. Both the
/// scheduler's own output and the profiling session's merged report must
/// match byte for byte.
#[test]
fn pooled_serving_is_byte_identical_to_sequential_reference() {
    let budget = Some(256 * 1024);
    let (pooled_run, pooled) = serve_on(4, 3, budget, true);
    let (reference_run, reference) = serve_on(4, 1, budget, false);

    assert_eq!(
        pooled_run, reference_run,
        "pooled serving run diverged from the sequential reference"
    );
    assert_eq!(
        pooled.merged_report(),
        reference.merged_report(),
        "pooled merged report diverged from the sequential reference"
    );

    let high = pooled.pool_high_water();
    assert!(
        (1..=3).contains(&high),
        "pool high water {high} must stay within max_lane_threads = 3"
    );
}

/// Re-serving the same config in a fresh session replays byte-for-byte:
/// the trace is a pure function of the seed and the lanes are a pure
/// function of the trace.
#[test]
fn reserving_the_same_seed_replays_byte_identically() {
    let (a, _) = serve_on(2, 2, Some(256 * 1024), true);
    let (b, _) = serve_on(2, 2, Some(256 * 1024), true);
    assert_eq!(a, b, "same seed, same lanes, same run");

    let cfg = ServingConfig::tiny();
    let trace = RequestTrace::generate(&cfg);
    let lane0: Vec<u64> = trace.lane_requests(0, 2).iter().map(|r| r.id).collect();
    assert!(
        lane0.iter().all(|id| id % 2 == 0),
        "lane 0 serves the even ids under 2-lane static assignment"
    );
}

/// The oversubscription gate: with the budget pinned far below the
/// weights + KV footprint, serving must show nonzero demand faults,
/// evictions and peer traffic, and every completed conversation's pages
/// must have been torn down (cache churn, not cache leak).
#[test]
fn kv_growth_oversubscribes_the_budget() {
    let cfg = ServingConfig::tiny();
    // tiny weights ≈ 384 KiB alone exceed a 256 KiB device budget, and
    // each lane's live KV (up to max_batch pages) piles on top.
    let (run, session) = serve_on(4, 3, Some(256 * 1024), true);

    assert_eq!(run.completed(), cfg.requests as u64, "every request served");
    let uvm = session.uvm_report().expect("uvm attached");
    assert!(
        uvm.stats.demand_pages_in > 0,
        "oversubscribed serving must demand-fault"
    );
    assert!(
        uvm.stats.pages_evicted > 0,
        "KV growth past the budget must evict"
    );
    assert!(
        uvm.stats.peer_pages_in > 0,
        "sibling lanes must read-duplicate the shared weights"
    );

    let pages: u64 = run.lanes.iter().map(|l| l.kv_pages_allocated).sum();
    assert!(
        pages >= cfg.requests as u64,
        "every request allocates at least one KV page ({pages} pages for {} requests)",
        cfg.requests
    );
    assert!(
        run.lanes.iter().all(|l| !l.ttft_ns.is_empty()),
        "every lane produced TTFT samples"
    );

    let report = ServingReport::from_run(&run, session.uvm_report().as_ref());
    assert_eq!(report.completed, cfg.requests as u64);
    assert!(report.ttft_p99_ns >= report.ttft_p50_ns, "tails ordered");
    assert!(
        report.pages_evicted > 0,
        "report carries the eviction curve"
    );
    assert!(
        report.ttft_p50_ns.is_some() && report.decode_p99_ns.is_some(),
        "latency columns populated"
    );
}

/// Relieving the budget must shrink the fault/eviction bill — the
/// serving curve bends the same way as the training sweeps in
/// `examples/uvm_oversubscription.rs`.
#[test]
fn bigger_budget_means_less_uvm_traffic() {
    let (_, tight) = serve_on(2, 2, Some(256 * 1024), true);
    let (_, roomy) = serve_on(2, 2, None, true);
    let tight = tight.uvm_report().expect("uvm attached").stats;
    let roomy = roomy.uvm_report().expect("uvm attached").stats;
    assert!(
        roomy.pages_evicted == 0,
        "an unconstrained budget never evicts (got {})",
        roomy.pages_evicted
    );
    assert!(
        tight.demand_pages_in > roomy.demand_pages_in,
        "oversubscription must re-fault evicted pages ({} vs {})",
        tight.demand_pages_in,
        roomy.demand_pages_in
    );
}
