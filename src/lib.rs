//! # PASTA — Program AnalysiS Tool framework for Accelerators
//!
//! This is the facade crate of the PASTA reproduction (CGO 2026,
//! arXiv:2602.22103). It re-exports the whole workspace so downstream users
//! and the examples can depend on a single crate:
//!
//! * [`sim`] — the GPU accelerator simulator substrate ([`accel_sim`]).
//! * [`nv`] — simulated CUDA runtime + Compute Sanitizer + NVBit
//!   ([`vendor_nv`]).
//! * [`amd`] — simulated HIP runtime + ROCProfiler-SDK ([`vendor_amd`]).
//! * [`dl`] — the "tensorlite" deep-learning framework with the six paper
//!   models ([`dl_framework`]).
//! * [`uvm`] — the unified-virtual-memory subsystem ([`uvm_sim`]).
//! * [`core`] — the PASTA framework itself: events, handler, processor,
//!   tool templates ([`pasta_core`]).
//! * [`tools`] — the paper's case-study tools ([`pasta_tools`]).
//!
//! ## Quickstart
//!
//! ```
//! use pasta::core::{Pasta, AnalysisMode};
//! use pasta::tools::KernelFrequencyTool;
//! use pasta::dl::models::{ModelZoo, RunKind};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Profile one inference batch of BERT on a simulated A100.
//! let mut session = Pasta::builder()
//!     .a100()
//!     .tool(KernelFrequencyTool::new())
//!     .analysis_mode(AnalysisMode::GpuResident)
//!     .build()?;
//! let report = session.run_model(ModelZoo::bert(), RunKind::Inference, 1)?;
//! assert!(report.kernel_launches > 0);
//! # Ok(())
//! # }
//! ```

pub use accel_sim as sim;
pub use dl_framework as dl;
pub use pasta_core as core;
pub use pasta_tools as tools;
pub use uvm_sim as uvm;
pub use vendor_amd as amd;
pub use vendor_nv as nv;
