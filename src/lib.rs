//! # PASTA — Program AnalysiS Tool framework for Accelerators
//!
//! This is the facade crate of the PASTA reproduction (CGO 2026,
//! arXiv:2602.22103). It re-exports the whole workspace so downstream users
//! and the examples can depend on a single crate:
//!
//! * [`sim`] — the GPU accelerator simulator substrate ([`accel_sim`]).
//! * [`nv`] — simulated CUDA runtime + Compute Sanitizer + NVBit
//!   ([`vendor_nv`]).
//! * [`amd`] — simulated HIP runtime + ROCProfiler-SDK ([`vendor_amd`]).
//! * [`dl`] — the "tensorlite" deep-learning framework with the six paper
//!   models ([`dl_framework`]).
//! * [`uvm`] — the unified-virtual-memory subsystem ([`uvm_sim`]).
//! * [`core`] — the PASTA framework itself: events, handler, processor,
//!   tool templates, workloads ([`pasta_core`]).
//! * [`tools`] — the paper's case-study tools ([`pasta_tools`]).
//! * [`trace`] — binary trace capture + offline replay ([`pasta_trace`]).
//!
//! ## Quickstart
//!
//! A session profiles anything implementing [`core::Workload`];
//! [`core::ModelWorkload`] covers the paper's model zoo:
//!
//! ```
//! use pasta::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Profile one inference batch of BERT on a simulated A100.
//! let mut session = Pasta::builder()
//!     .a100()
//!     .tool(KernelFrequencyTool::new())
//!     .analysis_mode(AnalysisMode::GpuResident)
//!     .build()?;
//! let mut workload = ModelWorkload::new(ModelZoo::Bert, RunKind::Inference);
//! let report = session.run(&mut workload)?;
//! assert!(report.kernel_launches > 0);
//! # Ok(())
//! # }
//! ```
//!
//! The historical model-only entry point forwards through the same path
//! and produces an identical report:
//!
//! ```
//! use pasta::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut session = Pasta::builder().rtx_3060().build()?;
//! let report = session.run_model_scaled(ModelZoo::Bert, RunKind::Inference, 1, 8)?;
//! assert!(report.workload.contains("BERT"));
//! # Ok(())
//! # }
//! ```

pub use accel_sim as sim;
pub use dl_framework as dl;
pub use pasta_core as core;
pub use pasta_tools as tools;
pub use pasta_trace as trace;
pub use uvm_sim as uvm;
pub use vendor_amd as amd;
pub use vendor_nv as nv;

/// One-stop imports for the common profiling flow.
pub mod prelude {
    pub use crate::core::{
        AnalysisMode, BackendChoice, FnWorkload, Interest, KernelSweepWorkload, Knob,
        ModelWorkload, ParallelConfig, Pasta, PastaBuilder, PastaError, PastaSession, RangeFilter,
        SessionReport, SpineConfig, Tool, ToolReport, UvmSetup, Workload, WorkloadCx,
        WorkloadStats,
    };
    pub use crate::dl::models::{ModelZoo, RunKind};
    pub use crate::sim::{DeviceId, DeviceSpec, Dim3, KernelBody, KernelDesc};
    pub use crate::tools::{
        BarrierStallTool, HotnessTool, KernelFrequencyTool, LaunchCensusTool,
        MemoryCharacteristicsTool, MemoryTimelineTool, OpKernelMapTool, TransferTool,
        UvmPrefetchAdvisor,
    };
    pub use crate::trace::{replay, Trace, TraceError, TraceReader, TraceWriter};
}
