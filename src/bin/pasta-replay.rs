//! `pasta-replay` — capture, inspect, and replay binary PASTA traces.
//!
//! ```text
//! pasta-replay capture <out.pastatrace> [--steps N]
//!     Profile a scaled BERT inference run on the simulated RTX 3060 and
//!     write its normalized event stream as a binary trace.
//!
//! pasta-replay info <trace.pastatrace>
//!     Print the header, per-shard stream sizes and the UVM footer flag
//!     without running any analysis.
//!
//! pasta-replay run <trace.pastatrace> [--suite standard|census|memory|uvm]
//!     Replay the trace through a tool suite and print the merged report.
//!     Analysis happens entirely offline: no simulator, no workload.
//! ```
//!
//! Argument parsing is hand-rolled: the workspace builds offline and the
//! two-flag surface does not justify a dependency.

use std::process::ExitCode;

use pasta::core::{Pasta, ToolCollection};
use pasta::dl::models::{ModelZoo, RunKind};
use pasta::prelude::*;
use pasta::tools::{LaunchCensusTool, MemoryTimelineTool, TransferTool};
use pasta::trace::{replay_decoded, Trace, TraceReader, TraceWriter, FORMAT_VERSION};

const USAGE: &str = "usage:
  pasta-replay capture <out.pastatrace> [--steps N]
  pasta-replay info <trace.pastatrace>
  pasta-replay run <trace.pastatrace> [--suite standard|census|memory|uvm]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("capture") => capture(&args[1..]),
        Some("info") => info(&args[1..]),
        Some("run") => run(&args[1..]),
        Some("--help" | "-h" | "help") => {
            println!("{USAGE}");
            Ok(())
        }
        _ => Err(USAGE.into()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("pasta-replay: {message}");
            ExitCode::FAILURE
        }
    }
}

/// Pulls `--flag value` out of `args`, returning the remaining
/// positionals and the flag's value (if present).
fn split_flag<'a>(
    args: &'a [String],
    flag: &str,
) -> Result<(Vec<&'a str>, Option<&'a str>), String> {
    let mut positional = Vec::new();
    let mut value = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] == flag {
            value = Some(
                args.get(i + 1)
                    .ok_or_else(|| format!("{flag} expects a value"))?
                    .as_str(),
            );
            i += 2;
        } else if let Some(stripped) = args[i].strip_prefix(&format!("{flag}=")) {
            value = Some(stripped);
            i += 1;
        } else if args[i].starts_with("--") {
            return Err(format!("unknown flag {}", args[i]));
        } else {
            positional.push(args[i].as_str());
            i += 1;
        }
    }
    Ok((positional, value))
}

fn standard_suite() -> ToolCollection {
    let mut tools = ToolCollection::new();
    tools.register(Box::new(KernelFrequencyTool::new()));
    tools.register(Box::new(BarrierStallTool::new()));
    tools.register(Box::new(HotnessTool::new(64)));
    tools.register(Box::new(OpKernelMapTool::new()));
    tools.register(Box::new(MemoryCharacteristicsTool::new()));
    tools
}

fn suite(name: &str) -> Result<ToolCollection, String> {
    let mut tools = ToolCollection::new();
    match name {
        "standard" => return Ok(standard_suite()),
        "census" => {
            tools.register(Box::new(LaunchCensusTool::new()));
            tools.register(Box::new(KernelFrequencyTool::new()));
        }
        "memory" => {
            tools.register(Box::new(MemoryCharacteristicsTool::new()));
            tools.register(Box::new(MemoryTimelineTool::new()));
            tools.register(Box::new(TransferTool::new()));
        }
        "uvm" => {
            tools.register(Box::new(UvmPrefetchAdvisor::new()));
            tools.register(Box::new(MemoryTimelineTool::new()));
            tools.register(Box::new(MemoryCharacteristicsTool::new()));
        }
        other => {
            return Err(format!(
                "unknown suite '{other}' (standard|census|memory|uvm)"
            ))
        }
    }
    Ok(tools)
}

fn capture(args: &[String]) -> Result<(), String> {
    let (positional, steps) = split_flag(args, "--steps")?;
    let [out] = positional[..] else {
        return Err(USAGE.into());
    };
    let steps: usize = steps
        .map(|s| s.parse().map_err(|_| format!("bad --steps value '{s}'")))
        .transpose()?
        .unwrap_or(1);

    let mut session = Pasta::builder()
        .rtx_3060()
        .tool(KernelFrequencyTool::new())
        .tool(BarrierStallTool::new())
        .tool(HotnessTool::new(64))
        .tool(OpKernelMapTool::new())
        .tool(MemoryCharacteristicsTool::new())
        .build()
        .map_err(|e| e.to_string())?;
    let writer = TraceWriter::attach(&session);
    session
        .run_model_scaled(ModelZoo::Bert, RunKind::Inference, steps, 8)
        .map_err(|e| e.to_string())?;
    let events = writer.events_captured();
    let trace = writer.finish(&session);
    trace.save(out).map_err(|e| e.to_string())?;
    println!(
        "captured {events} events over {steps} step(s) into {out} ({} bytes, {:.2} bytes/event)",
        trace.len(),
        trace.len() as f64 / events as f64
    );
    Ok(())
}

fn load(path: &str) -> Result<(Trace, usize), String> {
    let trace = Trace::load(path).map_err(|e| format!("{path}: {e}"))?;
    let len = trace.len();
    Ok((trace, len))
}

fn info(args: &[String]) -> Result<(), String> {
    let [path] = args.iter().map(String::as_str).collect::<Vec<_>>()[..] else {
        return Err(USAGE.into());
    };
    let (trace, len) = load(path)?;
    let reader = TraceReader::parse(trace.as_bytes()).map_err(|e| format!("{path}: {e}"))?;
    println!("{path}: pasta trace v{FORMAT_VERSION}, {len} bytes");
    println!(
        "  {} shard(s), {} events, {} interned symbols, uvm footer: {}",
        reader.shards().len(),
        reader.events_total(),
        reader.symbols().len(),
        if reader.uvm().is_some() { "yes" } else { "no" }
    );
    for shard in reader.shards() {
        println!("  {:?}: {} events", shard.device, shard.events.len());
    }
    Ok(())
}

fn run(args: &[String]) -> Result<(), String> {
    let (positional, suite_name) = split_flag(args, "--suite")?;
    let [path] = positional[..] else {
        return Err(USAGE.into());
    };
    let (trace, _) = load(path)?;
    let reader = TraceReader::parse(trace.as_bytes()).map_err(|e| format!("{path}: {e}"))?;
    let mut tools = suite(suite_name.unwrap_or("standard"))?;
    let report = replay_decoded(&reader, &mut tools).map_err(|e| e.to_string())?;
    println!("{report}");
    Ok(())
}
