//! Wall-clock benchmarking shim covering the criterion 0.5 API surface
//! the `pasta-bench` benches use: `criterion_group!`/`criterion_main!`,
//! `Criterion::benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, and `Bencher::iter`.
//!
//! Each benchmark closure runs `sample_size` times and the mean
//! wall-clock time per iteration is printed. There is no statistical
//! analysis, warm-up, or HTML report — just enough to keep `cargo bench`
//! compiling and emitting comparable numbers offline.

use std::fmt::Display;
use std::hint::black_box as hint_black_box;
use std::time::Instant;

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint_black_box(x)
}

/// Identifies one parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", function.into(), parameter))
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Passed to benchmark closures; `iter` times the hot loop.
pub struct Bencher {
    samples: u32,
    total_ns: u128,
    iters: u64,
}

impl Bencher {
    /// Runs `f` repeatedly, accumulating elapsed wall-clock time.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            self.total_ns += t0.elapsed().as_nanos();
            self.iters += 1;
        }
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    sample_size: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many times each closure is sampled.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1) as u32;
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Runs a single named benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(name, self.sample_size, f);
        self
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u32,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u32;
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Benchmarks `f` with an input value under `id`.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (upstream flushes reports here).
    pub fn finish(self) {}
}

fn run_one(label: &str, samples: u32, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        total_ns: 0,
        iters: 0,
    };
    f(&mut b);
    let per_iter = if b.iters > 0 {
        b.total_ns / u128::from(b.iters)
    } else {
        0
    };
    println!("bench {label}: {per_iter} ns/iter ({} iters)", b.iters);
}

/// Declares a group of benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Emits `main` running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_bencher_run_closures() {
        let mut c = Criterion::default().sample_size(3);
        let mut calls = 0u32;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(2);
            g.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &x| {
                b.iter(|| {
                    calls += 1;
                    x * 2
                });
            });
            g.finish();
        }
        assert_eq!(calls, 2);
    }
}
