//! Minimal, deterministic property-testing shim compatible with the
//! subset of proptest 1.x this workspace uses: the `proptest!` macro with
//! an optional `#![proptest_config(...)]` header, integer-range / tuple /
//! `prop::collection::vec` / `any::<T>()` strategies, and the
//! `prop_assert!`/`prop_assert_eq!` macros.
//!
//! Differences from upstream: no shrinking (failing inputs surface via
//! the assertion message), and the RNG is seeded from the test name so
//! every run generates the same cases — in keeping with this repo's
//! simulator-wide determinism.

use std::ops::Range;

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` generated inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// SplitMix64 — tiny, high-quality, deterministic.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds deterministically from a test name.
    pub fn seeded(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(h)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// A value generator. Upstream strategies also shrink; this shim only
/// samples.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);

/// Types with a canonical strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// The canonical strategy for the type.
    type Strategy: Strategy<Value = Self>;

    /// Returns the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Canonical strategy for `T` (upstream `any`).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Strategy behind `any::<bool>()`.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

macro_rules! arbitrary_full_range_int {
    ($($t:ty => $s:ident),*) => {$(
        /// Full-range integer strategy.
        #[derive(Debug, Clone, Copy)]
        pub struct $s;
        impl Strategy for $s {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = $s;
            fn arbitrary() -> $s { $s }
        }
    )*};
}

arbitrary_full_range_int!(u8 => AnyU8, u16 => AnyU16, u32 => AnyU32, u64 => AnyU64, usize => AnyUsize);

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing `Vec`s of `element` with a length in `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.start < self.size.end {
                self.size.start + (rng.next_u64() as usize) % (self.size.end - self.size.start)
            } else {
                self.size.start
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The `prop::` namespace (`prop::collection::vec`, …).
pub mod prop {
    pub use crate::collection;
}

/// Everything a `proptest!` block needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, proptest, Arbitrary, ProptestConfig, Strategy,
    };
}

/// `assert!` that reports the property inputs on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// `assert_eq!` under a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*);
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` looping over generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        cfg = $cfg:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::seeded(stringify!($name));
                for _case in 0..config.cases {
                    $( let $arg = $crate::Strategy::sample(&($strat), &mut rng); )+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::TestRng::seeded("x");
        let mut b = crate::TestRng::seeded("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::seeded("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 10u64..20, flag in any::<bool>()) {
            prop_assert!((10..20).contains(&x));
            let _ = flag;
        }

        #[test]
        fn vec_lengths_respect_bounds(
            v in prop::collection::vec((0u64..5, 0u64..5), 2..6)
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6, "len {}", v.len());
            for (a, b) in v {
                prop_assert!(a < 5 && b < 5);
            }
        }
    }
}
