//! No-op `#[derive(Serialize, Deserialize)]` shim.
//!
//! The workspace derives serde traits for forward compatibility with wire
//! formats, but nothing in-tree serializes yet, so the derives expand to
//! nothing. `attributes(serde)` is declared so field attributes would not
//! break compilation if one ever appears.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
