//! Marker-trait shim for serde.
//!
//! Provides the `Serialize`/`Deserialize` names in both the type and macro
//! namespaces so `use serde::{Deserialize, Serialize};` plus
//! `#[derive(Serialize, Deserialize)]` compile unchanged against the
//! upstream import paths. No serialization machinery exists — nothing in
//! the workspace serializes yet.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
