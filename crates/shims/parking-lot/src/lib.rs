//! `parking_lot` shim: non-poisoning locks over `std::sync`.
//!
//! Matches the parking_lot API the workspace uses — `Mutex::new`,
//! `lock()` returning a guard directly (no `Result`), plus `RwLock` for
//! completeness. Poisoned std locks are recovered transparently, which is
//! exactly parking_lot's observable behaviour of never poisoning.

use std::sync::{MutexGuard as StdMutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Non-poisoning mutual-exclusion lock.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(StdMutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(e.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Non-poisoning reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new rwlock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_lock_and_mutate() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(*m.lock(), vec![1, 2]);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5u32);
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
    }
}
