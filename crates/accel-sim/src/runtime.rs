//! The device-runtime vocabulary shared by vendor facades.
//!
//! [`DeviceRuntime`] is the trait the simulated CUDA and HIP runtimes
//! implement and the DL framework programs against, so the same model code
//! runs unchanged on NVIDIA- and AMD-flavoured backends — exactly the
//! portability story PASTA's event handler provides one layer up.

use crate::clock::SimTime;
use crate::dim::Dim3;
use crate::error::AccelError;
use crate::id::{DeviceId, LaunchId, StreamId, Vendor};
use crate::kernel::KernelDesc;
use crate::mem::DevicePtr;
use crate::symbol::Symbol;
use serde::{Deserialize, Serialize};

/// Direction of a memory copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CopyDirection {
    /// Host to device.
    HostToDevice,
    /// Device to host.
    DeviceToHost,
    /// Device to device (same or peer device).
    DeviceToDevice,
    /// Host to host (staging copies).
    HostToHost,
}

/// UVM advice values, mirroring `cudaMemAdvise`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemAdvise {
    /// Prefer keeping the range resident on the device.
    PreferredLocationDevice,
    /// Prefer keeping the range on the host.
    PreferredLocationHost,
    /// The range is mostly read; replicate liberally.
    ReadMostly,
    /// Clear prior advice.
    Unset,
}

/// Result of a kernel launch: timing plus instrumentation accounting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LaunchRecord {
    /// Launch sequence number ("grid id").
    pub launch: LaunchId,
    /// Device the kernel ran on.
    pub device: DeviceId,
    /// Stream it was enqueued on.
    pub stream: StreamId,
    /// Kernel symbol name, interned (shared with the launch's
    /// [`crate::KernelDesc`]).
    pub name: Symbol,
    /// Grid dimensions.
    pub grid: Dim3,
    /// Block dimensions.
    pub block: Dim3,
    /// Device-time start.
    pub start: SimTime,
    /// Device-time end (including instrumentation and UVM stalls).
    pub end: SimTime,
    /// What the kernel would have taken uninstrumented, ns.
    pub base_duration_ns: u64,
    /// Device time added by instrumentation, ns.
    pub instr_device_ns: u64,
    /// Host time added by instrumentation (buffer drains, CPU analysis), ns.
    pub instr_host_ns: u64,
    /// Device time added by UVM fault handling/migration, ns.
    pub uvm_stall_ns: u64,
    /// UVM fault groups serviced during the launch.
    pub uvm_faults: u64,
    /// Bytes migrated in (host→device) during the launch.
    pub uvm_migrated_bytes: u64,
    /// Bytes evicted (device→host) to make room during the launch.
    pub uvm_evicted_bytes: u64,
    /// Bytes read-duplicated onto this device over the peer link while
    /// the launch resolved shared managed ranges.
    pub uvm_peer_bytes: u64,
    /// Warp-level memory records the launch emitted to the probe.
    pub records_emitted: u64,
    /// Total bytes moved through global memory.
    pub global_bytes: u64,
}

impl LaunchRecord {
    /// Total device-side duration of the launch, ns.
    pub fn duration_ns(&self) -> u64 {
        self.end - self.start
    }
}

/// Aggregate counters a runtime keeps per device.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RuntimeStats {
    /// Kernel launches.
    pub launches: u64,
    /// Explicit memcpy operations.
    pub copies: u64,
    /// Bytes copied host→device.
    pub bytes_h2d: u64,
    /// Bytes copied device→host.
    pub bytes_d2h: u64,
    /// Device allocations performed.
    pub allocs: u64,
    /// Device frees performed.
    pub frees: u64,
    /// Synchronization calls.
    pub syncs: u64,
}

/// The abstract device runtime the DL framework and examples program to.
///
/// Implemented by `vendor_nv::CudaContext` and `vendor_amd::HipContext`.
/// Methods mirror the CUDA/HIP runtime surface PASTA intercepts (§IV-A).
/// `Send` so per-device runtime handles can be driven from their own OS
/// threads (the multi-device parallel workloads).
pub trait DeviceRuntime: Send {
    /// Vendor of the underlying devices.
    fn vendor(&self) -> Vendor;

    /// Number of visible devices.
    fn device_count(&self) -> usize;

    /// Selects the current device (like `cudaSetDevice`).
    fn set_device(&mut self, device: DeviceId) -> Result<(), AccelError>;

    /// The currently selected device.
    fn current_device(&self) -> DeviceId;

    /// Allocates device memory on the current device.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::OutOfMemory`] when the device is exhausted.
    fn malloc(&mut self, bytes: u64) -> Result<DevicePtr, AccelError>;

    /// Allocates managed (UVM) memory visible to all devices.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::OutOfMemory`] when the managed space is
    /// exhausted.
    fn malloc_managed(&mut self, bytes: u64) -> Result<DevicePtr, AccelError>;

    /// Frees a pointer returned by either alloc call.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::InvalidAddress`] on double-free or junk.
    fn free(&mut self, ptr: DevicePtr) -> Result<(), AccelError>;

    /// Copies `bytes` in `dir`; synchronous with respect to the host.
    ///
    /// # Errors
    ///
    /// Propagates address-validation failures.
    fn memcpy(
        &mut self,
        dst: DevicePtr,
        src: DevicePtr,
        bytes: u64,
        dir: CopyDirection,
    ) -> Result<(), AccelError>;

    /// Fills `bytes` at `dst`.
    ///
    /// # Errors
    ///
    /// Propagates address-validation failures.
    fn memset(&mut self, dst: DevicePtr, bytes: u64) -> Result<(), AccelError>;

    /// Launches a kernel on stream 0 of the current device.
    ///
    /// # Errors
    ///
    /// Fails on empty grids or unbound kernel arguments.
    fn launch(&mut self, desc: KernelDesc) -> Result<LaunchRecord, AccelError> {
        self.launch_on(0, desc)
    }

    /// Launches a kernel on a specific stream of the current device.
    ///
    /// # Errors
    ///
    /// Fails on empty grids or unbound kernel arguments.
    fn launch_on(&mut self, stream: StreamId, desc: KernelDesc)
        -> Result<LaunchRecord, AccelError>;

    /// Blocks the host until the current device is idle.
    fn synchronize(&mut self);

    /// Usable memory capacity of the current device, bytes.
    fn device_capacity(&self) -> u64;

    /// Current host virtual time.
    fn host_time(&self) -> SimTime;

    /// Asynchronously prefetches a managed range to the current device
    /// (like `cudaMemPrefetchAsync`). No-op for non-managed pointers.
    ///
    /// # Errors
    ///
    /// Propagates address-validation failures.
    fn mem_prefetch(&mut self, ptr: DevicePtr, bytes: u64) -> Result<(), AccelError> {
        let _ = (ptr, bytes);
        Ok(())
    }

    /// Applies UVM advice to a managed range (like `cudaMemAdvise`).
    ///
    /// # Errors
    ///
    /// Propagates address-validation failures.
    fn mem_advise(
        &mut self,
        ptr: DevicePtr,
        bytes: u64,
        advice: MemAdvise,
    ) -> Result<(), AccelError> {
        let _ = (ptr, bytes, advice);
        Ok(())
    }

    /// Aggregate counters for `device`.
    fn stats(&self, device: DeviceId) -> RuntimeStats;

    /// The attached managed-memory residency model (the UVM manager), if
    /// any. Default: none — runtimes without UVM support stay simple.
    fn residency(&self) -> Option<&dyn crate::residency::ResidencyModel> {
        None
    }

    /// Mutable access to the attached residency model, if any.
    fn residency_mut(&mut self) -> Option<&mut dyn crate::residency::ResidencyModel> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn launch_record_duration() {
        let rec = LaunchRecord {
            launch: LaunchId(1),
            device: DeviceId(0),
            stream: 0,
            name: "k".into(),
            grid: Dim3::linear(1),
            block: Dim3::linear(32),
            start: SimTime(100),
            end: SimTime(350),
            base_duration_ns: 200,
            instr_device_ns: 50,
            instr_host_ns: 0,
            uvm_stall_ns: 0,
            uvm_faults: 0,
            uvm_migrated_bytes: 0,
            uvm_evicted_bytes: 0,
            uvm_peer_bytes: 0,
            records_emitted: 8,
            global_bytes: 1024,
        };
        assert_eq!(rec.duration_ns(), 250);
    }

    #[test]
    fn stats_default_is_zeroed() {
        let s = RuntimeStats::default();
        assert_eq!(s.launches, 0);
        assert_eq!(s.bytes_h2d, 0);
    }

    #[test]
    fn copy_direction_is_hashable() {
        use std::collections::HashMap;
        let mut m = HashMap::new();
        m.insert(CopyDirection::HostToDevice, 1u32);
        m.insert(CopyDirection::DeviceToHost, 2);
        assert_eq!(m[&CopyDirection::HostToDevice], 1);
    }
}
