//! Profiling-overhead accounting.
//!
//! The paper's Fig. 10 breaks profiling time into four components:
//! workload *execution*, trace *collection*, trace *transfer*, and trace
//! *analysis*. [`OverheadBreakdown`] accumulates the last three; execution
//! time comes from an uninstrumented reference run.

use serde::{Deserialize, Serialize};

/// Accumulated instrumentation overhead, split the way Fig. 10 reports it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OverheadBreakdown {
    /// Device time executing instrumentation callbacks and (in the
    /// GPU-resident mode) fused on-device analysis, ns.
    pub collection_ns: u64,
    /// Time moving trace/result buffers across the host link, plus buffer
    /// stall latency, ns.
    pub transfer_ns: u64,
    /// Single-thread host analysis time (CPU-post-process mode only), ns.
    pub analysis_ns: u64,
    /// One-time instrumentation setup (NVBit's SASS dump+parse), ns.
    pub setup_ns: u64,
}

impl OverheadBreakdown {
    /// Total added time across all components, ns.
    pub fn total_ns(&self) -> u64 {
        self.collection_ns + self.transfer_ns + self.analysis_ns + self.setup_ns
    }

    /// Component-wise sum.
    pub fn merge(self, o: OverheadBreakdown) -> OverheadBreakdown {
        OverheadBreakdown {
            collection_ns: self.collection_ns + o.collection_ns,
            transfer_ns: self.transfer_ns + o.transfer_ns,
            analysis_ns: self.analysis_ns + o.analysis_ns,
            setup_ns: self.setup_ns + o.setup_ns,
        }
    }

    /// Fractions `(execution, collection, transfer, analysis)` of the total
    /// profiled run, given the uninstrumented execution time.
    pub fn fractions(&self, execution_ns: u64) -> (f64, f64, f64, f64) {
        let total = (execution_ns + self.total_ns()) as f64;
        if total == 0.0 {
            return (0.0, 0.0, 0.0, 0.0);
        }
        (
            execution_ns as f64 / total,
            (self.collection_ns + self.setup_ns) as f64 / total,
            self.transfer_ns as f64 / total,
            self.analysis_ns as f64 / total,
        )
    }

    /// Overhead factor relative to uninstrumented execution:
    /// `(execution + overhead) / execution`.
    pub fn overhead_factor(&self, execution_ns: u64) -> f64 {
        if execution_ns == 0 {
            return f64::INFINITY;
        }
        (execution_ns + self.total_ns()) as f64 / execution_ns as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_sums() {
        let a = OverheadBreakdown {
            collection_ns: 1,
            transfer_ns: 2,
            analysis_ns: 3,
            setup_ns: 4,
        };
        assert_eq!(a.total_ns(), 10);
        let b = a.merge(a);
        assert_eq!(b.total_ns(), 20);
    }

    #[test]
    fn fractions_sum_to_one() {
        let b = OverheadBreakdown {
            collection_ns: 100,
            transfer_ns: 200,
            analysis_ns: 700,
            setup_ns: 0,
        };
        let (e, c, t, a) = b.fractions(1000);
        assert!((e + c + t + a - 1.0).abs() < 1e-9);
        assert!(a > c && a > t, "analysis dominates in this example");
    }

    #[test]
    fn overhead_factor_baseline_is_one() {
        let b = OverheadBreakdown::default();
        assert!((b.overhead_factor(500) - 1.0).abs() < 1e-12);
        let b2 = OverheadBreakdown {
            analysis_ns: 4_500,
            ..b
        };
        assert!((b2.overhead_factor(500) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn zero_execution_is_infinite_overhead() {
        let b = OverheadBreakdown {
            analysis_ns: 1,
            ..OverheadBreakdown::default()
        };
        assert!(b.overhead_factor(0).is_infinite());
    }
}
