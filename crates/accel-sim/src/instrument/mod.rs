//! Instrumentation machinery shared by vendor profiling backends.
//!
//! Vendor facades (simulated Compute Sanitizer, NVBit, ROCProfiler-SDK)
//! differ in API flavour and cost constants, but the trace-collection
//! mechanics are identical: patch instructions, gather records, analyze on
//! the device or ship to the host. This module hosts that shared engine:
//!
//! * [`TraceProfiler`] — a [`crate::DeviceProbe`] that charges
//!   instrumentation costs per the chosen [`crate::AnalysisMode`] and
//!   forwards events to a [`DeviceTraceSink`];
//! * [`OverheadBreakdown`] — the Fig. 10 execution/collection/transfer/
//!   analysis accounting;
//! * [`DeviceTraceSink`] — the consumer interface the PASTA event
//!   processor implements.

pub mod overhead;
pub mod profiler;
pub mod sink;

pub use overhead::OverheadBreakdown;
pub use profiler::{BackendCosts, ProfilerHandle, ProfilerShared, TraceProfiler};
pub use sink::{DeviceTraceSink, NullSink, TraceCtx};
