//! The shared trace-profiler machinery behind Compute Sanitizer and NVBit.
//!
//! [`TraceProfiler`] implements [`crate::DeviceProbe`]. Per access
//! batch it (1) charges instrumentation costs to the simulated clocks
//! according to the backend kind and analysis mode, (2) accumulates the
//! Fig. 10 overhead breakdown, and (3) forwards the events to the attached
//! [`DeviceTraceSink`] (the PASTA event processor).
//!
//! The two analysis modes reproduce the paper's Fig. 2:
//!
//! * **CpuPostProcess** — records fill a fixed device buffer; each time it
//!   fills, the kernel stalls for a flush (latency + PCIe transfer), and a
//!   single host thread later drains and analyzes every record. Host
//!   analysis time is charged to the host clock, delaying every subsequent
//!   launch — this is what makes conventional tools orders of magnitude
//!   slower (Fig. 9).
//! * **GpuResident** — parallel device analysis threads consume records in
//!   situ (fused collect+analyze); only a small result buffer crosses the
//!   link at kernel end.

use super::overhead::OverheadBreakdown;
use super::sink::{DeviceTraceSink, TraceCtx};
use crate::probe::KernelCtx;
use crate::symbol::Symbol;
use crate::trace::{TraceBufferModel, TRACE_RECORD_BYTES};
use crate::{
    AccessBatch, AnalysisMode, DeviceProbe, InstrCoverage, KernelTraceSummary, ProbeConfig,
    ProbeCosts,
};
use parking_lot::Mutex;
use std::collections::HashSet;
use std::sync::Arc;

/// Backend-specific cost constants.
#[derive(Debug, Clone, PartialEq)]
pub struct BackendCosts {
    /// Device time per instrumented record for the inline callback, ns.
    pub device_callback_ns_per_record: f64,
    /// Host time per record for single-thread analysis, ns.
    pub cpu_analysis_ns_per_record: f64,
    /// Host time per record to drain fetched buffers, ns.
    pub cpu_drain_ns_per_record: f64,
    /// Device time per record for one GPU analysis thread, ns.
    pub gpu_analysis_ns_per_record: f64,
    /// Width of the on-device analysis thread group.
    pub gpu_analysis_threads: u64,
    /// Trace buffer model (CPU-post-process mode).
    pub buffer: TraceBufferModel,
    /// Kernel stall per buffer flush, ns.
    pub buffer_flush_latency_ns: u64,
    /// One-time host cost to dump+parse SASS per unique kernel, ns
    /// (NVBit only; zero for Compute Sanitizer).
    pub sass_parse_ns_per_kernel: u64,
    /// Result-buffer bytes shipped at kernel end (GPU-resident mode).
    pub result_buffer_bytes: u64,
}

impl BackendCosts {
    /// Compute Sanitizer defaults: light callbacks, no SASS parsing.
    ///
    /// Records are *warp-level* (32 lanes per record). The device callback
    /// cost of ~2.8 ns per warp record (~0.09 ns per thread access) yields
    /// the one-to-two-orders-of-magnitude kernel slowdown real patched
    /// instrumentation shows; the single-thread CPU analysis cost of
    /// ~4.3 us per warp record (~135 ns per thread access) reproduces the
    /// paper's measured CS-CPU / CS-GPU gap (941x on A100, 627x on 3060).
    pub fn sanitizer() -> Self {
        BackendCosts {
            device_callback_ns_per_record: 2.8,
            cpu_analysis_ns_per_record: 2_800.0,
            cpu_drain_ns_per_record: 150.0,
            gpu_analysis_ns_per_record: 0.9,
            gpu_analysis_threads: 4_096,
            buffer: TraceBufferModel::new_4mib(),
            buffer_flush_latency_ns: 30_000,
            sass_parse_ns_per_kernel: 0,
            result_buffer_bytes: 64 << 10,
        }
    }

    /// NVBit defaults: heavier trampolines, per-record SASS decoding on the
    /// host, and a one-time SASS dump+parse per unique kernel. The host
    /// analysis constant is ~14x the Compute Sanitizer one, matching the
    /// paper's measured NVBIT-CPU / CS-CPU gap (13006/941 = 13.8 on A100).
    pub fn nvbit() -> Self {
        BackendCosts {
            device_callback_ns_per_record: 8.0,
            cpu_analysis_ns_per_record: 39_000.0,
            cpu_drain_ns_per_record: 400.0,
            gpu_analysis_ns_per_record: 1.2,
            gpu_analysis_threads: 4_096,
            buffer: TraceBufferModel::new_4mib(),
            buffer_flush_latency_ns: 45_000,
            sass_parse_ns_per_kernel: 80_000_000,
            result_buffer_bytes: 64 << 10,
        }
    }
}

/// State shared between a running profiler and its [`ProfilerHandle`].
pub struct ProfilerShared {
    /// Accumulated overhead, Fig. 10 style.
    pub breakdown: OverheadBreakdown,
    /// Downstream consumer (the PASTA event processor), if attached.
    pub sink: Option<Box<dyn DeviceTraceSink>>,
    /// Total records observed (post-sampling).
    pub records_total: u64,
    /// Kernels instrumented.
    pub kernels: u64,
}

impl std::fmt::Debug for ProfilerShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProfilerShared")
            .field("breakdown", &self.breakdown)
            .field("records_total", &self.records_total)
            .field("kernels", &self.kernels)
            .field("sink_attached", &self.sink.is_some())
            .finish()
    }
}

/// Caller-side handle to a profiler that has been moved into the engine.
#[derive(Debug, Clone)]
pub struct ProfilerHandle {
    shared: Arc<Mutex<ProfilerShared>>,
}

impl ProfilerHandle {
    /// Installs (or replaces) the downstream trace sink.
    pub fn set_sink(&self, sink: Box<dyn DeviceTraceSink>) {
        self.shared.lock().sink = Some(sink);
    }

    /// Removes and returns the sink.
    pub fn take_sink(&self) -> Option<Box<dyn DeviceTraceSink>> {
        self.shared.lock().sink.take()
    }

    /// Snapshot of the overhead breakdown.
    pub fn breakdown(&self) -> OverheadBreakdown {
        self.shared.lock().breakdown
    }

    /// Total records observed so far.
    pub fn records_total(&self) -> u64 {
        self.shared.lock().records_total
    }

    /// Kernels instrumented so far.
    pub fn kernels(&self) -> u64 {
        self.shared.lock().kernels
    }

    /// Resets counters and breakdown (keeps the sink).
    pub fn reset(&self) {
        let mut s = self.shared.lock();
        s.breakdown = OverheadBreakdown::default();
        s.records_total = 0;
        s.kernels = 0;
    }
}

/// A vendor instrumentation backend attached to the simulator.
pub struct TraceProfiler {
    coverage: InstrCoverage,
    mode: AnalysisMode,
    costs: BackendCosts,
    /// Per-device host-link bandwidth, GB/s (indexed by device ordinal).
    link_bw: Vec<f64>,
    /// Extra sampling applied on top of whatever the sink requests.
    sampling: u32,
    shared: Arc<Mutex<ProfilerShared>>,
    parsed_kernels: HashSet<Symbol>,
    /// Records so far in the current kernel (buffer-flush bookkeeping).
    cur_records: u64,
    cur_flushes: u64,
    /// Context of the in-flight launch, built (and its name interned)
    /// once at kernel begin so per-batch callbacks never allocate.
    cur_ctx: Option<TraceCtx>,
}

impl std::fmt::Debug for TraceProfiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceProfiler")
            .field("coverage", &self.coverage)
            .field("mode", &self.mode)
            .field("sampling", &self.sampling)
            .finish()
    }
}

impl TraceProfiler {
    /// Creates a profiler and its handle.
    ///
    /// `link_bw` carries the host-link bandwidth of each device, in device
    /// order; `sampling` is the global `ACCEL_PROF_ENV_SAMPLE_RATE`-style
    /// record sampling factor.
    pub fn new(
        coverage: InstrCoverage,
        mode: AnalysisMode,
        costs: BackendCosts,
        link_bw: Vec<f64>,
        sampling: u32,
    ) -> (Self, ProfilerHandle) {
        let shared = Arc::new(Mutex::new(ProfilerShared {
            breakdown: OverheadBreakdown::default(),
            sink: None,
            records_total: 0,
            kernels: 0,
        }));
        let handle = ProfilerHandle {
            shared: Arc::clone(&shared),
        };
        (
            TraceProfiler {
                coverage,
                mode,
                costs,
                link_bw,
                sampling: sampling.max(1),
                shared,
                parsed_kernels: HashSet::new(),
                cur_records: 0,
                cur_flushes: 0,
                cur_ctx: None,
            },
            handle,
        )
    }

    fn make_ctx(ctx: &KernelCtx<'_>) -> TraceCtx {
        TraceCtx {
            launch: ctx.launch,
            device: ctx.device,
            stream: ctx.stream,
            name: ctx.desc.name.clone(),
            grid: ctx.desc.grid,
            block: ctx.desc.block,
        }
    }

    /// The cached per-launch context; rebuilt only when `ctx` belongs to a
    /// different launch than the cache (e.g. a probe driven out of band).
    fn trace_ctx(&mut self, ctx: &KernelCtx<'_>) -> TraceCtx {
        match &self.cur_ctx {
            Some(cached) if cached.launch == ctx.launch => cached.clone(),
            _ => {
                let built = Self::make_ctx(ctx);
                self.cur_ctx = Some(built.clone());
                built
            }
        }
    }

    fn link_bw(&self, device: usize) -> f64 {
        self.link_bw.get(device).copied().unwrap_or(16.0)
    }

    /// Cost of one batch in the current mode; also updates the breakdown.
    fn charge_records(&mut self, device: usize, records: u64) -> ProbeCosts {
        let callback = (records as f64 * self.costs.device_callback_ns_per_record).ceil() as u64;
        let mut costs = ProbeCosts {
            device_ns: callback,
            host_ns: 0,
        };
        let mut shared = self.shared.lock();
        shared.breakdown.collection_ns += callback;
        shared.records_total += records;
        match self.mode {
            AnalysisMode::GpuResident => {
                let analyze = (records as f64 * self.costs.gpu_analysis_ns_per_record
                    / self.costs.gpu_analysis_threads as f64)
                    .ceil() as u64;
                costs.device_ns += analyze;
                // Fused collect-and-analyze: the paper reports both under
                // "collection" for the GPU-resident variant.
                shared.breakdown.collection_ns += analyze;
            }
            AnalysisMode::CpuPostProcess => {
                self.cur_records += records;
                let flushes_now = self.costs.buffer.stall_flushes(self.cur_records);
                let new_flushes = flushes_now - self.cur_flushes;
                self.cur_flushes = flushes_now;
                if new_flushes > 0 {
                    let bytes_per_flush = self.costs.buffer.capacity_records * TRACE_RECORD_BYTES;
                    let xfer = (bytes_per_flush as f64 / self.link_bw(device)) as u64;
                    let stall = new_flushes * (self.costs.buffer_flush_latency_ns + xfer);
                    costs.device_ns += stall;
                    shared.breakdown.transfer_ns += stall;
                }
                let host = (records as f64
                    * (self.costs.cpu_drain_ns_per_record + self.costs.cpu_analysis_ns_per_record))
                    .ceil() as u64;
                costs.host_ns += host;
                shared.breakdown.analysis_ns += host;
            }
        }
        costs
    }
}

impl DeviceProbe for TraceProfiler {
    fn on_kernel_begin(&mut self, ctx: &KernelCtx<'_>) -> ProbeConfig {
        self.cur_records = 0;
        self.cur_flushes = 0;
        let tctx = Self::make_ctx(ctx);
        self.cur_ctx = Some(tctx.clone());
        let mut shared = self.shared.lock();
        let mut config = match shared.sink.as_mut() {
            Some(sink) => sink.on_kernel_begin(&tctx),
            None => ProbeConfig::all(),
        };
        if !config.is_disabled() {
            shared.kernels += 1;
        }
        drop(shared);
        config.sampling_rate = config.sampling_rate.max(self.sampling);
        config
    }

    fn on_access_batch(&mut self, ctx: &KernelCtx<'_>, batch: &AccessBatch) -> ProbeCosts {
        let costs = self.charge_records(ctx.device.index(), batch.records);
        let tctx = self.trace_ctx(ctx);
        let mut shared = self.shared.lock();
        if let Some(sink) = shared.sink.as_mut() {
            sink.on_batch(&tctx, batch);
        }
        costs
    }

    fn on_barriers(&mut self, ctx: &KernelCtx<'_>, count: u64) -> ProbeCosts {
        let costs = self.charge_records(ctx.device.index(), count);
        let tctx = self.trace_ctx(ctx);
        let mut shared = self.shared.lock();
        if let Some(sink) = shared.sink.as_mut() {
            sink.on_barriers(&tctx, count);
        }
        costs
    }

    fn on_block_boundaries(&mut self, ctx: &KernelCtx<'_>, count: u64) -> ProbeCosts {
        // Block entry/exit callbacks are cheap and are not trace records.
        let tctx = self.trace_ctx(ctx);
        let mut shared = self.shared.lock();
        if let Some(sink) = shared.sink.as_mut() {
            sink.on_blocks(&tctx, count);
        }
        ProbeCosts::FREE
    }

    fn on_kernel_end(&mut self, ctx: &KernelCtx<'_>, summary: &KernelTraceSummary) -> ProbeCosts {
        let mut costs = ProbeCosts::FREE;
        let device = ctx.device.index();
        let tctx = self.trace_ctx(ctx);

        // NVBit pays a one-time SASS dump+parse per unique kernel symbol.
        if self.costs.sass_parse_ns_per_kernel > 0 && self.parsed_kernels.insert(tctx.name.clone())
        {
            costs.host_ns += self.costs.sass_parse_ns_per_kernel;
            self.shared.lock().breakdown.setup_ns += self.costs.sass_parse_ns_per_kernel;
        }

        match self.mode {
            AnalysisMode::GpuResident => {
                // Ship the small result buffer back at kernel end.
                let xfer = (self.costs.result_buffer_bytes as f64 / self.link_bw(device)) as u64;
                costs.device_ns += xfer;
                self.shared.lock().breakdown.transfer_ns += xfer;
            }
            AnalysisMode::CpuPostProcess => {
                // Final partial buffer drains after the kernel completes; the
                // host pays the transfer but the kernel does not stall.
                let leftover =
                    self.cur_records - self.cur_flushes * self.costs.buffer.capacity_records;
                let xfer = (leftover * TRACE_RECORD_BYTES) as f64 / self.link_bw(device);
                costs.host_ns += xfer as u64;
                self.shared.lock().breakdown.transfer_ns += xfer as u64;
            }
        }

        let mut shared = self.shared.lock();
        if let Some(sink) = shared.sink.as_mut() {
            if self.coverage == InstrCoverage::AllInstructions {
                sink.on_instructions(&tctx, summary.instructions);
            }
            sink.on_kernel_end(&tctx, summary);
        }
        drop(shared);
        self.cur_ctx = None;
        costs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DeviceId, Dim3, KernelBody, KernelDesc, LaunchId, SimTime};

    fn kctx<'a>(desc: &'a KernelDesc) -> KernelCtx<'a> {
        KernelCtx {
            launch: LaunchId(1),
            device: DeviceId(0),
            stream: 0,
            desc,
            start: SimTime(0),
        }
    }

    fn batch(records: u64) -> AccessBatch {
        AccessBatch {
            launch: LaunchId(1),
            spec_index: 0,
            base: 0x1000,
            len: records * 128,
            records,
            bytes: records * 128,
            elem_size: 4,
            kind: crate::kernel::AccessKind::Load,
            space: crate::kernel::MemSpace::Global,
            pattern: crate::kernel::AccessPattern::Sequential,
        }
    }

    fn desc() -> KernelDesc {
        KernelDesc::new("k", Dim3::linear(8), Dim3::linear(128)).body(KernelBody::compute(1_000))
    }

    #[test]
    fn gpu_mode_is_much_cheaper_than_cpu_mode() {
        let records = 10_000_000;
        let d = desc();

        let (mut gpu, gh) = TraceProfiler::new(
            InstrCoverage::MemoryAndBarrier,
            AnalysisMode::GpuResident,
            BackendCosts::sanitizer(),
            vec![24.0],
            1,
        );
        gpu.on_kernel_begin(&kctx(&d));
        let gc = gpu.on_access_batch(&kctx(&d), &batch(records));
        gpu.on_kernel_end(&kctx(&d), &KernelTraceSummary::default());

        let (mut cpu, ch) = TraceProfiler::new(
            InstrCoverage::MemoryAndBarrier,
            AnalysisMode::CpuPostProcess,
            BackendCosts::sanitizer(),
            vec![24.0],
            1,
        );
        cpu.on_kernel_begin(&kctx(&d));
        let cc = cpu.on_access_batch(&kctx(&d), &batch(records));
        cpu.on_kernel_end(&kctx(&d), &KernelTraceSummary::default());

        let gpu_total = gh.breakdown().total_ns();
        let cpu_total = ch.breakdown().total_ns();
        assert!(
            cpu_total > gpu_total * 100,
            "CPU mode {cpu_total}ns must dwarf GPU mode {gpu_total}ns"
        );
        assert!(cc.host_ns > 0, "CPU mode charges host analysis");
        assert_eq!(gc.host_ns, 0, "GPU mode has no host analysis");
    }

    #[test]
    fn cpu_mode_stalls_on_full_buffers() {
        let d = desc();
        let costs = BackendCosts {
            buffer: TraceBufferModel {
                capacity_records: 1_000,
            },
            ..BackendCosts::sanitizer()
        };
        let (mut p, h) = TraceProfiler::new(
            InstrCoverage::MemoryAndBarrier,
            AnalysisMode::CpuPostProcess,
            costs,
            vec![24.0],
            1,
        );
        p.on_kernel_begin(&kctx(&d));
        let c = p.on_access_batch(&kctx(&d), &batch(10_000));
        assert!(
            c.device_ns > 10 * 30_000,
            "10 flushes worth of stalls expected, got {}",
            c.device_ns
        );
        assert!(h.breakdown().transfer_ns > 0);
    }

    #[test]
    fn nvbit_pays_sass_parse_once_per_kernel() {
        let d = desc();
        let (mut p, h) = TraceProfiler::new(
            InstrCoverage::AllInstructions,
            AnalysisMode::CpuPostProcess,
            BackendCosts::nvbit(),
            vec![24.0],
            1,
        );
        for _ in 0..3 {
            p.on_kernel_begin(&kctx(&d));
            p.on_kernel_end(&kctx(&d), &KernelTraceSummary::default());
        }
        assert_eq!(
            h.breakdown().setup_ns,
            BackendCosts::nvbit().sass_parse_ns_per_kernel,
            "same kernel symbol parses once"
        );
    }

    #[test]
    fn sink_receives_forwarded_events() {
        use std::sync::atomic::{AtomicU64, Ordering};
        static BATCHES: AtomicU64 = AtomicU64::new(0);
        struct Counting;
        impl DeviceTraceSink for Counting {
            fn on_batch(&mut self, _ctx: &TraceCtx, _b: &AccessBatch) {
                BATCHES.fetch_add(1, Ordering::Relaxed);
            }
        }
        let d = desc();
        let (mut p, h) = TraceProfiler::new(
            InstrCoverage::MemoryAndBarrier,
            AnalysisMode::GpuResident,
            BackendCosts::sanitizer(),
            vec![24.0],
            1,
        );
        h.set_sink(Box::new(Counting));
        p.on_kernel_begin(&kctx(&d));
        p.on_access_batch(&kctx(&d), &batch(10));
        p.on_access_batch(&kctx(&d), &batch(10));
        assert_eq!(BATCHES.load(Ordering::Relaxed), 2);
        assert_eq!(h.records_total(), 20);
    }

    #[test]
    fn handle_reset_clears_counters() {
        let d = desc();
        let (mut p, h) = TraceProfiler::new(
            InstrCoverage::MemoryAndBarrier,
            AnalysisMode::GpuResident,
            BackendCosts::sanitizer(),
            vec![24.0],
            1,
        );
        p.on_kernel_begin(&kctx(&d));
        p.on_access_batch(&kctx(&d), &batch(100));
        assert!(h.records_total() > 0);
        h.reset();
        assert_eq!(h.records_total(), 0);
        assert_eq!(h.breakdown().total_ns(), 0);
    }

    #[test]
    fn profiler_sampling_floors_sink_request() {
        let d = desc();
        let (mut p, _h) = TraceProfiler::new(
            InstrCoverage::MemoryAndBarrier,
            AnalysisMode::GpuResident,
            BackendCosts::sanitizer(),
            vec![24.0],
            50,
        );
        let config = p.on_kernel_begin(&kctx(&d));
        assert_eq!(config.sampling_rate, 50);
    }
}
