//! Device-trace consumer interface.
//!
//! A [`DeviceTraceSink`] receives the fine-grained device events that an
//! instrumentation backend collects — access batches, barrier counts, block
//! boundaries, per-kernel summaries. The PASTA event processor implements
//! this trait; the vendor profilers ([`super::TraceProfiler`]) forward into
//! it after charging instrumentation costs to the simulated clocks.

use crate::symbol::Symbol;
use crate::{AccessBatch, DeviceId, Dim3, KernelTraceSummary, LaunchId, ProbeConfig, StreamId};

/// Owned per-kernel context handed to sink callbacks.
///
/// Cloning is cheap: the kernel name is an interned [`Symbol`], so the
/// profiler builds this once per launch and every downstream event shares
/// the same name allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceCtx {
    /// Launch sequence number ("grid id").
    pub launch: LaunchId,
    /// Device ordinal.
    pub device: DeviceId,
    /// Stream.
    pub stream: StreamId,
    /// Kernel symbol name, interned once per launch.
    pub name: Symbol,
    /// Grid dimensions.
    pub grid: Dim3,
    /// Block dimensions.
    pub block: Dim3,
}

/// Consumer of fine-grained device trace events.
///
/// All methods default to no-ops; a sink overrides what it needs, mirroring
/// the PASTA tool-template ergonomics.
pub trait DeviceTraceSink: Send {
    /// Called before a kernel runs; returns which event classes to
    /// instrument for this launch (range filtering hooks in here).
    fn on_kernel_begin(&mut self, ctx: &TraceCtx) -> ProbeConfig {
        let _ = ctx;
        ProbeConfig::all()
    }

    /// One batch of warp-level memory access records.
    fn on_batch(&mut self, ctx: &TraceCtx, batch: &AccessBatch) {
        let _ = (ctx, batch);
    }

    /// Barrier executions in the launch.
    fn on_barriers(&mut self, ctx: &TraceCtx, count: u64) {
        let _ = (ctx, count);
    }

    /// Thread-block entry/exit pairs in the launch.
    fn on_blocks(&mut self, ctx: &TraceCtx, count: u64) {
        let _ = (ctx, count);
    }

    /// Dynamic-instruction count (full-coverage backends only).
    fn on_instructions(&mut self, ctx: &TraceCtx, count: u64) {
        let _ = (ctx, count);
    }

    /// Kernel finished; summary of everything it emitted.
    fn on_kernel_end(&mut self, ctx: &TraceCtx, summary: &KernelTraceSummary) {
        let _ = (ctx, summary);
    }
}

/// A sink that discards everything (profiling without a consumer).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl DeviceTraceSink for NullSink {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_instruments_everything_by_default() {
        let mut s = NullSink;
        let ctx = TraceCtx {
            launch: LaunchId(0),
            device: DeviceId(0),
            stream: 0,
            name: "k".into(),
            grid: Dim3::linear(1),
            block: Dim3::linear(32),
        };
        assert_eq!(s.on_kernel_begin(&ctx), ProbeConfig::all());
    }

    #[test]
    fn sink_is_object_safe() {
        let _: Box<dyn DeviceTraceSink> = Box::new(NullSink);
    }
}
