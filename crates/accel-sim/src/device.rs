//! Device specifications and per-device simulator state.
//!
//! The three presets correspond to the paper's Table III machines:
//! NVIDIA A100 (80 GB), NVIDIA GeForce RTX 3060, and AMD MI300X.

use crate::clock::SimTime;
use crate::id::{DeviceId, StreamId, Vendor};
use crate::mem::DeviceAllocator;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Static description of a simulated accelerator.
///
/// The numbers are public datasheet values; the cost model only uses them
/// for *relative* timing, so modest inaccuracy is harmless.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Marketing name, e.g. `"NVIDIA A100 80GB"`.
    pub name: String,
    /// Vendor, which selects the event-naming conventions upstream.
    pub vendor: Vendor,
    /// Number of streaming multiprocessors (or compute units).
    pub sm_count: u32,
    /// Maximum resident threads per SM (occupancy ceiling).
    pub max_threads_per_sm: u32,
    /// Device memory capacity in bytes.
    pub mem_capacity: u64,
    /// Device memory bandwidth in GB/s (= bytes/ns).
    pub mem_bandwidth_gbps: f64,
    /// Host link (PCIe/xGMI) bandwidth in GB/s.
    pub link_bandwidth_gbps: f64,
    /// Peer-to-peer (NVLink/xGMI) bandwidth in GB/s for multi-GPU copies.
    pub p2p_bandwidth_gbps: f64,
    /// Peak single-precision throughput in TFLOP/s.
    pub fp32_tflops: f64,
    /// Latency of servicing a single UVM page-fault group, nanoseconds.
    pub fault_latency_ns: u64,
}

impl DeviceSpec {
    /// NVIDIA A100 80 GB (SXM): machine A in the paper's Table III.
    pub fn a100_80gb() -> Self {
        DeviceSpec {
            name: "NVIDIA A100 80GB".to_owned(),
            vendor: Vendor::Nvidia,
            sm_count: 108,
            max_threads_per_sm: 2048,
            mem_capacity: 80 * (1 << 30),
            mem_bandwidth_gbps: 2039.0,
            link_bandwidth_gbps: 24.0,
            p2p_bandwidth_gbps: 300.0,
            fp32_tflops: 19.5,
            fault_latency_ns: 25_000,
        }
    }

    /// NVIDIA GeForce RTX 3060 12 GB: machine B in Table III.
    pub fn rtx_3060() -> Self {
        DeviceSpec {
            name: "NVIDIA GeForce RTX 3060".to_owned(),
            vendor: Vendor::Nvidia,
            sm_count: 28,
            max_threads_per_sm: 1536,
            mem_capacity: 12 * (1 << 30),
            mem_bandwidth_gbps: 360.0,
            link_bandwidth_gbps: 12.0,
            p2p_bandwidth_gbps: 12.0,
            fp32_tflops: 12.7,
            fault_latency_ns: 35_000,
        }
    }

    /// AMD Instinct MI300X 192 GB: machine C in Table III.
    pub fn mi300x() -> Self {
        DeviceSpec {
            name: "AMD MI300X".to_owned(),
            vendor: Vendor::Amd,
            sm_count: 304,
            max_threads_per_sm: 2048,
            mem_capacity: 192 * (1 << 30),
            mem_bandwidth_gbps: 5300.0,
            link_bandwidth_gbps: 32.0,
            p2p_bandwidth_gbps: 448.0,
            fp32_tflops: 163.4,
            fault_latency_ns: 30_000,
        }
    }

    /// Maximum concurrently resident threads on the whole device.
    pub fn max_resident_threads(&self) -> u64 {
        self.sm_count as u64 * self.max_threads_per_sm as u64
    }
}

/// Mutable per-device simulator state: clock, streams, allocator.
#[derive(Debug)]
pub struct Device {
    id: DeviceId,
    spec: DeviceSpec,
    allocator: DeviceAllocator,
    /// Per-stream busy-until times; stream 0 always exists.
    streams: HashMap<StreamId, SimTime>,
    /// Artificial cap on usable memory, used by the UVM experiments to
    /// create oversubscription (the paper pre-allocates to shrink memory).
    usable_capacity: u64,
}

impl Device {
    /// Creates a device with a fresh allocator and an idle clock.
    pub fn new(id: DeviceId, spec: DeviceSpec) -> Self {
        // 1 TiB of virtual address space per device keeps addresses unique
        // across devices, which the PASTA event processor relies on when
        // attributing events in multi-GPU runs.
        let base = 0x7000_0000_0000u64 + (id.0 as u64) * 0x100_0000_0000;
        let allocator = DeviceAllocator::new(base, spec.mem_capacity);
        let usable = spec.mem_capacity;
        let mut streams = HashMap::new();
        streams.insert(0, SimTime::ZERO);
        Device {
            id,
            spec,
            allocator,
            streams,
            usable_capacity: usable,
        }
    }

    /// Device id.
    pub fn id(&self) -> DeviceId {
        self.id
    }

    /// Static spec.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// The device memory allocator.
    pub fn allocator(&self) -> &DeviceAllocator {
        &self.allocator
    }

    /// Mutable access to the allocator.
    pub fn allocator_mut(&mut self) -> &mut DeviceAllocator {
        &mut self.allocator
    }

    /// Busy-until time of `stream` (idle streams report `SimTime::ZERO`).
    pub fn stream_time(&self, stream: StreamId) -> SimTime {
        self.streams.get(&stream).copied().unwrap_or(SimTime::ZERO)
    }

    /// Advances `stream`'s busy-until time to at least `t`.
    pub fn set_stream_time(&mut self, stream: StreamId, t: SimTime) {
        let entry = self.streams.entry(stream).or_insert(SimTime::ZERO);
        *entry = (*entry).max(t);
    }

    /// The latest busy-until time across all streams (device idle time).
    pub fn busy_until(&self) -> SimTime {
        self.streams
            .values()
            .copied()
            .fold(SimTime::ZERO, SimTime::max)
    }

    /// Usable memory capacity (may be below the physical capacity when an
    /// experiment pre-allocates memory to force oversubscription).
    pub fn usable_capacity(&self) -> u64 {
        self.usable_capacity
    }

    /// Restricts usable memory, mirroring the paper's §V-A methodology of
    /// "allocating a specified amount in advance" to control the
    /// oversubscription factor.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` exceeds the physical capacity.
    pub fn limit_usable_capacity(&mut self, bytes: u64) {
        assert!(
            bytes <= self.spec.mem_capacity,
            "cannot raise capacity above physical memory"
        );
        self.usable_capacity = bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_sane_specs() {
        for spec in [
            DeviceSpec::a100_80gb(),
            DeviceSpec::rtx_3060(),
            DeviceSpec::mi300x(),
        ] {
            assert!(spec.sm_count > 0);
            assert!(spec.mem_capacity > 1 << 30);
            assert!(spec.mem_bandwidth_gbps > 0.0);
            assert!(spec.fp32_tflops > 0.0);
            assert!(spec.max_resident_threads() > 10_000);
        }
        assert_eq!(DeviceSpec::a100_80gb().vendor, Vendor::Nvidia);
        assert_eq!(DeviceSpec::mi300x().vendor, Vendor::Amd);
    }

    #[test]
    fn device_address_spaces_are_disjoint() {
        let d0 = Device::new(DeviceId(0), DeviceSpec::a100_80gb());
        let d1 = Device::new(DeviceId(1), DeviceSpec::a100_80gb());
        let end0 = d0.allocator().base() + d0.spec().mem_capacity;
        assert!(end0 <= d1.allocator().base());
    }

    #[test]
    fn stream_times_advance_monotonically() {
        let mut d = Device::new(DeviceId(0), DeviceSpec::rtx_3060());
        assert_eq!(d.stream_time(0), SimTime::ZERO);
        d.set_stream_time(0, SimTime(100));
        d.set_stream_time(0, SimTime(50)); // must not regress
        assert_eq!(d.stream_time(0), SimTime(100));
        d.set_stream_time(3, SimTime(500));
        assert_eq!(d.busy_until(), SimTime(500));
    }

    #[test]
    fn capacity_limit() {
        let mut d = Device::new(DeviceId(0), DeviceSpec::rtx_3060());
        let cap = d.spec().mem_capacity;
        d.limit_usable_capacity(cap / 3);
        assert_eq!(d.usable_capacity(), cap / 3);
    }

    #[test]
    #[should_panic(expected = "cannot raise capacity")]
    fn capacity_limit_rejects_raise() {
        let mut d = Device::new(DeviceId(0), DeviceSpec::rtx_3060());
        let cap = d.spec().mem_capacity;
        d.limit_usable_capacity(cap + 1);
    }
}
