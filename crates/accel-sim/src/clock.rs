//! Virtual time.
//!
//! All simulator timing is expressed in integer nanoseconds of *virtual*
//! time. Virtual clocks make every experiment deterministic and let the
//! overhead experiments (paper Figs. 9–10) report multi-day CPU-analysis
//! times without actually waiting for them.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, in nanoseconds since simulation start.
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from whole nanoseconds.
    pub fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates a time from whole microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates a time from whole milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates a time from seconds (saturating on overflow).
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime((secs * 1e9).min(u64::MAX as f64).max(0.0) as u64)
    }

    /// Raw nanoseconds.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds as a float (for reports).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds as a float (for reports).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns the later of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// Saturating difference (`self - earlier`), useful when clocks may
    /// legitimately be re-ordered by asynchronous overlap.
    pub fn saturating_since(self, earlier: SimTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;
    fn add(self, ns: u64) -> SimTime {
        SimTime(self.0.saturating_add(ns))
    }
}

impl AddAssign<u64> for SimTime {
    fn add_assign(&mut self, ns: u64) {
        self.0 = self.0.saturating_add(ns);
    }
}

impl Sub for SimTime {
    type Output = u64;
    fn sub(self, rhs: SimTime) -> u64 {
        self.0.saturating_sub(rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

/// Formats a duration in nanoseconds with an adaptive unit, used by reports.
pub fn format_ns(ns: u64) -> String {
    SimTime(ns).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimTime::from_millis(2).as_nanos(), 2_000_000);
        assert!((SimTime::from_secs_f64(1.5).as_secs_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn arithmetic_saturates() {
        let t = SimTime(10);
        assert_eq!((t + 5).as_nanos(), 15);
        assert_eq!(SimTime(5) - SimTime(10), 0, "subtraction saturates");
        assert_eq!(SimTime(u64::MAX) + 10, SimTime(u64::MAX));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimTime(12).to_string(), "12ns");
        assert_eq!(SimTime(1_500).to_string(), "1.500us");
        assert_eq!(SimTime(2_500_000).to_string(), "2.500ms");
        assert_eq!(SimTime(3_000_000_000).to_string(), "3.000s");
    }

    #[test]
    fn max_and_since() {
        assert_eq!(SimTime(3).max(SimTime(9)), SimTime(9));
        assert_eq!(SimTime(9).saturating_since(SimTime(3)), 6);
        assert_eq!(SimTime(3).saturating_since(SimTime(9)), 0);
    }
}
