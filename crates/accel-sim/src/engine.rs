//! The discrete-event simulation engine.
//!
//! [`Engine`] owns the devices, the shared managed-memory space, the host
//! clock, an optional instrumentation [`DeviceProbe`] and an optional
//! [`ResidencyModel`]. Vendor runtime facades (`vendor-nv`, `vendor-amd`)
//! wrap an `Engine` and translate its launch/copy/alloc operations into
//! vendor-flavoured profiling callbacks.

use crate::clock::SimTime;
use crate::cost::CostModel;
use crate::device::{Device, DeviceSpec};
use crate::error::AccelError;
use crate::id::{DeviceId, LaunchId, StreamId};
use crate::kernel::{KernelDesc, MemSpace};
use crate::mem::{Allocation, DeviceAllocator, DevicePtr};
use crate::probe::{DeviceProbe, KernelCtx, ProbeCosts};
use crate::residency::{AccessOutcome, ResidencyModel};
use crate::runtime::{CopyDirection, LaunchRecord, RuntimeStats};
use crate::trace::{AccessBatch, KernelTraceSummary};

/// Base of the shared managed (UVM) address range.
pub const MANAGED_BASE: u64 = 0x4000_0000_0000;
/// Capacity of the managed range: far above any device so oversubscription
/// experiments never exhaust *virtual* space.
pub const MANAGED_CAPACITY: u64 = 6 << 40;

/// The central simulator.
///
/// See the [crate-level docs](crate) for an end-to-end example.
pub struct Engine {
    devices: Vec<Device>,
    managed: DeviceAllocator,
    host_clock: SimTime,
    cost: CostModel,
    probe: Option<Box<dyn DeviceProbe>>,
    residency: Option<Box<dyn ResidencyModel>>,
    next_launch: u64,
    stats: Vec<RuntimeStats>,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("devices", &self.devices.len())
            .field("host_clock", &self.host_clock)
            .field("next_launch", &self.next_launch)
            .field("probe_attached", &self.probe.is_some())
            .field("residency_attached", &self.residency.is_some())
            .finish()
    }
}

impl Engine {
    /// Creates an engine with one [`Device`] per spec.
    ///
    /// # Panics
    ///
    /// Panics when `specs` is empty — a machine needs at least one device.
    pub fn new(specs: Vec<DeviceSpec>) -> Self {
        assert!(!specs.is_empty(), "engine needs at least one device");
        let devices: Vec<Device> = specs
            .into_iter()
            .enumerate()
            .map(|(i, s)| Device::new(DeviceId(i as u32), s))
            .collect();
        let stats = vec![RuntimeStats::default(); devices.len()];
        Engine {
            devices,
            managed: DeviceAllocator::new(MANAGED_BASE, MANAGED_CAPACITY),
            host_clock: SimTime::ZERO,
            cost: CostModel::default(),
            probe: None,
            residency: None,
            next_launch: 0,
            stats,
        }
    }

    /// Replaces the cost model (builder-style).
    pub fn with_cost_model(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// The cost model in effect.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Mutable cost model (calibration hooks).
    pub fn cost_mut(&mut self) -> &mut CostModel {
        &mut self.cost
    }

    /// Ids of all devices.
    pub fn device_ids(&self) -> Vec<DeviceId> {
        (0..self.devices.len() as u32).map(DeviceId).collect()
    }

    /// Immutable device access.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range id; use [`Engine::try_device`] to probe.
    pub fn device(&self, id: DeviceId) -> &Device {
        &self.devices[id.index()]
    }

    /// Fallible device lookup.
    pub fn try_device(&self, id: DeviceId) -> Option<&Device> {
        self.devices.get(id.index())
    }

    /// Mutable device access.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range id.
    pub fn device_mut(&mut self, id: DeviceId) -> &mut Device {
        &mut self.devices[id.index()]
    }

    /// Current host time.
    pub fn host_now(&self) -> SimTime {
        self.host_clock
    }

    /// Advances the host clock by `ns` (modeling host-side work).
    pub fn advance_host(&mut self, ns: u64) {
        self.host_clock += ns;
    }

    /// Attaches an instrumentation probe (replacing any existing one).
    pub fn set_probe(&mut self, probe: Box<dyn DeviceProbe>) {
        self.probe = Some(probe);
    }

    /// Detaches and returns the probe.
    pub fn take_probe(&mut self) -> Option<Box<dyn DeviceProbe>> {
        self.probe.take()
    }

    /// True when a probe is attached.
    pub fn has_probe(&self) -> bool {
        self.probe.is_some()
    }

    /// Attaches a managed-memory residency model.
    pub fn set_residency(&mut self, model: Box<dyn ResidencyModel>) {
        self.residency = Some(model);
    }

    /// Detaches and returns the residency model.
    pub fn take_residency(&mut self) -> Option<Box<dyn ResidencyModel>> {
        self.residency.take()
    }

    /// Mutable access to the residency model, if attached.
    pub fn residency_mut(&mut self) -> Option<&mut (dyn ResidencyModel + '_)> {
        self.residency.as_deref_mut().map(|m| m as _)
    }

    /// Shared access to the residency model, if attached.
    pub fn residency(&self) -> Option<&(dyn ResidencyModel + '_)> {
        self.residency.as_deref().map(|m| m as _)
    }

    /// Aggregate runtime counters for `device`.
    pub fn stats(&self, device: DeviceId) -> RuntimeStats {
        self.stats[device.index()]
    }

    fn check_device(&self, id: DeviceId) -> Result<(), AccelError> {
        if id.index() < self.devices.len() {
            Ok(())
        } else {
            Err(AccelError::UnknownDevice(id))
        }
    }

    /// Allocates `bytes` of device memory on `device`.
    ///
    /// # Errors
    ///
    /// [`AccelError::UnknownDevice`] or [`AccelError::OutOfMemory`].
    pub fn malloc(&mut self, device: DeviceId, bytes: u64) -> Result<DevicePtr, AccelError> {
        Ok(DevicePtr(self.malloc_info(device, bytes)?.addr))
    }

    /// Like [`Engine::malloc`] but returns full allocation metadata.
    ///
    /// # Errors
    ///
    /// [`AccelError::UnknownDevice`] or [`AccelError::OutOfMemory`].
    pub fn malloc_info(&mut self, device: DeviceId, bytes: u64) -> Result<Allocation, AccelError> {
        self.check_device(device)?;
        self.host_clock += self.cost.host_api_overhead_ns;
        let dev = &mut self.devices[device.index()];
        let usable = dev.usable_capacity();
        if dev.allocator().used() + bytes > usable {
            return Err(AccelError::OutOfMemory {
                device,
                requested: bytes,
                free: usable.saturating_sub(dev.allocator().used()),
            });
        }
        let alloc = dev.allocator_mut().alloc(device, bytes, false)?;
        self.stats[device.index()].allocs += 1;
        Ok(alloc)
    }

    /// Allocates `bytes` of managed (UVM) memory, visible to all devices.
    ///
    /// # Errors
    ///
    /// [`AccelError::OutOfMemory`] when the virtual managed space is gone.
    pub fn malloc_managed(&mut self, bytes: u64) -> Result<Allocation, AccelError> {
        self.host_clock += self.cost.host_api_overhead_ns;
        self.managed.alloc(DeviceId(0), bytes, true)
    }

    /// Frees device memory at `addr` on `device`, returning its metadata.
    ///
    /// # Errors
    ///
    /// [`AccelError::InvalidAddress`] on double-free or junk pointers.
    pub fn free(&mut self, device: DeviceId, addr: u64) -> Result<Allocation, AccelError> {
        self.check_device(device)?;
        self.host_clock += self.cost.host_api_overhead_ns;
        let alloc = self.devices[device.index()].allocator_mut().free(addr)?;
        self.stats[device.index()].frees += 1;
        Ok(alloc)
    }

    /// Frees managed memory at `addr`.
    ///
    /// # Errors
    ///
    /// [`AccelError::InvalidAddress`] on double-free or junk pointers.
    pub fn free_managed(&mut self, addr: u64) -> Result<Allocation, AccelError> {
        self.host_clock += self.cost.host_api_overhead_ns;
        self.managed.free(addr)
    }

    /// True when `addr` lies inside the managed address range.
    pub fn is_managed_addr(addr: u64) -> bool {
        (MANAGED_BASE..MANAGED_BASE + MANAGED_CAPACITY).contains(&addr)
    }

    /// Finds the live allocation (device or managed) containing `addr`.
    pub fn find_allocation(&self, device: DeviceId, addr: u64) -> Option<&Allocation> {
        if Self::is_managed_addr(addr) {
            self.managed.find_containing(addr)
        } else {
            self.try_device(device)
                .and_then(|d| d.allocator().find_containing(addr))
        }
    }

    /// The managed-space allocator (UVM bookkeeping reads it).
    pub fn managed_allocator(&self) -> &DeviceAllocator {
        &self.managed
    }

    /// Synchronous memory copy.
    ///
    /// # Errors
    ///
    /// [`AccelError::UnknownDevice`] for a bad device id.
    pub fn memcpy(
        &mut self,
        device: DeviceId,
        _dst: DevicePtr,
        _src: DevicePtr,
        bytes: u64,
        dir: CopyDirection,
    ) -> Result<u64, AccelError> {
        self.check_device(device)?;
        let spec = self.devices[device.index()].spec();
        let bw = match dir {
            CopyDirection::HostToDevice | CopyDirection::DeviceToHost => spec.link_bandwidth_gbps,
            CopyDirection::DeviceToDevice => spec.p2p_bandwidth_gbps,
            CopyDirection::HostToHost => 40.0, // DRAM-to-DRAM
        };
        let dur = self.cost.copy_duration_ns(bytes, bw);
        self.host_clock += self.cost.host_api_overhead_ns;
        let start = self.devices[device.index()]
            .stream_time(0)
            .max(self.host_clock);
        let end = start + dur;
        self.devices[device.index()].set_stream_time(0, end);
        // cudaMemcpy is synchronous with respect to the host.
        self.host_clock = self.host_clock.max(end);
        let st = &mut self.stats[device.index()];
        st.copies += 1;
        match dir {
            CopyDirection::HostToDevice => st.bytes_h2d += bytes,
            CopyDirection::DeviceToHost => st.bytes_d2h += bytes,
            _ => {}
        }
        Ok(dur)
    }

    /// Device-side memset; asynchronous like a small kernel.
    ///
    /// # Errors
    ///
    /// [`AccelError::UnknownDevice`] for a bad device id.
    pub fn memset(
        &mut self,
        device: DeviceId,
        _dst: DevicePtr,
        bytes: u64,
    ) -> Result<u64, AccelError> {
        self.check_device(device)?;
        let spec = self.devices[device.index()].spec();
        let dur =
            (bytes as f64 / spec.mem_bandwidth_gbps) as u64 + self.cost.kernel_fixed_overhead_ns;
        self.host_clock += self.cost.host_api_overhead_ns;
        let start = self.devices[device.index()]
            .stream_time(0)
            .max(self.host_clock);
        self.devices[device.index()].set_stream_time(0, start + dur);
        Ok(dur)
    }

    /// Blocks the host until `device` is idle (like `cudaDeviceSynchronize`).
    pub fn synchronize(&mut self, device: DeviceId) {
        self.host_clock += self.cost.host_api_overhead_ns;
        if let Some(d) = self.devices.get(device.index()) {
            self.host_clock = self.host_clock.max(d.busy_until());
        }
        if let Some(st) = self.stats.get_mut(device.index()) {
            st.syncs += 1;
        }
    }

    /// Synchronizes every device.
    pub fn synchronize_all(&mut self) {
        for id in self.device_ids() {
            self.synchronize(id);
        }
    }

    /// Launches `desc` on `stream` of `device`.
    ///
    /// Runs the full pipeline: validation → cost-model duration → UVM
    /// residency resolution → instrumentation probe callbacks → clock
    /// bookkeeping.
    ///
    /// # Errors
    ///
    /// [`AccelError::EmptyLaunch`] for empty grids/blocks and
    /// [`AccelError::InvalidKernelArg`] for out-of-range access specs.
    pub fn launch(
        &mut self,
        device: DeviceId,
        stream: StreamId,
        desc: &KernelDesc,
    ) -> Result<LaunchRecord, AccelError> {
        self.check_device(device)?;
        if desc.grid.is_empty() || desc.block.is_empty() {
            return Err(AccelError::EmptyLaunch(desc.name.to_string()));
        }
        for a in &desc.body.accesses {
            if a.arg_index >= desc.args.len() {
                return Err(AccelError::InvalidKernelArg {
                    kernel: desc.name.to_string(),
                    arg_index: a.arg_index,
                });
            }
        }

        let launch = LaunchId(self.next_launch);
        self.next_launch += 1;
        self.host_clock += self.cost.launch_host_overhead_ns;

        let spec = self.devices[device.index()].spec().clone();
        let base_duration = self.cost.kernel_duration_ns(&spec, desc);
        let start = self.devices[device.index()]
            .stream_time(stream)
            .max(self.host_clock);

        // --- UVM residency resolution -----------------------------------
        let mut uvm = AccessOutcome::HIT;
        if let Some(residency) = self.residency.as_deref_mut() {
            for a in &desc.body.accesses {
                if a.space != MemSpace::Global {
                    continue;
                }
                let arg = desc.args[a.arg_index];
                let base = arg.ptr.addr() + a.offset;
                if residency.is_managed(base) {
                    uvm =
                        uvm.merge(residency.on_kernel_access(device, base, a.len, a.bytes, a.kind));
                }
            }
        }

        // --- Instrumentation probe ---------------------------------------
        let mut instr = ProbeCosts::FREE;
        let mut summary = KernelTraceSummary::default();
        if let Some(probe) = self.probe.as_deref_mut() {
            let ctx = KernelCtx {
                launch,
                device,
                stream,
                desc,
                start,
            };
            let config = probe.on_kernel_begin(&ctx);
            if !config.is_disabled() {
                let rate = config.sampling_rate.max(1) as u64;
                for (i, a) in desc.body.accesses.iter().enumerate() {
                    let observe = match a.space {
                        MemSpace::Global | MemSpace::Local => config.global_accesses,
                        MemSpace::Shared | MemSpace::RemoteShared => config.shared_accesses,
                    };
                    if !observe {
                        continue;
                    }
                    let full = a.record_count();
                    let records = if rate == 1 {
                        full
                    } else {
                        (full / rate).max(u64::from(full > 0))
                    };
                    let arg = desc.args[a.arg_index];
                    let batch = AccessBatch {
                        launch,
                        spec_index: i,
                        base: arg.ptr.addr() + a.offset,
                        len: a.len,
                        records,
                        bytes: a.bytes,
                        elem_size: a.elem_size,
                        kind: a.kind,
                        space: a.space,
                        pattern: a.pattern,
                    };
                    match a.space {
                        MemSpace::Shared | MemSpace::RemoteShared => {
                            summary.shared_records += records
                        }
                        _ => summary.global_records += records,
                    }
                    instr = instr.merge(probe.on_access_batch(&ctx, &batch));
                }
                if config.barriers {
                    let n = desc.total_barriers();
                    if n > 0 {
                        summary.barriers = n;
                        instr = instr.merge(probe.on_barriers(&ctx, n));
                    }
                }
                if config.block_boundaries {
                    let n = desc.total_blocks();
                    summary.blocks = n;
                    instr = instr.merge(probe.on_block_boundaries(&ctx, n));
                }
                summary.instructions = desc.body.dynamic_instructions();
                summary.global_bytes = desc.body.global_bytes();
                instr = instr.merge(probe.on_kernel_end(&ctx, &summary));
            }
        }

        let end = start + base_duration + uvm.extra_device_ns + instr.device_ns;
        self.devices[device.index()].set_stream_time(stream, end);
        self.host_clock += instr.host_ns;
        self.stats[device.index()].launches += 1;

        Ok(LaunchRecord {
            launch,
            device,
            stream,
            name: desc.name.clone(),
            grid: desc.grid,
            block: desc.block,
            start,
            end,
            base_duration_ns: base_duration,
            instr_device_ns: instr.device_ns,
            instr_host_ns: instr.host_ns,
            uvm_stall_ns: uvm.extra_device_ns,
            uvm_faults: uvm.faults,
            uvm_migrated_bytes: uvm.migrated_in_bytes,
            uvm_evicted_bytes: uvm.evicted_bytes,
            uvm_peer_bytes: uvm.peer_in_bytes,
            records_emitted: summary.global_records + summary.shared_records,
            global_bytes: desc.body.global_bytes(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dim::Dim3;
    use crate::kernel::{AccessSpec, KernelBody};

    fn engine() -> Engine {
        Engine::new(vec![DeviceSpec::a100_80gb()])
    }

    fn simple_kernel(buf: DevicePtr, bytes: u64) -> KernelDesc {
        KernelDesc::new("copy_kernel", Dim3::linear(1024), Dim3::linear(256))
            .arg(buf, bytes)
            .body(KernelBody::streaming(bytes / 2, bytes / 2))
    }

    #[test]
    fn launch_advances_clocks() {
        let mut e = engine();
        let dev = DeviceId(0);
        let buf = e.malloc(dev, 1 << 20).unwrap();
        let before = e.host_now();
        let rec = e.launch(dev, 0, &simple_kernel(buf, 1 << 20)).unwrap();
        assert!(rec.end > rec.start);
        assert!(e.host_now() > before, "launch has host overhead");
        e.synchronize(dev);
        assert!(e.host_now() >= rec.end, "sync waits for the kernel");
    }

    #[test]
    fn launches_on_one_stream_serialize() {
        let mut e = engine();
        let dev = DeviceId(0);
        let buf = e.malloc(dev, 1 << 20).unwrap();
        let k = simple_kernel(buf, 1 << 20);
        let r1 = e.launch(dev, 0, &k).unwrap();
        let r2 = e.launch(dev, 0, &k).unwrap();
        assert!(r2.start >= r1.end, "same-stream kernels may not overlap");
    }

    #[test]
    fn streams_can_overlap() {
        let mut e = engine();
        let dev = DeviceId(0);
        let buf = e.malloc(dev, 1 << 26).unwrap();
        let k = simple_kernel(buf, 1 << 26);
        let r1 = e.launch(dev, 1, &k).unwrap();
        let r2 = e.launch(dev, 2, &k).unwrap();
        assert!(
            r2.start < r1.end,
            "different streams should overlap ({} vs {})",
            r2.start,
            r1.end
        );
    }

    #[test]
    fn empty_launch_rejected() {
        let mut e = engine();
        let dev = DeviceId(0);
        let desc = KernelDesc::new("bad", Dim3::new(0, 1, 1), Dim3::linear(32));
        assert!(matches!(
            e.launch(dev, 0, &desc),
            Err(AccelError::EmptyLaunch(_))
        ));
    }

    #[test]
    fn unbound_arg_rejected() {
        let mut e = engine();
        let dev = DeviceId(0);
        let desc = KernelDesc::new("bad", Dim3::linear(1), Dim3::linear(32))
            .body(KernelBody::default().access(AccessSpec::load(3, 128)));
        assert!(matches!(
            e.launch(dev, 0, &desc),
            Err(AccelError::InvalidKernelArg { arg_index: 3, .. })
        ));
    }

    #[test]
    fn probe_sees_batches_and_barriers() {
        use parking_lot::Mutex;
        use std::sync::Arc;

        #[derive(Default)]
        struct Shared {
            kernels: u64,
            batches: u64,
            records: u64,
            barriers: u64,
        }
        struct SharedProbe(Arc<Mutex<Shared>>);
        impl DeviceProbe for SharedProbe {
            fn on_kernel_begin(&mut self, _ctx: &KernelCtx<'_>) -> crate::probe::ProbeConfig {
                self.0.lock().kernels += 1;
                crate::probe::ProbeConfig::all()
            }
            fn on_access_batch(&mut self, _ctx: &KernelCtx<'_>, batch: &AccessBatch) -> ProbeCosts {
                let mut s = self.0.lock();
                s.batches += 1;
                s.records += batch.records;
                ProbeCosts::FREE
            }
            fn on_barriers(&mut self, _ctx: &KernelCtx<'_>, count: u64) -> ProbeCosts {
                self.0.lock().barriers += count;
                ProbeCosts::FREE
            }
        }

        let shared = Arc::new(Mutex::new(Shared::default()));
        let mut e = engine();
        let dev = DeviceId(0);
        let buf = e.malloc(dev, 1 << 20).unwrap();
        e.set_probe(Box::new(SharedProbe(Arc::clone(&shared))));
        let desc = KernelDesc::new("k", Dim3::linear(64), Dim3::linear(128))
            .arg(buf, 1 << 20)
            .body(KernelBody::streaming(1 << 19, 1 << 19).with_barriers(4));
        let rec = e.launch(dev, 0, &desc).unwrap();

        let s = shared.lock();
        assert_eq!(s.kernels, 1);
        assert_eq!(s.batches, 2, "one batch per access stream");
        assert_eq!(s.records, desc.body.memory_records());
        assert_eq!(s.barriers, desc.total_barriers());
        assert_eq!(rec.records_emitted, s.records);
    }

    #[test]
    fn memcpy_is_host_synchronous() {
        let mut e = engine();
        let dev = DeviceId(0);
        let buf = e.malloc(dev, 1 << 20).unwrap();
        let before = e.host_now();
        let dur = e
            .memcpy(
                dev,
                buf,
                DevicePtr(0x1000),
                1 << 20,
                CopyDirection::HostToDevice,
            )
            .unwrap();
        assert!(dur > 0);
        assert!(e.host_now().as_nanos() >= before.as_nanos() + dur);
        assert_eq!(e.stats(dev).bytes_h2d, 1 << 20);
    }

    #[test]
    fn oom_when_capacity_limited() {
        let mut e = engine();
        let dev = DeviceId(0);
        e.device_mut(dev).limit_usable_capacity(1 << 20);
        assert!(e.malloc(dev, 2 << 20).is_err());
        assert!(e.malloc(dev, 1 << 19).is_ok());
    }

    #[test]
    fn managed_alloc_lives_in_managed_range() {
        let mut e = engine();
        let a = e.malloc_managed(1 << 20).unwrap();
        assert!(Engine::is_managed_addr(a.addr));
        assert!(e.find_allocation(DeviceId(0), a.addr + 5).is_some());
        e.free_managed(a.addr).unwrap();
        assert!(e.find_allocation(DeviceId(0), a.addr + 5).is_none());
    }

    #[test]
    fn unknown_device_errors() {
        let mut e = engine();
        assert!(matches!(
            e.malloc(DeviceId(9), 64),
            Err(AccelError::UnknownDevice(DeviceId(9)))
        ));
    }

    #[test]
    fn sampling_reduces_records() {
        struct SamplingProbe {
            records: u64,
        }
        impl DeviceProbe for SamplingProbe {
            fn on_kernel_begin(&mut self, _ctx: &KernelCtx<'_>) -> crate::probe::ProbeConfig {
                crate::probe::ProbeConfig::global_only().with_sampling(10)
            }
            fn on_access_batch(&mut self, _ctx: &KernelCtx<'_>, batch: &AccessBatch) -> ProbeCosts {
                self.records += batch.records;
                ProbeCosts::FREE
            }
        }
        let mut e = engine();
        let dev = DeviceId(0);
        let buf = e.malloc(dev, 1 << 20).unwrap();
        e.set_probe(Box::new(SamplingProbe { records: 0 }));
        let desc = simple_kernel(buf, 1 << 20);
        let rec = e.launch(dev, 0, &desc).unwrap();
        let full = desc.body.memory_records();
        assert!(rec.records_emitted <= full / 10 + 2);
    }
}
