//! Timing cost model.
//!
//! A roofline-style model: kernel duration is the maximum of its compute
//! time and its memory time, scaled by an occupancy-derived utilization
//! factor, plus fixed launch overhead. Copies are bandwidth/latency bound.
//! The analysis-cost constants model the per-record price of trace
//! processing on a single CPU thread versus parallel on-device analysis
//! threads — the knob behind the paper's Fig. 9 overhead gap.

use crate::device::DeviceSpec;
use crate::kernel::KernelDesc;
use serde::{Deserialize, Serialize};

/// All tunable timing constants of the simulator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Host-side cost of any runtime API call (ns).
    pub host_api_overhead_ns: u64,
    /// Host-side cost of enqueuing a kernel launch (ns).
    pub launch_host_overhead_ns: u64,
    /// Fixed device-side kernel startup/teardown (ns).
    pub kernel_fixed_overhead_ns: u64,
    /// Fixed latency of any memcpy (ns).
    pub memcpy_fixed_overhead_ns: u64,
    /// Device time per instrumented record: the inline callback executed by
    /// patched instructions (ns/record). Applies to both analysis modes.
    pub device_callback_ns_per_record: f64,
    /// Single-thread CPU time to analyze one trace record (ns/record) —
    /// the paper's CPU-analysis bottleneck.
    pub cpu_analysis_ns_per_record: f64,
    /// Device time for one GPU-resident analysis thread to process one
    /// record (ns/record), before dividing by the thread-group width.
    pub gpu_analysis_ns_per_record: f64,
    /// Number of concurrent on-device analysis threads PASTA launches.
    pub gpu_analysis_threads: u64,
    /// Host-side per-record touch cost while draining a fetched trace
    /// buffer into analysis-ready form (ns/record).
    pub cpu_drain_ns_per_record: f64,
    /// Stall latency each time the trace buffer fills and must round-trip
    /// to the host before the kernel resumes (ns/flush).
    pub buffer_flush_latency_ns: u64,
    /// Floor on achievable utilization for tiny launches.
    pub min_utilization: f64,
}

impl CostModel {
    /// Compute time for `flops` on `spec` at full utilization, ns.
    fn compute_ns(&self, spec: &DeviceSpec, flops: u64) -> f64 {
        // tflops * 1e12 flop/s = tflops * 1e3 flop/ns.
        flops as f64 / (spec.fp32_tflops * 1_000.0)
    }

    /// Memory time for `bytes` at `spec`'s HBM bandwidth, ns.
    fn memory_ns(&self, spec: &DeviceSpec, bytes: u64) -> f64 {
        // GB/s == bytes/ns.
        bytes as f64 / spec.mem_bandwidth_gbps
    }

    /// Utilization factor in `[min_utilization, 1]` from launch occupancy.
    pub fn utilization(&self, spec: &DeviceSpec, desc: &KernelDesc) -> f64 {
        let resident = spec.max_resident_threads() as f64 / 2.0;
        let occ = desc.total_threads() as f64 / resident;
        occ.min(1.0).max(self.min_utilization)
    }

    /// Uninstrumented kernel duration on `spec`, ns.
    pub fn kernel_duration_ns(&self, spec: &DeviceSpec, desc: &KernelDesc) -> u64 {
        let util = self.utilization(spec, desc);
        let compute = self.compute_ns(spec, desc.body.flops) / util;
        let memory = self.memory_ns(spec, desc.body.global_bytes()) / util;
        compute.max(memory) as u64 + self.kernel_fixed_overhead_ns
    }

    /// Duration of a `bytes`-long copy over a link of `bandwidth_gbps`, ns.
    pub fn copy_duration_ns(&self, bytes: u64, bandwidth_gbps: f64) -> u64 {
        (bytes as f64 / bandwidth_gbps) as u64 + self.memcpy_fixed_overhead_ns
    }

    /// Device time for GPU-resident analysis of `records` records, ns.
    pub fn gpu_analysis_ns(&self, records: u64) -> u64 {
        (records as f64 * self.gpu_analysis_ns_per_record / self.gpu_analysis_threads as f64).ceil()
            as u64
    }

    /// Host time for single-thread CPU analysis of `records` records, ns.
    pub fn cpu_analysis_ns(&self, records: u64) -> u64 {
        (records as f64 * self.cpu_analysis_ns_per_record).ceil() as u64
    }

    /// Host time to drain `records` records out of fetched buffers, ns.
    pub fn cpu_drain_ns(&self, records: u64) -> u64 {
        (records as f64 * self.cpu_drain_ns_per_record).ceil() as u64
    }

    /// Device time spent executing inline instrumentation callbacks for
    /// `records` records, ns.
    pub fn device_callback_ns(&self, records: u64) -> u64 {
        (records as f64 * self.device_callback_ns_per_record).ceil() as u64
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            host_api_overhead_ns: 1_500,
            launch_host_overhead_ns: 6_000,
            kernel_fixed_overhead_ns: 3_000,
            memcpy_fixed_overhead_ns: 9_000,
            device_callback_ns_per_record: 1.6,
            cpu_analysis_ns_per_record: 110.0,
            gpu_analysis_ns_per_record: 0.9,
            gpu_analysis_threads: 4_096,
            cpu_drain_ns_per_record: 18.0,
            buffer_flush_latency_ns: 30_000,
            min_utilization: 0.02,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dim::Dim3;
    use crate::kernel::KernelBody;
    use crate::mem::DevicePtr;

    fn desc(threads: u32, flops: u64, bytes: u64) -> KernelDesc {
        KernelDesc::new("k", Dim3::linear(threads / 256), Dim3::linear(256))
            .arg(DevicePtr(0x100), bytes)
            .body(KernelBody::streaming(bytes / 2, bytes / 2).with_flops(flops))
    }

    #[test]
    fn memory_bound_kernel_scales_with_bandwidth() {
        let m = CostModel::default();
        let a100 = DeviceSpec::a100_80gb();
        let r3060 = DeviceSpec::rtx_3060();
        let d = desc(1 << 20, 1, 1 << 30);
        let fast = m.kernel_duration_ns(&a100, &d);
        let slow = m.kernel_duration_ns(&r3060, &d);
        assert!(
            slow > fast * 3,
            "3060 ({slow}ns) should be much slower than A100 ({fast}ns)"
        );
    }

    #[test]
    fn compute_bound_kernel_scales_with_tflops() {
        let m = CostModel::default();
        let a100 = DeviceSpec::a100_80gb();
        let d = desc(1 << 20, 10_000_000_000, 1024);
        let ns = m.kernel_duration_ns(&a100, &d);
        // 10 GFLOP at 19.5 TFLOP/s ≈ 513 us.
        assert!((400_000..700_000).contains(&ns), "got {ns}");
    }

    #[test]
    fn tiny_launches_hit_utilization_floor() {
        let m = CostModel::default();
        let a100 = DeviceSpec::a100_80gb();
        let tiny = desc(256, 1, 1 << 20);
        let big = desc(1 << 20, 1, 1 << 20);
        assert!(m.utilization(&a100, &tiny) < m.utilization(&a100, &big));
        assert!(m.utilization(&a100, &tiny) >= m.min_utilization);
        assert!(
            m.kernel_duration_ns(&a100, &tiny) > m.kernel_duration_ns(&a100, &big),
            "under-occupied launch must run longer"
        );
    }

    #[test]
    fn gpu_analysis_is_orders_of_magnitude_cheaper_than_cpu() {
        let m = CostModel::default();
        let records = 100_000_000u64;
        let cpu = m.cpu_analysis_ns(records);
        let gpu = m.gpu_analysis_ns(records);
        let ratio = cpu as f64 / gpu as f64;
        assert!(
            ratio > 1_000.0,
            "CPU/GPU analysis ratio {ratio} too small for Fig. 9 shapes"
        );
    }

    #[test]
    fn copy_includes_fixed_latency() {
        let m = CostModel::default();
        assert_eq!(m.copy_duration_ns(0, 24.0), m.memcpy_fixed_overhead_ns);
        let big = m.copy_duration_ns(24 << 30, 24.0);
        assert!(big > 1_000_000_000, "24 GiB at 24 GB/s is about a second");
    }

    #[test]
    fn analysis_costs_round_up() {
        let m = CostModel::default();
        assert!(m.cpu_analysis_ns(1) >= 1);
        assert!(m.gpu_analysis_ns(1) >= 1);
        assert!(m.device_callback_ns(1) >= 1);
    }
}
