//! Device memory allocation.
//!
//! A first-fit free-list allocator over a virtual address range. Real device
//! allocators are more elaborate, but PASTA only observes *addresses and
//! sizes* of allocations, so first-fit with coalescing reproduces every
//! behaviour the framework depends on: stable addresses, reuse after free,
//! and out-of-memory once capacity is exhausted.

use crate::error::AccelError;
use crate::id::{AllocId, DeviceId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Alignment of all device allocations, matching CUDA's 256-byte guarantee.
pub const ALLOC_ALIGN: u64 = 256;

/// A pointer into simulated device (or managed) memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DevicePtr(pub u64);

impl DevicePtr {
    /// The raw virtual address.
    pub fn addr(self) -> u64 {
        self.0
    }

    /// Pointer displaced by `off` bytes.
    pub fn offset(self, off: u64) -> DevicePtr {
        DevicePtr(self.0 + off)
    }
}

impl fmt::Display for DevicePtr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// Metadata of a live allocation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Allocation {
    /// Unique id of the allocation.
    pub id: AllocId,
    /// Base address.
    pub addr: u64,
    /// Size in bytes (as requested, before alignment padding).
    pub size: u64,
    /// True when allocated through the managed (UVM) API.
    pub managed: bool,
}

impl Allocation {
    /// True if `[addr, addr+len)` lies within this allocation.
    pub fn contains_range(&self, addr: u64, len: u64) -> bool {
        addr >= self.addr && addr + len <= self.addr + self.size
    }
}

/// First-fit free-list allocator over `[base, base + capacity)`.
#[derive(Debug)]
pub struct DeviceAllocator {
    base: u64,
    capacity: u64,
    /// Free chunks keyed by start address (BTreeMap keeps them sorted for
    /// neighbour coalescing).
    free: BTreeMap<u64, u64>,
    /// Live allocations keyed by base address.
    live: BTreeMap<u64, Allocation>,
    used: u64,
    next_id: u64,
    peak_used: u64,
}

impl DeviceAllocator {
    /// Creates an allocator over `[base, base + capacity)`.
    pub fn new(base: u64, capacity: u64) -> Self {
        let mut free = BTreeMap::new();
        free.insert(base, capacity);
        DeviceAllocator {
            base,
            capacity,
            free,
            live: BTreeMap::new(),
            used: 0,
            next_id: 1,
            peak_used: 0,
        }
    }

    /// Base address of the managed range.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently allocated (including alignment padding).
    pub fn used(&self) -> u64 {
        self.used
    }

    /// High-water mark of [`used`](Self::used).
    pub fn peak_used(&self) -> u64 {
        self.peak_used
    }

    /// Bytes available for new allocations.
    pub fn free_bytes(&self) -> u64 {
        self.capacity - self.used
    }

    /// Number of live allocations.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// Allocates `size` bytes, first-fit.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::OutOfMemory`] when no free chunk can hold the
    /// aligned size.
    pub fn alloc(
        &mut self,
        device: DeviceId,
        size: u64,
        managed: bool,
    ) -> Result<Allocation, AccelError> {
        let size = size.max(1);
        let padded = size.div_ceil(ALLOC_ALIGN) * ALLOC_ALIGN;
        let slot = self
            .free
            .iter()
            .find(|(_, &len)| len >= padded)
            .map(|(&addr, &len)| (addr, len));
        let (addr, len) = slot.ok_or(AccelError::OutOfMemory {
            device,
            requested: size,
            free: self.free_bytes(),
        })?;
        self.free.remove(&addr);
        if len > padded {
            self.free.insert(addr + padded, len - padded);
        }
        self.used += padded;
        self.peak_used = self.peak_used.max(self.used);
        let id = AllocId(self.next_id);
        self.next_id += 1;
        let alloc = Allocation {
            id,
            addr,
            size,
            managed,
        };
        self.live.insert(addr, alloc.clone());
        Ok(alloc)
    }

    /// Frees the allocation starting at `addr`, coalescing neighbours.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::InvalidAddress`] if `addr` is not the base of a
    /// live allocation.
    pub fn free(&mut self, addr: u64) -> Result<Allocation, AccelError> {
        let alloc = self
            .live
            .remove(&addr)
            .ok_or(AccelError::InvalidAddress(addr))?;
        let padded = alloc.size.max(1).div_ceil(ALLOC_ALIGN) * ALLOC_ALIGN;
        self.used -= padded;
        let mut start = addr;
        let mut len = padded;
        // Coalesce with the predecessor if adjacent.
        if let Some((&p_start, &p_len)) = self.free.range(..addr).next_back() {
            if p_start + p_len == start {
                self.free.remove(&p_start);
                start = p_start;
                len += p_len;
            }
        }
        // Coalesce with the successor if adjacent.
        if let Some(&s_len) = self.free.get(&(addr + padded)) {
            self.free.remove(&(addr + padded));
            len += s_len;
        }
        self.free.insert(start, len);
        Ok(alloc)
    }

    /// Looks up the live allocation containing `addr`, if any.
    pub fn find_containing(&self, addr: u64) -> Option<&Allocation> {
        self.live
            .range(..=addr)
            .next_back()
            .map(|(_, a)| a)
            .filter(|a| addr < a.addr + a.size)
    }

    /// Iterates over live allocations in address order.
    pub fn iter(&self) -> impl Iterator<Item = &Allocation> {
        self.live.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc(a: &mut DeviceAllocator, size: u64) -> Allocation {
        a.alloc(DeviceId(0), size, false).expect("alloc")
    }

    #[test]
    fn alloc_free_round_trip() {
        let mut a = DeviceAllocator::new(0x1000, 1 << 20);
        let x = alloc(&mut a, 1000);
        assert_eq!(x.addr % ALLOC_ALIGN, 0);
        assert_eq!(a.live_count(), 1);
        assert!(a.used() >= 1000);
        a.free(x.addr).unwrap();
        assert_eq!(a.used(), 0);
        assert_eq!(a.live_count(), 0);
    }

    #[test]
    fn freed_memory_is_reusable() {
        let mut a = DeviceAllocator::new(0, 4096);
        let x = alloc(&mut a, 4096);
        assert!(a.alloc(DeviceId(0), 1, false).is_err());
        a.free(x.addr).unwrap();
        let y = alloc(&mut a, 4096);
        assert_eq!(y.addr, x.addr, "coalesced chunk reused from the start");
    }

    #[test]
    fn coalescing_merges_neighbours() {
        let mut a = DeviceAllocator::new(0, 3 * ALLOC_ALIGN);
        let x = alloc(&mut a, ALLOC_ALIGN);
        let y = alloc(&mut a, ALLOC_ALIGN);
        let z = alloc(&mut a, ALLOC_ALIGN);
        a.free(x.addr).unwrap();
        a.free(z.addr).unwrap();
        a.free(y.addr).unwrap(); // middle free must merge all three
        let w = alloc(&mut a, 3 * ALLOC_ALIGN);
        assert_eq!(w.addr, 0);
    }

    #[test]
    fn oom_reports_free_bytes() {
        let mut a = DeviceAllocator::new(0, 1024);
        let _x = alloc(&mut a, 512);
        let err = a.alloc(DeviceId(3), 4096, false).unwrap_err();
        match err {
            AccelError::OutOfMemory {
                device,
                requested,
                free,
            } => {
                assert_eq!(device, DeviceId(3));
                assert_eq!(requested, 4096);
                assert_eq!(free, 512);
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn double_free_is_an_error() {
        let mut a = DeviceAllocator::new(0, 1 << 16);
        let x = alloc(&mut a, 100);
        a.free(x.addr).unwrap();
        assert_eq!(a.free(x.addr), Err(AccelError::InvalidAddress(x.addr)));
    }

    #[test]
    fn find_containing_respects_bounds() {
        let mut a = DeviceAllocator::new(0x1000, 1 << 20);
        let x = alloc(&mut a, 100);
        assert!(a.find_containing(x.addr).is_some());
        assert!(a.find_containing(x.addr + 99).is_some());
        assert!(a.find_containing(x.addr + 100).is_none());
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut a = DeviceAllocator::new(0, 1 << 20);
        let x = alloc(&mut a, 1000);
        let _y = alloc(&mut a, 2000);
        let peak = a.used();
        a.free(x.addr).unwrap();
        assert_eq!(a.peak_used(), peak);
    }

    #[test]
    fn contains_range_checks_extent() {
        let alloc = Allocation {
            id: AllocId(1),
            addr: 100,
            size: 50,
            managed: false,
        };
        assert!(alloc.contains_range(100, 50));
        assert!(alloc.contains_range(120, 10));
        assert!(!alloc.contains_range(120, 40));
        assert!(!alloc.contains_range(99, 2));
    }
}
