//! # accel-sim — a discrete-event GPU accelerator simulator
//!
//! This crate is the hardware substrate of the PASTA reproduction. The paper
//! profiles real NVIDIA/AMD GPUs; this environment has none, so `accel-sim`
//! stands in for the hardware. It models:
//!
//! * **Devices** with calibrated specs ([`DeviceSpec::a100_80gb`],
//!   [`DeviceSpec::rtx_3060`], [`DeviceSpec::mi300x`]) — SM count, memory
//!   capacity and bandwidth, interconnect bandwidth, peak FLOP/s.
//! * **A device memory allocator** ([`mem::DeviceAllocator`]) handing out
//!   virtual addresses, so memory events carry realistic pointers.
//! * **Kernels** described by [`KernelDesc`]: a grid/block shape plus a
//!   [`KernelBody`] of [`AccessSpec`]s that determine both the simulated
//!   duration (roofline-style cost model) and the instruction-level trace
//!   the kernel emits when instrumented.
//! * **Instrumentation probes** ([`DeviceProbe`]) — the attachment point the
//!   simulated vendor profiling layers (Compute Sanitizer, NVBit,
//!   ROCProfiler) plug into. Probes see access batches, barriers and block
//!   boundaries, and report the device/host time their processing costs,
//!   which the engine folds into the simulated clocks. This is the mechanism
//!   that makes the paper's CPU-analysis vs. GPU-resident-analysis overhead
//!   gap (Fig. 2 / Fig. 9) *emerge* instead of being hardcoded.
//! * **Managed-memory residency hooks** ([`ResidencyModel`]) that the UVM
//!   simulator implements, so kernels touching non-resident pages pay fault
//!   and migration costs.
//!
//! The simulator is deliberately single-threaded and deterministic: all
//! timing is virtual (nanosecond [`clock`]s), so experiments are exactly
//! reproducible.
//!
//! ## Example
//!
//! ```
//! use accel_sim::{Engine, DeviceSpec, KernelDesc, KernelBody, Dim3};
//!
//! # fn main() -> Result<(), accel_sim::AccelError> {
//! let mut engine = Engine::new(vec![DeviceSpec::a100_80gb()]);
//! let dev = engine.device_ids()[0];
//! let buf = engine.malloc(dev, 1 << 20)?;
//! let desc = KernelDesc::new("axpy_kernel", Dim3::linear(256), Dim3::linear(256))
//!     .arg(buf, 1 << 20)
//!     .body(KernelBody::streaming(1 << 20, 1 << 20));
//! let record = engine.launch(dev, 0, &desc)?;
//! assert!(record.end > record.start);
//! engine.free(dev, buf.addr())?;
//! # Ok(())
//! # }
//! ```

pub mod clock;
pub mod cost;
pub mod device;
pub mod dim;
pub mod engine;
pub mod error;
pub mod id;
pub mod instrument;
pub mod kernel;
pub mod mem;
pub mod probe;
pub mod residency;
pub mod runtime;
pub mod symbol;
pub mod threads;
pub mod trace;

pub use clock::SimTime;
pub use cost::CostModel;
pub use device::{Device, DeviceSpec};
pub use dim::Dim3;
pub use engine::Engine;
pub use error::{panic_message, AccelError};
pub use id::{AllocId, DeviceId, LaunchId, StreamId, Vendor};
pub use instrument::{
    BackendCosts, DeviceTraceSink, OverheadBreakdown, ProfilerHandle, TraceCtx, TraceProfiler,
};
pub use kernel::{AccessKind, AccessPattern, AccessSpec, KernelBody, KernelDesc, MemSpace};
pub use mem::{Allocation, DevicePtr};
pub use probe::{AnalysisMode, DeviceProbe, InstrCoverage, ProbeConfig, ProbeCosts};
pub use residency::{AccessOutcome, PeerTransfer, ResidencyAdvice, ResidencyModel};
pub use runtime::{CopyDirection, DeviceRuntime, LaunchRecord, RuntimeStats};
pub use symbol::{Symbol, SymbolTable};
pub use threads::resolve_threads;
pub use trace::{AccessBatch, KernelTraceSummary};
