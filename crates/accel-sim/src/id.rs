//! Identifier newtypes used throughout the simulator.
//!
//! Each id is a thin newtype ([C-NEWTYPE]) so that a device index can never
//! be confused with a stream index or a launch sequence number.
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a simulated accelerator device within an [`crate::Engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DeviceId(pub u32);

impl DeviceId {
    /// Returns the raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gpu{}", self.0)
    }
}

/// A hardware-queue (stream) identifier, scoped to a device.
///
/// Stream 0 is the default stream, mirroring CUDA/HIP semantics.
pub type StreamId = u32;

/// Monotonically increasing kernel-launch sequence number.
///
/// The paper's range-specific analysis selects launches by "grid id"
/// (`START_GRID_ID`/`END_GRID_ID`); `LaunchId` is that grid id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LaunchId(pub u64);

impl LaunchId {
    /// Returns the raw sequence number.
    pub fn value(self) -> u64 {
        self.0
    }
}

impl fmt::Display for LaunchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "launch#{}", self.0)
    }
}

/// Identifier of a device memory allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AllocId(pub u64);

impl fmt::Display for AllocId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "alloc#{}", self.0)
    }
}

/// Accelerator vendor, used to pick event-naming conventions and
/// normalization rules in the PASTA event handler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Vendor {
    /// NVIDIA GPUs (CUDA runtime, Compute Sanitizer, NVBit).
    Nvidia,
    /// AMD GPUs (HIP runtime, ROCProfiler-SDK).
    Amd,
    /// A stand-in for future accelerators (the paper's "incoming
    /// accelerators"); used in extensibility tests.
    Other,
}

impl fmt::Display for Vendor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Vendor::Nvidia => "NVIDIA",
            Vendor::Amd => "AMD",
            Vendor::Other => "OTHER",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(DeviceId(1).to_string(), "gpu1");
        assert_eq!(LaunchId(42).to_string(), "launch#42");
        assert_eq!(AllocId(7).to_string(), "alloc#7");
        assert_eq!(Vendor::Nvidia.to_string(), "NVIDIA");
        assert_eq!(Vendor::Amd.to_string(), "AMD");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(LaunchId(1));
        set.insert(LaunchId(2));
        set.insert(LaunchId(1));
        assert_eq!(set.len(), 2);
        assert!(LaunchId(1) < LaunchId(2));
        assert!(DeviceId(0) < DeviceId(1));
    }

    #[test]
    fn device_id_index_round_trip() {
        assert_eq!(DeviceId(3).index(), 3);
        assert_eq!(LaunchId(9).value(), 9);
    }
}
