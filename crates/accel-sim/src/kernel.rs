//! Kernel descriptions.
//!
//! A [`KernelDesc`] carries everything the simulator needs: launch geometry,
//! argument buffers, and a [`KernelBody`] that summarizes the kernel's work
//! as FLOPs plus a list of [`AccessSpec`]s. The body drives both the timing
//! model and the instruction-level trace stream that instrumentation probes
//! observe — the same information a real profiler would extract from the
//! running kernel, produced analytically.

use crate::dim::Dim3;
use crate::mem::DevicePtr;
use crate::symbol::Symbol;
use serde::{Deserialize, Serialize};

/// Direction of a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// A load instruction.
    Load,
    /// A store instruction.
    Store,
    /// A read-modify-write atomic.
    Atomic,
}

/// Memory space targeted by an access, mirroring the paper's Table II
/// fine-grained event list (global, shared, remote shared).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemSpace {
    /// Device global memory (HBM/GDDR).
    Global,
    /// On-chip shared memory / LDS.
    Shared,
    /// Remote (cluster) shared memory, a Hopper+ feature.
    RemoteShared,
    /// Thread-local (spill) space.
    Local,
}

/// Spatial pattern of an access stream within its region.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AccessPattern {
    /// Fully coalesced sequential sweep.
    Sequential,
    /// Strided sweep with the given stride in bytes.
    Strided {
        /// Distance between consecutive accesses, bytes.
        stride: u64,
    },
    /// Data-dependent scatter/gather over the region.
    Random,
}

/// One logical access stream of a kernel: which argument buffer it touches,
/// the extent touched, and how many bytes move in total (reuse makes
/// `bytes > len` common, e.g. GEMM operands).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccessSpec {
    /// Index into [`KernelDesc::args`].
    pub arg_index: usize,
    /// Byte offset of the touched region within the argument buffer.
    pub offset: u64,
    /// Extent of the touched region in bytes.
    pub len: u64,
    /// Total bytes transferred by this stream over the kernel's lifetime.
    pub bytes: u64,
    /// Load / store / atomic.
    pub kind: AccessKind,
    /// Global / shared / remote-shared / local.
    pub space: MemSpace,
    /// Spatial pattern.
    pub pattern: AccessPattern,
    /// Element size per lane access, bytes (4 for `f32`, 16 for `float4`).
    pub elem_size: u32,
}

impl AccessSpec {
    /// A convenient fully-coalesced global load covering `len` bytes once.
    pub fn load(arg_index: usize, len: u64) -> Self {
        AccessSpec {
            arg_index,
            offset: 0,
            len,
            bytes: len,
            kind: AccessKind::Load,
            space: MemSpace::Global,
            pattern: AccessPattern::Sequential,
            elem_size: 4,
        }
    }

    /// A fully-coalesced global store covering `len` bytes once.
    pub fn store(arg_index: usize, len: u64) -> Self {
        AccessSpec {
            kind: AccessKind::Store,
            ..AccessSpec::load(arg_index, len)
        }
    }

    /// Overrides the total transferred bytes (models reuse: `bytes > len`).
    pub fn with_bytes(mut self, bytes: u64) -> Self {
        self.bytes = bytes;
        self
    }

    /// Restricts the stream to a sub-range of the buffer.
    pub fn with_range(mut self, offset: u64, len: u64) -> Self {
        self.offset = offset;
        self.len = len;
        self
    }

    /// Sets the access pattern.
    pub fn with_pattern(mut self, pattern: AccessPattern) -> Self {
        self.pattern = pattern;
        self
    }

    /// Sets the memory space.
    pub fn in_space(mut self, space: MemSpace) -> Self {
        self.space = space;
        self
    }

    /// Number of warp-level access records this stream emits when
    /// instrumented: one record per 32-lane coalesced access instruction.
    pub fn record_count(&self) -> u64 {
        let per_warp = self.elem_size as u64 * 32;
        self.bytes.div_ceil(per_warp.max(1)).max(1)
    }
}

/// Summary of a kernel's dynamic behaviour.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct KernelBody {
    /// Floating-point operations executed.
    pub flops: u64,
    /// Memory access streams.
    pub accesses: Vec<AccessSpec>,
    /// Static shared memory per block, bytes.
    pub shared_mem_per_block: u64,
    /// `__syncthreads()` executions per block.
    pub barriers_per_block: u32,
    /// Device-side function calls per block (Table II events).
    pub device_calls_per_block: u32,
    /// Total dynamic instructions, if known; otherwise estimated from
    /// accesses and FLOPs. NVBit-style instrumentation sees *all* of these.
    pub instruction_count: Option<u64>,
}

impl KernelBody {
    /// A compute-only body with no memory traffic.
    pub fn compute(flops: u64) -> Self {
        KernelBody {
            flops,
            ..KernelBody::default()
        }
    }

    /// A streaming body: read `read_bytes` from arg 0 and write
    /// `write_bytes` to the last arg (or arg 0 when only one arg is bound).
    pub fn streaming(read_bytes: u64, write_bytes: u64) -> Self {
        KernelBody {
            flops: (read_bytes + write_bytes) / 4,
            accesses: vec![
                AccessSpec::load(0, read_bytes),
                AccessSpec::store(usize::MAX, write_bytes), // resolved at launch
            ],
            ..KernelBody::default()
        }
    }

    /// Adds an access stream.
    pub fn access(mut self, spec: AccessSpec) -> Self {
        self.accesses.push(spec);
        self
    }

    /// Sets FLOPs.
    pub fn with_flops(mut self, flops: u64) -> Self {
        self.flops = flops;
        self
    }

    /// Sets barriers per block.
    pub fn with_barriers(mut self, n: u32) -> Self {
        self.barriers_per_block = n;
        self
    }

    /// Sets shared memory per block.
    pub fn with_shared_mem(mut self, bytes: u64) -> Self {
        self.shared_mem_per_block = bytes;
        self
    }

    /// Total bytes moved through global memory.
    pub fn global_bytes(&self) -> u64 {
        self.accesses
            .iter()
            .filter(|a| a.space == MemSpace::Global)
            .map(|a| a.bytes)
            .sum()
    }

    /// Total warp-level memory access records across all streams.
    pub fn memory_records(&self) -> u64 {
        self.accesses.iter().map(AccessSpec::record_count).sum()
    }

    /// Dynamic instruction estimate: explicit count when provided, else
    /// memory instructions plus one instruction per 2 FLOPs (FMA) plus a
    /// 30% control-flow/addressing surcharge — the population NVBit-style
    /// instrumentation must consider.
    pub fn dynamic_instructions(&self) -> u64 {
        self.instruction_count.unwrap_or_else(|| {
            let mem = self.memory_records();
            let alu = self.flops / 2 / 32; // warp-level FMA instructions
            ((mem + alu) as f64 * 1.3) as u64
        })
    }
}

/// A kernel argument: a device buffer the kernel may touch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelArg {
    /// Base device pointer.
    pub ptr: DevicePtr,
    /// Buffer length in bytes.
    pub len: u64,
}

/// Full description of a kernel launch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelDesc {
    /// Kernel symbol name (demangled), e.g.
    /// `"ampere_sgemm_128x64_tn"` or `"at::native::im2col_kernel"`.
    /// Interned: launching the same kernel repeatedly shares one
    /// allocation, and every downstream event clones a refcount.
    pub name: Symbol,
    /// Grid dimensions.
    pub grid: Dim3,
    /// Block dimensions.
    pub block: Dim3,
    /// Argument buffers.
    pub args: Vec<KernelArg>,
    /// Dynamic behaviour summary.
    pub body: KernelBody,
}

impl KernelDesc {
    /// Creates a kernel description with no arguments and an empty body.
    pub fn new(name: impl Into<Symbol>, grid: Dim3, block: Dim3) -> Self {
        KernelDesc {
            name: name.into(),
            grid,
            block,
            args: Vec::new(),
            body: KernelBody::default(),
        }
    }

    /// Appends an argument buffer.
    pub fn arg(mut self, ptr: DevicePtr, len: u64) -> Self {
        self.args.push(KernelArg { ptr, len });
        self
    }

    /// Sets the body, resolving any `usize::MAX` arg indices (used by
    /// [`KernelBody::streaming`]) to the last bound argument.
    pub fn body(mut self, mut body: KernelBody) -> Self {
        let last = self.args.len().saturating_sub(1);
        for a in &mut body.accesses {
            if a.arg_index == usize::MAX {
                a.arg_index = last;
            }
        }
        self.body = body;
        self
    }

    /// Total threads in the launch.
    pub fn total_threads(&self) -> u64 {
        self.grid.count() * self.block.count()
    }

    /// Total blocks in the launch.
    pub fn total_blocks(&self) -> u64 {
        self.grid.count()
    }

    /// Total barrier executions across the launch.
    pub fn total_barriers(&self) -> u64 {
        self.total_blocks() * self.body.barriers_per_block as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_count_is_warp_granular() {
        let spec = AccessSpec::load(0, 128 * 1024);
        // elem 4B * 32 lanes = 128B per record.
        assert_eq!(spec.record_count(), 1024);
        let spec16 = AccessSpec {
            elem_size: 16,
            ..AccessSpec::load(0, 128 * 1024)
        };
        assert_eq!(spec16.record_count(), 256);
    }

    #[test]
    fn record_count_never_zero() {
        assert_eq!(AccessSpec::load(0, 1).record_count(), 1);
    }

    #[test]
    fn streaming_body_resolves_last_arg() {
        let desc = KernelDesc::new("k", Dim3::linear(1), Dim3::linear(32))
            .arg(DevicePtr(0x100), 64)
            .arg(DevicePtr(0x200), 64)
            .body(KernelBody::streaming(64, 64));
        assert_eq!(desc.body.accesses[0].arg_index, 0);
        assert_eq!(desc.body.accesses[1].arg_index, 1);
    }

    #[test]
    fn global_bytes_ignores_shared() {
        let body = KernelBody::default()
            .access(AccessSpec::load(0, 1000))
            .access(AccessSpec::load(0, 500).in_space(MemSpace::Shared));
        assert_eq!(body.global_bytes(), 1000);
    }

    #[test]
    fn dynamic_instructions_exceed_memory_records() {
        let body = KernelBody::streaming(1 << 20, 1 << 20).with_flops(1 << 22);
        assert!(body.dynamic_instructions() > body.memory_records());
        let explicit = KernelBody {
            instruction_count: Some(42),
            ..body
        };
        assert_eq!(explicit.dynamic_instructions(), 42);
    }

    #[test]
    fn totals_multiply_geometry() {
        let desc = KernelDesc::new("k", Dim3::plane(4, 2), Dim3::linear(128))
            .body(KernelBody::default().with_barriers(3));
        assert_eq!(desc.total_blocks(), 8);
        assert_eq!(desc.total_threads(), 1024);
        assert_eq!(desc.total_barriers(), 24);
    }

    #[test]
    fn builder_chain_reads_naturally() {
        let spec = AccessSpec::load(1, 4096)
            .with_bytes(8192)
            .with_range(256, 2048)
            .with_pattern(AccessPattern::Strided { stride: 128 });
        assert_eq!(spec.arg_index, 1);
        assert_eq!(spec.bytes, 8192);
        assert_eq!(spec.offset, 256);
        assert_eq!(spec.len, 2048);
    }
}
