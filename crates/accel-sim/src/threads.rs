//! Thread-budget resolution shared by every pooled surface.
//!
//! The `0 = available parallelism` rule appears on every knob of
//! `ParallelConfig` (lane pool, merge plan, drain workers). It used to be
//! re-implemented privately by each consumer, which is exactly how such a
//! rule drifts; this is now the one copy (`pasta_core::merge` and
//! `dl_framework::lane_exec` both delegate here).

/// Resolves a thread budget: `0` means "available parallelism" (1 if the
/// OS will not say), any other value is taken literally.
pub fn resolve_threads(max_threads: usize) -> usize {
    if max_threads > 0 {
        max_threads
    } else {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_budget_is_literal_and_zero_asks_the_os() {
        assert_eq!(resolve_threads(1), 1);
        assert_eq!(resolve_threads(7), 7);
        assert!(resolve_threads(0) >= 1, "0 resolves to at least one");
    }
}
