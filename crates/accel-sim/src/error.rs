//! Simulator error type.

use crate::id::DeviceId;
use std::error::Error;
use std::fmt;

/// Errors produced by the accelerator simulator.
///
/// Mirrors the failure classes of a real device runtime: invalid handles,
/// out-of-memory, and misconfigured launches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccelError {
    /// The device index does not exist in this engine.
    UnknownDevice(DeviceId),
    /// The device ran out of memory; carries requested and free bytes.
    OutOfMemory {
        /// Device on which the allocation was attempted.
        device: DeviceId,
        /// Requested allocation size in bytes.
        requested: u64,
        /// Free bytes remaining on the device.
        free: u64,
    },
    /// An address was freed or referenced that was never allocated.
    InvalidAddress(u64),
    /// A kernel launch referenced an argument index with no bound buffer.
    InvalidKernelArg {
        /// Kernel symbol name.
        kernel: String,
        /// Offending argument index.
        arg_index: usize,
    },
    /// A launch had an empty grid or block.
    EmptyLaunch(String),
    /// A host-side configuration error (bad device lists, mismatched
    /// lane counts for parallel workloads).
    Config(String),
    /// A copy touched a range outside any live allocation.
    CopyOutOfBounds {
        /// Start of the faulting range.
        addr: u64,
        /// Length of the faulting range.
        len: u64,
    },
    /// A device lane's thread panicked and the panic was contained at the
    /// lane boundary ([`std::panic::catch_unwind`]) instead of unwinding
    /// through the join. Carries the faulting device and the rendered
    /// panic payload; surviving lanes keep running.
    LanePanic {
        /// Device whose lane panicked.
        device: DeviceId,
        /// Rendered panic payload (see [`panic_message`]).
        payload: String,
    },
}

impl fmt::Display for AccelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccelError::UnknownDevice(d) => write!(f, "unknown device {d}"),
            AccelError::OutOfMemory {
                device,
                requested,
                free,
            } => write!(
                f,
                "out of memory on {device}: requested {requested} bytes, {free} free"
            ),
            AccelError::InvalidAddress(a) => write!(f, "invalid device address {a:#x}"),
            AccelError::InvalidKernelArg { kernel, arg_index } => {
                write!(f, "kernel `{kernel}` references unbound arg {arg_index}")
            }
            AccelError::EmptyLaunch(k) => write!(f, "kernel `{k}` launched with empty grid"),
            AccelError::Config(msg) => write!(f, "configuration error: {msg}"),
            AccelError::CopyOutOfBounds { addr, len } => {
                write!(f, "copy of {len} bytes at {addr:#x} is out of bounds")
            }
            AccelError::LanePanic { device, payload } => {
                write!(f, "lane on {device} panicked: {payload}")
            }
        }
    }
}

impl Error for AccelError {}

/// Renders a caught panic payload (the `Box<dyn Any + Send>` that
/// [`std::panic::catch_unwind`] returns) as a message: the `&str` and
/// `String` payloads `panic!` produces pass through verbatim, anything
/// else falls back to a placeholder. Shared by every layer that contains
/// panics (lane drivers, tool dispatch, session salvage).
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic payload of non-string type".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = AccelError::OutOfMemory {
            device: DeviceId(0),
            requested: 128,
            free: 64,
        };
        let s = e.to_string();
        assert!(s.contains("out of memory"));
        assert!(s.contains("128"));
        assert!(s.contains("64"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AccelError>();
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn Error> = Box::new(AccelError::InvalidAddress(0xdead));
        assert!(e.to_string().contains("0xdead"));
    }

    #[test]
    fn lane_panic_displays_device_and_payload() {
        let e = AccelError::LanePanic {
            device: DeviceId(1),
            payload: "index out of bounds".into(),
        };
        let s = e.to_string();
        assert!(s.contains("gpu1"), "{s}");
        assert!(s.contains("index out of bounds"), "{s}");
    }

    #[test]
    fn panic_message_renders_common_payloads() {
        let caught =
            std::panic::catch_unwind(|| panic!("static str payload")).expect_err("panicked");
        assert_eq!(panic_message(caught.as_ref()), "static str payload");
        let caught = std::panic::catch_unwind(|| panic!("formatted {}", 42)).expect_err("panicked");
        assert_eq!(panic_message(caught.as_ref()), "formatted 42");
        let caught = std::panic::catch_unwind(|| std::panic::panic_any(7u32)).expect_err("panic");
        assert!(panic_message(caught.as_ref()).contains("non-string"));
    }
}
