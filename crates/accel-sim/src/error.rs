//! Simulator error type.

use crate::id::DeviceId;
use std::error::Error;
use std::fmt;

/// Errors produced by the accelerator simulator.
///
/// Mirrors the failure classes of a real device runtime: invalid handles,
/// out-of-memory, and misconfigured launches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccelError {
    /// The device index does not exist in this engine.
    UnknownDevice(DeviceId),
    /// The device ran out of memory; carries requested and free bytes.
    OutOfMemory {
        /// Device on which the allocation was attempted.
        device: DeviceId,
        /// Requested allocation size in bytes.
        requested: u64,
        /// Free bytes remaining on the device.
        free: u64,
    },
    /// An address was freed or referenced that was never allocated.
    InvalidAddress(u64),
    /// A kernel launch referenced an argument index with no bound buffer.
    InvalidKernelArg {
        /// Kernel symbol name.
        kernel: String,
        /// Offending argument index.
        arg_index: usize,
    },
    /// A launch had an empty grid or block.
    EmptyLaunch(String),
    /// A host-side configuration error (bad device lists, mismatched
    /// lane counts for parallel workloads).
    Config(String),
    /// A copy touched a range outside any live allocation.
    CopyOutOfBounds {
        /// Start of the faulting range.
        addr: u64,
        /// Length of the faulting range.
        len: u64,
    },
}

impl fmt::Display for AccelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccelError::UnknownDevice(d) => write!(f, "unknown device {d}"),
            AccelError::OutOfMemory {
                device,
                requested,
                free,
            } => write!(
                f,
                "out of memory on {device}: requested {requested} bytes, {free} free"
            ),
            AccelError::InvalidAddress(a) => write!(f, "invalid device address {a:#x}"),
            AccelError::InvalidKernelArg { kernel, arg_index } => {
                write!(f, "kernel `{kernel}` references unbound arg {arg_index}")
            }
            AccelError::EmptyLaunch(k) => write!(f, "kernel `{k}` launched with empty grid"),
            AccelError::Config(msg) => write!(f, "configuration error: {msg}"),
            AccelError::CopyOutOfBounds { addr, len } => {
                write!(f, "copy of {len} bytes at {addr:#x} is out of bounds")
            }
        }
    }
}

impl Error for AccelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = AccelError::OutOfMemory {
            device: DeviceId(0),
            requested: 128,
            free: 64,
        };
        let s = e.to_string();
        assert!(s.contains("out of memory"));
        assert!(s.contains("128"));
        assert!(s.contains("64"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AccelError>();
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn Error> = Box::new(AccelError::InvalidAddress(0xdead));
        assert!(e.to_string().contains("0xdead"));
    }
}
