//! Instruction-level trace stream.
//!
//! Real instrumentation records one entry per executed (warp-level) memory
//! instruction. Materializing billions of such entries is neither necessary
//! nor honest-to-scale here: the probe receives [`AccessBatch`]es — compact
//! summaries carrying the *exact* record count, address range and stride —
//! from which every analysis in the paper (working set, hotness, access
//! counts) can be computed, while cost models charge per true record.

use crate::id::LaunchId;
use crate::kernel::{AccessKind, AccessPattern, MemSpace};
use serde::{Deserialize, Serialize};

/// Size in bytes of one on-device trace record, used to model trace-buffer
/// capacity and PCIe transfer volume (matches NVBit MemTrace's 24-byte
/// packed record plus header).
pub const TRACE_RECORD_BYTES: u64 = 24;

/// A batch of warp-level access records sharing one access stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccessBatch {
    /// Launch that produced the batch.
    pub launch: LaunchId,
    /// Index of the originating [`crate::AccessSpec`] in the kernel body.
    pub spec_index: usize,
    /// Absolute base address of the touched region.
    pub base: u64,
    /// Extent of the touched region, bytes.
    pub len: u64,
    /// Number of warp-level access records in the batch.
    pub records: u64,
    /// Total bytes moved.
    pub bytes: u64,
    /// Element size per lane, bytes.
    pub elem_size: u32,
    /// Load/store/atomic.
    pub kind: AccessKind,
    /// Global/shared/… space.
    pub space: MemSpace,
    /// Spatial pattern within the region.
    pub pattern: AccessPattern,
}

impl AccessBatch {
    /// Exclusive end address of the touched region.
    pub fn end(&self) -> u64 {
        self.base + self.len
    }

    /// Approximate number of records that fall in `[lo, hi)`, assuming
    /// records are distributed across the region per the pattern. Used by
    /// block-granular analyses (hotness heat-maps).
    pub fn records_in_range(&self, lo: u64, hi: u64) -> u64 {
        if self.len == 0 || hi <= self.base || lo >= self.end() {
            return 0;
        }
        let lo = lo.max(self.base);
        let hi = hi.min(self.end());
        // Sequential, strided and random patterns all spread records
        // uniformly over the touched extent at batch granularity.
        let frac = (hi - lo) as f64 / self.len as f64;
        ((self.records as f64) * frac).round() as u64
    }
}

/// Per-kernel summary the engine hands to the probe at kernel end.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct KernelTraceSummary {
    /// Warp-level global-memory records emitted.
    pub global_records: u64,
    /// Warp-level shared-memory records emitted.
    pub shared_records: u64,
    /// Barrier executions.
    pub barriers: u64,
    /// Thread-block entry/exit pairs.
    pub blocks: u64,
    /// Total dynamic instructions (for full-coverage instrumentation).
    pub instructions: u64,
    /// Total bytes moved through global memory.
    pub global_bytes: u64,
}

/// Models the fixed-capacity on-device trace buffer of CPU-analysis tools
/// (paper Fig. 2a): when the buffer fills, the kernel stalls while the
/// buffer is shipped to the host and drained.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceBufferModel {
    /// Buffer capacity in records.
    pub capacity_records: u64,
}

impl TraceBufferModel {
    /// Default 4 MiB buffer, matching the paper's §VI-A footprint remark.
    pub fn new_4mib() -> Self {
        TraceBufferModel {
            capacity_records: (4 << 20) / TRACE_RECORD_BYTES,
        }
    }

    /// Creates a model with an explicit byte capacity.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is smaller than one record.
    pub fn with_bytes(bytes: u64) -> Self {
        assert!(bytes >= TRACE_RECORD_BYTES, "buffer below one record");
        TraceBufferModel {
            capacity_records: bytes / TRACE_RECORD_BYTES,
        }
    }

    /// Number of full-buffer flushes needed for `records`, i.e. the number
    /// of kernel stalls in the CPU-analysis model. The final partial buffer
    /// flushes at kernel completion without stalling the kernel.
    pub fn stall_flushes(&self, records: u64) -> u64 {
        records / self.capacity_records
    }

    /// Total bytes shipped over the host link for `records`.
    pub fn transfer_bytes(&self, records: u64) -> u64 {
        records * TRACE_RECORD_BYTES
    }
}

impl Default for TraceBufferModel {
    fn default() -> Self {
        TraceBufferModel::new_4mib()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::AccessSpec;

    fn batch(base: u64, len: u64, records: u64) -> AccessBatch {
        AccessBatch {
            launch: LaunchId(1),
            spec_index: 0,
            base,
            len,
            records,
            bytes: len,
            elem_size: 4,
            kind: AccessKind::Load,
            space: MemSpace::Global,
            pattern: AccessPattern::Sequential,
        }
    }

    #[test]
    fn records_in_range_partitions() {
        let b = batch(1000, 1000, 100);
        let total: u64 = (0..10)
            .map(|i| b.records_in_range(1000 + i * 100, 1000 + (i + 1) * 100))
            .sum();
        assert_eq!(total, 100);
        assert_eq!(b.records_in_range(0, 1000), 0);
        assert_eq!(b.records_in_range(2000, 3000), 0);
        assert_eq!(b.records_in_range(0, 10_000), 100);
    }

    #[test]
    fn records_in_range_clamps_partial_overlap() {
        let b = batch(0, 1000, 1000);
        assert_eq!(b.records_in_range(900, 1100), 100);
    }

    #[test]
    fn buffer_stalls_only_on_full_buffers() {
        let m = TraceBufferModel {
            capacity_records: 100,
        };
        assert_eq!(m.stall_flushes(99), 0);
        assert_eq!(m.stall_flushes(100), 1);
        assert_eq!(m.stall_flushes(1000), 10);
    }

    #[test]
    fn transfer_volume_scales_with_records() {
        let m = TraceBufferModel::new_4mib();
        assert_eq!(m.transfer_bytes(10), 10 * TRACE_RECORD_BYTES);
        assert!(m.capacity_records > 100_000);
    }

    #[test]
    fn batch_consistent_with_spec_record_count() {
        let spec = AccessSpec::load(0, 1 << 20);
        let b = batch(0, 1 << 20, spec.record_count());
        assert_eq!(b.records, (1 << 20) / 128);
    }

    #[test]
    #[should_panic(expected = "below one record")]
    fn with_bytes_validates() {
        let _ = TraceBufferModel::with_bytes(8);
    }
}
