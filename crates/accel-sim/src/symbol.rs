//! Interned symbols for kernel and API names.
//!
//! The event hot path used to clone a heap `String` kernel name into every
//! fine-grained event — millions of allocations per profiled run. A
//! [`Symbol`] is an `Arc<str>` handed out by a [`SymbolTable`]: interning a
//! name allocates once, every subsequent event carries a reference-count
//! bump, and equality between symbols of the same table is a pointer
//! compare. This crate hosts the type (rather than pasta-core) because
//! [`crate::instrument::TraceCtx`] — the per-launch context every sink
//! callback receives — is the first place a kernel name enters the event
//! pipeline.
//!
//! Symbols from *different* tables still compare correctly (content
//! fallback), so tests may use isolated tables while the runtime uses
//! [`SymbolTable::global`].

use std::borrow::Borrow;
use std::collections::HashSet;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::{Arc, Mutex, OnceLock};

/// An interned, cheaply clonable string (kernel symbol, API name, operator
/// name). `Clone` is an atomic refcount bump; comparing two symbols of the
/// same table is O(1).
#[derive(Clone)]
pub struct Symbol(Arc<str>);

impl Symbol {
    /// Interns `name` in the process-global table.
    pub fn intern(name: &str) -> Symbol {
        SymbolTable::global().intern(name)
    }

    /// The underlying string.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// True when both symbols share one allocation — the O(1) fast path
    /// that also proves a name was interned once, not re-allocated per
    /// event.
    pub fn ptr_eq(a: &Symbol, b: &Symbol) -> bool {
        Arc::ptr_eq(&a.0, &b.0)
    }
}

impl Deref for Symbol {
    type Target = str;
    fn deref(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for Symbol {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

/// Lets `HashMap<Symbol, _>` answer `&str` lookups without interning.
impl Borrow<str> for Symbol {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl PartialEq for Symbol {
    fn eq(&self, other: &Symbol) -> bool {
        // Same-table symbols hit the pointer compare; cross-table symbols
        // (isolated test tables, deserialized events) fall back to content.
        Symbol::ptr_eq(self, other) || self.0 == other.0
    }
}

impl Eq for Symbol {}

impl PartialEq<str> for Symbol {
    fn eq(&self, other: &str) -> bool {
        &*self.0 == other
    }
}

impl PartialEq<&str> for Symbol {
    fn eq(&self, other: &&str) -> bool {
        &*self.0 == *other
    }
}

impl PartialOrd for Symbol {
    fn partial_cmp(&self, other: &Symbol) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Symbol {
    fn cmp(&self, other: &Symbol) -> std::cmp::Ordering {
        self.0.cmp(&other.0)
    }
}

/// Hashes like `str` so `Borrow<str>` lookups stay consistent.
impl Hash for Symbol {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.0.hash(state)
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&*self.0, f)
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Symbol {
        Symbol::intern(&s)
    }
}

impl From<&String> for Symbol {
    fn from(s: &String) -> Symbol {
        Symbol::intern(s)
    }
}

impl serde::Serialize for Symbol {}
impl<'de> serde::Deserialize<'de> for Symbol {}

/// A deduplicating string interner. Thread-safe; `intern` takes a lock, so
/// hot paths should intern once per launch and clone the [`Symbol`].
#[derive(Debug, Default)]
pub struct SymbolTable {
    entries: Mutex<HashSet<Arc<str>>>,
}

impl SymbolTable {
    /// An empty table (isolated, for tests).
    pub fn new() -> Self {
        SymbolTable::default()
    }

    /// The process-global table behind [`Symbol::intern`].
    pub fn global() -> &'static SymbolTable {
        static GLOBAL: OnceLock<SymbolTable> = OnceLock::new();
        GLOBAL.get_or_init(SymbolTable::new)
    }

    /// Interns `name`: returns the existing symbol when the table has seen
    /// the name before, otherwise allocates it once.
    pub fn intern(&self, name: &str) -> Symbol {
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(existing) = entries.get(name) {
            return Symbol(Arc::clone(existing));
        }
        let arc: Arc<str> = Arc::from(name);
        entries.insert(Arc::clone(&arc));
        Symbol(arc)
    }

    /// Number of distinct names interned.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_dedups_to_one_allocation() {
        let table = SymbolTable::new();
        let a = table.intern("ampere_sgemm_128x64_tn");
        let b = table.intern("ampere_sgemm_128x64_tn");
        let c = table.intern("im2col_kernel");
        assert!(Symbol::ptr_eq(&a, &b), "same name, same allocation");
        assert!(!Symbol::ptr_eq(&a, &c));
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn clones_share_the_allocation() {
        let a = Symbol::intern("clone_shares");
        let b = a.clone();
        assert!(Symbol::ptr_eq(&a, &b));
    }

    #[test]
    fn cross_table_equality_falls_back_to_content() {
        let t1 = SymbolTable::new();
        let t2 = SymbolTable::new();
        let a = t1.intern("gemm");
        let b = t2.intern("gemm");
        assert!(!Symbol::ptr_eq(&a, &b));
        assert_eq!(a, b, "content equality across tables");
    }

    #[test]
    fn str_interop() {
        let s = Symbol::intern("relu_kernel");
        assert_eq!(s, "relu_kernel");
        assert_eq!(s.as_str(), "relu_kernel");
        assert!(s.contains("relu"), "Deref<Target=str> works");
        assert_eq!(format!("{s}"), "relu_kernel");
        assert_eq!(format!("{s:?}"), "\"relu_kernel\"");
    }

    #[test]
    fn map_lookup_by_str_borrow() {
        use std::collections::HashMap;
        let mut m: HashMap<Symbol, u64> = HashMap::new();
        m.insert(Symbol::intern("gemm"), 3);
        assert_eq!(m.get("gemm"), Some(&3));
        assert_eq!(m.get("missing"), None);
    }

    #[test]
    fn concurrent_interning_dedups() {
        let table = Arc::new(SymbolTable::new());
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let table = Arc::clone(&table);
                std::thread::spawn(move || {
                    (0..64)
                        .map(|i| table.intern(&format!("kernel_{}", (i + t) % 16)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let all: Vec<Vec<Symbol>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(table.len(), 16, "8 threads × 64 interns collapse to 16");
        // Every symbol with the same content shares one allocation.
        let canon: Vec<Symbol> = (0..16)
            .map(|i| table.intern(&format!("kernel_{i}")))
            .collect();
        for row in &all {
            for s in row {
                let c = &canon[s.strip_prefix("kernel_").unwrap().parse::<usize>().unwrap()];
                assert!(Symbol::ptr_eq(s, c));
            }
        }
    }

    #[test]
    fn ordering_is_lexicographic() {
        let a = Symbol::intern("alpha");
        let z = Symbol::intern("zeta");
        assert!(a < z);
        let mut v = vec![z.clone(), a.clone()];
        v.sort();
        assert_eq!(v, vec![a, z]);
    }
}
