//! Launch geometry (grid/block dimensions).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A three-dimensional launch extent, as in CUDA's `dim3`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Dim3 {
    /// Extent along x.
    pub x: u32,
    /// Extent along y.
    pub y: u32,
    /// Extent along z.
    pub z: u32,
}

impl Dim3 {
    /// A 1-D extent `(n, 1, 1)`.
    pub fn linear(n: u32) -> Self {
        Dim3 { x: n, y: 1, z: 1 }
    }

    /// A 2-D extent `(x, y, 1)`.
    pub fn plane(x: u32, y: u32) -> Self {
        Dim3 { x, y, z: 1 }
    }

    /// A full 3-D extent.
    pub fn new(x: u32, y: u32, z: u32) -> Self {
        Dim3 { x, y, z }
    }

    /// Total number of elements covered by the extent.
    pub fn count(self) -> u64 {
        self.x as u64 * self.y as u64 * self.z as u64
    }

    /// True when any dimension is zero (an invalid launch).
    pub fn is_empty(self) -> bool {
        self.count() == 0
    }
}

impl Default for Dim3 {
    fn default() -> Self {
        Dim3::linear(1)
    }
}

impl fmt::Display for Dim3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

impl From<u32> for Dim3 {
    fn from(n: u32) -> Self {
        Dim3::linear(n)
    }
}

impl From<(u32, u32)> for Dim3 {
    fn from((x, y): (u32, u32)) -> Self {
        Dim3::plane(x, y)
    }
}

impl From<(u32, u32, u32)> for Dim3 {
    fn from((x, y, z): (u32, u32, u32)) -> Self {
        Dim3::new(x, y, z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_multiplies_dimensions() {
        assert_eq!(Dim3::new(2, 3, 4).count(), 24);
        assert_eq!(Dim3::linear(7).count(), 7);
        assert_eq!(Dim3::plane(5, 6).count(), 30);
    }

    #[test]
    fn empty_detection() {
        assert!(Dim3::new(0, 8, 8).is_empty());
        assert!(!Dim3::linear(1).is_empty());
    }

    #[test]
    fn conversions() {
        assert_eq!(Dim3::from(8u32), Dim3::linear(8));
        assert_eq!(Dim3::from((2u32, 3u32)), Dim3::plane(2, 3));
        assert_eq!(Dim3::from((2u32, 3u32, 4u32)), Dim3::new(2, 3, 4));
    }

    #[test]
    fn display_format() {
        assert_eq!(Dim3::new(1, 2, 3).to_string(), "(1, 2, 3)");
    }

    #[test]
    fn large_counts_do_not_overflow_u32_math() {
        let d = Dim3::new(65535, 65535, 64);
        assert_eq!(d.count(), 65535u64 * 65535 * 64);
    }
}
