//! Instrumentation probe interface.
//!
//! A [`DeviceProbe`] is the simulator-side attachment point for profiling
//! backends. The engine drives the probe with the kernel's access batches,
//! barrier counts and block boundaries; the probe returns the virtual time
//! its processing costs on the device and on the host, which the engine
//! folds into the simulated clocks. The vendor facades (Compute Sanitizer,
//! NVBit, ROCProfiler) implement this trait with their respective coverage
//! and cost characteristics.

use crate::clock::SimTime;
use crate::id::{DeviceId, LaunchId, StreamId};
use crate::kernel::KernelDesc;
use crate::trace::{AccessBatch, KernelTraceSummary};
use serde::{Deserialize, Serialize};

/// Which dynamic instructions an instrumentation backend can observe.
///
/// The paper (§III-D) contrasts Compute Sanitizer — "only a subset of
/// instructions, such as memory and barrier operations" — with NVBit, which
/// covers "all SASS instructions" at higher cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InstrCoverage {
    /// Memory and barrier instructions only (Compute Sanitizer style).
    MemoryAndBarrier,
    /// Every dynamic instruction (NVBit style).
    AllInstructions,
}

/// Where trace analysis runs (paper Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AnalysisMode {
    /// PASTA's GPU-resident collect-and-analyze model: analysis threads
    /// consume records in situ; only a small result buffer returns to the
    /// host at kernel end (Fig. 2b).
    GpuResident,
    /// The conventional model: records fill a fixed device buffer, the
    /// kernel stalls while the host fetches and drains it, and a single
    /// CPU thread performs the analysis (Fig. 2a).
    CpuPostProcess,
}

/// Per-launch instrumentation selection, returned by
/// [`DeviceProbe::on_kernel_begin`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProbeConfig {
    /// Instrument global-memory accesses.
    pub global_accesses: bool,
    /// Instrument shared-memory accesses.
    pub shared_accesses: bool,
    /// Instrument barrier instructions.
    pub barriers: bool,
    /// Instrument thread-block entry/exit.
    pub block_boundaries: bool,
    /// Process only one in `sampling_rate` records (1 = every record);
    /// mirrors `ACCEL_PROF_ENV_SAMPLE_RATE` from the paper's artifact.
    pub sampling_rate: u32,
}

impl ProbeConfig {
    /// Instrument everything, no sampling.
    pub fn all() -> Self {
        ProbeConfig {
            global_accesses: true,
            shared_accesses: true,
            barriers: true,
            block_boundaries: true,
            sampling_rate: 1,
        }
    }

    /// Instrument global memory only.
    pub fn global_only() -> Self {
        ProbeConfig {
            global_accesses: true,
            shared_accesses: false,
            barriers: false,
            block_boundaries: false,
            sampling_rate: 1,
        }
    }

    /// Instrument nothing (skip this launch).
    pub fn disabled() -> Self {
        ProbeConfig {
            global_accesses: false,
            shared_accesses: false,
            barriers: false,
            block_boundaries: false,
            sampling_rate: 1,
        }
    }

    /// Sets the sampling rate (clamped to ≥ 1).
    pub fn with_sampling(mut self, rate: u32) -> Self {
        self.sampling_rate = rate.max(1);
        self
    }

    /// True when no event class is instrumented.
    pub fn is_disabled(&self) -> bool {
        !self.global_accesses && !self.shared_accesses && !self.barriers && !self.block_boundaries
    }
}

impl Default for ProbeConfig {
    fn default() -> Self {
        ProbeConfig::all()
    }
}

/// Virtual-time cost of a probe callback.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProbeCosts {
    /// Time added to the kernel's device-side duration.
    pub device_ns: u64,
    /// Time added to the host clock (CPU-side collection/analysis).
    pub host_ns: u64,
}

impl ProbeCosts {
    /// Zero cost.
    pub const FREE: ProbeCosts = ProbeCosts {
        device_ns: 0,
        host_ns: 0,
    };

    /// Component-wise sum.
    pub fn merge(self, other: ProbeCosts) -> ProbeCosts {
        ProbeCosts {
            device_ns: self.device_ns + other.device_ns,
            host_ns: self.host_ns + other.host_ns,
        }
    }
}

/// Context handed to every probe callback of one launch.
#[derive(Debug)]
pub struct KernelCtx<'a> {
    /// Launch sequence number (the paper's "grid id").
    pub launch: LaunchId,
    /// Device executing the kernel.
    pub device: DeviceId,
    /// Stream the kernel was enqueued on.
    pub stream: StreamId,
    /// The full kernel description.
    pub desc: &'a KernelDesc,
    /// Device-time at which the kernel starts.
    pub start: SimTime,
}

/// A device-side instrumentation consumer.
///
/// All methods have defaults so implementors override only what they need —
/// the same "override functions in the template" ergonomics the PASTA tool
/// collection offers one level up.
pub trait DeviceProbe: Send {
    /// Called before the kernel runs; selects what to instrument.
    fn on_kernel_begin(&mut self, ctx: &KernelCtx<'_>) -> ProbeConfig {
        let _ = ctx;
        ProbeConfig::all()
    }

    /// Called once per access stream with the batch of records it produced.
    fn on_access_batch(&mut self, ctx: &KernelCtx<'_>, batch: &AccessBatch) -> ProbeCosts {
        let _ = (ctx, batch);
        ProbeCosts::FREE
    }

    /// Called with the number of barrier executions in the launch.
    fn on_barriers(&mut self, ctx: &KernelCtx<'_>, count: u64) -> ProbeCosts {
        let _ = (ctx, count);
        ProbeCosts::FREE
    }

    /// Called with the number of thread blocks (entry/exit pairs).
    fn on_block_boundaries(&mut self, ctx: &KernelCtx<'_>, count: u64) -> ProbeCosts {
        let _ = (ctx, count);
        ProbeCosts::FREE
    }

    /// Called after all batches with the kernel's trace summary.
    fn on_kernel_end(&mut self, ctx: &KernelCtx<'_>, summary: &KernelTraceSummary) -> ProbeCosts {
        let _ = (ctx, summary);
        ProbeCosts::FREE
    }
}

/// A probe that counts callbacks; useful as a test double and as the
/// smallest possible example of the probe protocol.
#[derive(Debug, Default)]
pub struct CountingProbe {
    /// Number of kernels observed.
    pub kernels: u64,
    /// Total access batches observed.
    pub batches: u64,
    /// Total records across batches.
    pub records: u64,
    /// Total barrier executions observed.
    pub barriers: u64,
}

impl DeviceProbe for CountingProbe {
    fn on_kernel_begin(&mut self, _ctx: &KernelCtx<'_>) -> ProbeConfig {
        self.kernels += 1;
        ProbeConfig::all()
    }

    fn on_access_batch(&mut self, _ctx: &KernelCtx<'_>, batch: &AccessBatch) -> ProbeCosts {
        self.batches += 1;
        self.records += batch.records;
        ProbeCosts::FREE
    }

    fn on_barriers(&mut self, _ctx: &KernelCtx<'_>, count: u64) -> ProbeCosts {
        self.barriers += count;
        ProbeCosts::FREE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_constructors() {
        assert!(ProbeConfig::all().global_accesses);
        assert!(ProbeConfig::all().barriers);
        assert!(!ProbeConfig::global_only().barriers);
        assert!(ProbeConfig::disabled().is_disabled());
        assert!(!ProbeConfig::global_only().is_disabled());
    }

    #[test]
    fn sampling_clamps_to_one() {
        assert_eq!(ProbeConfig::all().with_sampling(0).sampling_rate, 1);
        assert_eq!(ProbeConfig::all().with_sampling(10).sampling_rate, 10);
    }

    #[test]
    fn costs_add() {
        let a = ProbeCosts {
            device_ns: 5,
            host_ns: 7,
        };
        let b = ProbeCosts {
            device_ns: 1,
            host_ns: 2,
        };
        assert_eq!(
            a.merge(b),
            ProbeCosts {
                device_ns: 6,
                host_ns: 9
            }
        );
        assert_eq!(a.merge(ProbeCosts::FREE), a);
    }

    #[test]
    fn probe_object_safety() {
        // DeviceProbe must stay object-safe: the engine stores Box<dyn DeviceProbe>.
        let probe: Box<dyn DeviceProbe> = Box::<CountingProbe>::default();
        drop(probe);
    }
}
