//! Managed-memory residency hook.
//!
//! Kernels that touch managed (UVM) ranges pay page-fault and migration
//! costs decided by a [`ResidencyModel`] — implemented by the `uvm-sim`
//! crate. The engine consults the model once per access stream, passing the
//! touched range and traffic volume; the model migrates pages, evicts under
//! pressure, and returns the extra device time the kernel must absorb.

use crate::id::DeviceId;
use crate::kernel::AccessKind;
use serde::{Deserialize, Serialize};

/// Result of resolving one kernel access stream against managed memory.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessOutcome {
    /// Extra device time the kernel stalls for (fault handling + migration).
    pub extra_device_ns: u64,
    /// Page-fault groups serviced.
    pub faults: u64,
    /// Bytes migrated host→device to satisfy the accesses.
    pub migrated_in_bytes: u64,
    /// Bytes evicted device→host to make room.
    pub evicted_bytes: u64,
    /// Bytes read-duplicated device→device over the peer link (shared
    /// managed ranges only; zero for private ranges).
    pub peer_in_bytes: u64,
}

impl AccessOutcome {
    /// An access that hit entirely resident pages.
    pub const HIT: AccessOutcome = AccessOutcome {
        extra_device_ns: 0,
        faults: 0,
        migrated_in_bytes: 0,
        evicted_bytes: 0,
        peer_in_bytes: 0,
    };

    /// Component-wise sum.
    pub fn merge(self, o: AccessOutcome) -> AccessOutcome {
        AccessOutcome {
            extra_device_ns: self.extra_device_ns + o.extra_device_ns,
            faults: self.faults + o.faults,
            migrated_in_bytes: self.migrated_in_bytes + o.migrated_in_bytes,
            evicted_bytes: self.evicted_bytes + o.evicted_bytes,
            peer_in_bytes: self.peer_in_bytes + o.peer_in_bytes,
        }
    }
}

/// One peer-to-peer coherence operation a residency model performed while
/// resolving accesses to a *shared* managed range: either a read
/// duplication (`duplicated_pages > 0`, data moved `src → dst`) or a
/// write invalidation (`invalidated_pages > 0`, `src` wrote and `dst`'s
/// duplicate was dropped). The vendor runtimes drain these through
/// [`ResidencyModel::take_peer_transfers`] and surface them as host
/// callbacks carrying both devices, so the sharded hub can route the
/// event to the *destination* device's shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeerTransfer {
    /// Device the data (or the invalidating write) came from.
    pub src: DeviceId,
    /// Device whose residency changed — the routing key.
    pub dst: DeviceId,
    /// Pages read-duplicated onto `dst`.
    pub duplicated_pages: u64,
    /// `dst` duplicate pages invalidated by `src`'s write.
    pub invalidated_pages: u64,
    /// Bytes moved over the peer link (duplications only).
    pub bytes: u64,
    /// Device stall charged to the faulting kernel, ns.
    pub stall_ns: u64,
}

/// UVM advice values understood by residency models, mirroring
/// `cudaMemAdvise`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResidencyAdvice {
    /// Pin the range on the device (never evict).
    PinOnDevice,
    /// Prefer the host; treat as immediately evictable.
    PreferHost,
    /// Read-mostly data; eviction needs no write-back.
    ReadMostly,
    /// Clear previous advice.
    Unset,
}

/// Decides the cost of device accesses to managed memory.
///
/// Beyond demand faulting ([`on_kernel_access`](Self::on_kernel_access)),
/// the trait carries the full UVM control surface — registration of managed
/// allocations, asynchronous prefetch and advice — with no-op defaults so
/// simple models stay simple.
pub trait ResidencyModel: Send {
    /// True when `addr` lies in a live managed allocation.
    fn is_managed(&self, addr: u64) -> bool;

    /// Resolves a kernel's access to `[base, base+len)` on `device` moving
    /// `bytes` in total; migrates/evicts pages and returns the cost.
    fn on_kernel_access(
        &mut self,
        device: DeviceId,
        base: u64,
        len: u64,
        bytes: u64,
        kind: AccessKind,
    ) -> AccessOutcome;

    /// Registers a managed allocation (called from `cudaMallocManaged`).
    fn register(&mut self, base: u64, len: u64) {
        let _ = (base, len);
    }

    /// Unregisters a managed allocation, dropping its pages.
    fn unregister(&mut self, base: u64) {
        let _ = base;
    }

    /// Marks `[base, base+len)` as a managed range *shared* across
    /// devices/lanes, with `owner` holding the home copy: remote reads
    /// read-duplicate over the peer link, remote writes invalidate the
    /// other devices' duplicates. Default: no-op — models without
    /// coherence support treat every range as private.
    fn register_shared(&mut self, base: u64, len: u64, owner: DeviceId) {
        let _ = (base, len, owner);
    }

    /// Removes the shared marking of the range starting at `base` (its
    /// pages fall back to private semantics). Default: no-op.
    fn unregister_shared(&mut self, base: u64) {
        let _ = base;
    }

    /// Drains the peer-to-peer coherence operations (read duplications,
    /// write invalidations) accumulated since the last drain, in the
    /// order they happened. Default: empty — private-only models never
    /// produce peer traffic.
    fn take_peer_transfers(&mut self) -> Vec<PeerTransfer> {
        Vec::new()
    }

    /// Asynchronously prefetches `[base, base+len)` to `device`, returning
    /// the non-overlapped device stall in nanoseconds.
    fn prefetch(&mut self, device: DeviceId, base: u64, len: u64) -> u64 {
        let _ = (device, base, len);
        0
    }

    /// Applies advice to a managed range.
    fn advise(&mut self, device: DeviceId, base: u64, len: u64, advice: ResidencyAdvice) {
        let _ = (device, base, len, advice);
    }

    /// Downcasting support, so session layers can reach the concrete
    /// model (e.g. `uvm_sim::UvmManager`) behind the trait object.
    fn as_any(&self) -> &dyn std::any::Any;

    /// Mutable downcasting support.
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;

    /// Consuming downcasting support: recovers the concrete model from a
    /// boxed trait object. The session layer uses this to take a lane's
    /// forked UVM manager back out of the lane runtime at the end of a
    /// parallel region and fold its statistics into the session manager.
    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any + Send>;
}

/// A trivial residency model where everything is always resident; useful
/// in tests and as the behaviour of non-UVM runs.
#[derive(Debug, Default, Clone, Copy)]
pub struct AlwaysResident;

impl ResidencyModel for AlwaysResident {
    fn is_managed(&self, _addr: u64) -> bool {
        false
    }

    fn on_kernel_access(
        &mut self,
        _device: DeviceId,
        _base: u64,
        _len: u64,
        _bytes: u64,
        _kind: AccessKind,
    ) -> AccessOutcome {
        AccessOutcome::HIT
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any + Send> {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcomes_add() {
        let a = AccessOutcome {
            extra_device_ns: 10,
            faults: 1,
            migrated_in_bytes: 4096,
            evicted_bytes: 0,
            peer_in_bytes: 512,
        };
        let b = AccessOutcome {
            extra_device_ns: 5,
            faults: 2,
            migrated_in_bytes: 0,
            evicted_bytes: 1024,
            peer_in_bytes: 0,
        };
        let c = a.merge(b);
        assert_eq!(c.extra_device_ns, 15);
        assert_eq!(c.faults, 3);
        assert_eq!(c.migrated_in_bytes, 4096);
        assert_eq!(c.evicted_bytes, 1024);
        assert_eq!(c.peer_in_bytes, 512);
        assert_eq!(a.merge(AccessOutcome::HIT), a);
    }

    #[test]
    fn always_resident_never_faults() {
        let mut m = AlwaysResident;
        assert!(!m.is_managed(0x1234));
        assert_eq!(
            m.on_kernel_access(DeviceId(0), 0, 4096, 4096, AccessKind::Load),
            AccessOutcome::HIT
        );
    }

    #[test]
    fn model_is_object_safe() {
        let m: Box<dyn ResidencyModel> = Box::new(AlwaysResident);
        drop(m);
    }
}
