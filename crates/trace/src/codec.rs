//! The per-shard record codec.
//!
//! One [`ShardEncoder`] serializes one device shard's event stream, in
//! processing order, into a compact byte payload:
//!
//! * every string (kernel symbols, API names, Python frames) is replaced
//!   by a small integer id into a per-shard dictionary, snapshotted next
//!   to the payload so names round-trip without carrying bytes per event;
//! * timestamps (`at`/`start`/`end`) and launch ids are delta-encoded
//!   against the previous value in the stream, zigzag-mapped, and written
//!   as LEB128 varints — both with *wrapping* arithmetic, so arbitrary
//!   (even non-monotone) `u64` sequences survive losslessly;
//! * each record starts with a one-byte variant tag; fixed enums
//!   (`AccessKind`, `CopyDirection`, …) are single bytes.
//!
//! The encode match over [`Event`] is deliberately wildcard-free: adding
//! an event variant without teaching the codec about it fails compilation
//! right here, instead of silently dropping the variant from traces.

use crate::error::TraceError;
use crate::wire::{put_varint, unzigzag, zigzag, Cursor};
use accel_sim::{
    AccessBatch, AccessKind, AccessPattern, CopyDirection, DeviceId, Dim3, KernelTraceSummary,
    LaunchId, MemSpace, SimTime, Symbol, SymbolTable,
};
use dl_framework::callbacks::Pass;
use dl_framework::pycall::PyFrame;
use dl_framework::tensor::TensorId;
use pasta_core::report::UvmReport;
use pasta_core::Event;
use std::collections::HashMap;
use uvm_sim::UvmStats;

/// One-byte record tags, one per [`Event`] variant.
mod tag {
    pub const DRIVER_API: u8 = 0;
    pub const RUNTIME_API: u8 = 1;
    pub const SYNC: u8 = 2;
    pub const KERNEL_LAUNCH_BEGIN: u8 = 3;
    pub const KERNEL_LAUNCH_END: u8 = 4;
    pub const MEM_COPY: u8 = 5;
    pub const MEM_SET: u8 = 6;
    pub const RESOURCE_ALLOC: u8 = 7;
    pub const RESOURCE_FREE: u8 = 8;
    pub const BATCH_MEM_OP: u8 = 9;
    pub const UVM_FAULT: u8 = 10;
    pub const UVM_PEER_MIGRATE: u8 = 11;
    pub const BLOCK_BOUNDARY: u8 = 12;
    pub const GLOBAL_ACCESS: u8 = 13;
    pub const SHARED_ACCESS: u8 = 14;
    pub const BARRIER: u8 = 15;
    pub const DEVICE_FUNC_CALL: u8 = 16;
    pub const DEVICE_MALLOC: u8 = 17;
    pub const DEVICE_FREE: u8 = 18;
    pub const GLOBAL_TO_SHARED_COPY: u8 = 19;
    pub const PIPELINE_OP: u8 = 20;
    pub const INSTRUCTIONS: u8 = 21;
    pub const KERNEL_TRACE: u8 = 22;
    pub const OP_START: u8 = 23;
    pub const OP_END: u8 = 24;
    pub const TENSOR_ALLOC: u8 = 25;
    pub const TENSOR_FREE: u8 = 26;
    pub const LAYER_BOUNDARY: u8 = 27;
    pub const PASS_BOUNDARY: u8 = 28;
    pub const REGION_START: u8 = 29;
    pub const REGION_END: u8 = 30;
}

fn kind_code(k: AccessKind) -> u8 {
    match k {
        AccessKind::Load => 0,
        AccessKind::Store => 1,
        AccessKind::Atomic => 2,
    }
}

fn kind_from(b: u8, offset: usize) -> Result<AccessKind, TraceError> {
    match b {
        0 => Ok(AccessKind::Load),
        1 => Ok(AccessKind::Store),
        2 => Ok(AccessKind::Atomic),
        _ => Err(TraceError::Corrupt {
            offset,
            what: format!("bad AccessKind code {b}"),
        }),
    }
}

fn space_code(s: MemSpace) -> u8 {
    match s {
        MemSpace::Global => 0,
        MemSpace::Shared => 1,
        MemSpace::RemoteShared => 2,
        MemSpace::Local => 3,
    }
}

fn space_from(b: u8, offset: usize) -> Result<MemSpace, TraceError> {
    match b {
        0 => Ok(MemSpace::Global),
        1 => Ok(MemSpace::Shared),
        2 => Ok(MemSpace::RemoteShared),
        3 => Ok(MemSpace::Local),
        _ => Err(TraceError::Corrupt {
            offset,
            what: format!("bad MemSpace code {b}"),
        }),
    }
}

fn direction_code(d: CopyDirection) -> u8 {
    match d {
        CopyDirection::HostToDevice => 0,
        CopyDirection::DeviceToHost => 1,
        CopyDirection::DeviceToDevice => 2,
        CopyDirection::HostToHost => 3,
    }
}

fn direction_from(b: u8, offset: usize) -> Result<CopyDirection, TraceError> {
    match b {
        0 => Ok(CopyDirection::HostToDevice),
        1 => Ok(CopyDirection::DeviceToHost),
        2 => Ok(CopyDirection::DeviceToDevice),
        3 => Ok(CopyDirection::HostToHost),
        _ => Err(TraceError::Corrupt {
            offset,
            what: format!("bad CopyDirection code {b}"),
        }),
    }
}

fn pass_code(p: Pass) -> u8 {
    match p {
        Pass::Forward => 0,
        Pass::Backward => 1,
        Pass::Optimizer => 2,
    }
}

fn pass_from(b: u8, offset: usize) -> Result<Pass, TraceError> {
    match b {
        0 => Ok(Pass::Forward),
        1 => Ok(Pass::Backward),
        2 => Ok(Pass::Optimizer),
        _ => Err(TraceError::Corrupt {
            offset,
            what: format!("bad Pass code {b}"),
        }),
    }
}

fn bool_from(b: u8, offset: usize) -> Result<bool, TraceError> {
    match b {
        0 => Ok(false),
        1 => Ok(true),
        _ => Err(TraceError::Corrupt {
            offset,
            what: format!("bad bool byte {b}"),
        }),
    }
}

/// Serializes one shard's event stream. Holds only growable in-memory
/// buffers — the hot [`ShardEncoder::encode`] path never touches the
/// filesystem (all I/O happens in [`crate::Trace::save`], after capture).
#[derive(Debug)]
pub(crate) struct ShardEncoder {
    pub(crate) device: DeviceId,
    /// Dictionary, in first-appearance order; snapshotted into the shard
    /// header so ids resolve on read.
    symbols: Vec<String>,
    ids: HashMap<String, u64>,
    payload: Vec<u8>,
    records: u64,
    last_time: u64,
    last_launch: u64,
}

impl ShardEncoder {
    pub(crate) fn new(device: DeviceId) -> Self {
        ShardEncoder {
            device,
            symbols: Vec::new(),
            ids: HashMap::new(),
            payload: Vec::new(),
            records: 0,
            last_time: 0,
            last_launch: 0,
        }
    }

    pub(crate) fn records(&self) -> u64 {
        self.records
    }

    pub(crate) fn into_parts(self) -> (DeviceId, Vec<String>, u64, Vec<u8>) {
        (self.device, self.symbols, self.records, self.payload)
    }

    fn v(&mut self, v: u64) {
        put_varint(&mut self.payload, v);
    }

    fn sym(&mut self, s: &str) {
        let id = match self.ids.get(s) {
            Some(&id) => id,
            None => {
                let id = self.symbols.len() as u64;
                self.symbols.push(s.to_owned());
                self.ids.insert(s.to_owned(), id);
                id
            }
        };
        self.v(id);
    }

    fn time(&mut self, t: SimTime) {
        let delta = t.0.wrapping_sub(self.last_time) as i64;
        self.last_time = t.0;
        self.v(zigzag(delta));
    }

    fn launch(&mut self, l: LaunchId) {
        let delta = l.0.wrapping_sub(self.last_launch) as i64;
        self.last_launch = l.0;
        self.v(zigzag(delta));
    }

    fn dim3(&mut self, d: Dim3) {
        self.v(d.x.into());
        self.v(d.y.into());
        self.v(d.z.into());
    }

    fn batch(&mut self, b: &AccessBatch) {
        self.launch(b.launch);
        self.v(b.spec_index as u64);
        self.v(b.base);
        self.v(b.len);
        self.v(b.records);
        self.v(b.bytes);
        self.v(b.elem_size.into());
        self.payload.push(kind_code(b.kind));
        self.payload.push(space_code(b.space));
        match b.pattern {
            AccessPattern::Sequential => self.payload.push(0),
            AccessPattern::Strided { stride } => {
                self.payload.push(1);
                self.v(stride);
            }
            AccessPattern::Random => self.payload.push(2),
        }
    }

    /// Appends one event. The match is exhaustive *without* a wildcard on
    /// purpose — a new [`Event`] variant must get a codec arm (and a tag)
    /// before it compiles, so variants can never silently vanish from
    /// traces.
    pub(crate) fn encode(&mut self, event: &Event) {
        self.records += 1;
        match event {
            Event::DriverApi { name, device, at } => {
                self.payload.push(tag::DRIVER_API);
                self.sym(name);
                self.v(device.0.into());
                self.time(*at);
            }
            Event::RuntimeApi { name, device, at } => {
                self.payload.push(tag::RUNTIME_API);
                self.sym(name);
                self.v(device.0.into());
                self.time(*at);
            }
            Event::Sync { device, at } => {
                self.payload.push(tag::SYNC);
                self.v(device.0.into());
                self.time(*at);
            }
            Event::KernelLaunchBegin {
                launch,
                device,
                stream,
                name,
                grid,
                block,
            } => {
                self.payload.push(tag::KERNEL_LAUNCH_BEGIN);
                self.launch(*launch);
                self.v(device.0.into());
                self.v((*stream).into());
                self.sym(name);
                self.dim3(*grid);
                self.dim3(*block);
            }
            Event::KernelLaunchEnd {
                launch,
                device,
                name,
                start,
                end,
            } => {
                self.payload.push(tag::KERNEL_LAUNCH_END);
                self.launch(*launch);
                self.v(device.0.into());
                self.sym(name);
                self.time(*start);
                self.time(*end);
            }
            Event::MemCopy {
                device,
                direction,
                bytes,
                at,
            } => {
                self.payload.push(tag::MEM_COPY);
                self.v(device.0.into());
                self.payload.push(direction_code(*direction));
                self.v(*bytes);
                self.time(*at);
            }
            Event::MemSet {
                device,
                addr,
                bytes,
                at,
            } => {
                self.payload.push(tag::MEM_SET);
                self.v(device.0.into());
                self.v(*addr);
                self.v(*bytes);
                self.time(*at);
            }
            Event::ResourceAlloc {
                device,
                addr,
                bytes,
                managed,
                at,
            } => {
                self.payload.push(tag::RESOURCE_ALLOC);
                self.v(device.0.into());
                self.v(*addr);
                self.v(*bytes);
                self.payload.push(u8::from(*managed));
                self.time(*at);
            }
            Event::ResourceFree {
                device,
                addr,
                bytes,
                at,
            } => {
                self.payload.push(tag::RESOURCE_FREE);
                self.v(device.0.into());
                self.v(*addr);
                self.v(*bytes);
                self.time(*at);
            }
            Event::BatchMemOp {
                device,
                op,
                addr,
                bytes,
                at,
            } => {
                self.payload.push(tag::BATCH_MEM_OP);
                self.v(device.0.into());
                self.sym(op);
                self.v(*addr);
                self.v(*bytes);
                self.time(*at);
            }
            Event::UvmFault {
                launch,
                device,
                groups,
                migrated_bytes,
                evicted_bytes,
                stall_ns,
                at,
            } => {
                self.payload.push(tag::UVM_FAULT);
                self.launch(*launch);
                self.v(device.0.into());
                self.v(*groups);
                self.v(*migrated_bytes);
                self.v(*evicted_bytes);
                self.v(*stall_ns);
                self.time(*at);
            }
            Event::UvmPeerMigrate {
                launch,
                src,
                dst,
                duplicated_pages,
                invalidated_pages,
                bytes,
                stall_ns,
                at,
            } => {
                self.payload.push(tag::UVM_PEER_MIGRATE);
                self.launch(*launch);
                self.v(src.0.into());
                self.v(dst.0.into());
                self.v(*duplicated_pages);
                self.v(*invalidated_pages);
                self.v(*bytes);
                self.v(*stall_ns);
                self.time(*at);
            }
            Event::BlockBoundary { launch, count } => {
                self.payload.push(tag::BLOCK_BOUNDARY);
                self.launch(*launch);
                self.v(*count);
            }
            Event::GlobalAccess {
                launch,
                kernel,
                batch,
            } => {
                self.payload.push(tag::GLOBAL_ACCESS);
                self.launch(*launch);
                self.sym(kernel);
                self.batch(batch);
            }
            Event::SharedAccess {
                launch,
                kernel,
                batch,
            } => {
                self.payload.push(tag::SHARED_ACCESS);
                self.launch(*launch);
                self.sym(kernel);
                self.batch(batch);
            }
            Event::Barrier {
                launch,
                count,
                cluster,
            } => {
                self.payload.push(tag::BARRIER);
                self.launch(*launch);
                self.v(*count);
                self.payload.push(u8::from(*cluster));
            }
            Event::DeviceFuncCall { launch, count } => {
                self.payload.push(tag::DEVICE_FUNC_CALL);
                self.launch(*launch);
                self.v(*count);
            }
            Event::DeviceMalloc { launch, bytes } => {
                self.payload.push(tag::DEVICE_MALLOC);
                self.launch(*launch);
                self.v(*bytes);
            }
            Event::DeviceFree { launch, bytes } => {
                self.payload.push(tag::DEVICE_FREE);
                self.launch(*launch);
                self.v(*bytes);
            }
            Event::GlobalToSharedCopy { launch, bytes } => {
                self.payload.push(tag::GLOBAL_TO_SHARED_COPY);
                self.launch(*launch);
                self.v(*bytes);
            }
            Event::PipelineOp { launch, count } => {
                self.payload.push(tag::PIPELINE_OP);
                self.launch(*launch);
                self.v(*count);
            }
            Event::Instructions { launch, count } => {
                self.payload.push(tag::INSTRUCTIONS);
                self.launch(*launch);
                self.v(*count);
            }
            Event::KernelTrace {
                launch,
                kernel,
                summary,
            } => {
                self.payload.push(tag::KERNEL_TRACE);
                self.launch(*launch);
                self.sym(kernel);
                self.v(summary.global_records);
                self.v(summary.shared_records);
                self.v(summary.barriers);
                self.v(summary.blocks);
                self.v(summary.instructions);
                self.v(summary.global_bytes);
            }
            Event::OpStart {
                seq,
                name,
                device,
                py_stack,
            } => {
                self.payload.push(tag::OP_START);
                self.v(*seq);
                self.sym(name);
                self.v(device.0.into());
                self.v(py_stack.len() as u64);
                for frame in py_stack {
                    self.sym(&frame.file);
                    self.v(frame.line.into());
                    self.sym(&frame.func);
                }
            }
            Event::OpEnd { seq, name, device } => {
                self.payload.push(tag::OP_END);
                self.v(*seq);
                self.sym(name);
                self.v(device.0.into());
            }
            Event::TensorAlloc {
                tensor,
                addr,
                bytes,
                allocated_total,
                reserved_total,
                device,
            } => {
                self.payload.push(tag::TENSOR_ALLOC);
                self.v(tensor.0);
                self.v(*addr);
                self.v(*bytes);
                self.v(*allocated_total);
                self.v(*reserved_total);
                self.v(device.0.into());
            }
            Event::TensorFree {
                tensor,
                addr,
                bytes,
                allocated_total,
                reserved_total,
                device,
            } => {
                self.payload.push(tag::TENSOR_FREE);
                self.v(tensor.0);
                self.v(*addr);
                self.v(*bytes);
                self.v(*allocated_total);
                self.v(*reserved_total);
                self.v(device.0.into());
            }
            Event::LayerBoundary {
                name,
                index,
                device,
            } => {
                self.payload.push(tag::LAYER_BOUNDARY);
                self.sym(name);
                self.v(*index as u64);
                self.v(device.0.into());
            }
            Event::PassBoundary { pass, device } => {
                self.payload.push(tag::PASS_BOUNDARY);
                self.payload.push(pass_code(*pass));
                self.v(device.0.into());
            }
            Event::RegionStart { label, device } => {
                self.payload.push(tag::REGION_START);
                self.sym(label);
                self.v(device.0.into());
            }
            Event::RegionEnd { label, device } => {
                self.payload.push(tag::REGION_END);
                self.sym(label);
                self.v(device.0.into());
            }
        }
    }
}

/// Decodes one shard's payload back into events, resolving dictionary ids
/// through symbols freshly interned into the reader's table.
pub(crate) struct ShardDecoder {
    symbols: Vec<Symbol>,
    last_time: u64,
    last_launch: u64,
}

impl ShardDecoder {
    pub(crate) fn new(symbols: Vec<Symbol>) -> Self {
        ShardDecoder {
            symbols,
            last_time: 0,
            last_launch: 0,
        }
    }

    fn sym(&self, cur: &mut Cursor<'_>) -> Result<Symbol, TraceError> {
        let id = cur.varint_usize()?;
        self.symbols.get(id).cloned().ok_or(TraceError::Corrupt {
            offset: cur.pos(),
            what: format!(
                "symbol id {id} out of range (dictionary has {})",
                self.symbols.len()
            ),
        })
    }

    fn string(&self, cur: &mut Cursor<'_>) -> Result<String, TraceError> {
        Ok(self.sym(cur)?.as_str().to_owned())
    }

    fn device(&self, cur: &mut Cursor<'_>) -> Result<DeviceId, TraceError> {
        let v = cur.varint()?;
        u32::try_from(v)
            .map(DeviceId)
            .map_err(|_| TraceError::Corrupt {
                offset: cur.pos(),
                what: format!("device id {v} exceeds u32"),
            })
    }

    fn u32v(&self, cur: &mut Cursor<'_>) -> Result<u32, TraceError> {
        let v = cur.varint()?;
        u32::try_from(v).map_err(|_| TraceError::Corrupt {
            offset: cur.pos(),
            what: format!("value {v} exceeds u32"),
        })
    }

    fn time(&mut self, cur: &mut Cursor<'_>) -> Result<SimTime, TraceError> {
        let delta = unzigzag(cur.varint()?);
        self.last_time = self.last_time.wrapping_add(delta as u64);
        Ok(SimTime(self.last_time))
    }

    fn launch(&mut self, cur: &mut Cursor<'_>) -> Result<LaunchId, TraceError> {
        let delta = unzigzag(cur.varint()?);
        self.last_launch = self.last_launch.wrapping_add(delta as u64);
        Ok(LaunchId(self.last_launch))
    }

    fn dim3(&self, cur: &mut Cursor<'_>) -> Result<Dim3, TraceError> {
        Ok(Dim3 {
            x: self.u32v(cur)?,
            y: self.u32v(cur)?,
            z: self.u32v(cur)?,
        })
    }

    fn batch(&mut self, cur: &mut Cursor<'_>) -> Result<AccessBatch, TraceError> {
        let launch = self.launch(cur)?;
        let spec_index = cur.varint_usize()?;
        let base = cur.varint()?;
        let len = cur.varint()?;
        let records = cur.varint()?;
        let bytes = cur.varint()?;
        let elem_size = self.u32v(cur)?;
        let kind = kind_from(cur.u8()?, cur.pos())?;
        let space = space_from(cur.u8()?, cur.pos())?;
        let pattern = match cur.u8()? {
            0 => AccessPattern::Sequential,
            1 => AccessPattern::Strided {
                stride: cur.varint()?,
            },
            2 => AccessPattern::Random,
            b => {
                return Err(TraceError::Corrupt {
                    offset: cur.pos(),
                    what: format!("bad AccessPattern code {b}"),
                })
            }
        };
        Ok(AccessBatch {
            launch,
            spec_index,
            base,
            len,
            records,
            bytes,
            elem_size,
            kind,
            space,
            pattern,
        })
    }

    /// Decodes the next record.
    pub(crate) fn decode(&mut self, cur: &mut Cursor<'_>) -> Result<Event, TraceError> {
        let t = cur.u8()?;
        let event = match t {
            tag::DRIVER_API => Event::DriverApi {
                name: self.sym(cur)?,
                device: self.device(cur)?,
                at: self.time(cur)?,
            },
            tag::RUNTIME_API => Event::RuntimeApi {
                name: self.sym(cur)?,
                device: self.device(cur)?,
                at: self.time(cur)?,
            },
            tag::SYNC => Event::Sync {
                device: self.device(cur)?,
                at: self.time(cur)?,
            },
            tag::KERNEL_LAUNCH_BEGIN => Event::KernelLaunchBegin {
                launch: self.launch(cur)?,
                device: self.device(cur)?,
                stream: self.u32v(cur)?,
                name: self.sym(cur)?,
                grid: self.dim3(cur)?,
                block: self.dim3(cur)?,
            },
            tag::KERNEL_LAUNCH_END => Event::KernelLaunchEnd {
                launch: self.launch(cur)?,
                device: self.device(cur)?,
                name: self.sym(cur)?,
                start: self.time(cur)?,
                end: self.time(cur)?,
            },
            tag::MEM_COPY => Event::MemCopy {
                device: self.device(cur)?,
                direction: direction_from(cur.u8()?, cur.pos())?,
                bytes: cur.varint()?,
                at: self.time(cur)?,
            },
            tag::MEM_SET => Event::MemSet {
                device: self.device(cur)?,
                addr: cur.varint()?,
                bytes: cur.varint()?,
                at: self.time(cur)?,
            },
            tag::RESOURCE_ALLOC => Event::ResourceAlloc {
                device: self.device(cur)?,
                addr: cur.varint()?,
                bytes: cur.varint()?,
                managed: bool_from(cur.u8()?, cur.pos())?,
                at: self.time(cur)?,
            },
            tag::RESOURCE_FREE => Event::ResourceFree {
                device: self.device(cur)?,
                addr: cur.varint()?,
                bytes: cur.varint()?,
                at: self.time(cur)?,
            },
            tag::BATCH_MEM_OP => Event::BatchMemOp {
                device: self.device(cur)?,
                op: self.sym(cur)?,
                addr: cur.varint()?,
                bytes: cur.varint()?,
                at: self.time(cur)?,
            },
            tag::UVM_FAULT => Event::UvmFault {
                launch: self.launch(cur)?,
                device: self.device(cur)?,
                groups: cur.varint()?,
                migrated_bytes: cur.varint()?,
                evicted_bytes: cur.varint()?,
                stall_ns: cur.varint()?,
                at: self.time(cur)?,
            },
            tag::UVM_PEER_MIGRATE => Event::UvmPeerMigrate {
                launch: self.launch(cur)?,
                src: self.device(cur)?,
                dst: self.device(cur)?,
                duplicated_pages: cur.varint()?,
                invalidated_pages: cur.varint()?,
                bytes: cur.varint()?,
                stall_ns: cur.varint()?,
                at: self.time(cur)?,
            },
            tag::BLOCK_BOUNDARY => Event::BlockBoundary {
                launch: self.launch(cur)?,
                count: cur.varint()?,
            },
            tag::GLOBAL_ACCESS => Event::GlobalAccess {
                launch: self.launch(cur)?,
                kernel: self.sym(cur)?,
                batch: self.batch(cur)?,
            },
            tag::SHARED_ACCESS => Event::SharedAccess {
                launch: self.launch(cur)?,
                kernel: self.sym(cur)?,
                batch: self.batch(cur)?,
            },
            tag::BARRIER => Event::Barrier {
                launch: self.launch(cur)?,
                count: cur.varint()?,
                cluster: bool_from(cur.u8()?, cur.pos())?,
            },
            tag::DEVICE_FUNC_CALL => Event::DeviceFuncCall {
                launch: self.launch(cur)?,
                count: cur.varint()?,
            },
            tag::DEVICE_MALLOC => Event::DeviceMalloc {
                launch: self.launch(cur)?,
                bytes: cur.varint()?,
            },
            tag::DEVICE_FREE => Event::DeviceFree {
                launch: self.launch(cur)?,
                bytes: cur.varint()?,
            },
            tag::GLOBAL_TO_SHARED_COPY => Event::GlobalToSharedCopy {
                launch: self.launch(cur)?,
                bytes: cur.varint()?,
            },
            tag::PIPELINE_OP => Event::PipelineOp {
                launch: self.launch(cur)?,
                count: cur.varint()?,
            },
            tag::INSTRUCTIONS => Event::Instructions {
                launch: self.launch(cur)?,
                count: cur.varint()?,
            },
            tag::KERNEL_TRACE => Event::KernelTrace {
                launch: self.launch(cur)?,
                kernel: self.sym(cur)?,
                summary: KernelTraceSummary {
                    global_records: cur.varint()?,
                    shared_records: cur.varint()?,
                    barriers: cur.varint()?,
                    blocks: cur.varint()?,
                    instructions: cur.varint()?,
                    global_bytes: cur.varint()?,
                },
            },
            tag::OP_START => {
                let seq = cur.varint()?;
                let name = self.sym(cur)?;
                let device = self.device(cur)?;
                let frames = cur.varint_usize()?;
                let mut py_stack = Vec::new();
                for _ in 0..frames {
                    py_stack.push(PyFrame {
                        file: self.string(cur)?,
                        line: self.u32v(cur)?,
                        func: self.string(cur)?,
                    });
                }
                Event::OpStart {
                    seq,
                    name,
                    device,
                    py_stack,
                }
            }
            tag::OP_END => Event::OpEnd {
                seq: cur.varint()?,
                name: self.sym(cur)?,
                device: self.device(cur)?,
            },
            tag::TENSOR_ALLOC => Event::TensorAlloc {
                tensor: TensorId(cur.varint()?),
                addr: cur.varint()?,
                bytes: cur.varint()?,
                allocated_total: cur.varint()?,
                reserved_total: cur.varint()?,
                device: self.device(cur)?,
            },
            tag::TENSOR_FREE => Event::TensorFree {
                tensor: TensorId(cur.varint()?),
                addr: cur.varint()?,
                bytes: cur.varint()?,
                allocated_total: cur.varint()?,
                reserved_total: cur.varint()?,
                device: self.device(cur)?,
            },
            tag::LAYER_BOUNDARY => Event::LayerBoundary {
                name: self.sym(cur)?,
                index: cur.varint_usize()?,
                device: self.device(cur)?,
            },
            tag::PASS_BOUNDARY => Event::PassBoundary {
                pass: pass_from(cur.u8()?, cur.pos())?,
                device: self.device(cur)?,
            },
            tag::REGION_START => Event::RegionStart {
                label: self.sym(cur)?,
                device: self.device(cur)?,
            },
            tag::REGION_END => Event::RegionEnd {
                label: self.sym(cur)?,
                device: self.device(cur)?,
            },
            _ => {
                return Err(TraceError::Corrupt {
                    offset: cur.pos(),
                    what: format!("unknown event tag {t}"),
                })
            }
        };
        Ok(event)
    }
}

/// Interns a shard dictionary into `table`, yielding the decoder's symbol
/// vector.
pub(crate) fn intern_dictionary(table: &SymbolTable, names: &[String]) -> Vec<Symbol> {
    names.iter().map(|n| table.intern(n)).collect()
}

fn put_stats(buf: &mut Vec<u8>, s: &UvmStats) {
    for v in [
        s.fault_groups,
        s.demand_pages_in,
        s.prefetch_pages_in,
        s.pages_evicted,
        s.fault_stall_ns,
        s.prefetch_stall_ns,
        s.evict_stall_ns,
        s.prefetch_noops,
        s.peer_pages_in,
        s.peer_stall_ns,
        s.duplicates_invalidated,
    ] {
        put_varint(buf, v);
    }
}

fn stats(cur: &mut Cursor<'_>) -> Result<UvmStats, TraceError> {
    Ok(UvmStats {
        fault_groups: cur.varint()?,
        demand_pages_in: cur.varint()?,
        prefetch_pages_in: cur.varint()?,
        pages_evicted: cur.varint()?,
        fault_stall_ns: cur.varint()?,
        prefetch_stall_ns: cur.varint()?,
        evict_stall_ns: cur.varint()?,
        prefetch_noops: cur.varint()?,
        peer_pages_in: cur.varint()?,
        peer_stall_ns: cur.varint()?,
        duplicates_invalidated: cur.varint()?,
    })
}

fn device(cur: &mut Cursor<'_>) -> Result<DeviceId, TraceError> {
    let v = cur.varint()?;
    u32::try_from(v)
        .map(DeviceId)
        .map_err(|_| TraceError::Corrupt {
            offset: cur.pos(),
            what: format!("device id {v} exceeds u32"),
        })
}

/// Serializes the UVM footer — the session-layer residency totals that
/// live *outside* the event stream (the manager overlay, not events), so
/// replay can restore [`pasta_core::MergedReport::uvm`] exactly.
pub(crate) fn encode_uvm(buf: &mut Vec<u8>, uvm: &UvmReport) {
    put_stats(buf, &uvm.stats);
    put_varint(buf, uvm.per_device.len() as u64);
    for (dev, s) in &uvm.per_device {
        put_varint(buf, dev.0.into());
        put_stats(buf, s);
    }
    put_varint(buf, uvm.peer_bytes.len() as u64);
    for ((src, dst), bytes) in &uvm.peer_bytes {
        put_varint(buf, src.0.into());
        put_varint(buf, dst.0.into());
        put_varint(buf, *bytes);
    }
}

/// Inverse of [`encode_uvm`].
pub(crate) fn decode_uvm(cur: &mut Cursor<'_>) -> Result<UvmReport, TraceError> {
    let totals = stats(cur)?;
    let lanes = cur.varint_usize()?;
    let mut per_device = Vec::new();
    for _ in 0..lanes {
        let dev = device(cur)?;
        per_device.push((dev, stats(cur)?));
    }
    let pairs = cur.varint_usize()?;
    let mut peer_bytes = Vec::new();
    for _ in 0..pairs {
        let src = device(cur)?;
        let dst = device(cur)?;
        peer_bytes.push(((src, dst), cur.varint()?));
    }
    Ok(UvmReport {
        stats: totals,
        per_device,
        peer_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbols_dedup_into_one_dictionary_slot() {
        let mut enc = ShardEncoder::new(DeviceId(0));
        for launch in 0..4 {
            enc.encode(&Event::KernelLaunchEnd {
                launch: LaunchId(launch),
                device: DeviceId(0),
                name: "ampere_sgemm".into(),
                start: SimTime(launch * 100),
                end: SimTime(launch * 100 + 80),
            });
        }
        let (_, symbols, records, _) = enc.into_parts();
        assert_eq!(records, 4);
        assert_eq!(symbols, vec!["ampere_sgemm".to_owned()]);
    }

    #[test]
    fn delta_coding_keeps_steady_streams_tiny() {
        // 100 launch-end records with monotone ids and times: the ids and
        // timestamps should cost ~1-2 bytes each, not 8.
        let mut enc = ShardEncoder::new(DeviceId(0));
        for launch in 0..100u64 {
            enc.encode(&Event::KernelLaunchEnd {
                launch: LaunchId(launch),
                device: DeviceId(0),
                name: "k".into(),
                start: SimTime(1_000_000 + launch * 500),
                end: SimTime(1_000_000 + launch * 500 + 450),
            });
        }
        let (_, _, records, payload) = enc.into_parts();
        assert_eq!(records, 100);
        let per_event = payload.len() as f64 / 100.0;
        assert!(
            per_event < 12.0,
            "steady kernel stream should encode well under 12 B/event, got {per_event}"
        );
    }

    #[test]
    fn uvm_footer_round_trips() {
        let report = UvmReport {
            stats: UvmStats {
                fault_groups: 7,
                demand_pages_in: 1 << 40,
                peer_pages_in: 32,
                duplicates_invalidated: 3,
                ..UvmStats::default()
            },
            per_device: vec![
                (DeviceId(0), UvmStats::default()),
                (
                    DeviceId(1),
                    UvmStats {
                        peer_stall_ns: 9_999,
                        ..UvmStats::default()
                    },
                ),
            ],
            peer_bytes: vec![((DeviceId(0), DeviceId(1)), 1 << 21)],
        };
        let mut buf = Vec::new();
        encode_uvm(&mut buf, &report);
        let mut cur = Cursor::new(&buf);
        let back = decode_uvm(&mut cur).unwrap();
        assert_eq!(back, report);
        assert_eq!(cur.remaining(), 0);
    }
}
