//! # pasta-trace — binary trace capture and offline replay
//!
//! Live PASTA profiling couples two costs: *capture* (normalizing and
//! dispatching events while the workload runs) and *analysis* (the tools
//! consuming them). This crate decouples them. A [`TraceWriter`]
//! attached to a session serializes the full normalized [`Event`] stream
//! — one stream per device shard, so `run_parallel` captures are stitched
//! under one shared header — into a compact binary [`Trace`]. Later, and
//! as many times as you like, [`replay`] drives the trace through any
//! [`ToolCollection`] and reproduces a [`MergedReport`] byte-identical to
//! what the live session produced: same tool reports, same per-device
//! breakdown, same event counts, same UVM slice.
//!
//! ## On-disk format (version 1)
//!
//! ```text
//! "PASTATRC"  magic, 8 bytes
//! version     u32 LE (= 1)
//! shard_count u32 LE
//! per shard (ascending device id):
//!   device        u32 LE
//!   symbol_count  varint          ── per-shard dictionary snapshot
//!   symbols       (len varint, utf-8 bytes) × symbol_count
//!   record_count  varint
//!   payload_len   varint
//!   payload       records: tag u8, then per-variant fields —
//!                 strings as dictionary ids, timestamps and launch ids
//!                 zigzag-delta varints, enums as single bytes
//! uvm_flag    u8 (0|1), then the UVM footer when 1
//! "PTRCEND\0" end marker, 8 bytes
//! ```
//!
//! All integers outside the fixed header are LEB128 varints; timestamp
//! and launch-id deltas use wrapping arithmetic, so arbitrary — even
//! non-monotone — `u64` sequences round-trip losslessly. The UVM footer
//! exists because the session's residency totals are a *manager overlay*,
//! not events: they cannot be reconstructed from the stream, so the
//! writer snapshots them at [`TraceWriter::finish`].
//!
//! ## Capture cost
//!
//! The hot path appends to an in-memory buffer under the shard lock the
//! processor already holds — no syscalls, no extra locking. With no
//! writer attached the event path pays exactly one `Option` discriminant
//! check (see the gating regression test in the workspace root).
//!
//! ## Example
//!
//! ```
//! use dl_framework::models::{ModelZoo, RunKind};
//! use pasta_core::tool::LaunchCounter;
//! use pasta_core::{Pasta, ToolCollection};
//! use pasta_trace::{replay, TraceWriter};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut session = Pasta::builder()
//!     .rtx_3060()
//!     .tool(LaunchCounter::default())
//!     .build()?;
//! let writer = TraceWriter::attach(&session);
//! session.run_model_scaled(ModelZoo::Bert, RunKind::Inference, 1, 8)?;
//! let live = session.merged_report();
//! let trace = writer.finish(&session);
//!
//! let mut tools = ToolCollection::new();
//! tools.register(Box::<LaunchCounter>::default());
//! let replayed = replay(&trace, &mut tools)?;
//! assert_eq!(live, replayed);
//! # Ok(())
//! # }
//! ```
//!
//! [`Event`]: pasta_core::Event
//! [`ToolCollection`]: pasta_core::ToolCollection
//! [`MergedReport`]: pasta_core::MergedReport

mod codec;
mod error;
mod reader;
mod replay;
mod wire;
mod writer;

pub use error::TraceError;
pub use reader::{TraceReader, TraceShard};
pub use replay::{replay, replay_decoded};
pub use writer::{Trace, TraceWriter, FORMAT_VERSION, MAGIC};
