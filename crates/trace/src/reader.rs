//! Reading: parse trace bytes back into per-shard event streams.
//!
//! Parsing is eager and fully validated: magic, version, every shard
//! dictionary, every record, the UVM footer and the end marker. The
//! input is treated as untrusted — any malformation yields a typed
//! [`TraceError`], never a panic. Symbol ids are re-interned into a
//! fresh [`SymbolTable`] owned by the reader; cross-table symbol
//! equality is by content, so replayed events compare equal to their
//! live originals.

use crate::codec::{decode_uvm, intern_dictionary, ShardDecoder};
use crate::error::TraceError;
use crate::wire::Cursor;
use crate::writer::{END_MAGIC, FORMAT_VERSION, MAGIC};
use accel_sim::{DeviceId, SymbolTable};
use pasta_core::report::UvmReport;
use pasta_core::Event;

/// One decoded per-device stream.
#[derive(Debug, Clone)]
pub struct TraceShard {
    /// The device whose hub shard produced the stream.
    pub device: DeviceId,
    /// The shard's events, in processing order.
    pub events: Vec<Event>,
}

/// A fully decoded trace.
#[derive(Debug)]
pub struct TraceReader {
    shards: Vec<TraceShard>,
    uvm: Option<UvmReport>,
    symbols: SymbolTable,
}

impl TraceReader {
    /// Parses and validates `bytes` end to end.
    ///
    /// # Errors
    ///
    /// [`TraceError::BadMagic`] / [`TraceError::UnsupportedVersion`] for
    /// foreign or future files, [`TraceError::Truncated`] when the input
    /// ends mid-structure, [`TraceError::Corrupt`] for structurally
    /// invalid bytes.
    pub fn parse(bytes: &[u8]) -> Result<TraceReader, TraceError> {
        let mut cur = Cursor::new(bytes);
        let magic = cur.take(8)?;
        if magic != MAGIC {
            let mut found = [0u8; 8];
            found.copy_from_slice(magic);
            return Err(TraceError::BadMagic { found });
        }
        let version = cur.u32_le()?;
        if version != FORMAT_VERSION {
            return Err(TraceError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let shard_count = cur.u32_le()?;
        if shard_count == 0 {
            return Err(TraceError::Corrupt {
                offset: cur.pos(),
                what: "trace has no shards".into(),
            });
        }
        if shard_count > 1 << 16 {
            return Err(TraceError::Corrupt {
                offset: cur.pos(),
                what: format!("implausible shard count {shard_count}"),
            });
        }

        let symbols = SymbolTable::new();
        let mut shards = Vec::with_capacity(shard_count as usize);
        for _ in 0..shard_count {
            let device = DeviceId(cur.u32_le()?);
            let sym_count = cur.varint_usize()?;
            let mut names = Vec::new();
            for _ in 0..sym_count {
                let len = cur.varint_usize()?;
                let raw = cur.take(len)?;
                let name = std::str::from_utf8(raw).map_err(|e| TraceError::Corrupt {
                    offset: cur.pos(),
                    what: format!("symbol is not utf-8: {e}"),
                })?;
                names.push(name.to_owned());
            }
            let records = cur.varint()?;
            let payload_len = cur.varint_usize()?;
            let payload_start = cur.pos();
            if cur.remaining() < payload_len {
                return Err(TraceError::Truncated {
                    offset: bytes.len(),
                });
            }
            let mut decoder = ShardDecoder::new(intern_dictionary(&symbols, &names));
            let mut events = Vec::new();
            for _ in 0..records {
                events.push(decoder.decode(&mut cur)?);
            }
            let consumed = cur.pos() - payload_start;
            if consumed != payload_len {
                return Err(TraceError::Corrupt {
                    offset: cur.pos(),
                    what: format!(
                        "shard payload length mismatch: header says {payload_len}, \
                         records consumed {consumed}"
                    ),
                });
            }
            shards.push(TraceShard { device, events });
        }

        let uvm = match cur.u8()? {
            0 => None,
            1 => Some(decode_uvm(&mut cur)?),
            b => {
                return Err(TraceError::Corrupt {
                    offset: cur.pos(),
                    what: format!("bad uvm-footer flag {b}"),
                })
            }
        };
        let end = cur.take(8)?;
        if end != END_MAGIC {
            return Err(TraceError::Corrupt {
                offset: cur.pos(),
                what: "missing end marker (file written but never finished?)".into(),
            });
        }
        if cur.remaining() != 0 {
            return Err(TraceError::Corrupt {
                offset: cur.pos(),
                what: format!("{} trailing bytes after end marker", cur.remaining()),
            });
        }
        Ok(TraceReader {
            shards,
            uvm,
            symbols,
        })
    }

    /// Decoded per-device streams, ascending device id.
    pub fn shards(&self) -> &[TraceShard] {
        &self.shards
    }

    /// The UVM footer, when the captured session had UVM attached.
    pub fn uvm(&self) -> Option<&UvmReport> {
        self.uvm.as_ref()
    }

    /// Total events across all shards.
    pub fn events_total(&self) -> u64 {
        self.shards.iter().map(|s| s.events.len() as u64).sum()
    }

    /// The reader's own symbol table — every name in the decoded events
    /// is interned here, independent of the process-global table.
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }
}
