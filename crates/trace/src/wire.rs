//! Wire primitives: LEB128 varints, zigzag deltas, and a bounds-checked
//! cursor.
//!
//! Everything multi-byte in a trace is either a fixed-width
//! little-endian header field or an LEB128 varint; signed deltas (the
//! timestamp and launch-id streams) ride as zigzag-mapped varints so
//! small magnitudes of either sign stay one byte. Delta arithmetic is
//! *wrapping* in both directions, which makes the round trip lossless for
//! arbitrary `u64` values — including the non-monotone timestamps a
//! multi-shard capture interleaves.

use crate::error::TraceError;

/// Appends `v` as an LEB128 varint (1–10 bytes).
pub(crate) fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Maps a signed delta onto the unsigned varint space: 0, -1, 1, -2, …
pub(crate) fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub(crate) fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// A bounds-checked reading position over an untrusted byte slice. Every
/// read either yields bytes or a typed [`TraceError`] carrying the offset
/// where input ran out — never a panic, never an out-of-bounds slice.
pub(crate) struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    /// Current byte offset from the start of the input.
    pub(crate) fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    pub(crate) fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Takes the next `n` bytes, or reports where the input ended.
    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], TraceError> {
        if self.remaining() < n {
            return Err(TraceError::Truncated {
                offset: self.bytes.len(),
            });
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, TraceError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32_le(&mut self) -> Result<u32, TraceError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads an LEB128 varint. A continuation past 10 bytes cannot encode
    /// a `u64` and is corruption, not truncation.
    pub(crate) fn varint(&mut self) -> Result<u64, TraceError> {
        let mut v: u64 = 0;
        for i in 0..10 {
            let byte = self.u8()?;
            v |= u64::from(byte & 0x7f) << (7 * i);
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(TraceError::Corrupt {
            offset: self.pos,
            what: "varint longer than 10 bytes".into(),
        })
    }

    /// A varint that must fit the platform `usize` (lengths, counts).
    pub(crate) fn varint_usize(&mut self) -> Result<usize, TraceError> {
        let v = self.varint()?;
        usize::try_from(v).map_err(|_| TraceError::Corrupt {
            offset: self.pos,
            what: format!("count {v} does not fit usize"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varints_round_trip_at_the_boundaries() {
        let cases = [
            0u64,
            1,
            127,
            128,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ];
        for v in cases {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut cur = Cursor::new(&buf);
            assert_eq!(cur.varint().unwrap(), v);
            assert_eq!(cur.remaining(), 0);
        }
    }

    #[test]
    fn zigzag_is_a_bijection_on_the_extremes() {
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, -123456789, 123456789] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn wrapping_deltas_recover_arbitrary_u64_pairs() {
        // The timestamp codec: delta = b.wrapping_sub(a) as i64, restore
        // with a.wrapping_add(delta as u64). Must hold even when the
        // "delta" spans more than i64::MAX.
        for (a, b) in [
            (0u64, u64::MAX),
            (u64::MAX, 0),
            (1 << 63, 42),
            (42, 1 << 63),
        ] {
            let delta = b.wrapping_sub(a) as i64;
            let restored = a.wrapping_add(unzigzag(zigzag(delta)) as u64);
            assert_eq!(restored, b);
        }
    }

    #[test]
    fn cursor_reads_are_bounds_checked() {
        let mut cur = Cursor::new(&[1, 2, 3]);
        assert_eq!(cur.take(2).unwrap(), &[1, 2]);
        assert!(matches!(
            cur.take(2),
            Err(TraceError::Truncated { offset: 3 })
        ));
        // A varint whose continuation bit promises more input than exists.
        let mut cur = Cursor::new(&[0x80, 0x80]);
        assert!(matches!(cur.varint(), Err(TraceError::Truncated { .. })));
        // An 11-byte continuation run is corruption, not truncation.
        let overlong = [0x80u8; 11];
        let mut cur = Cursor::new(&overlong);
        assert!(matches!(cur.varint(), Err(TraceError::Corrupt { .. })));
    }
}
