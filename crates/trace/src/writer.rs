//! Capture: attach a [`TraceWriter`] to a live session, run workloads,
//! and take away a [`Trace`].
//!
//! One recorder is installed per hub shard, so a `run_parallel` session
//! writes one stream per device, stitched under a shared header. The
//! recorder's hot path appends to an in-memory buffer under the shard
//! lock it already holds — no file descriptor, no syscall, no extra
//! locking; all I/O happens once, in [`Trace::save`], after capture.

use crate::codec::{encode_uvm, ShardEncoder};
use crate::error::TraceError;
use accel_sim::DeviceId;
use parking_lot::Mutex;
use pasta_core::hub::SharedHub;
use pasta_core::processor::EventRecorder;
use pasta_core::report::UvmReport;
use pasta_core::{Event, PastaSession};
use std::fmt;
use std::fs;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Arc;

/// First bytes of every trace file.
pub const MAGIC: [u8; 8] = *b"PASTATRC";
/// Trailing end marker — proves the writer finished the file.
pub(crate) const END_MAGIC: [u8; 8] = *b"PTRCEND\0";
/// The on-disk format revision this build reads and writes.
pub const FORMAT_VERSION: u32 = 1;

/// The per-shard [`EventRecorder`] the writer installs: a thin handle to
/// that shard's encoder. `record` runs under the shard lock, so the inner
/// mutex is uncontended — it exists only so the writer can keep a second
/// handle for assembly after detach.
struct ShardRecorder {
    enc: Arc<Mutex<ShardEncoder>>,
}

impl fmt::Debug for ShardRecorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ShardRecorder({} records)", self.enc.lock().records())
    }
}

impl EventRecorder for ShardRecorder {
    fn record(&mut self, event: &Event) {
        self.enc.lock().encode(event);
    }
}

/// Captures a session's normalized event streams into a binary trace.
///
/// Capture is crash-consistent: a writer that never reaches
/// [`TraceWriter::finish`] — an early return, a `?`, a contained panic —
/// detaches its recorders when dropped, so the session keeps running
/// without a dangling recorder, and [`TraceWriter::abort`] turns
/// everything captured up to that point into a fully parseable trace
/// (header, streams, end marker — only the UVM footer is absent).
///
/// One writer per session at a time: attaching a second writer replaces
/// the first's recorders, so drop (or finish) the first before attaching
/// another.
///
/// ```no_run
/// # use pasta_core::Pasta;
/// # use pasta_trace::TraceWriter;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut session = Pasta::builder().rtx_3060().build()?;
/// let writer = TraceWriter::attach(&session);
/// // ... run workloads ...
/// let trace = writer.finish(&session);
/// trace.save("run.pastatrace")?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct TraceWriter {
    shards: Vec<Arc<Mutex<ShardEncoder>>>,
    /// The hub the recorders are attached to — kept so detach works from
    /// `abort` and `Drop` without borrowing the session again.
    hub: SharedHub,
}

impl TraceWriter {
    /// Installs one recorder per device shard of `session`'s hub. Events
    /// processed from here on — including everything a `run_parallel`
    /// region routes through per-lane sinks — are serialized as they are
    /// counted.
    pub fn attach(session: &PastaSession) -> TraceWriter {
        let mut shards = Vec::new();
        session.attach_event_recorders(|device| {
            let enc = Arc::new(Mutex::new(ShardEncoder::new(device)));
            shards.push(Arc::clone(&enc));
            Box::new(ShardRecorder { enc }) as Box<dyn EventRecorder>
        });
        TraceWriter {
            shards,
            hub: Arc::clone(session.hub()),
        }
    }

    /// Events captured so far, across all shards.
    pub fn events_captured(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().records()).sum()
    }

    /// Takes ownership of every shard encoder, leaving the writer empty
    /// (its `Drop` then has nothing to detach).
    fn take_encoders(&mut self) -> Vec<ShardEncoder> {
        std::mem::take(&mut self.shards)
            .into_iter()
            .map(|enc| match Arc::try_unwrap(enc) {
                Ok(m) => m.into_inner(),
                // A recorder handle still holds the encoder — detach did
                // not return it (e.g. a later writer replaced ours). Swap
                // the captured state out under the lock instead.
                Err(shared) => {
                    let mut guard = shared.lock();
                    let device = guard.device;
                    std::mem::replace(&mut *guard, ShardEncoder::new(device))
                }
            })
            .collect()
    }

    /// Stops capture (detaches every recorder), snapshots the session's
    /// UVM report into the trace footer, and assembles the final bytes.
    pub fn finish(mut self, session: &PastaSession) -> Trace {
        drop(session.detach_event_recorders());
        let uvm = session.uvm_report();
        Trace::assemble(self.take_encoders(), uvm.as_ref())
    }

    /// Abort-finalization: stops capture through the hub handle alone and
    /// assembles everything recorded so far into a complete, parseable
    /// trace (no UVM footer — the session is not consulted). Use this on
    /// failure paths where the session is poisoned, mid-salvage, or
    /// simply out of reach.
    pub fn abort(mut self) -> Trace {
        drop(self.hub.detach_recorders());
        Trace::assemble(self.take_encoders(), None)
    }
}

/// A writer dropped without [`TraceWriter::finish`]/[`TraceWriter::abort`]
/// detaches its recorders so the session does not keep encoding into (and
/// allocating for) a trace nobody can ever collect.
impl Drop for TraceWriter {
    fn drop(&mut self) {
        if !self.shards.is_empty() {
            drop(self.hub.detach_recorders());
        }
    }
}

/// An assembled binary trace: header, one stream per device shard, UVM
/// footer, end marker. See the crate docs for the byte layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    bytes: Vec<u8>,
}

impl Trace {
    pub(crate) fn assemble(mut encoders: Vec<ShardEncoder>, uvm: Option<&UvmReport>) -> Trace {
        // Deterministic layout: shards in ascending device order, the same
        // order the hub merges in.
        encoders.sort_by_key(|e| e.device);
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&(encoders.len() as u32).to_le_bytes());
        for enc in encoders {
            let (device, symbols, records, payload) = enc.into_parts();
            bytes.extend_from_slice(&device.0.to_le_bytes());
            crate::wire::put_varint(&mut bytes, symbols.len() as u64);
            for name in &symbols {
                crate::wire::put_varint(&mut bytes, name.len() as u64);
                bytes.extend_from_slice(name.as_bytes());
            }
            crate::wire::put_varint(&mut bytes, records);
            crate::wire::put_varint(&mut bytes, payload.len() as u64);
            bytes.extend_from_slice(&payload);
        }
        match uvm {
            Some(report) => {
                bytes.push(1);
                encode_uvm(&mut bytes, report);
            }
            None => bytes.push(0),
        }
        bytes.extend_from_slice(&END_MAGIC);
        Trace { bytes }
    }

    /// Encodes pre-collected per-shard event streams directly — the
    /// session-free construction path used by property tests and
    /// benchmarks. Shard order need not be sorted; the layout is
    /// normalized to ascending device id.
    pub fn from_shards<'a, I>(shards: I, uvm: Option<&UvmReport>) -> Trace
    where
        I: IntoIterator<Item = (DeviceId, &'a [Event])>,
    {
        let encoders = shards
            .into_iter()
            .map(|(device, events)| {
                let mut enc = ShardEncoder::new(device);
                for event in events {
                    enc.encode(event);
                }
                enc
            })
            .collect();
        Trace::assemble(encoders, uvm)
    }

    /// Wraps raw bytes (e.g. received over a socket). Validation happens
    /// at parse time, not here.
    pub fn from_bytes(bytes: Vec<u8>) -> Trace {
        Trace { bytes }
    }

    /// The serialized form.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Consumes the trace into its bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Size on the wire, bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True when the byte buffer is empty (never true for assembled
    /// traces — the header alone is 16 bytes).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Writes the trace to a file (buffered, one pass).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), TraceError> {
        let mut out = BufWriter::new(fs::File::create(path)?);
        out.write_all(&self.bytes)?;
        out.flush()?;
        Ok(())
    }

    /// Reads a trace file back. The bytes are not validated until
    /// [`crate::TraceReader::parse`].
    pub fn load(path: impl AsRef<Path>) -> Result<Trace, TraceError> {
        Ok(Trace {
            bytes: fs::read(path)?,
        })
    }
}
