//! Offline replay: drive a decoded trace through a tool collection and
//! reproduce the live run's [`MergedReport`] byte-identically.
//!
//! Each trace shard is replayed through a fresh [`EventProcessor`] in
//! recorded order — exactly the events that bumped the live shard's
//! `events_processed`, which is exactly the tool-visible history (the
//! capture hook records before dispatch, and cross-shard range
//! *observation* is bookkeeping that never reaches tools). The shards
//! then merge through the same deterministic hub fold as a live session:
//! ascending device id, one fork per extra shard, identical fold order.
//! The UVM slice — session-layer residency totals that never were events
//! — rides in the trace footer and is overlaid the same way the session
//! overlays its manager totals.

use crate::error::TraceError;
use crate::reader::TraceReader;
use crate::writer::Trace;
use pasta_core::hub::Hub;
use pasta_core::{EventProcessor, MergedReport, ToolCollection};

/// Parses `trace` and replays it through `tools`.
///
/// On success the merged report is byte-identical to what the captured
/// session's `merged_report()` returned, and `tools` holds the primary
/// shard's analyzed state (so callers can query individual tools after
/// replay, exactly as they would after a live run).
///
/// # Errors
///
/// Any parse failure ([`TraceError::BadMagic`],
/// [`TraceError::Truncated`], …), or [`TraceError::UnforkableTools`]
/// when the trace has several shards but some tool cannot fork — in that
/// case `tools` is left untouched.
pub fn replay(trace: &Trace, tools: &mut ToolCollection) -> Result<MergedReport, TraceError> {
    let reader = TraceReader::parse(trace.as_bytes())?;
    replay_decoded(&reader, tools)
}

/// Replays an already-parsed trace — the zero-reparse path for driving
/// one decoded trace through several tool suites (or benchmark
/// iterations).
pub fn replay_decoded(
    reader: &TraceReader,
    tools: &mut ToolCollection,
) -> Result<MergedReport, TraceError> {
    let shards = reader.shards();
    if shards.is_empty() {
        // Unreachable via parse() (which rejects zero shards), but a
        // hand-built reader must not panic below.
        return Err(TraceError::Corrupt {
            offset: 0,
            what: "no shards to replay".into(),
        });
    }

    // Fork the extra shards *before* taking the caller's collection, so a
    // fork refusal leaves `tools` untouched.
    let mut forks = Vec::new();
    for _ in 1..shards.len() {
        forks.push(tools.fork_all().ok_or(TraceError::UnforkableTools)?);
    }

    let mut procs = Vec::with_capacity(shards.len());
    let mut primary = EventProcessor::new();
    primary.tools = std::mem::take(tools);
    procs.push((shards[0].device, primary));
    for (fork, shard) in forks.into_iter().zip(&shards[1..]) {
        let mut p = EventProcessor::new();
        p.tools = fork;
        procs.push((shard.device, p));
    }

    for ((_, processor), shard) in procs.iter_mut().zip(shards) {
        for event in &shard.events {
            processor.process(event);
        }
    }

    let hub = Hub::sharded(procs).map_err(|what| TraceError::Corrupt { offset: 0, what })?;
    let mut report = hub.merged_report();
    report.uvm = reader.uvm().cloned();
    // Hand the analyzed primary collection back to the caller. The hub
    // sorts shards ascending — the same order the trace stores them — so
    // the primary shard is the one the caller's tools went into.
    *tools = std::mem::take(&mut hub.primary().tools);
    Ok(report)
}
