//! Typed trace failures.
//!
//! Every malformed input — wrong magic, future format version, a file cut
//! off mid-record, a corrupt enum byte — surfaces as a [`TraceError`]
//! value. Parsing never panics: the reader treats the byte stream as
//! untrusted input end to end.

use std::fmt;

/// Why a trace could not be read, written or replayed.
#[derive(Debug)]
pub enum TraceError {
    /// The first eight bytes are not the `PASTATRC` magic — this is not a
    /// pasta trace file at all.
    BadMagic {
        /// The bytes actually found.
        found: [u8; 8],
    },
    /// The file is a pasta trace, but written by a newer (or unknown)
    /// format revision this reader does not understand.
    UnsupportedVersion {
        /// Version stamped in the file header.
        found: u32,
        /// The version this build reads and writes.
        supported: u32,
    },
    /// The byte stream ended before the structure it promised — a partial
    /// download, a truncated copy, a crash mid-write.
    Truncated {
        /// Byte offset at which more input was required.
        offset: usize,
    },
    /// The bytes are present but structurally invalid: an unknown event
    /// tag, an out-of-range enum code, a payload whose declared length
    /// disagrees with its records.
    Corrupt {
        /// Byte offset at which the inconsistency was detected.
        offset: usize,
        /// What was wrong.
        what: String,
    },
    /// Replay over a multi-shard trace needs one tool instance per shard,
    /// but some registered tool declines to fork.
    UnforkableTools,
    /// An underlying file operation failed ([`Trace::save`] /
    /// [`Trace::load`]).
    ///
    /// [`Trace::save`]: crate::Trace::save
    /// [`Trace::load`]: crate::Trace::load
    Io(std::io::Error),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::BadMagic { found } => {
                write!(f, "not a pasta trace: bad magic {found:?}")
            }
            TraceError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "unsupported trace format version {found} (this build reads {supported})"
                )
            }
            TraceError::Truncated { offset } => {
                write!(f, "trace truncated: input ended at byte {offset}")
            }
            TraceError::Corrupt { offset, what } => {
                write!(f, "trace corrupt at byte {offset}: {what}")
            }
            TraceError::UnforkableTools => {
                write!(
                    f,
                    "replaying a multi-shard trace needs forkable tools \
                     (some registered tool returned None from fork)"
                )
            }
            TraceError::Io(e) => write!(f, "trace i/o failed: {e}"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// Bridges trace failures into the session-level taxonomy, so `?` works
/// in code that mixes session and trace calls. The variant carries the
/// rendered message (the orphan rule puts this impl here, and pasta-core
/// cannot name `TraceError` — the dependency points the other way).
impl From<TraceError> for pasta_core::PastaError {
    fn from(e: TraceError) -> Self {
        pasta_core::PastaError::Trace(e.to_string())
    }
}
