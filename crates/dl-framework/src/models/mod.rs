//! The six evaluated models (paper Table IV).
//!
//! | Model     | Type        | Layers | Architecture         | Batch |
//! |-----------|-------------|--------|----------------------|-------|
//! | AlexNet   | CNN         | 8      | Conv + FC            | 128   |
//! | ResNet-18 | CNN         | 18     | Residual blocks      | 32    |
//! | ResNet-34 | CNN         | 34     | Residual blocks      | 32    |
//! | GPT-2     | Transformer | 12     | Decoder              | 8     |
//! | BERT      | Transformer | 12     | Encoder              | 16    |
//! | Whisper   | Transformer | 12+12  | Encoder/Decoder      | 16    |
//!
//! Every model implements [`Workload`]: it can run inference batches and
//! training iterations on any [`crate::Session`], producing the kernel
//! populations, tensor lifetimes and memory curves the PASTA tools
//! measure. Architectural dimensions are the published ones, so kernel
//! counts, footprints and working sets *emerge* from shapes.

pub mod cnn;
pub mod transformer;

use crate::session::Session;
use accel_sim::AccelError;
use serde::{Deserialize, Serialize};

/// Model family, as listed in Table IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// Convolutional network.
    Cnn,
    /// Transformer.
    Transformer,
}

/// Whether a run is inference or training.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RunKind {
    /// Forward only.
    Inference,
    /// Forward + backward + optimizer.
    Training,
}

impl RunKind {
    /// Label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            RunKind::Inference => "inference",
            RunKind::Training => "train",
        }
    }
}

/// Table IV metadata for one model.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelSpec {
    /// Full name.
    pub name: &'static str,
    /// Paper abbreviation (`AN`, `RN-18`, …).
    pub abbr: &'static str,
    /// Family.
    pub kind: ModelKind,
    /// Layer count as the paper counts it.
    pub layers: usize,
    /// Batch size used in the evaluation.
    pub batch: usize,
}

/// A built model that can execute on a session.
pub trait Workload: Send {
    /// Table IV metadata.
    fn spec(&self) -> &ModelSpec;

    /// Runs one inference batch (allocates the input, frees all transients
    /// and the output before returning).
    ///
    /// # Errors
    ///
    /// Propagates allocation/launch failures.
    fn inference_batch(&mut self, s: &mut Session<'_>) -> Result<(), AccelError>;

    /// Runs one training iteration (forward, loss, backward, optimizer).
    ///
    /// # Errors
    ///
    /// Propagates allocation/launch failures.
    fn training_iter(&mut self, s: &mut Session<'_>) -> Result<(), AccelError>;

    /// Frees parameters and internal state.
    fn destroy(&mut self, s: &mut Session<'_>);

    /// Total parameter bytes.
    fn param_bytes(&self) -> u64;
}

/// The model zoo: constructors for every Table IV model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelZoo {
    /// AlexNet, batch 128.
    AlexNet,
    /// ResNet-18, batch 32.
    ResNet18,
    /// ResNet-34, batch 32.
    ResNet34,
    /// GPT-2 (124M decoder), batch 8.
    Gpt2,
    /// BERT-base (encoder), batch 16.
    Bert,
    /// Whisper-small (encoder/decoder), batch 16.
    Whisper,
}

impl ModelZoo {
    /// All six models in paper order.
    pub fn all() -> [ModelZoo; 6] {
        [
            ModelZoo::AlexNet,
            ModelZoo::ResNet18,
            ModelZoo::ResNet34,
            ModelZoo::Gpt2,
            ModelZoo::Bert,
            ModelZoo::Whisper,
        ]
    }

    /// Convenience constructor naming parity with the paper.
    pub fn bert() -> ModelZoo {
        ModelZoo::Bert
    }

    /// Table IV metadata without building the model.
    pub fn spec(self) -> ModelSpec {
        match self {
            ModelZoo::AlexNet => ModelSpec {
                name: "AlexNet",
                abbr: "AN",
                kind: ModelKind::Cnn,
                layers: 8,
                batch: 128,
            },
            ModelZoo::ResNet18 => ModelSpec {
                name: "ResNet18",
                abbr: "RN-18",
                kind: ModelKind::Cnn,
                layers: 18,
                batch: 32,
            },
            ModelZoo::ResNet34 => ModelSpec {
                name: "ResNet34",
                abbr: "RN-34",
                kind: ModelKind::Cnn,
                layers: 34,
                batch: 32,
            },
            ModelZoo::Gpt2 => ModelSpec {
                name: "GPT-2",
                abbr: "GPT-2",
                kind: ModelKind::Transformer,
                layers: 12,
                batch: 8,
            },
            ModelZoo::Bert => ModelSpec {
                name: "BERT",
                abbr: "BERT",
                kind: ModelKind::Transformer,
                layers: 12,
                batch: 16,
            },
            ModelZoo::Whisper => ModelSpec {
                name: "Whisper (small)",
                abbr: "Whisper",
                kind: ModelKind::Transformer,
                layers: 12,
                batch: 16,
            },
        }
    }

    /// Builds the model with its paper batch size.
    ///
    /// # Errors
    ///
    /// Propagates allocator out-of-memory while creating parameters.
    pub fn build(self, s: &mut Session<'_>) -> Result<Box<dyn Workload>, AccelError> {
        self.build_scaled(s, 1)
    }

    /// Builds the model with `batch / divisor` (tests use `divisor > 1` to
    /// stay fast; experiments use 1).
    ///
    /// # Errors
    ///
    /// Propagates allocator out-of-memory while creating parameters.
    pub fn build_scaled(
        self,
        s: &mut Session<'_>,
        divisor: usize,
    ) -> Result<Box<dyn Workload>, AccelError> {
        let spec = self.spec();
        let batch = (spec.batch / divisor.max(1)).max(1);
        Ok(match self {
            ModelZoo::AlexNet => Box::new(cnn::alexnet(s, batch)?),
            ModelZoo::ResNet18 => Box::new(cnn::resnet(s, batch, &[2, 2, 2, 2], "ResNet18")?),
            ModelZoo::ResNet34 => Box::new(cnn::resnet(s, batch, &[3, 4, 6, 3], "ResNet34")?),
            ModelZoo::Gpt2 => Box::new(transformer::gpt2(s, batch)?),
            ModelZoo::Bert => Box::new(transformer::bert(s, batch)?),
            ModelZoo::Whisper => Box::new(transformer::whisper_small(s, batch)?),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_match_table_iv() {
        assert_eq!(ModelZoo::AlexNet.spec().batch, 128);
        assert_eq!(ModelZoo::ResNet18.spec().batch, 32);
        assert_eq!(ModelZoo::Gpt2.spec().batch, 8);
        assert_eq!(ModelZoo::Bert.spec().batch, 16);
        assert_eq!(ModelZoo::Whisper.spec().batch, 16);
        assert_eq!(ModelZoo::ResNet34.spec().layers, 34);
        assert_eq!(ModelZoo::all().len(), 6);
    }

    #[test]
    fn run_kind_labels() {
        assert_eq!(RunKind::Inference.label(), "inference");
        assert_eq!(RunKind::Training.label(), "train");
    }
}
