//! Transformer models: GPT-2 (decoder), BERT (encoder), Whisper-small
//! (encoder/decoder).
//!
//! All three share [`TransformerLm`]: token + positional embeddings, a
//! stack of [`TransformerBlock`]s, a final layer norm, and a weight-tied
//! vocabulary projection. Whisper adds an audio encoder whose output the
//! decoder's cross-attention layers consume.

use super::{ModelKind, ModelSpec, Workload};
use crate::callbacks::Pass;
use crate::dtype::DType;
use crate::layers::{Layer, LayerNorm, Linear, Param, Sequential, TransformerBlock};
use crate::ops::{self, Act};
use crate::pycall::PyFrame;
use crate::session::Session;
use crate::tensor::Tensor;
use accel_sim::AccelError;

/// Architectural dimensions of a transformer LM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LmDims {
    /// Hidden width.
    pub d: usize,
    /// Attention heads.
    pub heads: usize,
    /// Feed-forward hidden width.
    pub ffn: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// Sequence length.
    pub seq: usize,
    /// Block count.
    pub layers: usize,
}

impl LmDims {
    /// Bytes of KV cache one token occupies under these dimensions: a
    /// key and a value vector of width `d` per layer, in `dtype` — the
    /// per-decode-step growth rate of a serving request's paged cache
    /// (`crate::serving`).
    pub fn kv_bytes_per_token(&self, dtype: DType) -> u64 {
        2 * self.layers as u64 * self.d as u64 * dtype.size_bytes()
    }

    /// Approximate parameter bytes of the decoder stack in `dtype`:
    /// QKV/output projections (`4·d²`) plus the two MLP matrices
    /// (`2·d·ffn`) per layer, plus the tied token embedding
    /// (`vocab·d`). The serving scenario sizes its shared weight range
    /// with this, so weight residency competes with KV growth for the
    /// managed budget the way it does on a real serving GPU.
    pub fn param_bytes(&self, dtype: DType) -> u64 {
        let per_layer = 4 * self.d as u64 * self.d as u64 + 2 * self.d as u64 * self.ffn as u64;
        (self.layers as u64 * per_layer + self.vocab as u64 * self.d as u64) * dtype.size_bytes()
    }
}

/// A decoder- or encoder-only transformer language model.
pub struct TransformerLm {
    spec: ModelSpec,
    dims: LmDims,
    batch: usize,
    wte: Param,
    wpe: Param,
    blocks: Sequential,
    ln_f: LayerNorm,
    /// Whisper's audio encoder, if any.
    encoder: Option<AudioEncoder>,
    /// Python entry file used for simulated call stacks.
    py_file: &'static str,
}

impl std::fmt::Debug for TransformerLm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TransformerLm")
            .field("spec", &self.spec)
            .field("dims", &self.dims)
            .finish()
    }
}

/// Whisper's convolutional-front-end audio encoder.
pub struct AudioEncoder {
    proj1: Linear,
    proj2: Linear,
    blocks: Sequential,
    ln: LayerNorm,
    frames: usize,
    mel: usize,
    /// Cross-attention layers of the decoder (one per decoder block).
    cross: Vec<CrossAttention>,
}

/// Decoder→encoder cross-attention.
///
/// Query comes from the decoder stream, keys/values from the encoder
/// memory; scores are `[b·h, seq_q, seq_kv]`, so the kernel's working set
/// includes the (large) encoder memory — the access-pattern fidelity the
/// Whisper rows of Table V need.
pub struct CrossAttention {
    wq: Param,
    wkv: Param,
    wo: Param,
    dim: usize,
    heads: usize,
    saved: Vec<Tensor>,
}

impl CrossAttention {
    fn new(s: &mut Session<'_>, dim: usize, heads: usize) -> Result<Self, AccelError> {
        Ok(CrossAttention {
            wq: Param::new(s, &[dim, dim])?,
            wkv: Param::new(s, &[2 * dim, dim])?,
            wo: Param::new(s, &[dim, dim])?,
            dim,
            heads,
            saved: Vec::new(),
        })
    }

    fn forward(
        &mut self,
        s: &mut Session<'_>,
        x: &Tensor,
        memory: &Tensor,
        train: bool,
    ) -> Result<Tensor, AccelError> {
        let (b, sq) = (x.shape[0], x.shape[1]);
        let sk = memory.shape[1];
        let (d, h) = (self.dim, self.heads);
        s.with_op("aten::cross_attention", |s| {
            let q = ops::linear(s, x, &self.wq.tensor.clone(), None, Act::None)?;
            let kv = ops::linear(s, memory, &self.wkv.tensor.clone(), None, Act::None)?;
            let scores = s.alloc_tensor(&[b * h, sq, sk], DType::F32)?;
            ops::gemm_kernel(
                s,
                "64x64_xattn_qk",
                &q,
                &kv,
                &scores,
                (b * h * sq) as u64,
                sk as u64,
                (d / h) as u64,
                None,
                Act::None,
            )?;
            let probs = ops::softmax(s, &scores)?;
            s.free_tensor(&scores);
            let ctx = s.alloc_tensor(&[b, sq, d], DType::F32)?;
            ops::gemm_kernel(
                s,
                "64x64_xattn_pv",
                &probs,
                &kv,
                &ctx,
                (b * h * sq) as u64,
                (d / h) as u64,
                sk as u64,
                None,
                Act::None,
            )?;
            let out = ops::linear(s, &ctx, &self.wo.tensor.clone(), None, Act::None)?;
            // Memory-efficient attention: probabilities are recomputed in
            // backward, never saved (they are O(seq_q x seq_kv) per head).
            s.free_tensor(&probs);
            if train {
                self.saved = vec![q, kv, ctx];
            } else {
                for t in [q, kv, ctx] {
                    s.free_tensor(&t);
                }
            }
            Ok(out)
        })
    }

    fn backward(
        &mut self,
        s: &mut Session<'_>,
        x: &Tensor,
        memory: &Tensor,
        grad_out: &Tensor,
    ) -> Result<Tensor, AccelError> {
        let ctx = self.saved.pop().expect("ctx");
        let kv = self.saved.pop().expect("kv");
        let q = self.saved.pop().expect("q");
        let (b, sq) = (q.shape[0], q.shape[1]);
        let sk = kv.shape[1];
        let h = self.heads;

        let (g_ctx, g_wo, _) = ops::linear_backward(s, &ctx, &self.wo.tensor, grad_out, false)?;
        self.wo.set_grad(s, g_wo)?;
        s.free_tensor(&ctx);
        // Recompute the cross-attention probabilities (memory-efficient path).
        let scores = s.alloc_tensor(&[b * h, sq, sk], DType::F32)?;
        ops::gemm_kernel(
            s,
            "64x64_xattn_qk_recompute",
            &q,
            &kv,
            &scores,
            (b * h * sq) as u64,
            sk as u64,
            (self.dim / h) as u64,
            None,
            Act::None,
        )?;
        let probs = ops::softmax(s, &scores)?;
        s.free_tensor(&scores);
        let g_probs = ops::softmax_backward(s, &probs, &g_ctx)?;
        s.free_tensor(&probs);
        s.free_tensor(&g_ctx);
        let g_q = s.alloc_tensor(&q.shape, DType::F32)?;
        ops::gemm_kernel(
            s,
            "64x64_xattn_bwd",
            &g_probs,
            &kv,
            &g_q,
            (q.shape[0] * q.shape[1]) as u64,
            (self.dim / self.heads) as u64,
            g_probs.shape[2] as u64,
            None,
            Act::None,
        )?;
        s.free_tensor(&g_probs);
        s.free_tensor(&q);
        // Grad through the KV projection lands on the (shared) memory; the
        // encoder path absorbs it, so the memory gradient is dropped here.
        let g_kv = s.alloc_tensor(&kv.shape, DType::F32)?;
        let (g_mem, g_wkv, _) = ops::linear_backward(s, memory, &self.wkv.tensor, &g_kv, false)?;
        self.wkv.set_grad(s, g_wkv)?;
        s.free_tensor(&g_kv);
        s.free_tensor(&kv);
        s.free_tensor(&g_mem);
        let (gx, g_wq, _) = ops::linear_backward(s, x, &self.wq.tensor, &g_q, false)?;
        self.wq.set_grad(s, g_wq)?;
        s.free_tensor(&g_q);
        Ok(gx)
    }

    fn release_saved(&mut self, s: &mut Session<'_>) {
        for t in self.saved.drain(..) {
            s.free_tensor(&t);
        }
    }

    fn step(&mut self, s: &mut Session<'_>) -> Result<(), AccelError> {
        self.wq.step(s)?;
        self.wkv.step(s)?;
        self.wo.step(s)
    }

    fn destroy(&mut self, s: &mut Session<'_>) {
        self.release_saved(s);
        self.wq.destroy(s);
        self.wkv.destroy(s);
        self.wo.destroy(s);
    }

    fn param_bytes(&self) -> u64 {
        self.wq.bytes() + self.wkv.bytes() + self.wo.bytes()
    }
}

/// Training-mode activations the shared forward keeps: `(idx, h, hl)`.
type SavedActivations = Option<(Tensor, Tensor, Tensor)>;

impl TransformerLm {
    /// Runs the shared forward: embeddings → blocks → final LN → logits.
    /// Returns `(logits, idx, h, hl)`; in inference `idx/h/hl` are already
    /// freed and returned for shape inspection only.
    fn forward(
        &mut self,
        s: &mut Session<'_>,
        train: bool,
    ) -> Result<(Tensor, SavedActivations), AccelError> {
        let (b, seq, d) = (self.batch, self.dims.seq, self.dims.d);
        s.py_push(PyFrame::new(self.py_file, 146, "forward"));
        let idx = s.alloc_tensor(&[b, seq], DType::I64)?;
        let emb = ops::embedding(s, &self.wte.tensor.clone(), &idx)?;
        let wpe = self.wpe.tensor.clone();
        let x = ops::elementwise(
            s,
            "at::native::vectorized_elementwise_kernel<add_pos>",
            &[&emb, &wpe],
            &[b, seq, d],
        )?;
        s.free_tensor(&emb);
        let h = self.blocks.forward(s, x, train)?;
        let hl = self.ln_f.forward(s, &h, train)?;
        // Weight-tied head: logits = hl × wteᵀ.
        let logits = ops::linear(s, &hl, &self.wte.tensor.clone(), None, Act::None)?;
        s.py_pop();
        if train {
            Ok((logits, Some((idx, h, hl))))
        } else {
            s.free_tensor(&idx);
            s.free_tensor(&h);
            s.free_tensor(&hl);
            Ok((logits, None))
        }
    }
}

impl Workload for TransformerLm {
    fn spec(&self) -> &ModelSpec {
        &self.spec
    }

    fn inference_batch(&mut self, s: &mut Session<'_>) -> Result<(), AccelError> {
        if let Some(mut enc) = self.encoder.take() {
            let r = self.whisper_inference(s, &mut enc);
            self.encoder = Some(enc);
            return r;
        }
        let (logits, _) = self.forward(s, false)?;
        s.free_tensor(&logits);
        Ok(())
    }

    fn training_iter(&mut self, s: &mut Session<'_>) -> Result<(), AccelError> {
        if let Some(mut enc) = self.encoder.take() {
            let r = self.whisper_training(s, &mut enc);
            self.encoder = Some(enc);
            return r;
        }
        s.pass_boundary(Pass::Forward);
        let (logits, saved) = self.forward(s, true)?;
        let (idx, h, hl) = saved.expect("training saves activations");
        let loss = ops::cross_entropy(s, &logits)?;
        s.free_tensor(&loss);

        s.pass_boundary(Pass::Backward);
        let g_logits = ops::cross_entropy_backward(s, &logits)?;
        let (g_hl, g_wte_head, _) =
            ops::linear_backward(s, &hl, &self.wte.tensor, &g_logits, false)?;
        self.wte.set_grad(s, g_wte_head)?;
        s.free_tensor(&g_logits);
        s.free_tensor(&logits);
        let g_h = self.ln_f.backward(s, &h, &g_hl)?;
        s.free_tensor(&g_hl);
        s.free_tensor(&hl);
        let g_x = self.blocks.backward(s, g_h)?;
        s.free_tensor(&h);
        self.embedding_backward(s, &idx, &g_x)?;
        s.free_tensor(&g_x);
        s.free_tensor(&idx);

        s.pass_boundary(Pass::Optimizer);
        self.optimizer_step(s)?;
        Ok(())
    }

    fn destroy(&mut self, s: &mut Session<'_>) {
        self.wte.destroy(s);
        self.wpe.destroy(s);
        self.blocks.destroy(s);
        self.ln_f.destroy(s);
        if let Some(mut enc) = self.encoder.take() {
            enc.destroy(s);
        }
    }

    fn param_bytes(&self) -> u64 {
        self.wte.bytes()
            + self.wpe.bytes()
            + self.blocks.param_bytes()
            + self.ln_f.param_bytes()
            + self.encoder.as_ref().map_or(0, AudioEncoder::param_bytes)
    }
}

impl TransformerLm {
    /// Embeds a fresh token batch: returns `(idx, x)` where `x` is the
    /// position-added embedding stream.
    fn embed(&mut self, s: &mut Session<'_>) -> Result<(Tensor, Tensor), AccelError> {
        let (b, seq, d) = (self.batch, self.dims.seq, self.dims.d);
        let idx = s.alloc_tensor(&[b, seq], DType::I64)?;
        let emb = ops::embedding(s, &self.wte.tensor.clone(), &idx)?;
        let wpe = self.wpe.tensor.clone();
        let x = ops::elementwise(
            s,
            "at::native::vectorized_elementwise_kernel<add_pos>",
            &[&emb, &wpe],
            &[b, seq, d],
        )?;
        s.free_tensor(&emb);
        Ok((idx, x))
    }

    /// Shared tail of every training path: positional + token embedding
    /// gradients from the gradient at the embedding output.
    fn embedding_backward(
        &mut self,
        s: &mut Session<'_>,
        idx: &Tensor,
        g_x: &Tensor,
    ) -> Result<(), AccelError> {
        let g_wpe = ops::elementwise(
            s,
            "at::native::reduce_kernel<512, ReduceAdd>",
            &[g_x],
            &self.wpe.tensor.shape,
        )?;
        self.wpe.set_grad(s, g_wpe)?;
        let g_table = ops::embedding_backward(s, &self.wte.tensor, idx, g_x)?;
        self.wte.set_grad(s, g_table)?;
        Ok(())
    }

    fn optimizer_step(&mut self, s: &mut Session<'_>) -> Result<(), AccelError> {
        self.wte.step(s)?;
        self.wpe.step(s)?;
        self.blocks.step(s)?;
        self.ln_f.step(s)?;
        if let Some(enc) = self.encoder.as_mut() {
            enc.step(s)?;
        }
        Ok(())
    }

    /// Whisper inference: encode audio, then run decoder blocks manually so
    /// each cross-attention layer reads the encoder memory.
    fn whisper_inference(
        &mut self,
        s: &mut Session<'_>,
        enc: &mut AudioEncoder,
    ) -> Result<(), AccelError> {
        let mem = enc.encode(s, self.batch, false)?;
        let (idx, mut x) = self.embed(s)?;
        s.free_tensor(&idx);
        for (i, (block, cross)) in self
            .blocks
            .layers_mut()
            .iter_mut()
            .zip(enc.cross.iter_mut())
            .enumerate()
        {
            s.layer_boundary(&format!("decoder.{i}"), i);
            let y = block.forward(s, &x, false)?;
            block.release_saved(s);
            s.free_tensor(&x);
            let z = cross.forward(s, &y, &mem, false)?;
            s.free_tensor(&y);
            x = z;
        }
        let hl = self.ln_f.forward(s, &x, false)?;
        s.free_tensor(&x);
        let logits = ops::linear(s, &hl, &self.wte.tensor.clone(), None, Act::None)?;
        s.free_tensor(&hl);
        s.free_tensor(&logits);
        s.free_tensor(&mem);
        Ok(())
    }

    /// Whisper training: the same manual decoder walk, kept activations,
    /// then reverse through cross-attention and self-attention blocks.
    fn whisper_training(
        &mut self,
        s: &mut Session<'_>,
        enc: &mut AudioEncoder,
    ) -> Result<(), AccelError> {
        s.pass_boundary(Pass::Forward);
        let mem = enc.encode(s, self.batch, true)?;
        let (idx, mut x) = self.embed(s)?;
        // acts[i] = (input to block i, input to cross i).
        let mut acts: Vec<(Tensor, Tensor)> = Vec::new();
        for (block, cross) in self
            .blocks
            .layers_mut()
            .iter_mut()
            .zip(enc.cross.iter_mut())
        {
            let y = block.forward(s, &x, true)?;
            let z = cross.forward(s, &y, &mem, true)?;
            acts.push((x, y));
            x = z;
        }
        let h = x;
        let hl = self.ln_f.forward(s, &h, true)?;
        let logits = ops::linear(s, &hl, &self.wte.tensor.clone(), None, Act::None)?;
        let loss = ops::cross_entropy(s, &logits)?;
        s.free_tensor(&loss);

        s.pass_boundary(Pass::Backward);
        let g_logits = ops::cross_entropy_backward(s, &logits)?;
        let (g_hl, g_wte_head, _) =
            ops::linear_backward(s, &hl, &self.wte.tensor, &g_logits, false)?;
        self.wte.set_grad(s, g_wte_head)?;
        s.free_tensor(&g_logits);
        s.free_tensor(&logits);
        let mut grad = self.ln_f.backward(s, &h, &g_hl)?;
        s.free_tensor(&g_hl);
        s.free_tensor(&hl);
        s.free_tensor(&h);
        for (block, cross) in self
            .blocks
            .layers_mut()
            .iter_mut()
            .zip(enc.cross.iter_mut())
            .rev()
        {
            let (x_in, y_in) = acts.pop().expect("activation pair");
            let g_y = cross.backward(s, &y_in, &mem, &grad)?;
            s.free_tensor(&grad);
            s.free_tensor(&y_in);
            let g_x = block.backward(s, &x_in, &g_y)?;
            s.free_tensor(&g_y);
            s.free_tensor(&x_in);
            grad = g_x;
        }
        self.embedding_backward(s, &idx, &grad)?;
        s.free_tensor(&grad);
        s.free_tensor(&idx);
        enc.backward_and_free(s, &mem)?;
        s.free_tensor(&mem);

        s.pass_boundary(Pass::Optimizer);
        self.optimizer_step(s)?;
        // The encoder is detached from `self` during this call; step it
        // explicitly (optimizer_step only covers an attached encoder).
        enc.step(s)?;
        Ok(())
    }
}

impl AudioEncoder {
    fn encode(
        &mut self,
        s: &mut Session<'_>,
        batch: usize,
        train: bool,
    ) -> Result<Tensor, AccelError> {
        s.region_start("whisper.encoder");
        let audio = s.alloc_tensor(&[batch, self.frames, self.mel], DType::F32)?;
        let p1 = self.proj1.forward(s, &audio, train)?;
        s.free_tensor(&audio);
        let p2 = self.proj2.forward(s, &p1, train)?;
        s.free_tensor(&p1);
        let h = self.blocks.forward(s, p2, train)?;
        let mem = self.ln.forward(s, &h, train)?;
        if !train {
            self.blocks_release(s);
        }
        s.free_tensor(&h);
        s.region_end("whisper.encoder");
        Ok(mem)
    }

    fn blocks_release(&mut self, s: &mut Session<'_>) {
        self.proj1.release_saved(s);
        self.proj2.release_saved(s);
        self.ln.release_saved(s);
    }

    /// Approximate encoder backward: replays the block stack in reverse
    /// with a gradient shaped like the memory.
    fn backward_and_free(&mut self, s: &mut Session<'_>, mem: &Tensor) -> Result<(), AccelError> {
        let g = s.alloc_tensor(&mem.shape, DType::F32)?;
        let g_in = self.blocks.backward(s, g)?;
        s.free_tensor(&g_in);
        Ok(())
    }

    fn step(&mut self, s: &mut Session<'_>) -> Result<(), AccelError> {
        self.proj1.step(s)?;
        self.proj2.step(s)?;
        self.blocks.step(s)?;
        self.ln.step(s)?;
        for c in &mut self.cross {
            c.step(s)?;
        }
        Ok(())
    }

    fn destroy(&mut self, s: &mut Session<'_>) {
        self.proj1.destroy(s);
        self.proj2.destroy(s);
        self.blocks.destroy(s);
        self.ln.destroy(s);
        for mut c in self.cross.drain(..) {
            c.destroy(s);
        }
    }

    fn param_bytes(&self) -> u64 {
        self.proj1.param_bytes()
            + self.proj2.param_bytes()
            + self.blocks.param_bytes()
            + self.ln.param_bytes()
            + self
                .cross
                .iter()
                .map(CrossAttention::param_bytes)
                .sum::<u64>()
    }
}

/// Builds a custom transformer LM from explicit dimensions — the
/// multi-GPU parallel runners (Megatron GPT-2 345M) use this to construct
/// replicas and shards.
///
/// # Errors
///
/// Propagates allocator out-of-memory.
pub fn custom_lm(
    s: &mut Session<'_>,
    spec: ModelSpec,
    dims: LmDims,
    batch: usize,
    py_file: &'static str,
) -> Result<TransformerLm, AccelError> {
    build_lm(s, spec, dims, batch, py_file)
}

fn build_lm(
    s: &mut Session<'_>,
    spec: ModelSpec,
    dims: LmDims,
    batch: usize,
    py_file: &'static str,
) -> Result<TransformerLm, AccelError> {
    let wte = Param::new(s, &[dims.vocab, dims.d])?;
    let wpe = Param::new(s, &[dims.seq, dims.d])?;
    let mut blocks = Sequential::new(format!("{}.blocks", spec.abbr));
    for i in 0..dims.layers {
        blocks.push(Box::new(TransformerBlock::new(
            s,
            format!("h.{i}"),
            dims.d,
            dims.heads,
            dims.ffn,
        )?));
    }
    let ln_f = LayerNorm::new(s, "ln_f", dims.d)?;
    Ok(TransformerLm {
        spec,
        dims,
        batch,
        wte,
        wpe,
        blocks,
        ln_f,
        encoder: None,
        py_file,
    })
}

/// GPT-2 (124M): 12 decoder blocks, d=768, 12 heads, seq 1024, batch 8.
///
/// # Errors
///
/// Propagates allocator out-of-memory.
pub fn gpt2(s: &mut Session<'_>, batch: usize) -> Result<TransformerLm, AccelError> {
    build_lm(
        s,
        ModelSpec {
            name: "GPT-2",
            abbr: "GPT-2",
            kind: ModelKind::Transformer,
            layers: 12,
            batch,
        },
        LmDims {
            d: 768,
            heads: 12,
            ffn: 3072,
            vocab: 50257,
            seq: 1024,
            layers: 12,
        },
        batch,
        "models/gpt2/run_gpt2.py",
    )
}

/// BERT-base: 12 encoder blocks, d=768, seq 128, batch 16.
///
/// # Errors
///
/// Propagates allocator out-of-memory.
pub fn bert(s: &mut Session<'_>, batch: usize) -> Result<TransformerLm, AccelError> {
    build_lm(
        s,
        ModelSpec {
            name: "BERT",
            abbr: "BERT",
            kind: ModelKind::Transformer,
            layers: 12,
            batch,
        },
        LmDims {
            d: 768,
            heads: 12,
            ffn: 3072,
            vocab: 30522,
            seq: 128,
            layers: 12,
        },
        batch,
        "models/bert/run_bert.py",
    )
}

/// Whisper-small: 12-block audio encoder (1500 frames) + 12-block decoder
/// with cross-attention, d=768, batch 16.
///
/// # Errors
///
/// Propagates allocator out-of-memory.
pub fn whisper_small(s: &mut Session<'_>, batch: usize) -> Result<TransformerLm, AccelError> {
    let mut lm = build_lm(
        s,
        ModelSpec {
            name: "Whisper (small)",
            abbr: "Whisper",
            kind: ModelKind::Transformer,
            layers: 12,
            batch,
        },
        LmDims {
            d: 768,
            heads: 12,
            ffn: 3072,
            vocab: 51865,
            seq: 128,
            layers: 12,
        },
        batch,
        "models/whisper/run_whisper.py",
    )?;
    let mut enc_blocks = Sequential::new("whisper.encoder.blocks");
    for i in 0..12 {
        enc_blocks.push(Box::new(TransformerBlock::new(
            s,
            format!("enc.{i}"),
            768,
            12,
            3072,
        )?));
    }
    let mut cross = Vec::new();
    for _ in 0..12 {
        cross.push(CrossAttention::new(s, 768, 12)?);
    }
    lm.encoder = Some(AudioEncoder {
        proj1: Linear::new(s, "enc.conv1", 80, 768, true, Act::Gelu)?,
        proj2: Linear::new(s, "enc.conv2", 768, 768, true, Act::Gelu)?,
        blocks: enc_blocks,
        ln: LayerNorm::new(s, "enc.ln_post", 768)?,
        frames: 1500,
        mel: 80,
        cross,
    });
    Ok(lm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use accel_sim::DeviceSpec;
    use vendor_nv::CudaContext;

    fn with_session<T>(f: impl FnOnce(&mut Session<'_>) -> T) -> T {
        let mut rt = CudaContext::new(vec![DeviceSpec::a100_80gb()]);
        let mut s = Session::new(&mut rt);
        f(&mut s)
    }

    #[test]
    fn bert_inference_cleans_up() {
        with_session(|s| {
            let mut m = bert(s, 2).unwrap();
            let params = s.allocator_stats().allocated;
            assert!(
                params > 300 << 20,
                "BERT-base is ~110M params ≈ 440 MB, got {params}"
            );
            m.inference_batch(s).unwrap();
            s.release_workspaces();
            assert_eq!(s.allocator_stats().allocated, params);
            m.destroy(s);
            assert_eq!(s.allocator_stats().allocated, 0);
        });
    }

    #[test]
    fn gpt2_training_iter_cleans_up() {
        with_session(|s| {
            let mut m = gpt2(s, 1).unwrap();
            let params = s.allocator_stats().allocated;
            m.training_iter(s).unwrap();
            s.release_workspaces();
            assert_eq!(s.allocator_stats().allocated, params * 3);
            m.destroy(s);
            assert_eq!(s.allocator_stats().allocated, 0);
        });
    }

    #[test]
    fn whisper_inference_runs_encoder_and_decoder() {
        with_session(|s| {
            let mut m = whisper_small(s, 1).unwrap();
            let params = s.allocator_stats().allocated;
            assert!(
                params > 700 << 20,
                "Whisper-small ≈ 244M params ≈ 970 MB, got {params}"
            );
            let k0 = s.kernels_launched();
            m.inference_batch(s).unwrap();
            let launched = s.kernels_launched() - k0;
            assert!(launched > 200, "enc+dec should launch plenty: {launched}");
            s.release_workspaces();
            assert_eq!(s.allocator_stats().allocated, params);
            m.destroy(s);
            assert_eq!(s.allocator_stats().allocated, 0);
        });
    }

    #[test]
    fn gpt2_footprint_dominated_by_logits() {
        with_session(|s| {
            let mut m = gpt2(s, 1).unwrap();
            m.inference_batch(s).unwrap();
            let peak = s.allocator_stats().peak_allocated;
            // Logits for batch 1 are 1×1024×50257×4 ≈ 206 MB on top of
            // ~500 MB of parameters.
            assert!(peak > 600 << 20, "peak {peak}");
        });
    }
}
