//! Convolutional models: AlexNet and ResNet-18/34.

use super::{ModelKind, ModelSpec, Workload};
use crate::dtype::DType;
use crate::layers::{
    BasicBlock, BatchNorm2d, Conv2d, Flatten, GlobalAvgPool, Linear, MaxPool2d, Sequential,
};
use crate::ops::{self, Act, Conv2dCfg};
use crate::pycall::PyFrame;
use crate::session::Session;
use accel_sim::AccelError;

/// A CNN classifier: a [`Sequential`] body plus a cross-entropy head.
pub struct CnnModel {
    spec: ModelSpec,
    body: Sequential,
    input_shape: Vec<usize>,
    py_file: &'static str,
}

impl std::fmt::Debug for CnnModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CnnModel")
            .field("spec", &self.spec)
            .field("layers", &self.body.len())
            .finish()
    }
}

impl CnnModel {
    fn forward(&mut self, s: &mut Session<'_>, train: bool) -> Result<crate::Tensor, AccelError> {
        s.py_push(PyFrame::new(self.py_file, 146, "forward"));
        let input = s.alloc_tensor(&self.input_shape, DType::F32)?;
        let logits = self.body.forward(s, input, train)?;
        s.py_pop();
        Ok(logits)
    }
}

impl Workload for CnnModel {
    fn spec(&self) -> &ModelSpec {
        &self.spec
    }

    fn inference_batch(&mut self, s: &mut Session<'_>) -> Result<(), AccelError> {
        let logits = self.forward(s, false)?;
        s.free_tensor(&logits);
        Ok(())
    }

    fn training_iter(&mut self, s: &mut Session<'_>) -> Result<(), AccelError> {
        use crate::callbacks::Pass;
        s.pass_boundary(Pass::Forward);
        let logits = self.forward(s, true)?;
        let loss = ops::cross_entropy(s, &logits)?;
        s.free_tensor(&loss);
        s.pass_boundary(Pass::Backward);
        let grad = ops::cross_entropy_backward(s, &logits)?;
        let g_input = self.body.backward(s, grad)?;
        s.free_tensor(&g_input);
        s.free_tensor(&logits);
        s.pass_boundary(Pass::Optimizer);
        self.body.step(s)?;
        Ok(())
    }

    fn destroy(&mut self, s: &mut Session<'_>) {
        self.body.destroy(s);
    }

    fn param_bytes(&self) -> u64 {
        self.body.param_bytes()
    }
}

/// Builds AlexNet (Krizhevsky et al.) with the paper's batch size of 128.
///
/// # Errors
///
/// Propagates allocator out-of-memory while creating parameters.
pub fn alexnet(s: &mut Session<'_>, batch: usize) -> Result<CnnModel, AccelError> {
    let mut body = Sequential::new("alexnet");
    let conv = |s: &mut Session<'_>, name: &str, cin, cout, k, stride, pad| {
        Conv2d::new(
            s,
            name,
            Conv2dCfg {
                cin,
                cout,
                k,
                stride,
                pad,
            },
            Act::Relu,
        )
    };
    body.push(Box::new(conv(s, "features.0", 3, 64, 11, 4, 2)?));
    body.push(Box::new(MaxPool2d::new("features.2", 3, 2)));
    body.push(Box::new(conv(s, "features.3", 64, 192, 5, 1, 2)?));
    body.push(Box::new(MaxPool2d::new("features.5", 3, 2)));
    body.push(Box::new(conv(s, "features.6", 192, 384, 3, 1, 1)?));
    body.push(Box::new(conv(s, "features.8", 384, 256, 3, 1, 1)?));
    body.push(Box::new(conv(s, "features.10", 256, 256, 3, 1, 1)?));
    body.push(Box::new(MaxPool2d::new("features.12", 3, 2)));
    body.push(Box::new(Flatten::new("flatten")));
    body.push(Box::new(Linear::new(
        s,
        "classifier.1",
        256 * 6 * 6,
        4096,
        true,
        Act::Relu,
    )?));
    body.push(Box::new(Linear::new(
        s,
        "classifier.4",
        4096,
        4096,
        true,
        Act::Relu,
    )?));
    body.push(Box::new(Linear::new(
        s,
        "classifier.6",
        4096,
        1000,
        true,
        Act::None,
    )?));
    Ok(CnnModel {
        spec: ModelSpec {
            name: "AlexNet",
            abbr: "AN",
            kind: ModelKind::Cnn,
            layers: 8,
            batch,
        },
        body,
        input_shape: vec![batch, 3, 224, 224],
        py_file: "models/alexnet/run_alexnet.py",
    })
}

/// Builds a ResNet with the given per-stage block counts
/// (`[2,2,2,2]` = ResNet-18, `[3,4,6,3]` = ResNet-34).
///
/// # Errors
///
/// Propagates allocator out-of-memory while creating parameters.
pub fn resnet(
    s: &mut Session<'_>,
    batch: usize,
    blocks: &[usize; 4],
    name: &'static str,
) -> Result<CnnModel, AccelError> {
    let mut body = Sequential::new(name);
    body.push(Box::new(Conv2d::new(
        s,
        "conv1",
        Conv2dCfg {
            cin: 3,
            cout: 64,
            k: 7,
            stride: 2,
            pad: 3,
        },
        Act::None,
    )?));
    body.push(Box::new(BatchNorm2d::new(s, "bn1", 64)?));
    body.push(Box::new(MaxPool2d::new("maxpool", 3, 2)));
    let widths = [64usize, 128, 256, 512];
    let mut cin = 64;
    for (stage, (&n_blocks, &width)) in blocks.iter().zip(widths.iter()).enumerate() {
        for b in 0..n_blocks {
            let stride = if stage > 0 && b == 0 { 2 } else { 1 };
            body.push(Box::new(BasicBlock::new(
                s,
                format!("layer{}.{b}", stage + 1),
                cin,
                width,
                stride,
            )?));
            cin = width;
        }
    }
    body.push(Box::new(GlobalAvgPool::new("avgpool")));
    body.push(Box::new(Flatten::new("flatten")));
    body.push(Box::new(Linear::new(s, "fc", 512, 1000, true, Act::None)?));
    let layers = 2 + 2 * blocks.iter().sum::<usize>(); // paper counts conv+fc
    Ok(CnnModel {
        spec: ModelSpec {
            name: if name == "ResNet18" {
                "ResNet18"
            } else {
                "ResNet34"
            },
            abbr: if name == "ResNet18" { "RN-18" } else { "RN-34" },
            kind: ModelKind::Cnn,
            layers,
            batch,
        },
        body,
        input_shape: vec![batch, 3, 224, 224],
        py_file: "models/resnet/run_resnet.py",
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use accel_sim::DeviceSpec;
    use vendor_nv::CudaContext;

    fn with_session<T>(f: impl FnOnce(&mut Session<'_>) -> T) -> T {
        let mut rt = CudaContext::new(vec![DeviceSpec::a100_80gb()]);
        let mut s = Session::new(&mut rt);
        f(&mut s)
    }

    #[test]
    fn alexnet_inference_runs_and_cleans_up() {
        with_session(|s| {
            let mut m = alexnet(s, 8).unwrap();
            let params = s.allocator_stats().allocated;
            assert!(params > 200 << 20, "AlexNet has ~244 MB of parameters");
            m.inference_batch(s).unwrap();
            s.release_workspaces();
            assert_eq!(
                s.allocator_stats().allocated,
                params,
                "inference leaves only parameters live"
            );
            assert!(s.kernels_launched() > 10);
            m.destroy(s);
            assert_eq!(s.allocator_stats().allocated, 0);
        });
    }

    #[test]
    fn alexnet_training_iter_cleans_up() {
        with_session(|s| {
            let mut m = alexnet(s, 4).unwrap();
            let params = s.allocator_stats().allocated;
            m.training_iter(s).unwrap();
            s.release_workspaces();
            // Adam moments double the persistent state twice over.
            assert_eq!(s.allocator_stats().allocated, params * 3);
            let peak = s.allocator_stats().peak_allocated;
            assert!(peak > params * 3, "training peak exceeds steady state");
            m.destroy(s);
            assert_eq!(s.allocator_stats().allocated, 0);
        });
    }

    #[test]
    fn resnet18_has_eight_blocks_and_runs() {
        with_session(|s| {
            let mut m = resnet(s, 2, &[2, 2, 2, 2], "ResNet18").unwrap();
            assert_eq!(m.spec().layers, 18);
            m.inference_batch(s).unwrap();
            let k18 = s.kernels_launched();
            assert!(k18 > 40, "ResNet18 launches many kernels, got {k18}");
            m.destroy(s);
        });
    }

    #[test]
    fn resnet34_launches_more_kernels_than_resnet18() {
        let k18 = with_session(|s| {
            let mut m = resnet(s, 2, &[2, 2, 2, 2], "ResNet18").unwrap();
            m.inference_batch(s).unwrap();
            let k = s.kernels_launched();
            m.destroy(s);
            k
        });
        let k34 = with_session(|s| {
            let mut m = resnet(s, 2, &[3, 4, 6, 3], "ResNet34").unwrap();
            m.inference_batch(s).unwrap();
            let k = s.kernels_launched();
            m.destroy(s);
            k
        });
        assert!(k34 > k18, "{k34} vs {k18}");
        // The paper's Table V ratio is roughly 2657/1497 ≈ 1.8.
        let ratio = k34 as f64 / k18 as f64;
        assert!((1.3..2.4).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn resnet_training_cleans_up() {
        with_session(|s| {
            let mut m = resnet(s, 2, &[2, 2, 2, 2], "ResNet18").unwrap();
            let params = s.allocator_stats().allocated;
            m.training_iter(s).unwrap();
            s.release_workspaces();
            assert_eq!(s.allocator_stats().allocated, params * 3);
            m.destroy(s);
            assert_eq!(s.allocator_stats().allocated, 0);
        });
    }
}
