//! Tensors: shaped, typed views over caching-allocator blocks.

use crate::dtype::DType;
use accel_sim::DevicePtr;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Unique tensor identifier within a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TensorId(pub u64);

impl fmt::Display for TensorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A dense tensor. Cheap to clone: it is a handle, not the data.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tensor {
    /// Session-unique id.
    pub id: TensorId,
    /// Dimension extents.
    pub shape: Vec<usize>,
    /// Element type.
    pub dtype: DType,
    /// Base device pointer (inside a caching-allocator segment).
    pub ptr: DevicePtr,
    /// Exact byte size (`numel * dtype`), before allocator rounding.
    pub bytes: u64,
}

impl Tensor {
    /// Number of elements.
    pub fn numel(&self) -> u64 {
        self.shape.iter().map(|&d| d as u64).product()
    }

    /// Extent of dimension `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn dim(&self, i: usize) -> usize {
        self.shape[i]
    }

    /// Rank (number of dimensions).
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Computes the byte size a tensor of `shape`/`dtype` occupies.
    pub fn bytes_for(shape: &[usize], dtype: DType) -> u64 {
        shape.iter().map(|&d| d as u64).product::<u64>() * dtype.size_bytes()
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}<{:?}, {}>@{}",
            self.id, self.shape, self.dtype, self.ptr
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tensor(shape: Vec<usize>) -> Tensor {
        let bytes = Tensor::bytes_for(&shape, DType::F32);
        Tensor {
            id: TensorId(1),
            shape,
            dtype: DType::F32,
            ptr: DevicePtr(0x1000),
            bytes,
        }
    }

    #[test]
    fn numel_and_bytes() {
        let t = tensor(vec![2, 3, 4]);
        assert_eq!(t.numel(), 24);
        assert_eq!(t.bytes, 96);
        assert_eq!(t.rank(), 3);
        assert_eq!(t.dim(1), 3);
    }

    #[test]
    fn scalar_tensor() {
        let t = tensor(vec![]);
        assert_eq!(t.numel(), 1, "rank-0 tensor has one element");
        assert_eq!(t.bytes, 4);
    }

    #[test]
    fn bytes_for_respects_dtype() {
        assert_eq!(Tensor::bytes_for(&[10], DType::I64), 80);
        assert_eq!(Tensor::bytes_for(&[10], DType::U8), 10);
    }
}
