//! Element data types.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Tensor element type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DType {
    /// 32-bit float (the workhorse of the paper's FP32 runs).
    F32,
    /// 16-bit float.
    F16,
    /// 64-bit integer (token ids).
    I64,
    /// 32-bit integer.
    I32,
    /// Unsigned byte.
    U8,
}

impl DType {
    /// Bytes per element.
    pub fn size_bytes(self) -> u64 {
        match self {
            DType::F32 | DType::I32 => 4,
            DType::F16 => 2,
            DType::I64 => 8,
            DType::U8 => 1,
        }
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DType::F32 => "f32",
            DType::F16 => "f16",
            DType::I64 => "i64",
            DType::I32 => "i32",
            DType::U8 => "u8",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(DType::F32.size_bytes(), 4);
        assert_eq!(DType::F16.size_bytes(), 2);
        assert_eq!(DType::I64.size_bytes(), 8);
        assert_eq!(DType::U8.size_bytes(), 1);
    }

    #[test]
    fn display() {
        assert_eq!(DType::F32.to_string(), "f32");
        assert_eq!(DType::I64.to_string(), "i64");
    }
}
