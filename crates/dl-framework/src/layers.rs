//! Neural-network layers with forward and backward passes.
//!
//! Layers manage their parameters (and Adam moments), launch their kernels
//! through [`ops`], and cooperate with the container on activation
//! lifetimes: a layer's `forward` never frees its input — the container
//! ([`Sequential`] or a model) owns activations and frees them on the
//! schedule that reproduces real frameworks' memory curves (eager freeing
//! in inference; free-as-you-backprop in training, which produces the
//! ramp-up/peak/ramp-down of the paper's Fig. 14).

use crate::dtype::DType;
use crate::ops::{self, Act, Conv2dCfg};
use crate::session::Session;
use crate::tensor::Tensor;
use accel_sim::AccelError;

/// A trainable parameter with lazily-created gradient and Adam moments.
#[derive(Debug)]
pub struct Param {
    /// The parameter tensor.
    pub tensor: Tensor,
    grad: Option<Tensor>,
    m: Option<Tensor>,
    v: Option<Tensor>,
}

impl Param {
    /// Allocates a parameter of `shape`.
    ///
    /// # Errors
    ///
    /// Propagates allocator out-of-memory.
    pub fn new(s: &mut Session<'_>, shape: &[usize]) -> Result<Self, AccelError> {
        Ok(Param {
            tensor: s.alloc_tensor(shape, DType::F32)?,
            grad: None,
            m: None,
            v: None,
        })
    }

    /// Installs (or accumulates into) the gradient.
    ///
    /// # Errors
    ///
    /// Propagates launch failures from the accumulation kernel.
    pub fn set_grad(&mut self, s: &mut Session<'_>, grad: Tensor) -> Result<(), AccelError> {
        match &self.grad {
            None => self.grad = Some(grad),
            Some(existing) => {
                // Accumulate: existing += grad, then drop the new tensor.
                let e = existing.clone();
                ops::elementwise_inplace(s, "at::native::vectorized_elementwise_kernel<add>", &e)?;
                s.free_tensor(&grad);
            }
        }
        Ok(())
    }

    /// True when a gradient is pending.
    pub fn has_grad(&self) -> bool {
        self.grad.is_some()
    }

    /// Applies one fused Adam step and frees the gradient.
    ///
    /// # Errors
    ///
    /// Propagates allocation/launch failures.
    pub fn step(&mut self, s: &mut Session<'_>) -> Result<(), AccelError> {
        let Some(grad) = self.grad.take() else {
            return Ok(());
        };
        if self.m.is_none() {
            self.m = Some(s.alloc_tensor(&self.tensor.shape, DType::F32)?);
            self.v = Some(s.alloc_tensor(&self.tensor.shape, DType::F32)?);
        }
        let (m, v) = (
            self.m.clone().expect("moment m"),
            self.v.clone().expect("moment v"),
        );
        ops::adam_step(s, &self.tensor, &grad, &m, &v)?;
        s.free_tensor(&grad);
        Ok(())
    }

    /// Frees the parameter, moments and any pending gradient.
    pub fn destroy(&mut self, s: &mut Session<'_>) {
        if let Some(g) = self.grad.take() {
            s.free_tensor(&g);
        }
        if let Some(m) = self.m.take() {
            s.free_tensor(&m);
        }
        if let Some(v) = self.v.take() {
            s.free_tensor(&v);
        }
        s.free_tensor(&self.tensor);
    }

    /// Parameter bytes (excluding moments).
    pub fn bytes(&self) -> u64 {
        self.tensor.bytes
    }
}

/// A neural-network layer.
///
/// Contract: `forward`/`backward` never free their *arguments*; tensors a
/// layer allocates internally and keeps for backward are freed by
/// `backward` or `release_saved`.
pub trait Layer: Send {
    /// Human-readable label (used for layer-boundary events).
    fn label(&self) -> String;

    /// Computes the layer output. With `train`, keeps what backward needs.
    ///
    /// # Errors
    ///
    /// Propagates allocation/launch failures.
    fn forward(
        &mut self,
        s: &mut Session<'_>,
        x: &Tensor,
        train: bool,
    ) -> Result<Tensor, AccelError>;

    /// Computes the input gradient given the layer input and the output
    /// gradient; stores parameter gradients internally.
    ///
    /// # Errors
    ///
    /// Propagates allocation/launch failures.
    fn backward(
        &mut self,
        s: &mut Session<'_>,
        x: &Tensor,
        grad_out: &Tensor,
    ) -> Result<Tensor, AccelError>;

    /// Frees any internally-saved activations that backward did not consume.
    fn release_saved(&mut self, s: &mut Session<'_>) {
        let _ = s;
    }

    /// Optimizer step over this layer's parameters.
    ///
    /// # Errors
    ///
    /// Propagates allocation/launch failures.
    fn step(&mut self, s: &mut Session<'_>) -> Result<(), AccelError> {
        let _ = s;
        Ok(())
    }

    /// Frees parameters and moments.
    fn destroy(&mut self, s: &mut Session<'_>);

    /// Total parameter bytes.
    fn param_bytes(&self) -> u64 {
        0
    }
}

// ---------------------------------------------------------------------------
// Linear
// ---------------------------------------------------------------------------

/// Fully-connected layer with optional fused activation.
#[derive(Debug)]
pub struct Linear {
    name: String,
    w: Param,
    b: Option<Param>,
    act: Act,
}

impl Linear {
    /// Creates a `in_f → out_f` linear layer.
    ///
    /// # Errors
    ///
    /// Propagates allocator out-of-memory.
    pub fn new(
        s: &mut Session<'_>,
        name: impl Into<String>,
        in_f: usize,
        out_f: usize,
        bias: bool,
        act: Act,
    ) -> Result<Self, AccelError> {
        Ok(Linear {
            name: name.into(),
            w: Param::new(s, &[out_f, in_f])?,
            b: if bias {
                Some(Param::new(s, &[out_f])?)
            } else {
                None
            },
            act,
        })
    }
}

impl Layer for Linear {
    fn label(&self) -> String {
        self.name.clone()
    }

    fn forward(
        &mut self,
        s: &mut Session<'_>,
        x: &Tensor,
        _train: bool,
    ) -> Result<Tensor, AccelError> {
        let b = self.b.as_ref().map(|p| p.tensor.clone());
        ops::linear(s, x, &self.w.tensor, b.as_ref(), self.act)
    }

    fn backward(
        &mut self,
        s: &mut Session<'_>,
        x: &Tensor,
        grad_out: &Tensor,
    ) -> Result<Tensor, AccelError> {
        // Activation backward first (elementwise on the output gradient).
        if self.act != Act::None {
            ops::elementwise_inplace(
                s,
                "at::native::vectorized_elementwise_kernel<act_backward>",
                grad_out,
            )?;
        }
        let (gx, gw, gb) = ops::linear_backward(s, x, &self.w.tensor, grad_out, self.b.is_some())?;
        self.w.set_grad(s, gw)?;
        if let (Some(bp), Some(gb)) = (self.b.as_mut(), gb) {
            bp.set_grad(s, gb)?;
        }
        Ok(gx)
    }

    fn step(&mut self, s: &mut Session<'_>) -> Result<(), AccelError> {
        self.w.step(s)?;
        if let Some(b) = self.b.as_mut() {
            b.step(s)?;
        }
        Ok(())
    }

    fn destroy(&mut self, s: &mut Session<'_>) {
        self.w.destroy(s);
        if let Some(mut b) = self.b.take() {
            b.destroy(s);
        }
    }

    fn param_bytes(&self) -> u64 {
        self.w.bytes() + self.b.as_ref().map_or(0, Param::bytes)
    }
}

// ---------------------------------------------------------------------------
// Conv2d
// ---------------------------------------------------------------------------

/// 2-D convolution with optional fused activation.
#[derive(Debug)]
pub struct Conv2d {
    name: String,
    w: Param,
    b: Param,
    cfg: Conv2dCfg,
    act: Act,
}

impl Conv2d {
    /// Creates a convolution layer.
    ///
    /// # Errors
    ///
    /// Propagates allocator out-of-memory.
    pub fn new(
        s: &mut Session<'_>,
        name: impl Into<String>,
        cfg: Conv2dCfg,
        act: Act,
    ) -> Result<Self, AccelError> {
        Ok(Conv2d {
            name: name.into(),
            w: Param::new(s, &[cfg.cout, cfg.cin * cfg.k * cfg.k])?,
            b: Param::new(s, &[cfg.cout])?,
            cfg,
            act,
        })
    }
}

impl Layer for Conv2d {
    fn label(&self) -> String {
        self.name.clone()
    }

    fn forward(
        &mut self,
        s: &mut Session<'_>,
        x: &Tensor,
        _train: bool,
    ) -> Result<Tensor, AccelError> {
        let b = self.b.tensor.clone();
        ops::conv2d(s, x, &self.w.tensor, Some(&b), self.cfg, self.act)
    }

    fn backward(
        &mut self,
        s: &mut Session<'_>,
        x: &Tensor,
        grad_out: &Tensor,
    ) -> Result<Tensor, AccelError> {
        if self.act != Act::None {
            ops::elementwise_inplace(
                s,
                "at::native::vectorized_elementwise_kernel<act_backward>",
                grad_out,
            )?;
        }
        let (gx, gw, gb) = ops::conv2d_backward(s, x, &self.w.tensor, grad_out, self.cfg)?;
        self.w.set_grad(s, gw)?;
        self.b.set_grad(s, gb)?;
        Ok(gx)
    }

    fn step(&mut self, s: &mut Session<'_>) -> Result<(), AccelError> {
        self.w.step(s)?;
        self.b.step(s)
    }

    fn destroy(&mut self, s: &mut Session<'_>) {
        self.w.destroy(s);
        self.b.destroy(s);
    }

    fn param_bytes(&self) -> u64 {
        self.w.bytes() + self.b.bytes()
    }
}

// ---------------------------------------------------------------------------
// BatchNorm2d
// ---------------------------------------------------------------------------

/// 2-D batch normalization.
#[derive(Debug)]
pub struct BatchNorm2d {
    name: String,
    gamma: Param,
    beta: Param,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer over `channels`.
    ///
    /// # Errors
    ///
    /// Propagates allocator out-of-memory.
    pub fn new(
        s: &mut Session<'_>,
        name: impl Into<String>,
        channels: usize,
    ) -> Result<Self, AccelError> {
        Ok(BatchNorm2d {
            name: name.into(),
            gamma: Param::new(s, &[channels])?,
            beta: Param::new(s, &[channels])?,
        })
    }
}

impl Layer for BatchNorm2d {
    fn label(&self) -> String {
        self.name.clone()
    }

    fn forward(
        &mut self,
        s: &mut Session<'_>,
        x: &Tensor,
        _train: bool,
    ) -> Result<Tensor, AccelError> {
        let (g, b) = (self.gamma.tensor.clone(), self.beta.tensor.clone());
        ops::batchnorm2d(s, x, &g, &b)
    }

    fn backward(
        &mut self,
        s: &mut Session<'_>,
        x: &Tensor,
        grad_out: &Tensor,
    ) -> Result<Tensor, AccelError> {
        let (gx, gg, gb) = ops::batchnorm2d_backward(s, x, grad_out)?;
        self.gamma.set_grad(s, gg)?;
        self.beta.set_grad(s, gb)?;
        Ok(gx)
    }

    fn step(&mut self, s: &mut Session<'_>) -> Result<(), AccelError> {
        self.gamma.step(s)?;
        self.beta.step(s)
    }

    fn destroy(&mut self, s: &mut Session<'_>) {
        self.gamma.destroy(s);
        self.beta.destroy(s);
    }

    fn param_bytes(&self) -> u64 {
        self.gamma.bytes() + self.beta.bytes()
    }
}

// ---------------------------------------------------------------------------
// MaxPool2d
// ---------------------------------------------------------------------------

/// Max pooling (no parameters).
#[derive(Debug)]
pub struct MaxPool2d {
    name: String,
    k: usize,
    stride: usize,
}

impl MaxPool2d {
    /// Creates a pooling layer.
    pub fn new(name: impl Into<String>, k: usize, stride: usize) -> Self {
        MaxPool2d {
            name: name.into(),
            k,
            stride,
        }
    }
}

impl Layer for MaxPool2d {
    fn label(&self) -> String {
        self.name.clone()
    }

    fn forward(
        &mut self,
        s: &mut Session<'_>,
        x: &Tensor,
        _train: bool,
    ) -> Result<Tensor, AccelError> {
        ops::maxpool2d(s, x, self.k, self.stride)
    }

    fn backward(
        &mut self,
        s: &mut Session<'_>,
        x: &Tensor,
        grad_out: &Tensor,
    ) -> Result<Tensor, AccelError> {
        ops::maxpool2d_backward(s, x, grad_out)
    }

    fn destroy(&mut self, _s: &mut Session<'_>) {}
}

// ---------------------------------------------------------------------------
// Flatten (contiguous copy)
// ---------------------------------------------------------------------------

/// Flattens `[n, …]` to `[n, rest]` via a contiguous copy
/// (`aten::contiguous` launches a real copy kernel in NCHW → FC
/// transitions, which is what this models).
#[derive(Debug)]
pub struct Flatten {
    name: String,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new(name: impl Into<String>) -> Self {
        Flatten { name: name.into() }
    }
}

impl Layer for Flatten {
    fn label(&self) -> String {
        self.name.clone()
    }

    fn forward(
        &mut self,
        s: &mut Session<'_>,
        x: &Tensor,
        _train: bool,
    ) -> Result<Tensor, AccelError> {
        let n = x.shape[0];
        let rest = (x.numel() / n as u64) as usize;
        ops::elementwise(s, "at::native::copy_kernel", &[x], &[n, rest])
    }

    fn backward(
        &mut self,
        s: &mut Session<'_>,
        x: &Tensor,
        grad_out: &Tensor,
    ) -> Result<Tensor, AccelError> {
        ops::elementwise(s, "at::native::copy_kernel", &[grad_out], &x.shape)
    }

    fn destroy(&mut self, _s: &mut Session<'_>) {}
}

// ---------------------------------------------------------------------------
// AvgPool2d (global / adaptive)
// ---------------------------------------------------------------------------

/// Adaptive average pooling to a 1×1 spatial output (ResNet's final pool).
#[derive(Debug)]
pub struct GlobalAvgPool {
    name: String,
}

impl GlobalAvgPool {
    /// Creates the pool.
    pub fn new(name: impl Into<String>) -> Self {
        GlobalAvgPool { name: name.into() }
    }
}

impl Layer for GlobalAvgPool {
    fn label(&self) -> String {
        self.name.clone()
    }

    fn forward(
        &mut self,
        s: &mut Session<'_>,
        x: &Tensor,
        _train: bool,
    ) -> Result<Tensor, AccelError> {
        let (n, c) = (x.shape[0], x.shape[1]);
        s.with_op("aten::adaptive_avg_pool2d", |s| {
            ops::elementwise(
                s,
                "at::native::(anonymous namespace)::adaptive_average_pool",
                &[x],
                &[n, c, 1, 1],
            )
        })
    }

    fn backward(
        &mut self,
        s: &mut Session<'_>,
        x: &Tensor,
        grad_out: &Tensor,
    ) -> Result<Tensor, AccelError> {
        s.with_op("aten::adaptive_avg_pool2d_backward", |s| {
            ops::elementwise(
                s,
                "at::native::(anonymous namespace)::adaptive_average_pool_backward",
                &[grad_out],
                &x.shape,
            )
        })
    }

    fn destroy(&mut self, _s: &mut Session<'_>) {}
}

// ---------------------------------------------------------------------------
// LayerNorm
// ---------------------------------------------------------------------------

/// Layer normalization over the last dimension.
#[derive(Debug)]
pub struct LayerNorm {
    name: String,
    gamma: Param,
    beta: Param,
    width: usize,
}

impl LayerNorm {
    /// Creates a layer-norm over the trailing `width`.
    ///
    /// # Errors
    ///
    /// Propagates allocator out-of-memory.
    pub fn new(
        s: &mut Session<'_>,
        name: impl Into<String>,
        width: usize,
    ) -> Result<Self, AccelError> {
        Ok(LayerNorm {
            name: name.into(),
            gamma: Param::new(s, &[width])?,
            beta: Param::new(s, &[width])?,
            width,
        })
    }
}

impl Layer for LayerNorm {
    fn label(&self) -> String {
        self.name.clone()
    }

    fn forward(
        &mut self,
        s: &mut Session<'_>,
        x: &Tensor,
        _train: bool,
    ) -> Result<Tensor, AccelError> {
        let (g, b) = (self.gamma.tensor.clone(), self.beta.tensor.clone());
        ops::layernorm(s, x, &g, &b)
    }

    fn backward(
        &mut self,
        s: &mut Session<'_>,
        x: &Tensor,
        grad_out: &Tensor,
    ) -> Result<Tensor, AccelError> {
        let (gx, gg, gb) = ops::layernorm_backward(s, x, grad_out, self.width)?;
        self.gamma.set_grad(s, gg)?;
        self.beta.set_grad(s, gb)?;
        Ok(gx)
    }

    fn step(&mut self, s: &mut Session<'_>) -> Result<(), AccelError> {
        self.gamma.step(s)?;
        self.beta.step(s)
    }

    fn destroy(&mut self, s: &mut Session<'_>) {
        self.gamma.destroy(s);
        self.beta.destroy(s);
    }

    fn param_bytes(&self) -> u64 {
        self.gamma.bytes() + self.beta.bytes()
    }
}

// ---------------------------------------------------------------------------
// Multi-head attention
// ---------------------------------------------------------------------------

/// Multi-head self-attention (fused QKV projection).
///
/// Supports Megatron-style tensor-parallel sharding: a shard keeps
/// `heads/shard` heads and a `dim/shard`-wide projection, while the output
/// projection restores the full model width.
#[derive(Debug)]
pub struct MultiHeadAttention {
    name: String,
    wqkv: Param,
    wo: Param,
    /// Local projection width (`dim / shard`).
    width: usize,
    /// Local head count.
    heads: usize,
    /// Internally-allocated activations kept for backward.
    saved: Vec<Tensor>,
}

impl MultiHeadAttention {
    /// Creates an attention block of `dim` split over `heads`.
    ///
    /// # Errors
    ///
    /// Propagates allocator out-of-memory.
    pub fn new(
        s: &mut Session<'_>,
        name: impl Into<String>,
        dim: usize,
        heads: usize,
    ) -> Result<Self, AccelError> {
        Self::new_sharded(s, name, dim, heads, 1)
    }

    /// Creates one tensor-parallel shard: `heads/shard` local heads over a
    /// `dim/shard` projection width.
    ///
    /// # Errors
    ///
    /// Propagates allocator out-of-memory.
    ///
    /// # Panics
    ///
    /// Panics when `shard` does not divide `heads` and `dim`.
    pub fn new_sharded(
        s: &mut Session<'_>,
        name: impl Into<String>,
        dim: usize,
        heads: usize,
        shard: usize,
    ) -> Result<Self, AccelError> {
        assert!(shard >= 1 && heads.is_multiple_of(shard) && dim.is_multiple_of(shard));
        let width = dim / shard;
        Ok(MultiHeadAttention {
            name: name.into(),
            wqkv: Param::new(s, &[3 * width, dim])?,
            wo: Param::new(s, &[dim, width])?,
            width,
            heads: heads / shard,
            saved: Vec::new(),
        })
    }

    /// Sequences at or above this use the tiled flash-attention path,
    /// which never materializes the O(seq^2) score/probability matrices
    /// (Whisper's 1500-frame encoder would otherwise spike gigabytes of
    /// transients that real SDPA implementations do not allocate).
    const FLASH_SEQ_THRESHOLD: usize = 1280;

    fn attention_core(
        &mut self,
        s: &mut Session<'_>,
        qkv: &Tensor,
        batch: usize,
        seq: usize,
        train: bool,
    ) -> Result<Tensor, AccelError> {
        let d = self.width;
        let h = self.heads;
        if seq >= Self::FLASH_SEQ_THRESHOLD {
            return self.flash_core(s, qkv, batch, seq, train);
        }
        // Backends without fused attention paths (MIOpen/rocBLAS)
        // materialize separate Q/K/V tensors before the batched GEMMs —
        // three extra transient tensors and three copy kernels per
        // attention, part of the AMD "more alloc/dealloc events" pattern
        // of the paper's Fig. 14.
        let split = if !s.backend().fused_epilogue {
            let mut parts = Vec::with_capacity(3);
            for part in ["q", "k", "v"] {
                let t = s.alloc_tensor(&[batch, seq, d], crate::dtype::DType::F32)?;
                let (g, blk) = {
                    let work = t.numel() / 4;
                    (
                        accel_sim::Dim3::linear((work.max(1)).div_ceil(256).max(1) as u32),
                        accel_sim::Dim3::linear(256),
                    )
                };
                let desc = accel_sim::KernelDesc::new(
                    format!("at::native::copy_kernel<split_{part}>"),
                    g,
                    blk,
                )
                .arg(qkv.ptr, qkv.bytes)
                .arg(t.ptr, t.bytes)
                .body(
                    accel_sim::KernelBody::default()
                        .access(accel_sim::AccessSpec::load(0, qkv.bytes / 3))
                        .access(accel_sim::AccessSpec::store(1, t.bytes)),
                );
                s.launch(desc)?;
                parts.push(t);
            }
            Some(parts)
        } else {
            None
        };
        // scores[b*h, s, s] = Q × Kᵀ.
        let scores = s.alloc_tensor(&[batch * h, seq, seq], DType::F32)?;
        ops::gemm_kernel(
            s,
            "64x64_attn_qk",
            qkv,
            qkv,
            &scores,
            (batch * h * seq) as u64,
            seq as u64,
            (d / h) as u64,
            None,
            Act::None,
        )?;
        let probs = ops::softmax(s, &scores)?;
        s.free_tensor(&scores);
        // ctx[b, s, d] = probs × V.
        let ctx = s.alloc_tensor(&[batch, seq, d], DType::F32)?;
        ops::gemm_kernel(
            s,
            "64x64_attn_pv",
            &probs,
            qkv,
            &ctx,
            (batch * h * seq) as u64,
            (d / h) as u64,
            seq as u64,
            None,
            Act::None,
        )?;
        // Memory-efficient attention: the probability matrix is never kept
        // for backward — it is recomputed there (as PyTorch's SDPA does).
        // Keeping it would add O(heads x seq^2) per block to the training
        // footprint and blow Table V's training rows far past the paper's.
        s.free_tensor(&probs);
        if let Some(parts) = split {
            for t in parts {
                s.free_tensor(&t);
            }
        }
        Ok(ctx)
    }

    /// Tiled flash-attention forward: one fused kernel, no materialized
    /// score/probability tensors. Backward runs the matching fused
    /// gradient kernel (see [`MultiHeadAttention::backward`]).
    fn flash_core(
        &mut self,
        s: &mut Session<'_>,
        qkv: &Tensor,
        batch: usize,
        seq: usize,
        _train: bool,
    ) -> Result<Tensor, AccelError> {
        let (d, h) = (self.width, self.heads);
        let ctx = s.alloc_tensor(&[batch, seq, d], DType::F32)?;
        let grid = accel_sim::Dim3::plane(seq.div_ceil(128) as u32, (batch * h) as u32);
        let desc = accel_sim::KernelDesc::new(
            "flash_fwd_kernel<128, 128, softmax_scale>",
            grid,
            accel_sim::Dim3::linear(256),
        )
        .arg(qkv.ptr, qkv.bytes)
        .arg(ctx.ptr, ctx.bytes)
        .body(
            accel_sim::KernelBody::default()
                .with_flops(4 * (batch * h * seq * seq) as u64 * (d / h) as u64)
                .with_barriers((seq / 64).max(1) as u32)
                .with_shared_mem(96 << 10)
                .access(
                    accel_sim::AccessSpec::load(0, qkv.bytes)
                        .with_bytes(qkv.bytes * ((seq / 128).max(1) as u64)),
                )
                .access(accel_sim::AccessSpec::store(1, ctx.bytes)),
        );
        s.launch(desc)?;
        Ok(ctx)
    }

    /// Fused flash-attention backward over the saved QKV.
    fn flash_backward(
        &mut self,
        s: &mut Session<'_>,
        qkv: &Tensor,
        g_qkv: &Tensor,
        g_ctx: &Tensor,
        batch: usize,
        seq: usize,
    ) -> Result<(), AccelError> {
        let (d, h) = (self.width, self.heads);
        let grid = accel_sim::Dim3::plane(seq.div_ceil(128) as u32, (batch * h) as u32);
        let desc = accel_sim::KernelDesc::new(
            "flash_bwd_kernel<128, 128, softmax_scale>",
            grid,
            accel_sim::Dim3::linear(256),
        )
        .arg(qkv.ptr, qkv.bytes)
        .arg(g_qkv.ptr, g_qkv.bytes)
        .arg(g_ctx.ptr, g_ctx.bytes)
        .body(
            accel_sim::KernelBody::default()
                .with_flops(8 * (batch * h * seq * seq) as u64 * (d / h) as u64)
                .with_barriers((seq / 64).max(1) as u32)
                .with_shared_mem(96 << 10)
                .access(
                    accel_sim::AccessSpec::load(0, qkv.bytes)
                        .with_bytes(qkv.bytes * 2 * ((seq / 128).max(1) as u64)),
                )
                .access(accel_sim::AccessSpec::store(1, g_qkv.bytes))
                .access(accel_sim::AccessSpec::load(2, g_ctx.bytes)),
        );
        s.launch(desc)?;
        Ok(())
    }

    /// Recomputes the softmax probabilities from the saved QKV (the
    /// backward half of memory-efficient attention).
    fn recompute_probs(
        &mut self,
        s: &mut Session<'_>,
        qkv: &Tensor,
        batch: usize,
        seq: usize,
    ) -> Result<Tensor, AccelError> {
        let (d, h) = (self.width, self.heads);
        let scores = s.alloc_tensor(&[batch * h, seq, seq], DType::F32)?;
        ops::gemm_kernel(
            s,
            "64x64_attn_qk_recompute",
            qkv,
            qkv,
            &scores,
            (batch * h * seq) as u64,
            seq as u64,
            (d / h) as u64,
            None,
            Act::None,
        )?;
        let probs = ops::softmax(s, &scores)?;
        s.free_tensor(&scores);
        Ok(probs)
    }
}

impl Layer for MultiHeadAttention {
    fn label(&self) -> String {
        self.name.clone()
    }

    fn forward(
        &mut self,
        s: &mut Session<'_>,
        x: &Tensor,
        train: bool,
    ) -> Result<Tensor, AccelError> {
        let (batch, seq) = (x.shape[0], x.shape[1]);
        s.with_op("aten::scaled_dot_product_attention", |s| {
            let qkv = ops::linear(s, x, &self.wqkv.tensor.clone(), None, Act::None)?;
            let ctx = self.attention_core(s, &qkv, batch, seq, train)?;
            if train {
                self.saved.push(qkv);
            } else {
                s.free_tensor(&qkv);
            }
            let out = ops::linear(s, &ctx, &self.wo.tensor.clone(), None, Act::None)?;
            if train {
                self.saved.push(ctx);
            } else {
                s.free_tensor(&ctx);
            }
            Ok(out)
        })
    }

    fn backward(
        &mut self,
        s: &mut Session<'_>,
        x: &Tensor,
        grad_out: &Tensor,
    ) -> Result<Tensor, AccelError> {
        // Saved (in push order): qkv, ctx.
        let ctx = self.saved.pop().expect("ctx saved");
        let qkv = self.saved.pop().expect("qkv saved");
        let (batch, seq) = (x.shape[0], x.shape[1]);

        // dCtx through the output projection.
        let (g_ctx, g_wo, _) = ops::linear_backward(s, &ctx, &self.wo.tensor, grad_out, false)?;
        self.wo.set_grad(s, g_wo)?;
        s.free_tensor(&ctx);

        let g_qkv = s.alloc_tensor(&qkv.shape, DType::F32)?;
        if seq >= Self::FLASH_SEQ_THRESHOLD {
            self.flash_backward(s, &qkv, &g_qkv, &g_ctx, batch, seq)?;
            s.free_tensor(&g_ctx);
        } else {
            // Memory-efficient attention recomputes the probabilities here.
            let probs = self.recompute_probs(s, &qkv, batch, seq)?;
            // Through the attention core: dProbs, dV (into dQKV), dQ/dK.
            let g_probs = ops::softmax_backward(s, &probs, &g_ctx)?;
            s.free_tensor(&probs);
            s.free_tensor(&g_ctx);
            let (bh, sq) = (g_probs.shape[0] * g_probs.shape[1], g_probs.shape[2]);
            ops::gemm_kernel(
                s,
                "64x64_attn_bwd",
                &g_probs,
                &qkv,
                &g_qkv,
                bh as u64,
                (self.width / self.heads) as u64,
                sq as u64,
                None,
                Act::None,
            )?;
            s.free_tensor(&g_probs);
        }

        // Back through the QKV projection.
        let (gx, g_wqkv, _) = ops::linear_backward(s, x, &self.wqkv.tensor, &g_qkv, false)?;
        self.wqkv.set_grad(s, g_wqkv)?;
        s.free_tensor(&g_qkv);
        s.free_tensor(&qkv);
        Ok(gx)
    }

    fn release_saved(&mut self, s: &mut Session<'_>) {
        for t in self.saved.drain(..) {
            s.free_tensor(&t);
        }
    }

    fn step(&mut self, s: &mut Session<'_>) -> Result<(), AccelError> {
        self.wqkv.step(s)?;
        self.wo.step(s)
    }

    fn destroy(&mut self, s: &mut Session<'_>) {
        self.release_saved(s);
        self.wqkv.destroy(s);
        self.wo.destroy(s);
    }

    fn param_bytes(&self) -> u64 {
        self.wqkv.bytes() + self.wo.bytes()
    }
}

// ---------------------------------------------------------------------------
// Transformer block
// ---------------------------------------------------------------------------

/// Pre-norm transformer block: `x + attn(ln1(x))`, then `x + mlp(ln2(x))`.
pub struct TransformerBlock {
    name: String,
    ln1: LayerNorm,
    attn: MultiHeadAttention,
    ln2: LayerNorm,
    fc1: Linear,
    fc2: Linear,
    /// Internal activations saved for backward, in creation order:
    /// `[h1, a, x1, h2, m1]`.
    saved: Vec<Tensor>,
}

impl TransformerBlock {
    /// Creates a block of width `dim`, `heads` heads and `ffn` hidden width.
    ///
    /// # Errors
    ///
    /// Propagates allocator out-of-memory.
    pub fn new(
        s: &mut Session<'_>,
        name: impl Into<String>,
        dim: usize,
        heads: usize,
        ffn: usize,
    ) -> Result<Self, AccelError> {
        Self::new_sharded(s, name, dim, heads, ffn, 1)
    }

    /// Creates one tensor-parallel shard of a block: attention heads and
    /// the feed-forward hidden width are divided by `shard` (Megatron-LM's
    /// column/row-parallel split), while layer norms keep the full width.
    ///
    /// # Errors
    ///
    /// Propagates allocator out-of-memory.
    pub fn new_sharded(
        s: &mut Session<'_>,
        name: impl Into<String>,
        dim: usize,
        heads: usize,
        ffn: usize,
        shard: usize,
    ) -> Result<Self, AccelError> {
        let name = name.into();
        let ffn_local = ffn / shard.max(1);
        Ok(TransformerBlock {
            ln1: LayerNorm::new(s, format!("{name}.ln1"), dim)?,
            attn: MultiHeadAttention::new_sharded(s, format!("{name}.attn"), dim, heads, shard)?,
            ln2: LayerNorm::new(s, format!("{name}.ln2"), dim)?,
            fc1: Linear::new(
                s,
                format!("{name}.mlp.fc1"),
                dim,
                ffn_local,
                true,
                Act::Gelu,
            )?,
            fc2: Linear::new(
                s,
                format!("{name}.mlp.fc2"),
                ffn_local,
                dim,
                true,
                Act::None,
            )?,
            name,
            saved: Vec::new(),
        })
    }
}

impl Layer for TransformerBlock {
    fn label(&self) -> String {
        self.name.clone()
    }

    fn forward(
        &mut self,
        s: &mut Session<'_>,
        x: &Tensor,
        train: bool,
    ) -> Result<Tensor, AccelError> {
        let h1 = self.ln1.forward(s, x, train)?;
        let a = self.attn.forward(s, &h1, train)?;
        let x1 = ops::elementwise(
            s,
            "at::native::vectorized_elementwise_kernel<add>",
            &[x, &a],
            &x.shape,
        )?;
        let h2 = self.ln2.forward(s, &x1, train)?;
        let m0 = self.fc1.forward(s, &h2, train)?;
        let m1 = self.fc2.forward(s, &m0, train)?;
        let y = ops::elementwise(
            s,
            "at::native::vectorized_elementwise_kernel<add>",
            &[&x1, &m1],
            &x1.shape,
        )?;
        if train {
            // m0 is consumed by fc2's backward as its input activation.
            self.saved = vec![h1, a, x1, h2, m0, m1];
        } else {
            for t in [h1, a, x1, h2, m0, m1] {
                s.free_tensor(&t);
            }
        }
        Ok(y)
    }

    fn backward(
        &mut self,
        s: &mut Session<'_>,
        x: &Tensor,
        grad_out: &Tensor,
    ) -> Result<Tensor, AccelError> {
        let m1 = self.saved.pop().expect("m1");
        let m0 = self.saved.pop().expect("m0");
        let h2 = self.saved.pop().expect("h2");
        let x1 = self.saved.pop().expect("x1");
        let a = self.saved.pop().expect("a");
        let h1 = self.saved.pop().expect("h1");

        // Residual 2: grad flows to both the MLP branch and x1.
        let g_m1 = grad_out.clone(); // same gradient tensor feeds the branch
        let g_m0 = self.fc2.backward(s, &m0, &g_m1)?;
        s.free_tensor(&m1);
        s.free_tensor(&m0);
        let g_h2 = self.fc1.backward(s, &h2, &g_m0)?;
        s.free_tensor(&g_m0);
        let g_x1_mlp = self.ln2.backward(s, &x1, &g_h2)?;
        s.free_tensor(&g_h2);
        s.free_tensor(&h2);
        // g_x1 = grad_out + g_x1_mlp.
        let g_x1 = ops::elementwise(
            s,
            "at::native::vectorized_elementwise_kernel<add>",
            &[grad_out, &g_x1_mlp],
            &grad_out.shape,
        )?;
        s.free_tensor(&g_x1_mlp);
        s.free_tensor(&x1);

        // Residual 1: through attention and ln1.
        let g_a = g_x1.clone();
        let g_h1 = self.attn.backward(s, &h1, &g_a)?;
        s.free_tensor(&a);
        let g_x_attn = self.ln1.backward(s, x, &g_h1)?;
        s.free_tensor(&g_h1);
        s.free_tensor(&h1);
        let gx = ops::elementwise(
            s,
            "at::native::vectorized_elementwise_kernel<add>",
            &[&g_x1, &g_x_attn],
            &g_x1.shape,
        )?;
        s.free_tensor(&g_x1);
        s.free_tensor(&g_x_attn);
        Ok(gx)
    }

    fn release_saved(&mut self, s: &mut Session<'_>) {
        for t in self.saved.drain(..) {
            s.free_tensor(&t);
        }
        self.attn.release_saved(s);
    }

    fn step(&mut self, s: &mut Session<'_>) -> Result<(), AccelError> {
        self.ln1.step(s)?;
        self.attn.step(s)?;
        self.ln2.step(s)?;
        self.fc1.step(s)?;
        self.fc2.step(s)
    }

    fn destroy(&mut self, s: &mut Session<'_>) {
        self.release_saved(s);
        self.ln1.destroy(s);
        self.attn.destroy(s);
        self.ln2.destroy(s);
        self.fc1.destroy(s);
        self.fc2.destroy(s);
    }

    fn param_bytes(&self) -> u64 {
        self.ln1.param_bytes()
            + self.attn.param_bytes()
            + self.ln2.param_bytes()
            + self.fc1.param_bytes()
            + self.fc2.param_bytes()
    }
}

// ---------------------------------------------------------------------------
// Residual (ResNet basic) block
// ---------------------------------------------------------------------------

/// ResNet basic block: two 3×3 convolutions with batch norm and an
/// identity (or 1×1 projection) shortcut.
pub struct BasicBlock {
    name: String,
    conv1: Conv2d,
    bn1: BatchNorm2d,
    conv2: Conv2d,
    bn2: BatchNorm2d,
    shortcut: Option<(Conv2d, BatchNorm2d)>,
    saved: Vec<Tensor>,
}

impl BasicBlock {
    /// Creates a basic block `cin → cout` with the given stride.
    ///
    /// # Errors
    ///
    /// Propagates allocator out-of-memory.
    pub fn new(
        s: &mut Session<'_>,
        name: impl Into<String>,
        cin: usize,
        cout: usize,
        stride: usize,
    ) -> Result<Self, AccelError> {
        let name = name.into();
        let conv1 = Conv2d::new(
            s,
            format!("{name}.conv1"),
            Conv2dCfg {
                cin,
                cout,
                k: 3,
                stride,
                pad: 1,
            },
            Act::None,
        )?;
        let bn1 = BatchNorm2d::new(s, format!("{name}.bn1"), cout)?;
        let conv2 = Conv2d::new(
            s,
            format!("{name}.conv2"),
            Conv2dCfg {
                cin: cout,
                cout,
                k: 3,
                stride: 1,
                pad: 1,
            },
            Act::None,
        )?;
        let bn2 = BatchNorm2d::new(s, format!("{name}.bn2"), cout)?;
        let shortcut = if stride != 1 || cin != cout {
            Some((
                Conv2d::new(
                    s,
                    format!("{name}.downsample.conv"),
                    Conv2dCfg {
                        cin,
                        cout,
                        k: 1,
                        stride,
                        pad: 0,
                    },
                    Act::None,
                )?,
                BatchNorm2d::new(s, format!("{name}.downsample.bn"), cout)?,
            ))
        } else {
            None
        };
        Ok(BasicBlock {
            name,
            conv1,
            bn1,
            conv2,
            bn2,
            shortcut,
            saved: Vec::new(),
        })
    }
}

impl Layer for BasicBlock {
    fn label(&self) -> String {
        self.name.clone()
    }

    fn forward(
        &mut self,
        s: &mut Session<'_>,
        x: &Tensor,
        train: bool,
    ) -> Result<Tensor, AccelError> {
        let c1 = self.conv1.forward(s, x, train)?;
        let b1 = self.bn1.forward(s, &c1, train)?;
        ops::elementwise_inplace(s, "at::native::vectorized_elementwise_kernel<relu>", &b1)?;
        let c2 = self.conv2.forward(s, &b1, train)?;
        let b2 = self.bn2.forward(s, &c2, train)?;
        // Shortcut path: the bn output `u` is consumed by the add below and
        // freed immediately; the conv output `t` is what bn's backward
        // needs, so it is the tensor saved in training mode.
        let sc = match self.shortcut.as_mut() {
            Some((conv, bn)) => {
                let t = conv.forward(s, x, train)?;
                let u = bn.forward(s, &t, train)?;
                Some((t, u))
            }
            None => None,
        };
        let y = match &sc {
            Some((_, u)) => ops::elementwise(
                s,
                "at::native::vectorized_elementwise_kernel<add_relu>",
                &[&b2, u],
                &b2.shape,
            )?,
            None => ops::elementwise(
                s,
                "at::native::vectorized_elementwise_kernel<add_relu>",
                &[&b2, x],
                &b2.shape,
            )?,
        };
        if train {
            self.saved.extend([c1, b1, c2, b2]);
            if let Some((t, u)) = sc {
                s.free_tensor(&u);
                self.saved.push(t);
            }
        } else {
            for t in [c1, b1, c2, b2] {
                s.free_tensor(&t);
            }
            if let Some((t, u)) = sc {
                s.free_tensor(&t);
                s.free_tensor(&u);
            }
        }
        Ok(y)
    }

    fn backward(
        &mut self,
        s: &mut Session<'_>,
        x: &Tensor,
        grad_out: &Tensor,
    ) -> Result<Tensor, AccelError> {
        let sc_in = if self.shortcut.is_some() {
            Some(self.saved.pop().expect("shortcut conv output"))
        } else {
            None
        };
        let b2 = self.saved.pop().expect("b2");
        let c2 = self.saved.pop().expect("c2");
        let b1 = self.saved.pop().expect("b1");
        let c1 = self.saved.pop().expect("c1");

        // Main path.
        let g_b2 = self.bn2.backward(s, &c2, grad_out)?;
        s.free_tensor(&b2);
        let g_c2 = self.conv2.backward(s, &b1, &g_b2)?;
        s.free_tensor(&g_b2);
        s.free_tensor(&c2);
        let g_b1 = self.bn1.backward(s, &c1, &g_c2)?;
        s.free_tensor(&g_c2);
        s.free_tensor(&b1);
        let g_main = self.conv1.backward(s, x, &g_b1)?;
        s.free_tensor(&g_b1);
        s.free_tensor(&c1);

        // Shortcut path.
        let gx = match (self.shortcut.as_mut(), sc_in) {
            (Some((conv, bn)), Some(sc_in)) => {
                let g_bn = bn.backward(s, &sc_in, grad_out)?;
                let g_sc = conv.backward(s, x, &g_bn)?;
                s.free_tensor(&g_bn);
                s.free_tensor(&sc_in);
                let sum = ops::elementwise(
                    s,
                    "at::native::vectorized_elementwise_kernel<add>",
                    &[&g_main, &g_sc],
                    &g_main.shape,
                )?;
                s.free_tensor(&g_main);
                s.free_tensor(&g_sc);
                sum
            }
            _ => {
                // Identity shortcut: add grad_out into the main gradient.
                let sum = ops::elementwise(
                    s,
                    "at::native::vectorized_elementwise_kernel<add>",
                    &[&g_main, grad_out],
                    &g_main.shape,
                )?;
                s.free_tensor(&g_main);
                sum
            }
        };
        Ok(gx)
    }

    fn release_saved(&mut self, s: &mut Session<'_>) {
        for t in self.saved.drain(..) {
            s.free_tensor(&t);
        }
    }

    fn step(&mut self, s: &mut Session<'_>) -> Result<(), AccelError> {
        self.conv1.step(s)?;
        self.bn1.step(s)?;
        self.conv2.step(s)?;
        self.bn2.step(s)?;
        if let Some((conv, bn)) = self.shortcut.as_mut() {
            conv.step(s)?;
            bn.step(s)?;
        }
        Ok(())
    }

    fn destroy(&mut self, s: &mut Session<'_>) {
        self.release_saved(s);
        self.conv1.destroy(s);
        self.bn1.destroy(s);
        self.conv2.destroy(s);
        self.bn2.destroy(s);
        if let Some((mut conv, mut bn)) = self.shortcut.take() {
            conv.destroy(s);
            bn.destroy(s);
        }
    }

    fn param_bytes(&self) -> u64 {
        self.conv1.param_bytes()
            + self.bn1.param_bytes()
            + self.conv2.param_bytes()
            + self.bn2.param_bytes()
            + self
                .shortcut
                .as_ref()
                .map_or(0, |(c, b)| c.param_bytes() + b.param_bytes())
    }
}

// ---------------------------------------------------------------------------
// Sequential container
// ---------------------------------------------------------------------------

/// An owning sequence of layers with activation-lifetime management.
pub struct Sequential {
    label: String,
    layers: Vec<Box<dyn Layer>>,
    /// Training-mode activations: `acts[i]` is the *input* of layer `i`.
    acts: Vec<Tensor>,
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sequential")
            .field("label", &self.label)
            .field("layers", &self.layers.len())
            .field("live_acts", &self.acts.len())
            .finish()
    }
}

impl Sequential {
    /// Creates an empty container.
    pub fn new(label: impl Into<String>) -> Self {
        Sequential {
            label: label.into(),
            layers: Vec::new(),
            acts: Vec::new(),
        }
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Mutable access to the layers (models with non-sequential dataflow,
    /// e.g. Whisper's cross-attention decoder, drive layers directly).
    pub fn layers_mut(&mut self) -> &mut [Box<dyn Layer>] {
        &mut self.layers
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// True when no layers are present.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Container label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Runs the forward pass, taking ownership of `input`. In inference
    /// mode intermediates are freed eagerly; in training they are kept for
    /// [`Sequential::backward`]. The caller owns the returned output.
    ///
    /// # Errors
    ///
    /// Propagates allocation/launch failures.
    pub fn forward(
        &mut self,
        s: &mut Session<'_>,
        input: Tensor,
        train: bool,
    ) -> Result<Tensor, AccelError> {
        assert!(self.acts.is_empty(), "forward called with pending backward");
        let mut x = input;
        for (i, layer) in self.layers.iter_mut().enumerate() {
            s.layer_boundary(&layer.label(), i);
            let y = layer.forward(s, &x, train)?;
            if train {
                self.acts.push(x);
            } else {
                s.free_tensor(&x);
                layer.release_saved(s);
            }
            x = y;
        }
        Ok(x)
    }

    /// Runs the backward pass, consuming `grad_output` and the stored
    /// activations, and returning the gradient with respect to the
    /// original input (the caller frees it — models with embeddings need
    /// it to finish their own backward). The *caller* still owns the
    /// forward output and must free it after this returns.
    ///
    /// # Errors
    ///
    /// Propagates allocation/launch failures.
    pub fn backward(
        &mut self,
        s: &mut Session<'_>,
        grad_output: Tensor,
    ) -> Result<Tensor, AccelError> {
        assert_eq!(
            self.acts.len(),
            self.layers.len(),
            "backward requires a training-mode forward first"
        );
        let mut grad = grad_output;
        for i in (0..self.layers.len()).rev() {
            let x = self.acts.pop().expect("activation");
            let g_in = self.layers[i].backward(s, &x, &grad)?;
            s.free_tensor(&grad);
            s.free_tensor(&x);
            grad = g_in;
        }
        Ok(grad)
    }

    /// Optimizer step over every layer.
    ///
    /// # Errors
    ///
    /// Propagates allocation/launch failures.
    pub fn step(&mut self, s: &mut Session<'_>) -> Result<(), AccelError> {
        for layer in &mut self.layers {
            layer.step(s)?;
        }
        Ok(())
    }

    /// Frees all parameters and any dangling activations.
    pub fn destroy(&mut self, s: &mut Session<'_>) {
        for t in self.acts.drain(..) {
            s.free_tensor(&t);
        }
        for layer in &mut self.layers {
            layer.release_saved(s);
            layer.destroy(s);
        }
        self.layers.clear();
    }

    /// Total parameter bytes.
    pub fn param_bytes(&self) -> u64 {
        self.layers.iter().map(|l| l.param_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accel_sim::DeviceSpec;
    use vendor_nv::CudaContext;

    fn rt() -> CudaContext {
        CudaContext::new(vec![DeviceSpec::a100_80gb()])
    }

    #[test]
    fn linear_train_round_trip_frees_everything() {
        let mut rt = rt();
        let mut s = Session::new(&mut rt);
        let mut seq = Sequential::new("mlp");
        seq.push(Box::new(
            Linear::new(&mut s, "fc1", 512, 256, true, Act::Relu).unwrap(),
        ));
        seq.push(Box::new(
            Linear::new(&mut s, "fc2", 256, 10, true, Act::None).unwrap(),
        ));
        let params = s.allocator_stats().allocated;

        let input = s.alloc_tensor(&[32, 512], DType::F32).unwrap();
        let out = seq.forward(&mut s, input, true).unwrap();
        assert_eq!(out.shape, vec![32, 10]);
        let grad = s.alloc_tensor(&[32, 10], DType::F32).unwrap();
        let g_in = seq.backward(&mut s, grad).unwrap();
        s.free_tensor(&g_in);
        s.free_tensor(&out);
        seq.step(&mut s).unwrap();
        s.release_workspaces();
        // After step: params + adam moments remain (2 extra tensors/param).
        let now = s.allocator_stats().allocated;
        assert_eq!(now, params * 3, "params plus two moments each");
        seq.destroy(&mut s);
        assert_eq!(s.allocator_stats().allocated, 0);
    }

    #[test]
    fn inference_frees_intermediates_eagerly() {
        let mut rt = rt();
        let mut s = Session::new(&mut rt);
        let mut seq = Sequential::new("m");
        for i in 0..4 {
            seq.push(Box::new(
                Linear::new(&mut s, format!("fc{i}"), 256, 256, true, Act::Relu).unwrap(),
            ));
        }
        let base = s.allocator_stats().allocated;
        let input = s.alloc_tensor(&[8, 256], DType::F32).unwrap();
        let out = seq.forward(&mut s, input, false).unwrap();
        s.release_workspaces();
        let after = s.allocator_stats().allocated;
        assert_eq!(after, base + 8 * 256 * 4, "only the output survives");
        s.free_tensor(&out);
        seq.destroy(&mut s);
        assert_eq!(s.allocator_stats().allocated, 0);
    }

    #[test]
    fn transformer_block_train_cycle() {
        let mut rt = rt();
        let mut s = Session::new(&mut rt);
        let mut seq = Sequential::new("tiny-transformer");
        seq.push(Box::new(
            TransformerBlock::new(&mut s, "block0", 128, 4, 512).unwrap(),
        ));
        let params = s.allocator_stats().allocated;
        let input = s.alloc_tensor(&[2, 16, 128], DType::F32).unwrap();
        let out = seq.forward(&mut s, input, true).unwrap();
        assert_eq!(out.shape, vec![2, 16, 128]);
        let grad = s.alloc_tensor(&[2, 16, 128], DType::F32).unwrap();
        let g_in = seq.backward(&mut s, grad).unwrap();
        s.free_tensor(&g_in);
        s.free_tensor(&out);
        seq.step(&mut s).unwrap();
        s.release_workspaces();
        assert_eq!(s.allocator_stats().allocated, params * 3);
        seq.destroy(&mut s);
        assert_eq!(s.allocator_stats().allocated, 0);
    }

    #[test]
    fn basic_block_with_downsample_train_cycle() {
        let mut rt = rt();
        let mut s = Session::new(&mut rt);
        let mut seq = Sequential::new("res");
        seq.push(Box::new(
            BasicBlock::new(&mut s, "layer1.0", 64, 128, 2).unwrap(),
        ));
        let params = s.allocator_stats().allocated;
        let input = s.alloc_tensor(&[4, 64, 56, 56], DType::F32).unwrap();
        let out = seq.forward(&mut s, input, true).unwrap();
        assert_eq!(out.shape, vec![4, 128, 28, 28]);
        let grad = s.alloc_tensor(&out.shape, DType::F32).unwrap();
        let g_in = seq.backward(&mut s, grad).unwrap();
        s.free_tensor(&g_in);
        s.free_tensor(&out);
        seq.step(&mut s).unwrap();
        s.release_workspaces();
        assert_eq!(s.allocator_stats().allocated, params * 3);
        seq.destroy(&mut s);
        assert_eq!(s.allocator_stats().allocated, 0);
    }

    #[test]
    fn param_bytes_counts_weights() {
        let mut rt = rt();
        let mut s = Session::new(&mut rt);
        let l = Linear::new(&mut s, "fc", 100, 10, true, Act::None).unwrap();
        assert_eq!(l.param_bytes(), 100 * 10 * 4 + 10 * 4);
    }

    #[test]
    #[should_panic(expected = "pending backward")]
    fn forward_twice_without_backward_panics() {
        let mut rt = rt();
        let mut s = Session::new(&mut rt);
        let mut seq = Sequential::new("m");
        seq.push(Box::new(
            Linear::new(&mut s, "fc", 64, 64, false, Act::None).unwrap(),
        ));
        let a = s.alloc_tensor(&[1, 64], DType::F32).unwrap();
        let b = s.alloc_tensor(&[1, 64], DType::F32).unwrap();
        let _o1 = seq.forward(&mut s, a, true).unwrap();
        let _o2 = seq.forward(&mut s, b, true).unwrap();
    }
}
