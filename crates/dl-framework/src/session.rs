//! Execution session: allocator + callbacks + Python stack over a runtime.
//!
//! A [`Session`] is the glue the DL framework wraps around a device
//! runtime: every tensor allocation flows through the caching allocator
//! (emitting `reportMemoryUsage`-style events), every operator brackets its
//! kernels with `RecordFunction`-style events, and the simulated Python
//! stack is maintained for cross-layer call-stack capture.

use crate::alloc::{AllocatorConfig, AllocatorStats, CachingAllocator};
use crate::backend::BackendProfile;
use crate::callbacks::{CallbackRegistry, FrameworkEvent, FrameworkSubscriber, Pass};
use crate::dtype::DType;
use crate::pycall::{PyFrame, PyStack};
use crate::tensor::{Tensor, TensorId};
use accel_sim::{AccelError, DeviceId, DeviceRuntime, KernelDesc, LaunchRecord};
use std::collections::HashMap;

/// A live framework session over a device runtime.
pub struct Session<'rt> {
    rt: &'rt mut dyn DeviceRuntime,
    allocators: HashMap<DeviceId, CachingAllocator>,
    allocator_config: AllocatorConfig,
    callbacks: CallbackRegistry,
    py: PyStack,
    backend: BackendProfile,
    next_tensor: u64,
    op_seq: u64,
    kernels_launched: u64,
    /// cuBLASLt-style GEMM workspace per device: allocated lazily, grown
    /// (free + realloc) when a larger GEMM arrives, and held for the
    /// session — the fused NVIDIA path's "slightly higher peak memory"
    /// of the paper's Fig. 14.
    gemm_workspace: HashMap<DeviceId, Tensor>,
}

impl std::fmt::Debug for Session<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("backend", &self.backend.vendor)
            .field("tensors_created", &self.next_tensor)
            .field("kernels_launched", &self.kernels_launched)
            .finish()
    }
}

impl<'rt> Session<'rt> {
    /// Creates a session over `rt` with the backend profile matching the
    /// runtime's vendor.
    pub fn new(rt: &'rt mut dyn DeviceRuntime) -> Self {
        let backend = BackendProfile::for_vendor(rt.vendor());
        Session::with_config(rt, backend, AllocatorConfig::default())
    }

    /// Creates a session with explicit backend profile and allocator config
    /// (the UVM experiments pass [`AllocatorConfig::managed`]).
    pub fn with_config(
        rt: &'rt mut dyn DeviceRuntime,
        backend: BackendProfile,
        allocator_config: AllocatorConfig,
    ) -> Self {
        Session {
            rt,
            allocators: HashMap::new(),
            allocator_config,
            callbacks: CallbackRegistry::new(),
            py: PyStack::new(),
            backend,
            next_tensor: 0,
            op_seq: 0,
            kernels_launched: 0,
            gemm_workspace: HashMap::new(),
        }
    }

    /// The backend profile in effect.
    pub fn backend(&self) -> &BackendProfile {
        &self.backend
    }

    /// The underlying runtime.
    pub fn runtime(&self) -> &dyn DeviceRuntime {
        &*self.rt
    }

    /// Mutable runtime access (device switching in multi-GPU runs).
    pub fn runtime_mut(&mut self) -> &mut dyn DeviceRuntime {
        &mut *self.rt
    }

    /// Subscribes to framework events (`at::addGlobalCallback` analogue).
    pub fn subscribe(&mut self, subscriber: FrameworkSubscriber) {
        self.callbacks.subscribe(subscriber);
    }

    /// Emits a framework event to all subscribers.
    pub fn emit(&mut self, event: FrameworkEvent) {
        self.callbacks.emit(&event);
    }

    /// Total kernels launched through this session.
    pub fn kernels_launched(&self) -> u64 {
        self.kernels_launched
    }

    /// Allocator statistics for the current device.
    pub fn allocator_stats(&self) -> AllocatorStats {
        self.allocator_stats_for(self.rt.current_device())
    }

    /// Allocator statistics for a specific device (multi-GPU reports).
    pub fn allocator_stats_for(&self, device: DeviceId) -> AllocatorStats {
        self.allocators
            .get(&device)
            .map(CachingAllocator::stats)
            .unwrap_or_default()
    }

    /// Live allocator segment ranges on the current device — the memory
    /// *objects* that object-level UVM prefetching moves wholesale.
    pub fn allocator_segments(&self) -> Vec<(u64, u64)> {
        let dev = self.rt.current_device();
        self.allocators
            .get(&dev)
            .map(CachingAllocator::segments)
            .unwrap_or_default()
    }

    /// Allocates a tensor on the current device, emitting a
    /// [`FrameworkEvent::TensorAlloc`].
    ///
    /// # Errors
    ///
    /// Propagates allocator out-of-memory.
    pub fn alloc_tensor(&mut self, shape: &[usize], dtype: DType) -> Result<Tensor, AccelError> {
        let bytes = Tensor::bytes_for(shape, dtype);
        let dev = self.rt.current_device();
        let config = self.allocator_config.clone();
        let allocator = self
            .allocators
            .entry(dev)
            .or_insert_with(|| CachingAllocator::new(config));
        let (ptr, _rounded) = allocator.alloc(&mut *self.rt, bytes)?;
        let stats = self.allocators[&dev].stats();
        let id = TensorId(self.next_tensor);
        self.next_tensor += 1;
        let tensor = Tensor {
            id,
            shape: shape.to_vec(),
            dtype,
            ptr,
            bytes,
        };
        self.callbacks.emit(&FrameworkEvent::TensorAlloc {
            tensor: id,
            addr: ptr.addr(),
            bytes,
            allocated_total: stats.allocated,
            reserved_total: stats.reserved,
            device: dev,
        });
        Ok(tensor)
    }

    /// Releases a tensor back to the pool, emitting a
    /// [`FrameworkEvent::TensorFree`].
    ///
    /// # Panics
    ///
    /// Panics on double-free (a framework bug, as in PyTorch) and when
    /// the *current* device never allocated — freeing a tensor after
    /// switching devices. Both unwind into the session boundary, where
    /// PASTA contains them as a typed lane failure; workloads that free
    /// across device switches can use [`Session::try_free_tensor`] to
    /// get a value-level error instead.
    pub fn free_tensor(&mut self, tensor: &Tensor) {
        let dev = self.rt.current_device();
        let allocator = self.allocators.get_mut(&dev).unwrap_or_else(|| {
            panic!(
                "free_tensor on {dev}: no allocation ever happened on this \
                 device (was the tensor allocated while another device was \
                 current?)"
            )
        });
        allocator.free(tensor.ptr);
        let stats = allocator.stats();
        self.callbacks.emit(&FrameworkEvent::TensorFree {
            tensor: tensor.id,
            addr: tensor.ptr.addr(),
            bytes: tensor.bytes,
            allocated_total: stats.allocated,
            reserved_total: stats.reserved,
            device: dev,
        });
    }

    /// Fallible twin of [`Session::free_tensor`]: returns
    /// [`AccelError::UnknownDevice`] instead of panicking when the
    /// current device has no allocator (the tensor was allocated while a
    /// different device was current).
    ///
    /// # Errors
    ///
    /// [`AccelError::UnknownDevice`] when the current device never
    /// allocated. Double-free still panics (a framework bug, as in
    /// PyTorch).
    pub fn try_free_tensor(&mut self, tensor: &Tensor) -> Result<(), AccelError> {
        let dev = self.rt.current_device();
        if !self.allocators.contains_key(&dev) {
            return Err(AccelError::UnknownDevice(dev));
        }
        self.free_tensor(tensor);
        Ok(())
    }

    /// Brackets an operator: emits `OpStart`, runs `f`, emits `OpEnd`.
    ///
    /// # Errors
    ///
    /// Propagates errors from `f`.
    pub fn with_op<T>(
        &mut self,
        name: &str,
        f: impl FnOnce(&mut Session<'rt>) -> Result<T, AccelError>,
    ) -> Result<T, AccelError> {
        let seq = self.op_seq;
        self.op_seq += 1;
        let dev = self.rt.current_device();
        let py_stack = self.py.snapshot();
        self.callbacks.emit(&FrameworkEvent::OpStart {
            seq,
            name: name.to_owned(),
            device: dev,
            py_stack,
        });
        let out = f(self);
        self.callbacks.emit(&FrameworkEvent::OpEnd {
            seq,
            name: name.to_owned(),
            device: dev,
        });
        out
    }

    /// Launches a kernel on the current device.
    ///
    /// # Errors
    ///
    /// Propagates launch validation failures.
    pub fn launch(&mut self, desc: KernelDesc) -> Result<LaunchRecord, AccelError> {
        self.kernels_launched += 1;
        self.rt.launch(desc)
    }

    /// Pushes a simulated Python frame.
    pub fn py_push(&mut self, frame: PyFrame) {
        self.py.push(frame);
    }

    /// Pops the top Python frame.
    pub fn py_pop(&mut self) {
        let _ = self.py.pop();
    }

    /// Snapshot of the simulated Python stack.
    pub fn py_snapshot(&self) -> Vec<PyFrame> {
        self.py.snapshot()
    }

    /// Emits a `pasta.start()`-style region annotation.
    pub fn region_start(&mut self, label: &str) {
        let device = self.rt.current_device();
        self.callbacks.emit(&FrameworkEvent::RegionStart {
            label: accel_sim::Symbol::intern(label),
            device,
        });
    }

    /// Emits a `pasta.stop()`-style region annotation.
    pub fn region_end(&mut self, label: &str) {
        let device = self.rt.current_device();
        self.callbacks.emit(&FrameworkEvent::RegionEnd {
            label: accel_sim::Symbol::intern(label),
            device,
        });
    }

    /// Emits a layer boundary.
    pub fn layer_boundary(&mut self, name: &str, index: usize) {
        let device = self.rt.current_device();
        self.callbacks.emit(&FrameworkEvent::LayerBoundary {
            name: accel_sim::Symbol::intern(name),
            index,
            device,
        });
    }

    /// Emits a forward/backward/optimizer pass boundary.
    pub fn pass_boundary(&mut self, pass: Pass) {
        let device = self.rt.current_device();
        self.callbacks
            .emit(&FrameworkEvent::PassBoundary { pass, device });
    }

    /// Synchronizes the current device.
    pub fn synchronize(&mut self) {
        self.rt.synchronize();
    }

    /// Ensures the cached GEMM workspace on the current device holds at
    /// least `bytes`, growing it cublas-handle style (free + realloc on
    /// growth, reuse otherwise). Returns the workspace tensor.
    ///
    /// # Errors
    ///
    /// Propagates allocator out-of-memory.
    pub fn ensure_gemm_workspace(&mut self, bytes: u64) -> Result<Tensor, AccelError> {
        let dev = self.rt.current_device();
        if let Some(ws) = self.gemm_workspace.get(&dev) {
            if ws.bytes >= bytes {
                return Ok(ws.clone());
            }
            let old = ws.clone();
            self.free_tensor(&old);
            self.gemm_workspace.remove(&dev);
        }
        let ws = self.alloc_tensor(&[(bytes / 4).max(1) as usize], DType::F32)?;
        self.gemm_workspace.insert(dev, ws.clone());
        Ok(ws)
    }

    /// Frees all cached GEMM workspaces (call before final memory
    /// accounting; the runner does this automatically).
    pub fn release_workspaces(&mut self) {
        let entries: Vec<(DeviceId, Tensor)> = self.gemm_workspace.drain().collect();
        let current = self.rt.current_device();
        for (dev, ws) in entries {
            let _ = self.rt.set_device(dev);
            self.free_tensor(&ws);
        }
        let _ = self.rt.set_device(current);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accel_sim::DeviceSpec;
    use parking_lot::Mutex;
    use std::sync::Arc;
    use vendor_nv::CudaContext;

    #[test]
    fn tensor_lifecycle_emits_events() {
        let mut rt = CudaContext::new(vec![DeviceSpec::rtx_3060()]);
        let mut s = Session::new(&mut rt);
        let log = Arc::new(Mutex::new(Vec::new()));
        let l2 = Arc::clone(&log);
        s.subscribe(Box::new(move |e| {
            let tag = match e {
                FrameworkEvent::TensorAlloc { bytes, .. } => format!("alloc:{bytes}"),
                FrameworkEvent::TensorFree { bytes, .. } => format!("free:{bytes}"),
                _ => return,
            };
            l2.lock().push(tag);
        }));
        let t = s.alloc_tensor(&[128, 128], DType::F32).unwrap();
        assert_eq!(t.bytes, 128 * 128 * 4);
        s.free_tensor(&t);
        let log = log.lock();
        assert_eq!(*log, vec!["alloc:65536", "free:65536"]);
    }

    #[test]
    fn with_op_brackets_events() {
        let mut rt = CudaContext::new(vec![DeviceSpec::rtx_3060()]);
        let mut s = Session::new(&mut rt);
        let log = Arc::new(Mutex::new(Vec::new()));
        let l2 = Arc::clone(&log);
        s.subscribe(Box::new(move |e| match e {
            FrameworkEvent::OpStart { name, .. } => l2.lock().push(format!("start:{name}")),
            FrameworkEvent::OpEnd { name, .. } => l2.lock().push(format!("end:{name}")),
            _ => {}
        }));
        s.with_op("aten::linear", |s| s.with_op("aten::addmm", |_s| Ok(())))
            .unwrap();
        let log = log.lock();
        assert_eq!(
            *log,
            vec![
                "start:aten::linear",
                "start:aten::addmm",
                "end:aten::addmm",
                "end:aten::linear"
            ]
        );
    }

    #[test]
    fn op_events_capture_python_stack() {
        let mut rt = CudaContext::new(vec![DeviceSpec::rtx_3060()]);
        let mut s = Session::new(&mut rt);
        let captured = Arc::new(Mutex::new(Vec::new()));
        let c2 = Arc::clone(&captured);
        s.subscribe(Box::new(move |e| {
            if let FrameworkEvent::OpStart { py_stack, .. } = e {
                c2.lock().push(py_stack.len());
            }
        }));
        s.py_push(PyFrame::new("run.py", 10, "main"));
        s.py_push(PyFrame::new("model.py", 20, "forward"));
        s.with_op("aten::relu", |_s| Ok(())).unwrap();
        s.py_pop();
        s.with_op("aten::sum", |_s| Ok(())).unwrap();
        assert_eq!(*captured.lock(), vec![2, 1]);
    }

    #[test]
    fn backend_follows_runtime_vendor() {
        let mut rt = vendor_amd::HipContext::new(vec![DeviceSpec::mi300x()]);
        let s = Session::new(&mut rt);
        assert_eq!(s.backend().vendor, accel_sim::Vendor::Amd);
        assert!(!s.backend().fused_epilogue);
    }

    #[test]
    fn allocator_stats_visible() {
        let mut rt = CudaContext::new(vec![DeviceSpec::rtx_3060()]);
        let mut s = Session::new(&mut rt);
        let t = s.alloc_tensor(&[1024], DType::F32).unwrap();
        assert!(s.allocator_stats().allocated >= 4096);
        assert!(!s.allocator_segments().is_empty());
        s.free_tensor(&t);
        assert_eq!(s.allocator_stats().allocated, 0);
        assert!(s.allocator_stats().reserved > 0, "segments stay cached");
    }
}
