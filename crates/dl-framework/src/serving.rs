//! LLM inference serving: continuous batching over paged, managed KV
//! caches.
//!
//! Every other workload in this crate is a training iteration; this
//! module is the inference-*serving* regime the ROADMAP's north star
//! ("millions of users, heavy traffic") actually lives in. A seeded
//! request stream — deterministic arrival process, mixed prompt and
//! decode lengths — is sharded statically across 1–8 device lanes
//! (`request.id % lanes`) and each lane runs a continuous-batching
//! scheduler:
//!
//! * **Admission**: arrivals queue at their arrival step and are
//!   admitted in order as batch slots (`max_batch`) free up; the queue
//!   wait is part of the request's time-to-first-token.
//! * **Prefill**: an admitted request's prompt KV is written into
//!   **managed KV pages** allocated directly from the runtime's managed
//!   space (`malloc_managed`, so each page registers with the UVM
//!   residency model and unregisters when the conversation retires —
//!   real registration/teardown churn, not allocator cache reuse).
//!   TTFT is stamped when the prefill kernel completes.
//! * **Decode**: each step appends [`LmDims::kv_bytes_per_token`] to the
//!   request's cache (growing onto fresh pages as they fill) and
//!   launches an attention kernel that reads the request's *entire*
//!   cache — so a conversation paged out while it sat cold pays demand
//!   faults to come back, exactly the pricing
//!   `examples/uvm_oversubscription.rs` applies to training tensors.
//! * **Weights**: one shared read-only weight range per lane
//!   ([`LmDims::param_bytes`]), registered as a *shared* managed range
//!   owned by the lowest-id lane — sibling lanes read-duplicate it over
//!   the peer link, and once KV growth oversubscribes `budget_bytes`
//!   the evicted duplicates re-travel that link, so the peer curve
//!   climbs with offered load.
//!
//! **Latency accounting** is in virtual nanoseconds: each lane folds its
//! launches' simulated durations (UVM stall included — the engine adds
//! it to `LaunchRecord::end`) into a lane clock; TTFT is the clock delta
//! from arrival to prefill completion, and a decode-step sample is the
//! step's shared weight-read duration plus the request's own attention
//! duration.
//!
//! **Determinism**: lanes only touch their own requests and their own
//! session/engine, so the pooled schedule ([`serve`]) is byte-identical
//! to the lane-at-a-time reference ([`serve_sequential_reference`]) —
//! the same contract `train_iter_sequential_reference` pins for
//! training, extended here to the serving scheduler and pinned by
//! `tests/serving.rs`.

use crate::dtype::DType;
use crate::lane_exec;
use crate::models::transformer::LmDims;
use crate::parallel::{catch_lane, DeviceLane};
use accel_sim::{AccelError, AccessSpec, DeviceId, DevicePtr, Dim3, KernelBody, KernelDesc};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::atomic::Ordering;

/// The serving scenario: request mix, arrival process, batching limits
/// and the model served. Everything is seeded — the same config always
/// produces the same [`RequestTrace`] and therefore the same run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServingConfig {
    /// Seed for the request trace (arrivals, prompt/decode lengths).
    pub seed: u64,
    /// Total requests across all lanes.
    pub requests: usize,
    /// Mean scheduler steps between consecutive arrivals — the offered
    /// load knob. Gaps are drawn uniformly from `[0, 2·mean]`, so `0`
    /// means every request arrives at step 0 (peak load).
    pub mean_interarrival_steps: u64,
    /// Inclusive prompt-length range, tokens.
    pub prompt_tokens: (u32, u32),
    /// Inclusive decode-length range, tokens (≥ 1: a request that
    /// decodes nothing has no first token to time).
    pub decode_tokens: (u32, u32),
    /// Continuous-batching slots per lane; arrivals beyond this queue.
    pub max_batch: usize,
    /// Model dimensions: sizes the shared weight range and the
    /// per-token KV growth.
    pub dims: LmDims,
    /// KV dtype (serving engines typically cache in half precision).
    pub kv_dtype: DType,
    /// Tokens per managed KV page — the paging granularity of the cache.
    pub kv_page_tokens: u32,
}

impl ServingConfig {
    /// A small but oversubscribable scenario: ~8.4 MiB of weights,
    /// ≤ 768 KiB of KV per request, 64 requests. With `budget_bytes`
    /// around 4 MiB per device the KV growth of a loaded lane evicts
    /// cold conversations and weight pages alike.
    pub fn small() -> ServingConfig {
        ServingConfig {
            seed: 0x5eed_cafe,
            requests: 64,
            mean_interarrival_steps: 2,
            prompt_tokens: (32, 128),
            decode_tokens: (16, 64),
            max_batch: 8,
            dims: LmDims {
                d: 256,
                heads: 4,
                ffn: 1024,
                vocab: 4096,
                seq: 256,
                layers: 4,
            },
            kv_dtype: DType::F16,
            kv_page_tokens: 32,
        }
    }

    /// A deliberately tiny scenario for tests: small enough to run in
    /// milliseconds, still big enough to oversubscribe a sub-MiB budget.
    pub fn tiny() -> ServingConfig {
        ServingConfig {
            seed: 7,
            requests: 24,
            mean_interarrival_steps: 1,
            prompt_tokens: (8, 32),
            decode_tokens: (4, 16),
            max_batch: 4,
            dims: LmDims {
                d: 64,
                heads: 2,
                ffn: 128,
                vocab: 512,
                seq: 64,
                layers: 2,
            },
            kv_dtype: DType::F16,
            kv_page_tokens: 16,
        }
    }

    /// Managed bytes one KV page spans.
    pub fn kv_page_bytes(&self) -> u64 {
        u64::from(self.kv_page_tokens) * self.dims.kv_bytes_per_token(self.kv_dtype)
    }
}

/// One serving request of the seeded trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Request {
    /// Trace-global id; `id % lanes` is the lane assignment.
    pub id: u64,
    /// Scheduler step the request arrives at.
    pub arrival_step: u64,
    /// Prompt length, tokens.
    pub prompt_tokens: u32,
    /// Tokens to decode after prefill (≥ 1).
    pub decode_tokens: u32,
}

/// The full seeded request stream, in arrival order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestTrace {
    /// All requests, ascending `id` and non-decreasing `arrival_step`.
    pub requests: Vec<Request>,
}

/// Deterministic 64-bit LCG (Knuth's MMIX constants); the high 32 bits
/// are the sample. Good enough for a workload mix and fully portable.
fn lcg_next(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6_364_136_223_846_793_005)
        .wrapping_add(1_442_695_040_888_963_407);
    *state >> 32
}

/// Uniform sample in the inclusive range `[lo, hi]`.
fn lcg_range(state: &mut u64, lo: u64, hi: u64) -> u64 {
    debug_assert!(lo <= hi);
    lo + lcg_next(state) % (hi - lo + 1)
}

impl RequestTrace {
    /// Generates the seeded stream: a new trace from the same config is
    /// identical, byte for byte — the replay contract rests on this.
    pub fn generate(cfg: &ServingConfig) -> RequestTrace {
        let mut state = cfg.seed ^ 0x9e37_79b9_7f4a_7c15;
        // Warm the LCG so nearby seeds diverge immediately.
        lcg_next(&mut state);
        let mut step = 0u64;
        let requests = (0..cfg.requests as u64)
            .map(|id| {
                let gap = if cfg.mean_interarrival_steps == 0 {
                    0
                } else {
                    lcg_range(&mut state, 0, 2 * cfg.mean_interarrival_steps)
                };
                step += gap;
                Request {
                    id,
                    arrival_step: step,
                    prompt_tokens: lcg_range(
                        &mut state,
                        u64::from(cfg.prompt_tokens.0),
                        u64::from(cfg.prompt_tokens.1),
                    ) as u32,
                    decode_tokens: lcg_range(
                        &mut state,
                        u64::from(cfg.decode_tokens.0.max(1)),
                        u64::from(cfg.decode_tokens.1.max(1)),
                    ) as u32,
                }
            })
            .collect();
        RequestTrace { requests }
    }

    /// The static shard of the stream lane `lane_index` of `lanes`
    /// serves: every request with `id % lanes == lane_index`, in arrival
    /// order. Static assignment keeps lanes independent — the scheduling
    /// half of the byte-identity contract.
    pub fn lane_requests(&self, lane_index: usize, lanes: usize) -> Vec<Request> {
        self.requests
            .iter()
            .filter(|r| r.id % lanes as u64 == lane_index as u64)
            .copied()
            .collect()
    }
}

/// One lane's serving outcome: latency samples plus cache accounting.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LaneServing {
    /// Device the lane served on.
    pub device: DeviceId,
    /// Requests completed (always the lane's full shard on success).
    pub completed: u64,
    /// Scheduler steps the lane ran.
    pub steps: u64,
    /// Per-request time-to-first-token (queue wait + prefill), virtual
    /// ns, in admission order.
    pub ttft_ns: Vec<u64>,
    /// Per-decode-step latency samples (shared weight read + the
    /// request's own KV attention), virtual ns.
    pub decode_step_ns: Vec<u64>,
    /// Peak concurrent KV bytes resident in the lane's cache.
    pub kv_peak_bytes: u64,
    /// KV pages allocated (and freed) over the run — the churn the UVM
    /// registration path absorbed.
    pub kv_pages_allocated: u64,
}

/// Outcome of a serving run: one entry per lane, in lane order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServingRun {
    /// Per-lane outcomes, lane order.
    pub lanes: Vec<LaneServing>,
}

impl ServingRun {
    /// Requests completed across all lanes.
    pub fn completed(&self) -> u64 {
        self.lanes.iter().map(|l| l.completed).sum()
    }

    /// All TTFT samples, sorted ascending (percentile-ready).
    pub fn ttft_sorted(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .lanes
            .iter()
            .flat_map(|l| &l.ttft_ns)
            .copied()
            .collect();
        v.sort_unstable();
        v
    }

    /// All decode-step samples, sorted ascending (percentile-ready).
    pub fn decode_sorted(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .lanes
            .iter()
            .flat_map(|l| &l.decode_step_ns)
            .copied()
            .collect();
        v.sort_unstable();
        v
    }
}

/// An in-flight conversation: its request, arrival stamp, and paged KV.
struct Slot {
    req: Request,
    arrive_ns: u64,
    /// Managed KV pages, oldest first.
    pages: Vec<(DevicePtr, u64)>,
    /// Bytes of cache currently in use (≤ pages × page bytes).
    kv_bytes: u64,
    decoded: u32,
}

/// Runs one lane's continuous-batching loop over its request shard.
fn serve_lane(
    lane: &mut DeviceLane<'_>,
    requests: &[Request],
    cfg: &ServingConfig,
    weight_owner: DeviceId,
) -> Result<LaneServing, AccelError> {
    let device = lane.device();
    let s = &mut lane.session;
    let kv_per_token = cfg.dims.kv_bytes_per_token(cfg.kv_dtype);
    let page_bytes = cfg.kv_page_bytes();

    // The shared weight range is the lane's first allocation, so it
    // lands at the same managed address on every lane (fresh per-lane
    // engines allocate in lockstep) and the shared registrations
    // rendezvous in the coherence directory; the lowest-id lane owns the
    // home copy, siblings read-duplicate over the peer link. Sessions
    // without UVM skip the registration and serve out of plain memory.
    let weight_elems = (cfg.dims.param_bytes(DType::F32) / DType::F32.size_bytes()) as usize;
    let weights = s.alloc_tensor(&[weight_elems], DType::F32)?;
    if let Some(res) = s.runtime_mut().residency_mut() {
        res.register_shared(weights.ptr.addr(), weights.bytes, weight_owner);
    }

    let mut out = LaneServing {
        device,
        completed: 0,
        steps: 0,
        ttft_ns: Vec::new(),
        decode_step_ns: Vec::new(),
        kv_peak_bytes: 0,
        kv_pages_allocated: 0,
    };
    let run =
        |s: &mut crate::session::Session<'_>, out: &mut LaneServing| -> Result<(), AccelError> {
            let mut clock_ns = 0u64;
            let mut kv_live = 0u64;
            let mut pending: VecDeque<Slot> = VecDeque::new();
            let mut active: Vec<Slot> = Vec::new();
            let mut next_arrival = 0usize;
            let total = requests.len() as u64;

            let mut step = 0u64;
            while out.completed < total {
                // Arrivals stamp their clock at their arrival step whether or
                // not a slot is free — the queue wait belongs to TTFT.
                while next_arrival < requests.len() && requests[next_arrival].arrival_step <= step {
                    pending.push_back(Slot {
                        req: requests[next_arrival],
                        arrive_ns: clock_ns,
                        pages: Vec::new(),
                        kv_bytes: 0,
                        decoded: 0,
                    });
                    next_arrival += 1;
                }
                let mut admitted: Vec<Slot> = Vec::new();
                while active.len() + admitted.len() < cfg.max_batch && !pending.is_empty() {
                    admitted.push(pending.pop_front().expect("checked non-empty"));
                }

                if admitted.is_empty() && active.is_empty() {
                    // Idle step: nothing runs, no time passes; the next
                    // arrival defines the next interesting step.
                    if next_arrival < requests.len() {
                        step = requests[next_arrival].arrival_step;
                        continue;
                    }
                    break; // defensive: completed-count loop guard covers this
                }

                // One shared weight read per step — the batch's matmul
                // traffic. Every token produced this step waits on it.
                let weights_rec = s.launch(
                    KernelDesc::new("serving_weights_read", Dim3::linear(32), Dim3::linear(128))
                        .arg(weights.ptr, weights.bytes)
                        .body(
                            KernelBody::default()
                                .access(AccessSpec::load(0, weights.bytes))
                                .with_flops(weights.bytes / 2),
                        ),
                )?;
                let weights_ns = weights_rec.end - weights_rec.start;
                clock_ns += weights_ns;

                // Prefill the admissions, in queue order.
                for mut slot in admitted {
                    let prompt_bytes = u64::from(slot.req.prompt_tokens) * kv_per_token;
                    grow_kv(s, &mut slot, prompt_bytes, page_bytes, &mut kv_live, out)?;
                    let mut body = KernelBody::default()
                        .with_flops(u64::from(slot.req.prompt_tokens) * prompt_bytes);
                    for (i, &(_, used)) in slot.pages.iter().enumerate() {
                        body = body.access(AccessSpec::store(i, used));
                    }
                    let mut desc =
                        KernelDesc::new("serving_prefill", Dim3::linear(8), Dim3::linear(128));
                    for &(ptr, _) in &slot.pages {
                        desc = desc.arg(ptr, page_bytes);
                    }
                    let rec = s.launch(desc.body(body))?;
                    clock_ns += rec.end - rec.start;
                    out.ttft_ns.push(clock_ns - slot.arrive_ns);
                    active.push(slot);
                }

                // Decode one token per active conversation, admission order.
                // `retain`-style manual loop so retirement can free pages.
                let mut i = 0;
                while i < active.len() {
                    let slot = &mut active[i];
                    grow_kv(s, slot, kv_per_token, page_bytes, &mut kv_live, out)?;
                    // Attention reads the whole cache — cold pages of a
                    // conversation that sat evicted fault back in here — and
                    // appends this token's KV to the newest page.
                    let mut body = KernelBody::default().with_flops(slot.kv_bytes);
                    for (j, &(_, used)) in slot.pages.iter().enumerate() {
                        body = body.access(AccessSpec::load(j, used));
                    }
                    let last = slot.pages.len() - 1;
                    body = body.access(AccessSpec::store(last, kv_per_token));
                    let mut desc =
                        KernelDesc::new("serving_decode_attn", Dim3::linear(4), Dim3::linear(128));
                    for &(ptr, _) in &slot.pages {
                        desc = desc.arg(ptr, page_bytes);
                    }
                    let rec = s.launch(desc.body(body))?;
                    let attn_ns = rec.end - rec.start;
                    clock_ns += attn_ns;
                    out.decode_step_ns.push(weights_ns + attn_ns);
                    slot.decoded += 1;
                    if slot.decoded >= slot.req.decode_tokens {
                        // Conversation over: tear the cache down for real —
                        // every page unregisters from the residency model.
                        let slot = active.remove(i);
                        for (ptr, _) in slot.pages {
                            s.runtime_mut().free(ptr)?;
                        }
                        kv_live -= slot.kv_bytes;
                        out.completed += 1;
                    } else {
                        i += 1;
                    }
                }
                step += 1;
                out.steps = step;
            }
            Ok(())
        };
    let result = run(s, &mut out);
    if let Some(res) = s.runtime_mut().residency_mut() {
        res.unregister_shared(weights.ptr.addr());
    }
    s.free_tensor(&weights);
    result?;
    Ok(out)
}

/// Grows a slot's paged cache by `bytes`, allocating fresh managed pages
/// as the current one fills. Pages register with the residency model at
/// allocation (the managed-malloc path) and carry their used-byte count
/// for access sizing.
fn grow_kv(
    s: &mut crate::session::Session<'_>,
    slot: &mut Slot,
    bytes: u64,
    page_bytes: u64,
    kv_live: &mut u64,
    out: &mut LaneServing,
) -> Result<(), AccelError> {
    let mut remaining = bytes;
    while remaining > 0 {
        let room = slot.pages.last().map_or(0, |&(_, used)| page_bytes - used);
        if room == 0 {
            let ptr = s.runtime_mut().malloc_managed(page_bytes)?;
            slot.pages.push((ptr, 0));
            out.kv_pages_allocated += 1;
            continue;
        }
        let take = room.min(remaining);
        let (_, used) = slot.pages.last_mut().expect("room > 0 implies a page");
        *used += take;
        remaining -= take;
    }
    slot.kv_bytes += bytes;
    *kv_live += bytes;
    out.kv_peak_bytes = out.kv_peak_bytes.max(*kv_live);
    Ok(())
}

/// Serves the seeded stream on the bounded lane pool — the production
/// schedule. Requests shard statically (`id % lanes`); at most the
/// lanes' pool limit workers are live at once.
///
/// # Errors
///
/// Propagates allocation/launch failures; a panicking lane surfaces as
/// [`AccelError::LanePanic`] for its device. Requires ≥ 1 lane.
pub fn serve(lanes: &mut [DeviceLane<'_>], cfg: &ServingConfig) -> Result<ServingRun, AccelError> {
    dispatch(lanes, cfg, true)
}

/// The lane-at-a-time reference schedule: same shards, same per-lane
/// kernel streams, one lane after another on the calling thread. A
/// pooled [`serve`] of the same config must produce a byte-identical
/// [`ServingRun`] *and* a byte-identical session `MergedReport` — the
/// serving replay gate.
///
/// # Errors
///
/// As [`serve`].
pub fn serve_sequential_reference(
    lanes: &mut [DeviceLane<'_>],
    cfg: &ServingConfig,
) -> Result<ServingRun, AccelError> {
    dispatch(lanes, cfg, false)
}

fn dispatch(
    lanes: &mut [DeviceLane<'_>],
    cfg: &ServingConfig,
    pooled: bool,
) -> Result<ServingRun, AccelError> {
    if lanes.is_empty() {
        return Err(AccelError::Config(
            "serving needs at least one device lane".into(),
        ));
    }
    let n = lanes.len();
    let trace = RequestTrace::generate(cfg);
    let weight_owner = lanes
        .iter()
        .map(DeviceLane::device)
        .min()
        .expect("lane count checked above");
    let shards: Vec<Vec<Request>> = (0..n).map(|i| trace.lane_requests(i, n)).collect();

    let results: Result<Vec<LaneServing>, AccelError> = if pooled {
        let limit = lanes
            .iter()
            .map(DeviceLane::pool_limit)
            .find(|&l| l > 0)
            .unwrap_or(0);
        let tasks: Vec<lane_exec::PoolTask<'_, LaneServing>> = lanes
            .iter_mut()
            .zip(&shards)
            .map(|(lane, shard)| lane_exec::PoolTask {
                device: lane.device(),
                run: Box::new(move || serve_lane(lane, shard, cfg, weight_owner)),
            })
            .collect();
        let run = lane_exec::run_pool(limit, tasks, None);
        if let Some(watermark) = lanes.iter().find_map(DeviceLane::pool_watermark) {
            watermark.fetch_max(run.high_water, Ordering::AcqRel);
        }
        run.results.into_iter().collect()
    } else {
        lanes
            .iter_mut()
            .zip(&shards)
            .map(|(lane, shard)| {
                let device = lane.device();
                catch_lane(device, || serve_lane(lane, shard, cfg, weight_owner))
            })
            .collect()
    };
    Ok(ServingRun { lanes: results? })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_seed_deterministic_and_seed_sensitive() {
        let cfg = ServingConfig::tiny();
        let a = RequestTrace::generate(&cfg);
        let b = RequestTrace::generate(&cfg);
        assert_eq!(a, b, "same seed, same trace");
        let other = ServingConfig {
            seed: cfg.seed + 1,
            ..cfg.clone()
        };
        assert_ne!(
            a,
            RequestTrace::generate(&other),
            "different seed, different trace"
        );
        assert_eq!(a.requests.len(), cfg.requests);
        for w in a.requests.windows(2) {
            assert!(w[0].arrival_step <= w[1].arrival_step, "arrivals ordered");
        }
        for r in &a.requests {
            assert!((cfg.prompt_tokens.0..=cfg.prompt_tokens.1).contains(&r.prompt_tokens));
            assert!((cfg.decode_tokens.0..=cfg.decode_tokens.1).contains(&r.decode_tokens));
            assert!(r.decode_tokens >= 1);
        }
    }

    #[test]
    fn lane_shards_partition_the_trace() {
        let cfg = ServingConfig::tiny();
        let trace = RequestTrace::generate(&cfg);
        for lanes in [1usize, 2, 3, 4] {
            let total: usize = (0..lanes)
                .map(|i| trace.lane_requests(i, lanes).len())
                .sum();
            assert_eq!(total, cfg.requests, "lanes={lanes}");
            for i in 0..lanes {
                for r in trace.lane_requests(i, lanes) {
                    assert_eq!(r.id % lanes as u64, i as u64);
                }
            }
        }
    }

    #[test]
    fn kv_page_arithmetic() {
        let cfg = ServingConfig::tiny();
        // tiny: 2 layers × d=64 × 2 (K+V) × 2 bytes (F16) = 512 B/token.
        assert_eq!(cfg.dims.kv_bytes_per_token(cfg.kv_dtype), 512);
        assert_eq!(cfg.kv_page_bytes(), 16 * 512);
        assert!(cfg.dims.param_bytes(DType::F32) > 0);
    }
}
