//! Framework-level callbacks.
//!
//! Reproduces PyTorch's observer surface that PASTA hooks (§IV-A):
//! `c10::reportMemoryUsage` → [`FrameworkEvent::TensorAlloc`] /
//! [`FrameworkEvent::TensorFree`]; `at::RecordFunctionCallback` →
//! [`FrameworkEvent::OpStart`] / [`FrameworkEvent::OpEnd`]. The annotation
//! events ([`FrameworkEvent::RegionStart`] …) carry the paper's
//! `pasta.start()`/`pasta.stop()` range markers (§III-F1).

use crate::pycall::PyFrame;
use crate::tensor::TensorId;
use accel_sim::{DeviceId, Symbol};
use serde::{Deserialize, Serialize};

/// Which pass of training is running (Table II "Forward/Backward Boundary").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Pass {
    /// Forward pass.
    Forward,
    /// Backward pass.
    Backward,
    /// Optimizer step.
    Optimizer,
}

/// A high-level DL framework event (paper Table II, bottom section).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FrameworkEvent {
    /// An operator began executing (`at::RecordFunction` start).
    OpStart {
        /// Operator sequence number.
        seq: u64,
        /// Operator name, e.g. `"aten::conv2d"`.
        name: String,
        /// Device the operator targets.
        device: DeviceId,
        /// Python-side stack at the call site.
        py_stack: Vec<PyFrame>,
    },
    /// The operator finished (`at::RecordFunction` end).
    OpEnd {
        /// Operator sequence number.
        seq: u64,
        /// Operator name.
        name: String,
        /// Device.
        device: DeviceId,
    },
    /// A tensor was allocated from the caching allocator
    /// (`c10::reportMemoryUsage` with positive delta).
    TensorAlloc {
        /// Tensor id.
        tensor: TensorId,
        /// Base address within a pool segment.
        addr: u64,
        /// Tensor bytes (positive).
        bytes: u64,
        /// Allocator's total live bytes after this event.
        allocated_total: u64,
        /// Allocator's reserved (segment) bytes after this event.
        reserved_total: u64,
        /// Device.
        device: DeviceId,
    },
    /// A tensor was released back to the pool.
    TensorFree {
        /// Tensor id.
        tensor: TensorId,
        /// Base address.
        addr: u64,
        /// Tensor bytes (positive; the *event handler* normalizes vendors
        /// that report deltas).
        bytes: u64,
        /// Allocator's total live bytes after this event.
        allocated_total: u64,
        /// Allocator's reserved bytes after this event.
        reserved_total: u64,
        /// Device.
        device: DeviceId,
    },
    /// A named layer boundary (requires `pasta` annotations in the paper).
    LayerBoundary {
        /// Layer name, e.g. `"encoder.layer.7"`, interned.
        name: Symbol,
        /// Layer ordinal within the model.
        index: usize,
        /// Device.
        device: DeviceId,
    },
    /// Forward/backward/optimizer pass boundary.
    PassBoundary {
        /// Which pass begins here.
        pass: Pass,
        /// Device.
        device: DeviceId,
    },
    /// `pasta.start()`-style custom region annotation.
    RegionStart {
        /// User label, interned.
        label: Symbol,
        /// Device.
        device: DeviceId,
    },
    /// `pasta.stop()`-style region end.
    RegionEnd {
        /// User label, interned.
        label: Symbol,
        /// Device.
        device: DeviceId,
    },
}

/// A framework-event subscriber.
pub type FrameworkSubscriber = Box<dyn FnMut(&FrameworkEvent) + Send>;

/// Registry of framework-event subscribers (the analogue of
/// `at::addGlobalCallback`).
#[derive(Default)]
pub struct CallbackRegistry {
    subscribers: Vec<FrameworkSubscriber>,
}

impl std::fmt::Debug for CallbackRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CallbackRegistry")
            .field("subscribers", &self.subscribers.len())
            .finish()
    }
}

impl CallbackRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        CallbackRegistry::default()
    }

    /// Adds a subscriber.
    pub fn subscribe(&mut self, subscriber: FrameworkSubscriber) {
        self.subscribers.push(subscriber);
    }

    /// Number of subscribers.
    pub fn len(&self) -> usize {
        self.subscribers.len()
    }

    /// True when nobody is listening.
    pub fn is_empty(&self) -> bool {
        self.subscribers.is_empty()
    }

    /// Delivers an event to every subscriber, in registration order.
    pub fn emit(&mut self, event: &FrameworkEvent) {
        for s in &mut self.subscribers {
            s(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use std::sync::Arc;

    #[test]
    fn registry_delivers_in_order() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut reg = CallbackRegistry::new();
        for i in 0..3 {
            let log = Arc::clone(&log);
            reg.subscribe(Box::new(move |_e| log.lock().push(i)));
        }
        assert_eq!(reg.len(), 3);
        reg.emit(&FrameworkEvent::PassBoundary {
            pass: Pass::Forward,
            device: DeviceId(0),
        });
        assert_eq!(*log.lock(), vec![0, 1, 2]);
    }

    #[test]
    fn tensor_events_carry_allocator_totals() {
        let e = FrameworkEvent::TensorAlloc {
            tensor: TensorId(1),
            addr: 0x100,
            bytes: 512,
            allocated_total: 512,
            reserved_total: 2 << 20,
            device: DeviceId(0),
        };
        if let FrameworkEvent::TensorAlloc {
            allocated_total,
            reserved_total,
            ..
        } = e
        {
            assert!(reserved_total >= allocated_total, "pooling reserves more");
        }
    }

    #[test]
    fn empty_registry_is_fine() {
        let mut reg = CallbackRegistry::new();
        assert!(reg.is_empty());
        reg.emit(&FrameworkEvent::RegionStart {
            label: "x".into(),
            device: DeviceId(0),
        });
    }
}
