//! # dl-framework ("tensorlite") — a simulated deep-learning framework
//!
//! The paper's DL-framework integration (§III-E, §IV-A) hooks PyTorch's
//! `c10::reportMemoryUsage` and `at::RecordFunction` callbacks and observes
//! the pool-based caching allocator that makes memory *objects* differ from
//! *tensors* — the mismatch that motivates tensor-aware UVM prefetching
//! (§V-C1). No PyTorch exists in this environment, so this crate is a
//! faithful miniature:
//!
//! * [`tensor`] — shaped, typed tensors backed by allocator blocks;
//! * [`alloc`] — a pool/segment/block **caching allocator** modeled on
//!   PyTorch's `CUDACachingAllocator`: small (<1 MiB) allocations carved
//!   from 2 MiB segments, large ones from 20 MiB segments, splitting,
//!   coalescing, and reuse — so one `cudaMalloc`'d object holds many
//!   tensors with different lifetimes;
//! * [`callbacks`] — `reportMemoryUsage`/`RecordFunction`-style framework
//!   events ([`FrameworkEvent`]) with a subscriber registry;
//! * [`ops`] — operators that launch kernels with realistic names
//!   (`ampere_sgemm_128x64_tn`, `at::native::im2col_kernel`, …), grid
//!   shapes and memory traffic derived from tensor shapes;
//! * [`layers`] + [`models`] — the six paper models (Table IV): AlexNet,
//!   ResNet-18/34, GPT-2, BERT, Whisper-small, each with forward and
//!   backward passes;
//! * [`pycall`] — the simulated Python frame stack + native frames that
//!   feed PASTA's cross-layer call stacks (Fig. 4);
//! * [`parallel`] — data/tensor/pipeline-parallel training of Megatron
//!   GPT-2 345M on two devices (Fig. 15);
//! * [`backend`] — CUDA-vs-HIP operator decomposition differences (kernel
//!   fusion, workspace sizing) behind the NVIDIA/AMD contrasts of Fig. 14.
//!
//! Everything is driven through [`session::Session`], which holds the
//! allocator and callback registry over any [`accel_sim::DeviceRuntime`] —
//! the same model code runs on the CUDA and HIP facades.

pub mod alloc;
pub mod backend;
pub mod callbacks;
pub mod dtype;
pub mod lane_exec;
pub mod layers;
pub mod models;
pub mod ops;
pub mod parallel;
pub mod pycall;
pub mod runner;
pub mod serving;
pub mod session;
pub mod tensor;

pub use alloc::{AllocatorConfig, AllocatorStats, CachingAllocator};
pub use backend::BackendProfile;
pub use callbacks::{CallbackRegistry, FrameworkEvent, FrameworkSubscriber};
pub use dtype::DType;
pub use models::{ModelZoo, RunKind};
pub use pycall::{CrossLayerStack, NativeFrame, PyFrame, PyStack};
pub use serving::{LaneServing, Request, RequestTrace, ServingConfig, ServingRun};
pub use session::Session;
pub use tensor::{Tensor, TensorId};
