//! Bounded lane executor: multiplexes per-device lane tasks onto a
//! fixed-size worker pool.
//!
//! Before the scale-out rework every parallel surface spawned one OS
//! thread per device lane — fine for the paper's 2-GPU experiments,
//! hopeless at 256 simulated devices (2N threads once the per-device
//! spine drainers are counted). [`run_pool`] replaces thread-per-lane
//! everywhere lanes are *independent*: at most `max_threads` worker
//! threads are live at once, each seeded with one lane and then claiming
//! further lanes from a shared queue in lane order.
//!
//! **Fault containment is preserved per lane, not per thread**: every
//! task runs under its own `catch_unwind`, so a panicking lane becomes a
//! typed [`AccelError::LanePanic`] attributed to *its* device and the
//! worker thread survives to run the remaining lanes.
//!
//! **Thread naming**: worker threads are named `lane-dev{N}` after the
//! device of the first lane they run (thread names are fixed at spawn;
//! a worker that later multiplexes onto other lanes keeps its name, but
//! the `LanePanic` it reports always carries the correct device). With
//! `max_threads >= lanes` every lane runs on a thread bearing its own
//! device number — the configuration the fault-containment name test
//! pins.
//!
//! **Idle duty**: a worker that finds the queue empty while siblings are
//! still running calls the caller's `idle` hook in a backoff loop — this
//! is how `run_parallel_each` folds spine-drainer duty into the pool
//! instead of spawning one drainer thread per device (see
//! `pasta_core::spine`). Emitters that outrun the idle drainers fall
//! back to the spine's lossless producer-side drain, so a pool with no
//! idle capacity costs correctness nothing. The hook is contained like a
//! lane: a panicking `idle` (e.g. a spine `try_drain` tripping a
//! poisoned lock during lane salvage) is caught, the hook is disarmed
//! for the remainder of that pool, and the first payload is reported in
//! [`PoolRun::idle_panic`] — it never unwinds the scoped worker, so it
//! cannot abort sibling lanes.
//!
//! **Scheduling caveat**: lanes on a bounded pool must not block on each
//! other — with fewer workers than lanes, a lane waiting for a lane that
//! has not been scheduled yet deadlocks. Cross-lane protocols (the
//! pipeline-parallel activation handoff) keep their dedicated
//! thread-per-lane scope for exactly this reason.

pub use accel_sim::resolve_threads;
use accel_sim::{panic_message, AccelError, DeviceId};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// One lane's unit of work: the device it drives (for panic attribution
/// and worker naming) and the closure that drives it.
pub struct PoolTask<'a, T> {
    /// Device the task's lane is pinned to.
    pub device: DeviceId,
    /// The lane's work; runs exactly once, contained by `catch_unwind`.
    pub run: Box<dyn FnOnce() -> Result<T, AccelError> + Send + 'a>,
}

impl<T> std::fmt::Debug for PoolTask<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolTask")
            .field("device", &self.device)
            .finish()
    }
}

/// High-water mark of concurrently *running* pool tasks since the last
/// [`reset_pool_high_water`], **across every pool in the process** — a
/// cross-pool diagnostic only. Two pools running at once (concurrent
/// sessions, parallel tests) both feed it, so a reading can exceed any
/// single pool's budget; anything that pins "at most `max_lane_threads`
/// workers" must use the per-pool [`PoolRun::high_water`] instead.
static POOL_HIGH_WATER: AtomicUsize = AtomicUsize::new(0);

/// The peak number of lane tasks that ran concurrently since the last
/// reset, across every pool in the process. Cross-pool diagnostic: with
/// two pools live at once this exceeds either pool's own budget — use
/// [`PoolRun::high_water`] for per-pool assertions.
pub fn pool_high_water() -> usize {
    POOL_HIGH_WATER.load(Ordering::Acquire)
}

/// Resets [`pool_high_water`] to zero.
pub fn reset_pool_high_water() {
    POOL_HIGH_WATER.store(0, Ordering::Release);
}

/// What one [`run_pool`] call produced: the per-task results plus the
/// pool's own concurrency and fault diagnostics.
#[derive(Debug)]
pub struct PoolRun<T> {
    /// Per-task results, **in task order** (lane order everywhere this
    /// is used), regardless of which worker ran what.
    pub results: Vec<Result<T, AccelError>>,
    /// Peak number of *this pool's* tasks that ran concurrently — the
    /// per-pool counterpart of the process-global [`pool_high_water`],
    /// immune to contamination from other pools running in parallel.
    pub high_water: usize,
    /// Payload of the first `idle`-hook panic, if any. The panic was
    /// contained and the hook disarmed for the remainder of the pool
    /// (idle workers fell back to plain backoff); lane results are
    /// unaffected.
    pub idle_panic: Option<String>,
}

/// Runs every task on a bounded worker pool and returns the per-task
/// results **in task order** (which is lane order everywhere this is
/// used — error precedence stays deterministic regardless of which
/// worker ran what), together with the pool's own high-water mark.
///
/// At most `resolve_threads(max_threads).min(tasks.len())` worker
/// threads exist at any moment. Worker `w` is seeded with task `w` and
/// named `lane-dev{N}` after that task's device; exhausted workers claim
/// remaining tasks in index order, then run `idle` (if any) until every
/// task has finished — `idle` returns whether it found work, driving a
/// yield-then-sleep backoff.
///
/// A panicking task is contained at the task boundary and surfaces as
/// [`AccelError::LanePanic`] for its device; remaining tasks still run.
/// A panicking `idle` hook is likewise contained: the hook is disarmed
/// for the rest of this pool and the first payload is reported in
/// [`PoolRun::idle_panic`] instead of unwinding the pool scope.
pub fn run_pool<'a, T: Send>(
    max_threads: usize,
    tasks: Vec<PoolTask<'a, T>>,
    idle: Option<&(dyn Fn() -> bool + Sync)>,
) -> PoolRun<T> {
    let n = tasks.len();
    if n == 0 {
        return PoolRun {
            results: Vec::new(),
            high_water: 0,
            idle_panic: None,
        };
    }
    let workers = resolve_threads(max_threads).min(n);
    let devices: Vec<DeviceId> = tasks.iter().map(|t| t.device).collect();
    let slots: Vec<Mutex<Option<PoolTask<'a, T>>>> =
        tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<Result<T, AccelError>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(workers);
    let done = AtomicUsize::new(0);
    let live = AtomicUsize::new(0);
    let pool_high = AtomicUsize::new(0);
    let idle_armed = AtomicBool::new(true);
    let idle_panic: Mutex<Option<String>> = Mutex::new(None);

    let run_task = |i: usize| {
        // A poisoned slot mutex is unreachable: the take happens before
        // any user code runs, so no panic can unwind through the lock.
        let Ok(Some(task)) = slots[i].lock().map(|mut s| s.take()) else {
            return;
        };
        let device = task.device;
        let concurrent = live.fetch_add(1, Ordering::SeqCst) + 1;
        pool_high.fetch_max(concurrent, Ordering::SeqCst);
        POOL_HIGH_WATER.fetch_max(concurrent, Ordering::SeqCst);
        let run = task.run;
        let result = catch_unwind(AssertUnwindSafe(run)).unwrap_or_else(|payload| {
            Err(AccelError::LanePanic {
                device,
                payload: panic_message(payload.as_ref()),
            })
        });
        live.fetch_sub(1, Ordering::SeqCst);
        if let Ok(mut slot) = results[i].lock() {
            *slot = Some(result);
        }
        done.fetch_add(1, Ordering::Release);
    };

    std::thread::scope(|scope| {
        for (w, seed_device) in devices.iter().enumerate().take(workers) {
            let run_task = &run_task;
            let (next, done) = (&next, &done);
            let (idle_armed, idle_panic) = (&idle_armed, &idle_panic);
            // Thread spawning fails only on resource exhaustion, where
            // the unnamed `Scope::spawn` this replaces would panic too.
            std::thread::Builder::new()
                .name(format!("lane-dev{}", seed_device.index()))
                .spawn_scoped(scope, move || {
                    run_task(w);
                    loop {
                        let claim = next.fetch_add(1, Ordering::SeqCst);
                        if claim < n {
                            run_task(claim);
                            continue;
                        }
                        // Queue exhausted: fold idle duty (spine
                        // draining) into this worker until the last
                        // sibling finishes its lane. The hook runs under
                        // its own catch_unwind — a panic here would
                        // otherwise unwind the scoped worker and abort
                        // the whole pool scope, taking sibling lanes
                        // down with it. First panic disarms the hook for
                        // this pool; the spine's producer-side drain
                        // keeps the path lossless without it.
                        let Some(idle) = idle else { break };
                        let mut idle_beats = 0u32;
                        while done.load(Ordering::Acquire) < n {
                            let found = idle_armed.load(Ordering::Acquire)
                                && match catch_unwind(AssertUnwindSafe(idle)) {
                                    Ok(found) => found,
                                    Err(payload) => {
                                        idle_armed.store(false, Ordering::Release);
                                        if let Ok(mut slot) = idle_panic.lock() {
                                            slot.get_or_insert_with(|| {
                                                panic_message(payload.as_ref())
                                            });
                                        }
                                        false
                                    }
                                };
                            if found {
                                idle_beats = 0;
                            } else {
                                idle_beats = idle_beats.saturating_add(1);
                                if idle_beats < 16 {
                                    std::thread::yield_now();
                                } else {
                                    std::thread::sleep(std::time::Duration::from_micros(50));
                                }
                            }
                        }
                        break;
                    }
                })
                .expect("spawn lane worker");
        }
    });

    let results = results
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            // Every index in 0..n is claimed exactly once (seeds cover
            // 0..workers, the counter covers the rest) and panics are
            // contained, so an unfilled slot is defensive cover only.
            slot.into_inner().ok().flatten().unwrap_or_else(|| {
                Err(AccelError::LanePanic {
                    device: devices[i],
                    payload: "lane task never ran (worker lost)".into(),
                })
            })
        })
        .collect();
    PoolRun {
        results,
        high_water: pool_high.into_inner(),
        idle_panic: idle_panic
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task<'a>(
        device: u32,
        run: impl FnOnce() -> Result<u32, AccelError> + Send + 'a,
    ) -> PoolTask<'a, u32> {
        PoolTask {
            device: DeviceId(device),
            run: Box::new(run),
        }
    }

    #[test]
    fn results_stay_in_task_order_at_every_pool_size() {
        for threads in [1, 2, 3, 16] {
            let tasks: Vec<PoolTask<'_, u32>> =
                (0..7).map(|i| task(i, move || Ok(i * 10))).collect();
            let out = run_pool(threads, tasks, None);
            let values: Vec<u32> = out.results.into_iter().map(|r| r.unwrap()).collect();
            assert_eq!(values, vec![0, 10, 20, 30, 40, 50, 60], "threads={threads}");
        }
    }

    #[test]
    fn panic_is_contained_and_attributed_and_siblings_run() {
        let tasks = vec![
            task(0, || Ok(1)),
            task(1, || panic!("fault-injection: pooled lane dies")),
            task(2, || Ok(3)),
        ];
        let out = run_pool(1, tasks, None).results;
        assert_eq!(*out[0].as_ref().unwrap(), 1);
        match &out[1] {
            Err(AccelError::LanePanic { device, payload }) => {
                assert_eq!(*device, DeviceId(1));
                assert!(payload.contains("pooled lane dies"));
            }
            other => panic!("expected LanePanic, got {other:?}"),
        }
        assert_eq!(*out[2].as_ref().unwrap(), 3);
    }

    #[test]
    fn concurrency_never_exceeds_the_budget() {
        use std::sync::atomic::AtomicUsize;
        let cur = AtomicUsize::new(0);
        let max = AtomicUsize::new(0);
        let tasks: Vec<PoolTask<'_, u32>> = (0..12)
            .map(|i| {
                let (cur, max) = (&cur, &max);
                task(i, move || {
                    let c = cur.fetch_add(1, Ordering::SeqCst) + 1;
                    max.fetch_max(c, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(1));
                    cur.fetch_sub(1, Ordering::SeqCst);
                    Ok(i)
                })
            })
            .collect();
        let out = run_pool(3, tasks, None);
        assert!(out.results.iter().all(Result::is_ok));
        assert!(max.load(Ordering::SeqCst) <= 3, "budget exceeded");
        assert!(
            (1..=3).contains(&out.high_water),
            "per-pool high water {} must stay within the budget",
            out.high_water
        );
        assert!(
            out.high_water <= max.load(Ordering::SeqCst),
            "pool high water cannot exceed what the tasks themselves observed"
        );
    }

    /// The per-pool high-water mark is immune to other pools running
    /// concurrently — the process-global `pool_high_water` is not, which
    /// is exactly why the assertion surface moved.
    #[test]
    fn per_pool_high_water_is_uncontaminated_by_concurrent_pools() {
        let runs: Vec<PoolRun<u32>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    scope.spawn(|| {
                        let tasks: Vec<PoolTask<'_, u32>> = (0..6)
                            .map(|i| {
                                task(i, move || {
                                    std::thread::sleep(std::time::Duration::from_millis(2));
                                    Ok(i)
                                })
                            })
                            .collect();
                        run_pool(2, tasks, None)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for run in &runs {
            assert!(run.results.iter().all(Result::is_ok));
            assert!(
                (1..=2).contains(&run.high_water),
                "pool high water {} leaked across pools",
                run.high_water
            );
        }
    }

    #[test]
    fn idle_hook_runs_while_stragglers_finish() {
        let idle_calls = AtomicUsize::new(0);
        let tasks = vec![
            task(0, || {
                std::thread::sleep(std::time::Duration::from_millis(5));
                Ok(0)
            }),
            task(1, || Ok(1)),
        ];
        let hook = || {
            idle_calls.fetch_add(1, Ordering::SeqCst);
            false
        };
        let out = run_pool(2, tasks, Some(&hook));
        assert!(out.results.iter().all(Result::is_ok));
        assert!(
            idle_calls.load(Ordering::SeqCst) > 0,
            "idle worker never drained"
        );
        assert_eq!(out.idle_panic, None);
    }

    /// Regression (ISSUE 10): a panicking idle hook used to unwind the
    /// scoped worker and abort the whole pool scope, killing sibling
    /// lanes that were mid-flight. Now the panic is contained, the hook
    /// is disarmed for the rest of the pool, and every lane result
    /// survives.
    #[test]
    fn idle_hook_panic_is_contained_and_disarms_the_hook() {
        let idle_calls = AtomicUsize::new(0);
        let tasks = vec![
            task(0, || {
                std::thread::sleep(std::time::Duration::from_millis(10));
                Ok(0)
            }),
            task(1, || Ok(1)),
        ];
        let hook = || -> bool {
            idle_calls.fetch_add(1, Ordering::SeqCst);
            panic!("fault-injection: idle drain dies");
        };
        let out = run_pool(2, tasks, Some(&hook));
        assert!(
            out.results.iter().all(Result::is_ok),
            "lane results must survive an idle-hook panic: {:?}",
            out.results
        );
        assert_eq!(
            idle_calls.load(Ordering::SeqCst),
            1,
            "first panic must disarm the hook for the rest of the pool"
        );
        let payload = out.idle_panic.expect("idle panic reported");
        assert!(payload.contains("idle drain dies"), "{payload}");
    }
}
