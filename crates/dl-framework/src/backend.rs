//! Backend profiles: CUDA/cuDNN versus HIP/MIOpen operator decomposition.
//!
//! The paper's Fig. 14 observes that "on the NVIDIA GPU, fewer
//! allocation/deallocation events are issued, but peak memory usage is
//! slightly higher than on the AMD GPU", attributing the difference to
//! operator decomposition and kernel-fusion strategies across
//! CUDA/cuDNN and HIP/MIOpen. [`BackendProfile`] captures exactly those
//! knobs: epilogue fusion (bias/activation folded into the GEMM) and
//! convolution workspace sizing.

use accel_sim::Vendor;
use serde::{Deserialize, Serialize};

/// Vendor-specific operator decomposition profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BackendProfile {
    /// Which vendor's library stack this models.
    pub vendor: Vendor,
    /// cuBLASLt-style epilogue fusion: bias add (and ReLU/GELU) execute
    /// inside the GEMM kernel. MIOpen/rocBLAS decompose into separate
    /// kernels — more launches, more transient tensors.
    pub fused_epilogue: bool,
    /// Convolution workspace over-allocation factor (cuDNN reserves larger
    /// scratch for algorithm selection; this is what nudges NVIDIA peak
    /// memory above AMD's in Fig. 14).
    pub conv_workspace_factor: f64,
    /// GEMM kernel-name prefix (`ampere_sgemm` vs rocBLAS Tensile names).
    pub gemm_prefix: &'static str,
    /// Collective-communication kernel prefix (`nccl` vs `rccl`).
    pub nccl_prefix: &'static str,
}

impl BackendProfile {
    /// CUDA/cuDNN/cuBLAS profile (machines A and B in Table III).
    pub fn nvidia() -> Self {
        BackendProfile {
            vendor: Vendor::Nvidia,
            fused_epilogue: true,
            conv_workspace_factor: 1.25,
            gemm_prefix: "ampere_sgemm",
            nccl_prefix: "ncclDevKernel",
        }
    }

    /// HIP/MIOpen/rocBLAS profile (machine C).
    pub fn amd() -> Self {
        BackendProfile {
            vendor: Vendor::Amd,
            fused_epilogue: false,
            conv_workspace_factor: 1.05,
            gemm_prefix: "Cijk_Ailk_Bljk_SB_MT128x64x8",
            nccl_prefix: "rcclDevKernel",
        }
    }

    /// Profile matching a device vendor.
    pub fn for_vendor(vendor: Vendor) -> Self {
        match vendor {
            Vendor::Amd => BackendProfile::amd(),
            _ => BackendProfile::nvidia(),
        }
    }

    /// GEMM kernel symbol for a given tile flavour.
    pub fn gemm_kernel(&self, tile: &str) -> String {
        format!("{}_{tile}", self.gemm_prefix)
    }

    /// Collective kernel symbol (e.g. `"ncclDevKernel_AllReduce_Sum_f32"`).
    pub fn collective_kernel(&self, op: &str) -> String {
        format!("{}_{op}_Sum_f32", self.nccl_prefix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nvidia_fuses_amd_does_not() {
        assert!(BackendProfile::nvidia().fused_epilogue);
        assert!(!BackendProfile::amd().fused_epilogue);
    }

    #[test]
    fn nvidia_reserves_bigger_workspaces() {
        assert!(
            BackendProfile::nvidia().conv_workspace_factor
                > BackendProfile::amd().conv_workspace_factor
        );
    }

    #[test]
    fn kernel_names_are_vendor_flavoured() {
        assert_eq!(
            BackendProfile::nvidia().gemm_kernel("128x64_tn"),
            "ampere_sgemm_128x64_tn"
        );
        assert!(BackendProfile::amd()
            .gemm_kernel("128x64_tn")
            .starts_with("Cijk_"));
        assert!(BackendProfile::nvidia()
            .collective_kernel("AllReduce")
            .starts_with("ncclDevKernel"));
        assert!(BackendProfile::amd()
            .collective_kernel("AllReduce")
            .starts_with("rcclDevKernel"));
    }

    #[test]
    fn for_vendor_maps() {
        assert_eq!(BackendProfile::for_vendor(Vendor::Amd).vendor, Vendor::Amd);
        assert_eq!(
            BackendProfile::for_vendor(Vendor::Nvidia).vendor,
            Vendor::Nvidia
        );
    }
}
