//! Workload runners: build a model, execute N batches/iterations, report.

use crate::models::{ModelZoo, RunKind};
use crate::session::Session;
use accel_sim::{AccelError, SimTime};
use serde::{Deserialize, Serialize};

/// Summary of one model run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunReport {
    /// Model name.
    pub model: String,
    /// Paper abbreviation.
    pub abbr: String,
    /// Inference or training.
    pub run: RunKind,
    /// Batches (inference) or iterations (training) executed.
    pub steps: usize,
    /// Kernels launched across the run.
    pub kernel_launches: u64,
    /// Host virtual time consumed by the run (after final sync).
    pub host_time: SimTime,
    /// Peak live tensor bytes.
    pub peak_allocated: u64,
    /// Peak reserved (segment) bytes — the paper's "memory footprint".
    pub peak_reserved: u64,
    /// Model parameter bytes.
    pub param_bytes: u64,
}

/// Builds `model`, runs `steps` batches/iterations of `kind`, destroys the
/// model, and reports. `batch_divisor` scales the batch down for fast test
/// runs (1 = the paper's batch size).
///
/// # Errors
///
/// Propagates allocation/launch failures.
pub fn run_model(
    s: &mut Session<'_>,
    model: ModelZoo,
    kind: RunKind,
    steps: usize,
    batch_divisor: usize,
) -> Result<RunReport, AccelError> {
    let start_time = s.runtime().host_time();
    let start_kernels = s.kernels_launched();
    let mut workload = model.build_scaled(s, batch_divisor)?;
    for _ in 0..steps {
        match kind {
            RunKind::Inference => workload.inference_batch(s)?,
            RunKind::Training => workload.training_iter(s)?,
        }
    }
    s.synchronize();
    s.release_workspaces();
    let param_bytes = workload.param_bytes();
    let spec = workload.spec().clone();
    let stats = s.allocator_stats();
    workload.destroy(s);
    Ok(RunReport {
        model: spec.name.to_owned(),
        abbr: spec.abbr.to_owned(),
        run: kind,
        steps,
        kernel_launches: s.kernels_launched() - start_kernels,
        host_time: SimTime(s.runtime().host_time() - start_time),
        peak_allocated: stats.peak_allocated,
        peak_reserved: stats.peak_reserved,
        param_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use accel_sim::DeviceSpec;
    use vendor_nv::CudaContext;

    #[test]
    fn inference_report_counts_kernels() {
        let mut rt = CudaContext::new(vec![DeviceSpec::a100_80gb()]);
        let mut s = Session::new(&mut rt);
        let r = run_model(&mut s, ModelZoo::Bert, RunKind::Inference, 2, 8).unwrap();
        assert_eq!(r.abbr, "BERT");
        assert!(r.kernel_launches > 100);
        assert!(r.host_time.as_nanos() > 0);
        assert!(r.peak_reserved >= r.peak_allocated);
        assert_eq!(s.allocator_stats().allocated, 0, "model destroyed");
    }

    #[test]
    fn training_launches_more_kernels_than_inference() {
        let mut rt = CudaContext::new(vec![DeviceSpec::a100_80gb()]);
        let mut s = Session::new(&mut rt);
        let inf = run_model(&mut s, ModelZoo::ResNet18, RunKind::Inference, 1, 16).unwrap();
        let tr = run_model(&mut s, ModelZoo::ResNet18, RunKind::Training, 1, 16).unwrap();
        assert!(
            tr.kernel_launches > inf.kernel_launches,
            "training {} vs inference {}",
            tr.kernel_launches,
            inf.kernel_launches
        );
        assert!(tr.peak_allocated > inf.peak_allocated);
    }
}
