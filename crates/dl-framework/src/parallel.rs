//! Multi-GPU parallelism: Megatron GPT-2 345M under data, tensor,
//! pipeline (two devices, paper §V-D2, Fig. 15) and expert parallelism
//! (the 64–256-device scale-out workload).
//!
//! Since the sharded-hub rework these are *genuinely concurrent* emission
//! scenarios: every device is driven over its own [`DeviceLane`] (a
//! framework [`Session`] pinned to one device), so tensor traffic,
//! operator brackets and fine-grained device events from different GPUs
//! really do race into the profiling layer — which the per-device hub
//! shards absorb without a shared lock. Since the lock-free spine rework
//! the lane threads do not even take their own shard's lock on the hot
//! path: sinks push batched spills onto SPSC rings that background
//! drainers consume off the emission critical path (with the
//! producer-side backpressure fallback keeping the path lossless when a
//! drainer falls behind — see `pasta_core::spine`). Since the scale-out
//! rework lanes no longer get one OS thread each: independent lanes are
//! multiplexed onto the bounded worker pool in [`lane_exec`] (budget =
//! each lane's [`DeviceLane::set_pool_limit`], stamped by
//! `PastaSession::run_parallel` from its `ParallelConfig`), which is what
//! makes 256-lane runs tractable. Pipeline parallelism sequences its
//! cross-stage activation handoffs with channels, exactly where a real
//! run would block on send/recv — and for that reason keeps dedicated
//! stage threads rather than the pool.
//!
//! The strategies shard differently and therefore leave different
//! per-GPU memory signatures:
//!
//! * **Data parallelism** — full replicas on both GPUs, gradients
//!   all-reduced: identical memory curves, full peak on each.
//! * **Tensor parallelism** — attention heads and FFN columns split
//!   (Megatron column/row parallel linear layers): identical curves at
//!   roughly half the peak.
//! * **Pipeline parallelism** — the block stack split at the midpoint;
//!   GPU 1 additionally runs the final layer norm, the (large) logits
//!   projection and the loss, producing the asymmetric tail of Fig. 15c.
//! * **Expert parallelism** — a replicated dense trunk with each lane
//!   hosting its own expert group; per-layer all-to-all token
//!   dispatch/combine priced over the peer matrix. Lanes stay fully
//!   independent (uniform routing), which is what lets EP scale to 256
//!   lanes on the bounded pool.

use crate::callbacks::Pass;
use crate::dtype::DType;
use crate::lane_exec;
use crate::layers::{Layer, LayerNorm, Param, Sequential, TransformerBlock};
use crate::models::transformer::{custom_lm, LmDims};
use crate::models::{ModelKind, ModelSpec, Workload};
use crate::ops::{self, Act};
use crate::session::Session;
use accel_sim::{panic_message, AccelError, AccessSpec, DeviceId, Dim3, KernelBody, KernelDesc};
use serde::{Deserialize, Serialize};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};

/// One lane of a multi-device parallel run: a framework session pinned to
/// one device, drivable from its own OS thread. Lanes over distinct
/// devices emit into distinct hub shards upstream, so driving them
/// concurrently contends on nothing.
pub struct DeviceLane<'rt> {
    device: DeviceId,
    /// The lane's framework session (current device = [`DeviceLane::device`]).
    pub session: Session<'rt>,
    /// Worker budget for pooled schedules (`0` = available parallelism).
    pool_limit: usize,
    /// Where pooled schedules fold their per-pool high-water mark
    /// (`fetch_max`), when an owner wants to observe peak lane
    /// concurrency without the contaminable process-global diagnostic.
    pool_watermark: Option<Arc<AtomicUsize>>,
}

impl std::fmt::Debug for DeviceLane<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeviceLane")
            .field("device", &self.device)
            .finish()
    }
}

impl<'rt> DeviceLane<'rt> {
    /// Pins `session`'s runtime to `device` and wraps it as a lane.
    ///
    /// # Errors
    ///
    /// Propagates `set_device` failure for a device the runtime does not
    /// have.
    pub fn pin(device: DeviceId, mut session: Session<'rt>) -> Result<Self, AccelError> {
        session.runtime_mut().set_device(device)?;
        Ok(DeviceLane {
            device,
            session,
            pool_limit: 0,
            pool_watermark: None,
        })
    }

    /// The device this lane drives.
    pub fn device(&self) -> DeviceId {
        self.device
    }

    /// Caps the worker pool the threaded lane schedules may use when this
    /// lane is driven together with others (`0` = available parallelism).
    /// `PastaSession::run_parallel` stamps every lane with the session's
    /// `ParallelConfig::max_lane_threads`, so `train_iter`-style drivers
    /// inherit the session's scale-out budget without a config parameter.
    pub fn set_pool_limit(&mut self, max_threads: usize) {
        self.pool_limit = max_threads;
    }

    /// The pooled-schedule worker budget (`0` = available parallelism).
    pub fn pool_limit(&self) -> usize {
        self.pool_limit
    }

    /// Arranges for pooled lane schedules ([`lane_exec::run_pool`] via
    /// `drive_lanes`) to fold their per-pool high-water mark into
    /// `watermark` with a `fetch_max`. `PastaSession::run_parallel`
    /// stamps every lane with one shared counter so the session can
    /// report peak lane concurrency per session, immune to other
    /// sessions' pools (unlike [`lane_exec::pool_high_water`]).
    pub fn set_pool_watermark(&mut self, watermark: Arc<AtomicUsize>) {
        self.pool_watermark = Some(watermark);
    }

    /// The stamped pool-high-water observer, if any.
    pub fn pool_watermark(&self) -> Option<&Arc<AtomicUsize>> {
        self.pool_watermark.as_ref()
    }
}

/// Parallelization strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Parallelism {
    /// Replicated model, all-reduced gradients (DP).
    Data,
    /// Megatron tensor (intra-layer) parallelism (TP).
    Tensor,
    /// Pipeline (inter-layer) parallelism (PP).
    Pipeline,
    /// Mixture-of-experts expert parallelism (EP): experts sharded one
    /// group per lane, tokens routed with all-to-all exchanges.
    Expert,
}

impl Parallelism {
    /// Label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            Parallelism::Data => "data-parallel",
            Parallelism::Tensor => "tensor-parallel",
            Parallelism::Pipeline => "pipeline-parallel",
            Parallelism::Expert => "expert-parallel",
        }
    }
}

/// Megatron GPT-2 345M dimensions (24 layers, d=1024, 16 heads).
pub fn megatron_345m_dims() -> LmDims {
    LmDims {
        d: 1024,
        heads: 16,
        ffn: 4096,
        vocab: 50257,
        seq: 1024,
        layers: 24,
    }
}

/// Per-device outcome of a parallel training iteration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParallelReport {
    /// Strategy executed.
    pub strategy: Parallelism,
    /// Peak live tensor bytes per device (lane order).
    pub peak_allocated: Vec<u64>,
    /// Peak reserved (footprint) bytes per device.
    pub peak_reserved: Vec<u64>,
    /// Kernels launched per device.
    pub launches: Vec<u64>,
}

/// One lane's contribution to a [`ParallelReport`], captured on the
/// lane's own thread.
#[derive(Debug, Clone, Copy, Default)]
struct LaneStats {
    peak_allocated: u64,
    peak_reserved: u64,
    launches: u64,
}

fn lane_stats(lane: &DeviceLane<'_>) -> LaneStats {
    let alloc = lane.session.allocator_stats_for(lane.device);
    LaneStats {
        peak_allocated: alloc.peak_allocated,
        peak_reserved: alloc.peak_reserved,
        launches: lane.session.runtime().stats(lane.device).launches,
    }
}

fn report(strategy: Parallelism, stats: Vec<LaneStats>) -> ParallelReport {
    ParallelReport {
        strategy,
        peak_allocated: stats.iter().map(|s| s.peak_allocated).collect(),
        peak_reserved: stats.iter().map(|s| s.peak_reserved).collect(),
        launches: stats.iter().map(|s| s.launches).collect(),
    }
}

fn megatron_spec() -> ModelSpec {
    ModelSpec {
        name: "Megatron GPT-2 345M",
        abbr: "GPT2-345M",
        kind: ModelKind::Transformer,
        layers: 24,
        batch: 4,
    }
}

/// How [`drive_lanes`] schedules the per-lane work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LaneSchedule {
    /// One OS thread per lane — the production path.
    Threaded,
    /// One lane at a time on the calling thread — the reference run the
    /// shard-merge tests compare concurrent output against.
    Sequential,
}

/// Contains a panic at the lane boundary: `f`'s panic becomes a typed
/// [`AccelError::LanePanic`] attributed to `device` instead of unwinding
/// into the join. The non-panic path costs nothing (`catch_unwind` is
/// zero-overhead until a panic actually lands).
pub(crate) fn catch_lane<T>(
    device: DeviceId,
    f: impl FnOnce() -> Result<T, AccelError>,
) -> Result<T, AccelError> {
    catch_unwind(AssertUnwindSafe(f)).unwrap_or_else(|payload| {
        Err(AccelError::LanePanic {
            device,
            payload: panic_message(payload.as_ref()),
        })
    })
}

/// Runs every lane's closure — on the bounded lane pool
/// ([`lane_exec::run_pool`], at most the lanes' pool limit worker
/// threads live at once) or lane-at-a-time, per `schedule` — and
/// collects the per-lane results in lane order. The first failing lane
/// (by lane order, deterministically) wins error propagation. A
/// panicking lane surfaces as [`AccelError::LanePanic`] for its device;
/// the other lanes run to completion either way.
///
/// Lanes driven here are independent (no cross-lane blocking), which is
/// what makes the bounded pool deadlock-free at any worker count; the
/// pipeline driver, whose stages *do* block on each other, keeps its
/// dedicated two-thread scope instead.
fn drive_lanes<F>(
    lanes: &mut [DeviceLane<'_>],
    schedule: LaneSchedule,
    work: F,
) -> Result<Vec<LaneStats>, AccelError>
where
    F: Fn(usize, &mut DeviceLane<'_>) -> Result<LaneStats, AccelError> + Sync,
{
    if schedule == LaneSchedule::Sequential {
        return lanes
            .iter_mut()
            .enumerate()
            .map(|(i, lane)| {
                let device = lane.device();
                catch_lane(device, || work(i, lane))
            })
            .collect();
    }
    let limit = lanes
        .iter()
        .map(DeviceLane::pool_limit)
        .find(|&n| n > 0)
        .unwrap_or(0);
    let work = &work;
    let tasks: Vec<lane_exec::PoolTask<'_, LaneStats>> = lanes
        .iter_mut()
        .enumerate()
        .map(|(i, lane)| lane_exec::PoolTask {
            device: lane.device(),
            run: Box::new(move || work(i, lane)),
        })
        .collect();
    let run = lane_exec::run_pool(limit, tasks, None);
    if let Some(watermark) = lanes.iter().find_map(DeviceLane::pool_watermark) {
        watermark.fetch_max(run.high_water, Ordering::AcqRel);
    }
    run.results.into_iter().collect()
}

fn require_lanes(lanes: &[DeviceLane<'_>], n: usize, strategy: &str) -> Result<(), AccelError> {
    if lanes.len() < n {
        return Err(AccelError::Config(format!(
            "{strategy} needs at least {n} device lanes, got {}",
            lanes.len()
        )));
    }
    Ok(())
}

/// Runs one data-parallel training iteration, one OS thread per lane.
///
/// # Errors
///
/// Propagates allocation/launch failures; requires ≥ 2 lanes.
pub fn train_iter_data_parallel(
    lanes: &mut [DeviceLane<'_>],
    batch: usize,
) -> Result<ParallelReport, AccelError> {
    data_parallel(lanes, batch, LaneSchedule::Threaded)
}

fn data_parallel(
    lanes: &mut [DeviceLane<'_>],
    batch: usize,
    schedule: LaneSchedule,
) -> Result<ParallelReport, AccelError> {
    require_lanes(lanes, 2, "data parallelism")?;
    let dims = megatron_345m_dims();
    let stats = drive_lanes(lanes, schedule, |_i, lane| {
        let s = &mut lane.session;
        let mut replica = custom_lm(s, megatron_spec(), dims, batch, "megatron/pretrain_gpt2.py")?;
        // Persistent DDP gradient bucket (the long-lived communication
        // tensor the paper notes in §V-D2).
        let bucket_elems = (32 << 20) / 4; // 32 MiB buckets
        let bucket = s.alloc_tensor(&[bucket_elems], DType::F32)?;
        replica.training_iter(s)?;
        // All-reduce the gradients bucket by bucket.
        let n_buckets = replica.param_bytes().div_ceil(32 << 20);
        for _ in 0..n_buckets {
            ops::allreduce(s, &bucket)?;
        }
        let stats = lane_stats(lane);
        let s = &mut lane.session;
        replica.destroy(s);
        s.free_tensor(&bucket);
        Ok(stats)
    })?;
    Ok(report(Parallelism::Data, stats))
}

/// Runs one tensor-parallel training iteration (2-way Megatron sharding),
/// one OS thread per lane.
///
/// # Errors
///
/// Propagates allocation/launch failures; requires exactly 2 lanes.
pub fn train_iter_tensor_parallel(
    lanes: &mut [DeviceLane<'_>],
    batch: usize,
) -> Result<ParallelReport, AccelError> {
    tensor_parallel(lanes, batch, LaneSchedule::Threaded)
}

fn tensor_parallel(
    lanes: &mut [DeviceLane<'_>],
    batch: usize,
    schedule: LaneSchedule,
) -> Result<ParallelReport, AccelError> {
    require_lanes(lanes, 2, "tensor parallelism")?;
    let dims = megatron_345m_dims();
    // Each shard keeps half the heads/FFN and half the vocabulary.
    let shard_dims = LmDims {
        heads: dims.heads / 2,
        ffn: dims.ffn / 2,
        vocab: dims.vocab / 2,
        ..dims
    };
    // The replicated parameters' home copy lives on the lowest-id lane
    // actually in the run — deterministic for every lane, and correct
    // for lane sets that do not include device 0.
    let replica_owner = lanes
        .iter()
        .map(DeviceLane::device)
        .min()
        .expect("lane count checked above");
    let stats = drive_lanes(lanes, schedule, |_i, lane| {
        let s = &mut lane.session;
        let mut shard = custom_lm(
            s,
            megatron_spec(),
            shard_dims,
            batch,
            "megatron/pretrain_gpt2.py",
        )?;
        // Megatron replicates the positional embeddings and layer norms
        // on every TP rank. Under a managed-memory session, model the
        // replica as one *shared* managed range: the lowest-id lane owns
        // the home copy (demand-faults it from the host), every other
        // rank read-duplicates it over the peer link, and the iteration
        // never writes it — replicated parameters update identically on
        // each rank at optimizer time, outside this window. Lanes
        // allocate in lockstep, so the range lands at the same managed
        // address on every lane and the registrations rendezvous in the
        // coherence directory. Sessions without UVM skip the
        // registration and the read costs nothing extra.
        let replicated = s.alloc_tensor(&[dims.seq, dims.d], DType::F32)?;
        if let Some(res) = s.runtime_mut().residency_mut() {
            res.register_shared(replicated.ptr.addr(), replicated.bytes, replica_owner);
        }
        // The fallible middle runs in a closure so the shared
        // registration is torn down even on error: the coherence
        // directory outlives this lane (it is Arc-shared), and a stale
        // entry keyed by a reusable allocator address would wrongly mark
        // a later unrelated allocation as shared.
        let mut iter = |s: &mut Session<'_>| -> Result<(), AccelError> {
            let read = KernelDesc::new(
                "megatron_replicated_param_read",
                Dim3::linear(64),
                Dim3::linear(128),
            )
            .arg(replicated.ptr, replicated.bytes)
            .body(KernelBody::default().access(AccessSpec::load(0, replicated.bytes)));
            s.launch(read)?;
            shard.training_iter(s)?;
            // Activation all-reduces: two per layer (after attention and
            // after the MLP), on [batch, seq, d] activations.
            let act = s.alloc_tensor(&[batch, dims.seq, dims.d], DType::F32)?;
            for _ in 0..2 * dims.layers {
                ops::allreduce(s, &act)?;
            }
            s.free_tensor(&act);
            Ok(())
        };
        let result = iter(s);
        if let Some(res) = s.runtime_mut().residency_mut() {
            res.unregister_shared(replicated.ptr.addr());
        }
        s.free_tensor(&replicated);
        result?;
        let stats = lane_stats(lane);
        shard.destroy(&mut lane.session);
        Ok(stats)
    })?;
    Ok(report(Parallelism::Tensor, stats))
}

/// Expert-parallel (MoE) workload configuration: the dense trunk's
/// dimensions plus how many experts each lane hosts. The expert count is
/// `lanes × experts_per_lane` — scale-out comes from adding lanes, which
/// is what drives the executor at 64–256 devices.
#[derive(Debug, Clone)]
pub struct MoeConfig {
    /// Dense trunk dimensions (embeddings, attention, per-expert FFN
    /// width); `dims.layers` MoE layers, each with one all-to-all
    /// dispatch/combine round trip per pass.
    pub dims: LmDims,
    /// Experts hosted per lane (≥ 1).
    pub experts_per_lane: usize,
}

impl MoeConfig {
    /// The Megatron GPT-2 345M trunk with two experts per lane — the
    /// full-size variant of the paper-scale experiments.
    pub fn megatron_345m() -> MoeConfig {
        MoeConfig {
            dims: megatron_345m_dims(),
            experts_per_lane: 2,
        }
    }

    /// A deliberately tiny trunk for many-lane (64–256 device) tests and
    /// benches, where per-lane compute should not drown the scheduling
    /// and routing behavior under measurement.
    pub fn tiny() -> MoeConfig {
        MoeConfig {
            dims: LmDims {
                d: 64,
                heads: 2,
                ffn: 128,
                vocab: 512,
                seq: 32,
                layers: 2,
            },
            experts_per_lane: 1,
        }
    }
}

fn moe_spec(layers: usize, batch: usize) -> ModelSpec {
    ModelSpec {
        name: "Megatron MoE GPT-2",
        abbr: "GPT2-MoE",
        kind: ModelKind::Transformer,
        layers,
        batch,
    }
}

/// Runs one expert-parallel (MoE) training iteration at full Megatron
/// 345M scale ([`MoeConfig::megatron_345m`]), lanes multiplexed onto the
/// bounded pool.
///
/// # Errors
///
/// Propagates allocation/launch failures; requires ≥ 2 lanes.
pub fn train_iter_expert_parallel(
    lanes: &mut [DeviceLane<'_>],
    batch: usize,
) -> Result<ParallelReport, AccelError> {
    expert_parallel(
        lanes,
        batch,
        &MoeConfig::megatron_345m(),
        LaneSchedule::Threaded,
    )
}

/// [`train_iter_expert_parallel`] with an explicit [`MoeConfig`] — the
/// entry the 64–256-lane scale tests and the `scale_out` bench drive.
///
/// # Errors
///
/// Propagates allocation/launch failures; requires ≥ 2 lanes and ≥ 1
/// expert per lane.
pub fn train_iter_expert_parallel_with(
    lanes: &mut [DeviceLane<'_>],
    batch: usize,
    cfg: &MoeConfig,
) -> Result<ParallelReport, AccelError> {
    expert_parallel(lanes, batch, cfg, LaneSchedule::Threaded)
}

/// The lane-at-a-time sequential reference for
/// [`train_iter_expert_parallel_with`]: identical per-lane streams on the
/// calling thread — the byte-identity oracle for pooled MoE runs.
///
/// # Errors
///
/// Propagates allocation/launch failures; requires ≥ 2 lanes and ≥ 1
/// expert per lane.
pub fn train_iter_expert_sequential_reference_with(
    lanes: &mut [DeviceLane<'_>],
    batch: usize,
    cfg: &MoeConfig,
) -> Result<ParallelReport, AccelError> {
    expert_parallel(lanes, batch, cfg, LaneSchedule::Sequential)
}

/// The expert-parallel iteration: a replicated dense trunk (embeddings,
/// attention, norms — data-parallel over the batch) whose per-block FFN
/// stands for the lane's local expert group, plus the MoE routing
/// traffic: per layer, a router gate over the activations and an
/// all-to-all dispatch/combine pair, mirrored again for the backward
/// pass, with the token slices priced over the peer matrix
/// ([`ops::all_to_all`]). Routing is uniform (`tokens / world` per
/// peer), so every lane's stream depends only on its own inputs — lanes
/// never block on each other (pool-safe at any worker count) and the
/// sequential schedule reproduces the exact per-device streams.
fn expert_parallel(
    lanes: &mut [DeviceLane<'_>],
    batch: usize,
    cfg: &MoeConfig,
    schedule: LaneSchedule,
) -> Result<ParallelReport, AccelError> {
    require_lanes(lanes, 2, "expert parallelism")?;
    if cfg.experts_per_lane == 0 {
        return Err(AccelError::Config(
            "expert parallelism needs at least one expert per lane".into(),
        ));
    }
    let world = lanes.len();
    let dims = cfg.dims;
    let experts_total = world * cfg.experts_per_lane;
    let stats = drive_lanes(lanes, schedule, |_i, lane| {
        let s = &mut lane.session;
        let mut replica = custom_lm(
            s,
            moe_spec(dims.layers, batch),
            dims,
            batch,
            "megatron/pretrain_moe_gpt2.py",
        )?;
        // One replicated [experts_total, d] router gate.
        let router_w = s.alloc_tensor(&[experts_total, dims.d], DType::F32)?;
        replica.training_iter(s)?;
        let act = s.alloc_tensor(&[batch, dims.seq, dims.d], DType::F32)?;
        // Forward: route, dispatch tokens to their experts, combine the
        // expert outputs — once per MoE layer.
        for _ in 0..dims.layers {
            let logits = ops::linear(s, &act, &router_w, None, Act::None)?;
            s.free_tensor(&logits);
            ops::all_to_all(s, &act, world)?;
            ops::all_to_all(s, &act, world)?;
        }
        // Backward retraces the exchanges in reverse (gradient combine,
        // then gradient dispatch) — same volume over the same links.
        for _ in 0..dims.layers {
            ops::all_to_all(s, &act, world)?;
            ops::all_to_all(s, &act, world)?;
        }
        // Replicated (non-expert) gradients all-reduce like DP; expert
        // gradients stay local to their owning lane.
        ops::allreduce(s, &act)?;
        ops::allreduce(s, &router_w)?;
        let stats = lane_stats(lane);
        let s = &mut lane.session;
        replica.destroy(s);
        s.free_tensor(&act);
        s.free_tensor(&router_w);
        Ok(stats)
    })?;
    Ok(report(Parallelism::Expert, stats))
}

/// One pipeline stage: either the front (embeddings + first half of the
/// blocks) or the back (second half + final norm + logits head).
struct PipelineStage {
    wte: Option<Param>,
    wpe: Option<Param>,
    blocks: Sequential,
    ln_f: Option<LayerNorm>,
    head: Option<Param>,
}

impl PipelineStage {
    fn destroy(&mut self, s: &mut Session<'_>) {
        if let Some(mut p) = self.wte.take() {
            p.destroy(s);
        }
        if let Some(mut p) = self.wpe.take() {
            p.destroy(s);
        }
        self.blocks.destroy(s);
        if let Some(mut l) = self.ln_f.take() {
            l.destroy(s);
        }
        if let Some(mut p) = self.head.take() {
            p.destroy(s);
        }
    }

    fn step(&mut self, s: &mut Session<'_>) -> Result<(), AccelError> {
        if let Some(p) = self.wte.as_mut() {
            p.step(s)?;
        }
        if let Some(p) = self.wpe.as_mut() {
            p.step(s)?;
        }
        self.blocks.step(s)?;
        if let Some(l) = self.ln_f.as_mut() {
            l.step(s)?;
        }
        if let Some(p) = self.head.as_mut() {
            p.step(s)?;
        }
        Ok(())
    }
}

/// The front pipeline stage's thread: blocks 0–11 plus the embeddings.
fn pipeline_stage0(
    lane: &mut DeviceLane<'_>,
    batch: usize,
    fwd_sent: mpsc::Sender<()>,
    bwd_ready: mpsc::Receiver<()>,
) -> Result<LaneStats, AccelError> {
    let dims = megatron_345m_dims();
    let half = dims.layers / 2;
    let s = &mut lane.session;
    let mut stage = PipelineStage {
        wte: Some(Param::new(s, &[dims.vocab, dims.d])?),
        wpe: Some(Param::new(s, &[dims.seq, dims.d])?),
        blocks: {
            let mut b = Sequential::new("pp.stage0");
            for i in 0..half {
                b.push(Box::new(TransformerBlock::new(
                    s,
                    format!("h.{i}"),
                    dims.d,
                    dims.heads,
                    dims.ffn,
                )?));
            }
            b
        },
        ln_f: None,
        head: None,
    };

    // ---- Forward ---------------------------------------------------------
    // Audited expects (here and through the backward pass): each stage
    // struct is built a few lines up with exactly the fields its stage
    // owns populated — stage 0 carries wte/wpe, stage 1 carries
    // ln_f/head. No caller input reaches these Options.
    s.pass_boundary(Pass::Forward);
    let idx = s.alloc_tensor(&[batch, dims.seq], DType::I64)?;
    let wte0 = stage.wte.as_ref().expect("stage0 wte").tensor.clone();
    let emb = ops::embedding(s, &wte0, &idx)?;
    let wpe0 = stage.wpe.as_ref().expect("stage0 wpe").tensor.clone();
    let x0 = ops::elementwise(
        s,
        "at::native::vectorized_elementwise_kernel<add_pos>",
        &[&emb, &wpe0],
        &[batch, dims.seq, dims.d],
    )?;
    s.free_tensor(&emb);
    let boundary = stage.blocks.forward(s, x0, true)?;
    ops::send_recv(s, &boundary)?;
    // Activation handed to stage 1; its backward will signal us back.
    let _ = fwd_sent.send(());

    // ---- Backward (waits for stage 1's gradient send-back) ---------------
    bwd_ready
        .recv()
        .map_err(|_| AccelError::Config("pipeline peer vanished before backward".into()))?;
    let g_recv = s.alloc_tensor(&[batch, dims.seq, dims.d], DType::F32)?;
    ops::send_recv(s, &g_recv)?;
    let g_x0 = stage.blocks.backward(s, g_recv)?;
    s.free_tensor(&boundary);
    let g_wpe = ops::elementwise(
        s,
        "at::native::reduce_kernel<512, ReduceAdd>",
        &[&g_x0],
        &[dims.seq, dims.d],
    )?;
    stage.wpe.as_mut().expect("wpe").set_grad(s, g_wpe)?;
    let g_wte = ops::embedding_backward(s, &stage.wte.as_ref().expect("wte").tensor, &idx, &g_x0)?;
    stage.wte.as_mut().expect("wte").set_grad(s, g_wte)?;
    s.free_tensor(&g_x0);
    s.free_tensor(&idx);

    // ---- Optimizer --------------------------------------------------------
    s.pass_boundary(Pass::Optimizer);
    stage.step(s)?;

    let stats = lane_stats(lane);
    stage.destroy(&mut lane.session);
    Ok(stats)
}

/// The back pipeline stage's thread: blocks 12–23, final norm, logits
/// head and the loss.
fn pipeline_stage1(
    lane: &mut DeviceLane<'_>,
    batch: usize,
    fwd_ready: mpsc::Receiver<()>,
    bwd_sent: mpsc::Sender<()>,
) -> Result<LaneStats, AccelError> {
    let dims = megatron_345m_dims();
    let half = dims.layers / 2;
    let s = &mut lane.session;
    let mut stage = PipelineStage {
        wte: None,
        wpe: None,
        blocks: {
            let mut b = Sequential::new("pp.stage1");
            for i in half..dims.layers {
                b.push(Box::new(TransformerBlock::new(
                    s,
                    format!("h.{i}"),
                    dims.d,
                    dims.heads,
                    dims.ffn,
                )?));
            }
            b
        },
        ln_f: Some(LayerNorm::new(s, "ln_f", dims.d)?),
        head: Some(Param::new(s, &[dims.vocab, dims.d])?),
    };

    // ---- Forward + loss + backward (gated on stage 0's activation) -------
    fwd_ready
        .recv()
        .map_err(|_| AccelError::Config("pipeline peer vanished before forward".into()))?;
    let recv = s.alloc_tensor(&[batch, dims.seq, dims.d], DType::F32)?;
    ops::send_recv(s, &recv)?;
    let h1 = stage.blocks.forward(s, recv, true)?;
    let ln = stage.ln_f.as_mut().expect("stage1 ln_f");
    let hl = ln.forward(s, &h1, true)?;
    let head_w = stage.head.as_ref().expect("stage1 head").tensor.clone();
    let logits = ops::linear(s, &hl, &head_w, None, Act::None)?;
    let loss = ops::cross_entropy(s, &logits)?;
    s.free_tensor(&loss);
    s.pass_boundary(Pass::Backward);
    let g_logits = ops::cross_entropy_backward(s, &logits)?;
    let (g_hl, g_head, _) = ops::linear_backward(
        s,
        &hl,
        &stage.head.as_ref().expect("head").tensor,
        &g_logits,
        false,
    )?;
    stage.head.as_mut().expect("head").set_grad(s, g_head)?;
    s.free_tensor(&g_logits);
    s.free_tensor(&logits);
    let g_h1 = stage.ln_f.as_mut().expect("ln_f").backward(s, &h1, &g_hl)?;
    s.free_tensor(&g_hl);
    s.free_tensor(&hl);
    let g_boundary = stage.blocks.backward(s, g_h1)?;
    s.free_tensor(&h1);
    ops::send_recv(s, &g_boundary)?;
    s.free_tensor(&g_boundary);
    // Gradient sent back to stage 0; it can run its backward now.
    let _ = bwd_sent.send(());

    // ---- Optimizer --------------------------------------------------------
    stage.step(s)?;

    let stats = lane_stats(lane);
    stage.destroy(&mut lane.session);
    Ok(stats)
}

/// Runs one pipeline-parallel training iteration: blocks 0–11 on the
/// first lane, blocks 12–23 plus the logits head on the second, each on
/// its own OS thread, sequenced by activation/gradient handoff channels.
///
/// # Errors
///
/// Propagates allocation/launch failures; requires exactly 2 lanes.
pub fn train_iter_pipeline_parallel(
    lanes: &mut [DeviceLane<'_>],
    batch: usize,
) -> Result<ParallelReport, AccelError> {
    require_lanes(lanes, 2, "pipeline parallelism")?;
    let (fwd_tx, fwd_rx) = mpsc::channel::<()>();
    let (bwd_tx, bwd_rx) = mpsc::channel::<()>();
    let [lane0, lane1, ..] = lanes else {
        unreachable!("length checked above");
    };
    let (d0, d1) = (lane0.device(), lane1.device());
    let (r0, r1) = std::thread::scope(|scope| {
        // The stages block on each other's handoffs, so each keeps a
        // dedicated thread (a bounded pool could strand a stage behind
        // its unscheduled peer); named like pool workers so panics and
        // debugger output attribute to the lane. Audited expects: thread
        // spawning fails only on resource exhaustion, where the unnamed
        // `Scope::spawn` this replaces would panic too.
        #[allow(clippy::expect_used)]
        let h0 = std::thread::Builder::new()
            .name(format!("lane-dev{}", d0.index()))
            .spawn_scoped(scope, move || {
                catch_lane(d0, || pipeline_stage0(lane0, batch, fwd_tx, bwd_rx))
            })
            .expect("spawn pipeline stage");
        #[allow(clippy::expect_used)]
        let h1 = std::thread::Builder::new()
            .name(format!("lane-dev{}", d1.index()))
            .spawn_scoped(scope, move || {
                catch_lane(d1, || pipeline_stage1(lane1, batch, fwd_rx, bwd_tx))
            })
            .expect("spawn pipeline stage");
        let join = |device, h: std::thread::ScopedJoinHandle<'_, Result<LaneStats, AccelError>>| {
            h.join().unwrap_or_else(|payload| {
                Err(AccelError::LanePanic {
                    device,
                    payload: panic_message(payload.as_ref()),
                })
            })
        };
        (join(d0, h0), join(d1, h1))
    });
    match (r0, r1) {
        (Ok(s0), Ok(s1)) => Ok(report(Parallelism::Pipeline, vec![s0, s1])),
        (r0, r1) => {
            // A stage panic is the root cause: the surviving peer fails
            // secondarily with "pipeline peer vanished" when the panicked
            // stage drops its handoff channel — report the panic first.
            for r in [&r0, &r1] {
                if let Err(e @ AccelError::LanePanic { .. }) = r {
                    return Err(e.clone());
                }
            }
            r0?;
            r1?;
            unreachable!("at least one stage failed in this branch");
        }
    }
}

/// Dispatches one training iteration under `strategy`.
///
/// # Errors
///
/// Propagates allocation/launch failures; requires ≥ 2 lanes.
pub fn train_iter(
    lanes: &mut [DeviceLane<'_>],
    strategy: Parallelism,
    batch: usize,
) -> Result<ParallelReport, AccelError> {
    match strategy {
        Parallelism::Data => train_iter_data_parallel(lanes, batch),
        Parallelism::Tensor => train_iter_tensor_parallel(lanes, batch),
        Parallelism::Pipeline => train_iter_pipeline_parallel(lanes, batch),
        Parallelism::Expert => train_iter_expert_parallel(lanes, batch),
    }
}

/// The sequential single-device-at-a-time reference for [`train_iter`]:
/// identical per-lane work, driven one lane at a time on the calling
/// thread. Concurrent runs must produce byte-identical merged profiling
/// output to this reference — the determinism contract of the sharded
/// hub and the per-lane UVM forks, and what the UVM-under-parallelism
/// tests pin.
///
/// The contract extends to *read-only shared* managed ranges: the
/// tensor-parallel driver registers its replicated parameters as a
/// shared range (owner = rank 0, never written inside the iteration),
/// and the coherence model classifies remote reads statically (owner
/// demand-faults, everyone else read-duplicates), so each lane's peer
/// traffic depends only on its own stream. Running the lanes
/// sequentially therefore defines the reference semantics for shared
/// ranges too — the `uvm_p2p` differential suite pins concurrent runs
/// byte-identical to it. (Concurrently *written* shared ranges make
/// invalidation effects cross-lane and sit outside the byte-identity
/// contract; the sequential schedule remains their reference.)
///
/// Pipeline parallelism is inherently cross-device sequenced by its
/// activation/gradient handoffs (a lane-at-a-time schedule would
/// deadlock on the channel protocol), so its reference *is* the
/// standard driver, which those handoffs already make deterministic.
///
/// # Errors
///
/// Propagates allocation/launch failures; requires ≥ 2 lanes.
pub fn train_iter_sequential_reference(
    lanes: &mut [DeviceLane<'_>],
    strategy: Parallelism,
    batch: usize,
) -> Result<ParallelReport, AccelError> {
    match strategy {
        Parallelism::Data => data_parallel(lanes, batch, LaneSchedule::Sequential),
        Parallelism::Tensor => tensor_parallel(lanes, batch, LaneSchedule::Sequential),
        Parallelism::Pipeline => train_iter_pipeline_parallel(lanes, batch),
        Parallelism::Expert => expert_parallel(
            lanes,
            batch,
            &MoeConfig::megatron_345m(),
            LaneSchedule::Sequential,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accel_sim::DeviceSpec;
    use vendor_nv::CudaContext;

    fn two_lanes<T>(f: impl FnOnce(&mut [DeviceLane<'_>]) -> T) -> T {
        let specs = vec![DeviceSpec::a100_80gb(), DeviceSpec::a100_80gb()];
        let mut rt0 = CudaContext::new(specs.clone());
        let mut rt1 = CudaContext::new(specs);
        let mut lanes = [
            DeviceLane::pin(DeviceId(0), Session::new(&mut rt0)).unwrap(),
            DeviceLane::pin(DeviceId(1), Session::new(&mut rt1)).unwrap(),
        ];
        f(&mut lanes)
    }

    #[test]
    fn dp_peaks_are_symmetric() {
        two_lanes(|lanes| {
            let r = train_iter_data_parallel(lanes, 1).unwrap();
            let (a, b) = (r.peak_allocated[0], r.peak_allocated[1]);
            let ratio = a as f64 / b as f64;
            assert!(
                (0.95..1.05).contains(&ratio),
                "DP must be symmetric: {a} vs {b}"
            );
        });
    }

    #[test]
    fn tp_halves_the_peak() {
        // Peaks are per-session high-water marks, so each strategy runs in
        // fresh lanes.
        let dp = two_lanes(|lanes| train_iter_data_parallel(lanes, 1).unwrap());
        let tp = two_lanes(|lanes| train_iter_tensor_parallel(lanes, 1).unwrap());
        let ratio = tp.peak_allocated[0] as f64 / dp.peak_allocated[0] as f64;
        assert!(
            (0.35..0.75).contains(&ratio),
            "TP peak should be roughly half of DP: ratio {ratio}"
        );
        // TP stays symmetric across GPUs.
        let sym = tp.peak_allocated[0] as f64 / tp.peak_allocated[1] as f64;
        assert!((0.95..1.05).contains(&sym));
    }

    #[test]
    fn pp_is_asymmetric_with_heavier_tail_gpu() {
        two_lanes(|lanes| {
            let pp = train_iter_pipeline_parallel(lanes, 1).unwrap();
            assert!(
                pp.peak_allocated[1] > pp.peak_allocated[0],
                "GPU1 runs the logits head: {} vs {}",
                pp.peak_allocated[1],
                pp.peak_allocated[0]
            );
        });
    }

    #[test]
    fn all_strategies_clean_up() {
        two_lanes(|lanes| {
            for strategy in [
                Parallelism::Data,
                Parallelism::Tensor,
                Parallelism::Pipeline,
                Parallelism::Expert,
            ] {
                train_iter(lanes, strategy, 1).unwrap();
                for lane in lanes.iter_mut() {
                    lane.session.release_workspaces();
                    assert_eq!(
                        lane.session.allocator_stats_for(lane.device()).allocated,
                        0,
                        "{strategy:?} leaked on {}",
                        lane.device()
                    );
                }
            }
        });
    }

    #[test]
    fn concurrent_runs_are_deterministic() {
        // Two fresh DP runs driven by racing threads must report the same
        // per-device numbers: each lane's stream is deterministic and the
        // lanes never share state.
        let a = two_lanes(|lanes| train_iter_data_parallel(lanes, 1).unwrap());
        let b = two_lanes(|lanes| train_iter_data_parallel(lanes, 1).unwrap());
        assert_eq!(a, b);
    }

    #[test]
    fn sequential_reference_matches_threaded_runs() {
        for strategy in [Parallelism::Data, Parallelism::Tensor, Parallelism::Expert] {
            let threaded = two_lanes(|lanes| train_iter(lanes, strategy, 1).unwrap());
            let sequential =
                two_lanes(|lanes| train_iter_sequential_reference(lanes, strategy, 1).unwrap());
            assert_eq!(
                threaded, sequential,
                "{strategy:?}: lane streams are deterministic, so the \
                 schedule must not change per-device results"
            );
        }
        // Pipeline's reference is the standard driver; it must at least
        // be reproducible run to run.
        let a = two_lanes(|lanes| {
            train_iter_sequential_reference(lanes, Parallelism::Pipeline, 1).unwrap()
        });
        let b = two_lanes(|lanes| train_iter_pipeline_parallel(lanes, 1).unwrap());
        assert_eq!(a, b);
    }

    #[test]
    fn too_few_lanes_is_a_clear_error() {
        let specs = vec![DeviceSpec::a100_80gb()];
        let mut rt = CudaContext::new(specs);
        let mut lanes = [DeviceLane::pin(DeviceId(0), Session::new(&mut rt)).unwrap()];
        let err = train_iter_data_parallel(&mut lanes, 1).unwrap_err();
        assert!(err.to_string().contains("at least 2"));
    }

    #[test]
    fn labels() {
        assert_eq!(Parallelism::Data.label(), "data-parallel");
        assert_eq!(Parallelism::Tensor.label(), "tensor-parallel");
        assert_eq!(Parallelism::Pipeline.label(), "pipeline-parallel");
        assert_eq!(Parallelism::Expert.label(), "expert-parallel");
    }

    #[test]
    fn moe_routes_device_to_device_traffic() {
        // The all-to-all exchanges must show up as explicit copies priced
        // over the peer links — the signature that distinguishes EP from
        // plain DP, whose collectives are pure kernel launches.
        two_lanes(|lanes| {
            let r = train_iter_expert_parallel_with(lanes, 1, &MoeConfig::tiny()).unwrap();
            assert_eq!(r.strategy, Parallelism::Expert);
            assert_eq!(r.launches.len(), 2);
            assert!(r.launches.iter().all(|&l| l > 0));
            for lane in lanes.iter() {
                let stats = lane.session.runtime().stats(lane.device());
                assert!(
                    stats.copies > 0,
                    "all-to-all routed no copies on {}",
                    lane.device()
                );
            }
        });
    }
}
