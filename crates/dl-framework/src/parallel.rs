//! Multi-GPU parallelism: Megatron GPT-2 345M under data, tensor and
//! pipeline parallelism on two devices (paper §V-D2, Fig. 15).
//!
//! The three strategies shard differently and therefore leave different
//! per-GPU memory signatures:
//!
//! * **Data parallelism** — full replicas on both GPUs, gradients
//!   all-reduced: identical memory curves, full peak on each.
//! * **Tensor parallelism** — attention heads and FFN columns split
//!   (Megatron column/row parallel linear layers): identical curves at
//!   roughly half the peak.
//! * **Pipeline parallelism** — the block stack split at the midpoint;
//!   GPU 1 additionally runs the final layer norm, the (large) logits
//!   projection and the loss, producing the asymmetric tail of Fig. 15c.

use crate::callbacks::Pass;
use crate::dtype::DType;
use crate::layers::{Layer, LayerNorm, Param, Sequential, TransformerBlock};
use crate::models::transformer::{custom_lm, LmDims};
use crate::models::{ModelKind, ModelSpec, Workload};
use crate::ops::{self, Act};
use crate::session::Session;
use accel_sim::{AccelError, DeviceId};
use serde::{Deserialize, Serialize};

/// Parallelization strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Parallelism {
    /// Replicated model, all-reduced gradients (DP).
    Data,
    /// Megatron tensor (intra-layer) parallelism (TP).
    Tensor,
    /// Pipeline (inter-layer) parallelism (PP).
    Pipeline,
}

impl Parallelism {
    /// Label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            Parallelism::Data => "data-parallel",
            Parallelism::Tensor => "tensor-parallel",
            Parallelism::Pipeline => "pipeline-parallel",
        }
    }
}

/// Megatron GPT-2 345M dimensions (24 layers, d=1024, 16 heads).
pub fn megatron_345m_dims() -> LmDims {
    LmDims {
        d: 1024,
        heads: 16,
        ffn: 4096,
        vocab: 50257,
        seq: 1024,
        layers: 24,
    }
}

/// Per-device outcome of a parallel training iteration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParallelReport {
    /// Strategy executed.
    pub strategy: Parallelism,
    /// Peak live tensor bytes per device.
    pub peak_allocated: Vec<u64>,
    /// Peak reserved (footprint) bytes per device.
    pub peak_reserved: Vec<u64>,
    /// Kernels launched per device.
    pub launches: Vec<u64>,
}

fn report(s: &Session<'_>, strategy: Parallelism) -> ParallelReport {
    let devices = [DeviceId(0), DeviceId(1)];
    ParallelReport {
        strategy,
        peak_allocated: devices
            .iter()
            .map(|&d| s.allocator_stats_for(d).peak_allocated)
            .collect(),
        peak_reserved: devices
            .iter()
            .map(|&d| s.allocator_stats_for(d).peak_reserved)
            .collect(),
        launches: devices
            .iter()
            .map(|&d| s.runtime().stats(d).launches)
            .collect(),
    }
}

fn megatron_spec() -> ModelSpec {
    ModelSpec {
        name: "Megatron GPT-2 345M",
        abbr: "GPT2-345M",
        kind: ModelKind::Transformer,
        layers: 24,
        batch: 4,
    }
}

/// Runs one data-parallel training iteration on devices 0 and 1.
///
/// # Errors
///
/// Propagates allocation/launch failures; requires ≥ 2 devices.
pub fn train_iter_data_parallel(
    s: &mut Session<'_>,
    batch: usize,
) -> Result<ParallelReport, AccelError> {
    let dims = megatron_345m_dims();
    let mut replicas = Vec::new();
    for dev in [DeviceId(0), DeviceId(1)] {
        s.runtime_mut().set_device(dev)?;
        replicas.push(custom_lm(
            s,
            megatron_spec(),
            dims,
            batch,
            "megatron/pretrain_gpt2.py",
        )?);
    }
    // Persistent DDP gradient buckets (the long-lived communication
    // tensors the paper notes in §V-D2).
    let bucket_elems = (32 << 20) / 4; // 32 MiB buckets
    let mut buckets = Vec::new();
    for dev in [DeviceId(0), DeviceId(1)] {
        s.runtime_mut().set_device(dev)?;
        buckets.push(s.alloc_tensor(&[bucket_elems], DType::F32)?);
    }

    for (i, replica) in replicas.iter_mut().enumerate() {
        s.runtime_mut().set_device(DeviceId(i as u32))?;
        replica.training_iter(s)?;
    }
    // All-reduce the gradients bucket by bucket.
    let param_bytes = replicas[0].param_bytes();
    let n_buckets = param_bytes.div_ceil(32 << 20);
    for (i, bucket) in buckets.iter().enumerate() {
        s.runtime_mut().set_device(DeviceId(i as u32))?;
        for _ in 0..n_buckets {
            ops::allreduce(s, bucket)?;
        }
    }

    let rep = report(s, Parallelism::Data);
    for (i, mut replica) in replicas.into_iter().enumerate() {
        s.runtime_mut().set_device(DeviceId(i as u32))?;
        replica.destroy(s);
    }
    for (i, bucket) in buckets.iter().enumerate() {
        s.runtime_mut().set_device(DeviceId(i as u32))?;
        s.free_tensor(bucket);
    }
    Ok(rep)
}

/// Runs one tensor-parallel training iteration (2-way Megatron sharding).
///
/// # Errors
///
/// Propagates allocation/launch failures; requires ≥ 2 devices.
pub fn train_iter_tensor_parallel(
    s: &mut Session<'_>,
    batch: usize,
) -> Result<ParallelReport, AccelError> {
    let dims = megatron_345m_dims();
    // Each shard keeps half the heads/FFN and half the vocabulary.
    let shard_dims = LmDims {
        heads: dims.heads / 2,
        ffn: dims.ffn / 2,
        vocab: dims.vocab / 2,
        ..dims
    };
    let mut shards = Vec::new();
    for dev in [DeviceId(0), DeviceId(1)] {
        s.runtime_mut().set_device(dev)?;
        shards.push(custom_lm(
            s,
            megatron_spec(),
            shard_dims,
            batch,
            "megatron/pretrain_gpt2.py",
        )?);
    }
    for (i, shard) in shards.iter_mut().enumerate() {
        s.runtime_mut().set_device(DeviceId(i as u32))?;
        shard.training_iter(s)?;
        // Activation all-reduces: two per layer (after attention and after
        // the MLP), on [batch, seq, d] activations.
        let act = s.alloc_tensor(&[batch, dims.seq, dims.d], DType::F32)?;
        for _ in 0..2 * dims.layers {
            ops::allreduce(s, &act)?;
        }
        s.free_tensor(&act);
    }
    let rep = report(s, Parallelism::Tensor);
    for (i, mut shard) in shards.into_iter().enumerate() {
        s.runtime_mut().set_device(DeviceId(i as u32))?;
        shard.destroy(s);
    }
    Ok(rep)
}

/// One pipeline stage: either the front (embeddings + first half of the
/// blocks) or the back (second half + final norm + logits head).
struct PipelineStage {
    wte: Option<Param>,
    wpe: Option<Param>,
    blocks: Sequential,
    ln_f: Option<LayerNorm>,
    head: Option<Param>,
}

impl PipelineStage {
    fn destroy(&mut self, s: &mut Session<'_>) {
        if let Some(mut p) = self.wte.take() {
            p.destroy(s);
        }
        if let Some(mut p) = self.wpe.take() {
            p.destroy(s);
        }
        self.blocks.destroy(s);
        if let Some(mut l) = self.ln_f.take() {
            l.destroy(s);
        }
        if let Some(mut p) = self.head.take() {
            p.destroy(s);
        }
    }

    fn step(&mut self, s: &mut Session<'_>) -> Result<(), AccelError> {
        if let Some(p) = self.wte.as_mut() {
            p.step(s)?;
        }
        if let Some(p) = self.wpe.as_mut() {
            p.step(s)?;
        }
        self.blocks.step(s)?;
        if let Some(l) = self.ln_f.as_mut() {
            l.step(s)?;
        }
        if let Some(p) = self.head.as_mut() {
            p.step(s)?;
        }
        Ok(())
    }
}

/// Runs one pipeline-parallel training iteration: blocks 0–11 on GPU 0,
/// blocks 12–23 plus the logits head on GPU 1.
///
/// # Errors
///
/// Propagates allocation/launch failures; requires ≥ 2 devices.
pub fn train_iter_pipeline_parallel(
    s: &mut Session<'_>,
    batch: usize,
) -> Result<ParallelReport, AccelError> {
    let dims = megatron_345m_dims();
    let half = dims.layers / 2;

    s.runtime_mut().set_device(DeviceId(0))?;
    let mut stage0 = PipelineStage {
        wte: Some(Param::new(s, &[dims.vocab, dims.d])?),
        wpe: Some(Param::new(s, &[dims.seq, dims.d])?),
        blocks: {
            let mut b = Sequential::new("pp.stage0");
            for i in 0..half {
                b.push(Box::new(TransformerBlock::new(
                    s,
                    format!("h.{i}"),
                    dims.d,
                    dims.heads,
                    dims.ffn,
                )?));
            }
            b
        },
        ln_f: None,
        head: None,
    };
    s.runtime_mut().set_device(DeviceId(1))?;
    let mut stage1 = PipelineStage {
        wte: None,
        wpe: None,
        blocks: {
            let mut b = Sequential::new("pp.stage1");
            for i in half..dims.layers {
                b.push(Box::new(TransformerBlock::new(
                    s,
                    format!("h.{i}"),
                    dims.d,
                    dims.heads,
                    dims.ffn,
                )?));
            }
            b
        },
        ln_f: Some(LayerNorm::new(s, "ln_f", dims.d)?),
        head: Some(Param::new(s, &[dims.vocab, dims.d])?),
    };

    // ---- Forward: stage 0 ------------------------------------------------
    s.runtime_mut().set_device(DeviceId(0))?;
    s.pass_boundary(Pass::Forward);
    let idx = s.alloc_tensor(&[batch, dims.seq], DType::I64)?;
    let wte0 = stage0.wte.as_ref().expect("stage0 wte").tensor.clone();
    let emb = ops::embedding(s, &wte0, &idx)?;
    let wpe0 = stage0.wpe.as_ref().expect("stage0 wpe").tensor.clone();
    let x0 = ops::elementwise(
        s,
        "at::native::vectorized_elementwise_kernel<add_pos>",
        &[&emb, &wpe0],
        &[batch, dims.seq, dims.d],
    )?;
    s.free_tensor(&emb);
    let boundary = stage0.blocks.forward(s, x0, true)?;
    ops::send_recv(s, &boundary)?;

    // ---- Forward + loss + backward: stage 1 ------------------------------
    s.runtime_mut().set_device(DeviceId(1))?;
    let recv = s.alloc_tensor(&[batch, dims.seq, dims.d], DType::F32)?;
    ops::send_recv(s, &recv)?;
    let h1 = stage1.blocks.forward(s, recv, true)?;
    let ln = stage1.ln_f.as_mut().expect("stage1 ln_f");
    let hl = ln.forward(s, &h1, true)?;
    let head_w = stage1.head.as_ref().expect("stage1 head").tensor.clone();
    let logits = ops::linear(s, &hl, &head_w, None, Act::None)?;
    let loss = ops::cross_entropy(s, &logits)?;
    s.free_tensor(&loss);
    s.pass_boundary(Pass::Backward);
    let g_logits = ops::cross_entropy_backward(s, &logits)?;
    let (g_hl, g_head, _) = ops::linear_backward(
        s,
        &hl,
        &stage1.head.as_ref().expect("head").tensor,
        &g_logits,
        false,
    )?;
    stage1.head.as_mut().expect("head").set_grad(s, g_head)?;
    s.free_tensor(&g_logits);
    s.free_tensor(&logits);
    let g_h1 = stage1
        .ln_f
        .as_mut()
        .expect("ln_f")
        .backward(s, &h1, &g_hl)?;
    s.free_tensor(&g_hl);
    s.free_tensor(&hl);
    let g_boundary = stage1.blocks.backward(s, g_h1)?;
    s.free_tensor(&h1);
    ops::send_recv(s, &g_boundary)?;
    s.free_tensor(&g_boundary);

    // ---- Backward: stage 0 -----------------------------------------------
    s.runtime_mut().set_device(DeviceId(0))?;
    let g_recv = s.alloc_tensor(&[batch, dims.seq, dims.d], DType::F32)?;
    ops::send_recv(s, &g_recv)?;
    let g_x0 = stage0.blocks.backward(s, g_recv)?;
    s.free_tensor(&boundary);
    let g_wpe = ops::elementwise(
        s,
        "at::native::reduce_kernel<512, ReduceAdd>",
        &[&g_x0],
        &[dims.seq, dims.d],
    )?;
    stage0.wpe.as_mut().expect("wpe").set_grad(s, g_wpe)?;
    let g_wte = ops::embedding_backward(s, &stage0.wte.as_ref().expect("wte").tensor, &idx, &g_x0)?;
    stage0.wte.as_mut().expect("wte").set_grad(s, g_wte)?;
    s.free_tensor(&g_x0);
    s.free_tensor(&idx);

    // ---- Optimizer on both stages -----------------------------------------
    s.pass_boundary(Pass::Optimizer);
    stage0.step(s)?;
    s.runtime_mut().set_device(DeviceId(1))?;
    stage1.step(s)?;

    let rep = report(s, Parallelism::Pipeline);
    s.runtime_mut().set_device(DeviceId(0))?;
    stage0.destroy(s);
    s.runtime_mut().set_device(DeviceId(1))?;
    stage1.destroy(s);
    Ok(rep)
}

/// Dispatches one training iteration under `strategy`.
///
/// # Errors
///
/// Propagates allocation/launch failures; requires ≥ 2 devices.
pub fn train_iter(
    s: &mut Session<'_>,
    strategy: Parallelism,
    batch: usize,
) -> Result<ParallelReport, AccelError> {
    match strategy {
        Parallelism::Data => train_iter_data_parallel(s, batch),
        Parallelism::Tensor => train_iter_tensor_parallel(s, batch),
        Parallelism::Pipeline => train_iter_pipeline_parallel(s, batch),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accel_sim::DeviceSpec;
    use vendor_nv::CudaContext;

    fn two_gpu_session<T>(f: impl FnOnce(&mut Session<'_>) -> T) -> T {
        let mut rt = CudaContext::new(vec![DeviceSpec::a100_80gb(), DeviceSpec::a100_80gb()]);
        let mut s = Session::new(&mut rt);
        f(&mut s)
    }

    #[test]
    fn dp_peaks_are_symmetric() {
        two_gpu_session(|s| {
            let r = train_iter_data_parallel(s, 1).unwrap();
            let (a, b) = (r.peak_allocated[0], r.peak_allocated[1]);
            let ratio = a as f64 / b as f64;
            assert!(
                (0.95..1.05).contains(&ratio),
                "DP must be symmetric: {a} vs {b}"
            );
        });
    }

    #[test]
    fn tp_halves_the_peak() {
        // Peaks are per-session high-water marks, so each strategy runs in
        // a fresh session.
        let dp = two_gpu_session(|s| train_iter_data_parallel(s, 1).unwrap());
        let tp = two_gpu_session(|s| train_iter_tensor_parallel(s, 1).unwrap());
        let ratio = tp.peak_allocated[0] as f64 / dp.peak_allocated[0] as f64;
        assert!(
            (0.35..0.75).contains(&ratio),
            "TP peak should be roughly half of DP: ratio {ratio}"
        );
        // TP stays symmetric across GPUs.
        let sym = tp.peak_allocated[0] as f64 / tp.peak_allocated[1] as f64;
        assert!((0.95..1.05).contains(&sym));
    }

    #[test]
    fn pp_is_asymmetric_with_heavier_tail_gpu() {
        two_gpu_session(|s| {
            let pp = train_iter_pipeline_parallel(s, 1).unwrap();
            assert!(
                pp.peak_allocated[1] > pp.peak_allocated[0],
                "GPU1 runs the logits head: {} vs {}",
                pp.peak_allocated[1],
                pp.peak_allocated[0]
            );
        });
    }

    #[test]
    fn all_strategies_clean_up() {
        two_gpu_session(|s| {
            for strategy in [
                Parallelism::Data,
                Parallelism::Tensor,
                Parallelism::Pipeline,
            ] {
                train_iter(s, strategy, 1).unwrap();
                s.release_workspaces();
                for d in [DeviceId(0), DeviceId(1)] {
                    assert_eq!(
                        s.allocator_stats_for(d).allocated,
                        0,
                        "{strategy:?} leaked on {d}"
                    );
                }
            }
        });
    }

    #[test]
    fn labels() {
        assert_eq!(Parallelism::Data.label(), "data-parallel");
        assert_eq!(Parallelism::Tensor.label(), "tensor-parallel");
        assert_eq!(Parallelism::Pipeline.label(), "pipeline-parallel");
    }
}
