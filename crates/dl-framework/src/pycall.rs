//! Cross-layer call stacks.
//!
//! PASTA's inefficiency-location utilities (§III-F2, Fig. 4) join the
//! Python-side stack (captured via the CPython `PyFrame` API in the real
//! system) with the native C/C++ stack (via `libbacktrace`). Here the
//! Python stack is maintained explicitly by model code, and each kernel
//! kind maps to a representative native frame chain — the same shape as
//! the paper's Fig. 4 BERT example.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One Python stack frame.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PyFrame {
    /// Source file, e.g. `"torch/nn/modules/linear.py"`.
    pub file: String,
    /// Line number.
    pub line: u32,
    /// Function, e.g. `"forward"`.
    pub func: String,
}

impl PyFrame {
    /// Creates a frame.
    pub fn new(file: impl Into<String>, line: u32, func: impl Into<String>) -> Self {
        PyFrame {
            file: file.into(),
            line,
            func: func.into(),
        }
    }
}

impl fmt::Display for PyFrame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{} {}()", self.file, self.line, self.func)
    }
}

/// One native (C/C++) frame.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NativeFrame {
    /// Source file, e.g. `"aten/src/ATen/cuda/CUDABlas.cpp"`.
    pub file: String,
    /// Line number.
    pub line: u32,
    /// Symbol, e.g. `"at::cuda::blas::gemm_and_bias"`.
    pub symbol: String,
}

impl NativeFrame {
    /// Creates a frame.
    pub fn new(file: impl Into<String>, line: u32, symbol: impl Into<String>) -> Self {
        NativeFrame {
            file: file.into(),
            line,
            symbol: symbol.into(),
        }
    }
}

impl fmt::Display for NativeFrame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{} {}", self.file, self.line, self.symbol)
    }
}

/// The live Python call stack of the simulated interpreter.
#[derive(Debug, Default, Clone)]
pub struct PyStack {
    frames: Vec<PyFrame>,
}

impl PyStack {
    /// An empty stack.
    pub fn new() -> Self {
        PyStack::default()
    }

    /// Pushes a frame (entering a Python function).
    pub fn push(&mut self, frame: PyFrame) {
        self.frames.push(frame);
    }

    /// Pops the top frame.
    pub fn pop(&mut self) -> Option<PyFrame> {
        self.frames.pop()
    }

    /// Current depth.
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// Snapshot of the stack, outermost first.
    pub fn snapshot(&self) -> Vec<PyFrame> {
        self.frames.clone()
    }
}

/// A joined Python + native stack, as printed in the paper's Fig. 4.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrossLayerStack {
    /// Python frames, outermost first.
    pub python: Vec<PyFrame>,
    /// Native frames, innermost first (backtrace order).
    pub native: Vec<NativeFrame>,
}

impl CrossLayerStack {
    /// Renders the stack in Fig. 4's two-section layout.
    pub fn render(&self) -> String {
        let mut out = String::from("── C/C++ ──\n");
        for f in &self.native {
            out.push_str(&format!("  {f}\n"));
        }
        out.push_str("── Python ──\n");
        for f in self.python.iter().rev() {
            out.push_str(&format!("  {f}\n"));
        }
        out
    }
}

/// Representative native frames for a kernel symbol, mirroring where each
/// kernel family lives in the PyTorch/ATen source tree (Fig. 4).
pub fn native_frames_for_kernel(kernel: &str) -> Vec<NativeFrame> {
    if kernel.contains("sgemm") || kernel.contains("gemm") {
        vec![
            NativeFrame::new(
                "aten/src/ATen/cuda/CUDABlas.cpp",
                771,
                "at::cuda::blas::gemm_and_bias",
            ),
            NativeFrame::new(
                "aten/src/ATen/native/cuda/Blas.cpp",
                281,
                "addmm_out_cuda_impl",
            ),
            NativeFrame::new(
                "build/aten/src/ATen/RegisterCUDA.cpp",
                17434,
                "wrapper_CUDA_addmm",
            ),
        ]
    } else if kernel.contains("im2col") || kernel.contains("col2im") {
        vec![
            NativeFrame::new(
                "aten/src/ATen/native/cuda/im2col.cuh",
                98,
                "at::native::im2col_kernel",
            ),
            NativeFrame::new(
                "aten/src/ATen/native/Convolution.cpp",
                1104,
                "at::native::_convolution",
            ),
        ]
    } else if kernel.contains("elementwise") {
        vec![NativeFrame::new(
            "aten/src/ATen/native/cuda/CUDALoops.cuh",
            321,
            "at::native::vectorized_elementwise_kernel",
        )]
    } else if kernel.contains("nccl") || kernel.contains("rccl") {
        vec![NativeFrame::new(
            "torch/csrc/distributed/c10d/ProcessGroupNCCL.cpp",
            2113,
            "c10d::ProcessGroupNCCL::allreduce",
        )]
    } else {
        vec![NativeFrame::new(
            "aten/src/ATen/native/cuda/DispatchStub.cpp",
            55,
            "at::native::DispatchStub::call",
        )]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_push_pop() {
        let mut s = PyStack::new();
        s.push(PyFrame::new("run_bert.py", 177, "<module>"));
        s.push(PyFrame::new("run_bert.py", 146, "test_bert"));
        assert_eq!(s.depth(), 2);
        let snap = s.snapshot();
        assert_eq!(snap[0].func, "<module>");
        assert_eq!(s.pop().unwrap().func, "test_bert");
        assert_eq!(s.depth(), 1);
    }

    #[test]
    fn gemm_kernels_map_to_cublas_frames() {
        let frames = native_frames_for_kernel("ampere_sgemm_128x64_tn");
        assert!(
            frames.iter().any(|f| f.symbol.contains("gemm_and_bias")),
            "Fig. 4's hot frame"
        );
    }

    #[test]
    fn unknown_kernels_get_dispatch_stub() {
        let frames = native_frames_for_kernel("mystery_kernel_42");
        assert_eq!(frames.len(), 1);
        assert!(frames[0].symbol.contains("DispatchStub"));
    }

    #[test]
    fn render_has_both_sections() {
        let s = CrossLayerStack {
            python: vec![PyFrame::new("a.py", 1, "main")],
            native: native_frames_for_kernel("sgemm"),
        };
        let r = s.render();
        assert!(r.contains("── C/C++ ──"));
        assert!(r.contains("── Python ──"));
        assert!(r.contains("a.py:1 main()"));
        assert!(r.contains("CUDABlas.cpp"));
    }

    #[test]
    fn frame_display() {
        let f = PyFrame::new("m.py", 3, "f");
        assert_eq!(f.to_string(), "m.py:3 f()");
        let n = NativeFrame::new("x.cpp", 9, "ns::sym");
        assert_eq!(n.to_string(), "x.cpp:9 ns::sym");
    }
}
