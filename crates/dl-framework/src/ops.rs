//! Operators: tensor-shaped computations lowered to simulated kernels.
//!
//! Each operator allocates its outputs through the caching allocator,
//! brackets itself in `RecordFunction`-style events, and launches kernels
//! whose names, launch geometry, FLOPs and memory traffic are derived from
//! the tensor shapes — the population PASTA's tools observe. Kernel names
//! follow the ATen/cuBLAS conventions visible in the paper's Fig. 4 and
//! Fig. 7 (`ampere_sgemm_128x64_tn`, `at::native::im2col_kernel`,
//! `at::native::vectorized_elementwise_kernel`, …).

use crate::dtype::DType;
use crate::session::Session;
use crate::tensor::Tensor;
use accel_sim::{
    AccelError, AccessKind, AccessPattern, AccessSpec, Dim3, KernelBody, KernelDesc, MemSpace,
};

/// Fused activation applied in a GEMM epilogue (when the backend fuses).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Act {
    /// No activation.
    None,
    /// ReLU.
    Relu,
    /// GELU (tanh approximation).
    Gelu,
}

impl Act {
    fn kernel_suffix(self) -> &'static str {
        match self {
            Act::None => "",
            Act::Relu => "_relu",
            Act::Gelu => "_gelu",
        }
    }

    fn elementwise_name(self) -> &'static str {
        match self {
            Act::None => "at::native::vectorized_elementwise_kernel<copy>",
            Act::Relu => "at::native::vectorized_elementwise_kernel<relu>",
            Act::Gelu => "at::native::vectorized_elementwise_kernel<gelu>",
        }
    }
}

fn ceil_div(a: u64, b: u64) -> u64 {
    a.div_ceil(b)
}

/// Standard 256-thread launch over `work` items.
fn launch_cfg(work: u64) -> (Dim3, Dim3) {
    let blocks = ceil_div(work.max(1), 256).min(u32::MAX as u64) as u32;
    (Dim3::linear(blocks.max(1)), Dim3::linear(256))
}

/// GEMM tile edge used for reuse estimates.
const TILE: u64 = 128;

/// Launches a GEMM kernel `C[m,n] = A[m,k] × B[k,n]`, with optional fused
/// bias/activation epilogue. Memory traffic uses the tiled-reuse estimate:
/// A is streamed `⌈n/T⌉` times, B `⌈m/T⌉` times.
#[allow(clippy::too_many_arguments)]
pub fn gemm_kernel(
    s: &mut Session<'_>,
    tile_label: &str,
    a: &Tensor,
    b: &Tensor,
    c: &Tensor,
    m: u64,
    n: u64,
    k: u64,
    bias: Option<&Tensor>,
    act: Act,
) -> Result<(), AccelError> {
    let a_bytes = m * k * 4 * ceil_div(n, TILE).max(1);
    let b_bytes = k * n * 4 * ceil_div(m, TILE).max(1);
    let c_bytes = m * n * 4;
    let fused = s.backend().fused_epilogue && (bias.is_some() || act != Act::None);
    // The fused (cuBLASLt) path routes through a session-cached workspace
    // sized by the largest GEMM seen so far; it stays live for the whole
    // session, which is the NVIDIA side of the paper's Fig. 14 peak-memory
    // contrast.
    let workspace = if s.backend().fused_epilogue {
        Some(s.ensure_gemm_workspace((c_bytes / 4).clamp(4 << 20, 512 << 20))?)
    } else {
        None
    };
    let name = if fused {
        format!(
            "{}{}",
            s.backend().gemm_kernel(&format!("{tile_label}_tn")),
            act.kernel_suffix()
        )
    } else {
        s.backend().gemm_kernel(&format!("{tile_label}_tn"))
    };
    let grid = Dim3::plane(
        ceil_div(n, TILE).max(1) as u32,
        ceil_div(m, 64).max(1) as u32,
    );
    let mut desc = KernelDesc::new(name, grid, Dim3::linear(256))
        .arg(a.ptr, a.bytes)
        .arg(b.ptr, b.bytes)
        .arg(c.ptr, c.bytes);
    let mut body = KernelBody::default()
        .with_flops(2 * m * n * k)
        .with_barriers((k / 16).max(1) as u32)
        .with_shared_mem(48 << 10)
        .access(AccessSpec::load(0, a.bytes.min(m * k * 4)).with_bytes(a_bytes))
        .access(AccessSpec::load(1, b.bytes.min(k * n * 4)).with_bytes(b_bytes))
        .access(AccessSpec::store(2, c_bytes.min(c.bytes)).with_bytes(c_bytes))
        // Shared-memory staging traffic for the tiles.
        .access(
            AccessSpec::load(0, (TILE * TILE * 4).min(a.bytes))
                .with_bytes(a_bytes / 2)
                .in_space(MemSpace::Shared),
        );
    if fused {
        if let Some(bias) = bias {
            desc = desc.arg(bias.ptr, bias.bytes);
            body = body.access(
                AccessSpec::load(3, bias.bytes).with_bytes(bias.bytes * ceil_div(m, TILE).max(1)),
            );
        }
    }
    if let Some(ws) = &workspace {
        let idx = desc.args.len();
        desc = desc.arg(ws.ptr, ws.bytes);
        body = body.access(AccessSpec::load(idx, ws.bytes.min(c_bytes)).with_bytes(c_bytes / 8));
    }
    s.launch(desc.body(body))?;

    // Unfused backends run separate bias-add / activation kernels with
    // out-of-place temporaries — more launches and more tensor alloc/free
    // events (the AMD pattern of Fig. 14).
    if !fused {
        unfused_epilogue(s, c, bias, act)?;
    }
    Ok(())
}

/// The decomposed (MIOpen/rocBLAS-style) epilogue: a separate bias-add
/// kernel through a transient output and an out-of-place activation with a
/// scratch tensor — two extra launches and up to four extra tensor
/// alloc/free events per GEMM/conv.
fn unfused_epilogue(
    s: &mut Session<'_>,
    c: &Tensor,
    bias: Option<&Tensor>,
    act: Act,
) -> Result<(), AccelError> {
    if let Some(bias) = bias {
        let tmp = s.alloc_tensor(&c.shape, DType::F32)?;
        let (g, blk) = launch_cfg(c.numel() / 4);
        let desc = KernelDesc::new(
            "at::native::vectorized_elementwise_kernel<add_bias>",
            g,
            blk,
        )
        .arg(c.ptr, c.bytes)
        .arg(bias.ptr, bias.bytes)
        .arg(tmp.ptr, tmp.bytes)
        .body(
            KernelBody::default()
                .with_flops(c.numel())
                .access(AccessSpec::load(0, c.bytes))
                .access(AccessSpec::load(1, bias.bytes).with_bytes(bias.bytes * 64))
                .access(AccessSpec::store(2, tmp.bytes)),
        );
        s.launch(desc)?;
        s.free_tensor(&tmp);
    }
    if act != Act::None {
        let scratch = s.alloc_tensor(&c.shape, DType::F32)?;
        let (g, blk) = launch_cfg(c.numel() / 4);
        let desc = KernelDesc::new(act.elementwise_name(), g, blk)
            .arg(c.ptr, c.bytes)
            .arg(scratch.ptr, scratch.bytes)
            .body(
                KernelBody::default()
                    .with_flops(c.numel())
                    .access(AccessSpec::load(0, c.bytes))
                    .access(AccessSpec::store(1, scratch.bytes)),
            );
        s.launch(desc)?;
        s.free_tensor(&scratch);
    }
    Ok(())
}

/// In-place elementwise kernel over one tensor (activation, scale, …).
pub fn elementwise_inplace(s: &mut Session<'_>, name: &str, t: &Tensor) -> Result<(), AccelError> {
    let (g, blk) = launch_cfg(t.numel() / 4);
    let desc = KernelDesc::new(name, g, blk).arg(t.ptr, t.bytes).body(
        KernelBody::default()
            .with_flops(t.numel())
            .access(AccessSpec::load(0, t.bytes))
            .access(AccessSpec::store(0, t.bytes)),
    );
    s.launch(desc)?;
    Ok(())
}

/// Elementwise kernel reading `inputs` and writing a fresh output of
/// `shape` (binary add, dropout, casts, …).
pub fn elementwise(
    s: &mut Session<'_>,
    name: &str,
    inputs: &[&Tensor],
    shape: &[usize],
) -> Result<Tensor, AccelError> {
    let out = s.alloc_tensor(shape, DType::F32)?;
    let (g, blk) = launch_cfg(out.numel() / 4);
    let mut desc = KernelDesc::new(name, g, blk);
    let mut body = KernelBody::default().with_flops(out.numel());
    for (i, t) in inputs.iter().enumerate() {
        desc = desc.arg(t.ptr, t.bytes);
        body = body.access(AccessSpec::load(i, t.bytes));
    }
    desc = desc.arg(out.ptr, out.bytes);
    body = body.access(AccessSpec::store(inputs.len(), out.bytes));
    s.launch(desc.body(body))?;
    Ok(out)
}

/// `aten::linear`: `y = x·Wᵀ + b`, with optional fused activation.
///
/// `x: [batch…, in]`, `w: [out, in]` → `y: [batch…, out]`.
pub fn linear(
    s: &mut Session<'_>,
    x: &Tensor,
    w: &Tensor,
    bias: Option<&Tensor>,
    act: Act,
) -> Result<Tensor, AccelError> {
    let in_f = *x.shape.last().expect("linear input has a last dim");
    let out_f = w.shape[0];
    debug_assert_eq!(w.shape[1], in_f, "weight shape mismatch");
    let m = x.numel() / in_f as u64;
    let mut out_shape = x.shape.clone();
    *out_shape.last_mut().expect("shape non-empty") = out_f;
    s.with_op("aten::linear", |s| {
        let y = s.alloc_tensor(&out_shape, DType::F32)?;
        gemm_kernel(
            s,
            "128x64",
            x,
            w,
            &y,
            m,
            out_f as u64,
            in_f as u64,
            bias,
            act,
        )?;
        Ok(y)
    })
}

/// Backward of [`linear`]: returns `(grad_x, grad_w, grad_b)`.
pub fn linear_backward(
    s: &mut Session<'_>,
    x: &Tensor,
    w: &Tensor,
    grad_out: &Tensor,
    want_bias: bool,
) -> Result<(Tensor, Tensor, Option<Tensor>), AccelError> {
    let in_f = *x.shape.last().expect("shape") as u64;
    let out_f = w.shape[0] as u64;
    let m = x.numel() / in_f;
    s.with_op("aten::linear_backward", |s| {
        // dX[m,k] = dY[m,n] × W[n,k]  (data-grad GEMM, "nt" flavour).
        let grad_x = s.alloc_tensor(&x.shape, DType::F32)?;
        gemm_kernel(
            s,
            "128x64_dgrad",
            grad_out,
            w,
            &grad_x,
            m,
            in_f,
            out_f,
            None,
            Act::None,
        )?;
        // dW[n,k] = dYᵀ[n,m] × X[m,k]  (weight-grad GEMM, "nn" flavour).
        let grad_w = s.alloc_tensor(&w.shape, DType::F32)?;
        gemm_kernel(
            s,
            "128x64_wgrad",
            grad_out,
            x,
            &grad_w,
            out_f,
            in_f,
            m,
            None,
            Act::None,
        )?;
        // db = column-reduce dY.
        let grad_b = if want_bias {
            let gb = s.alloc_tensor(&[out_f as usize], DType::F32)?;
            let (g, blk) = launch_cfg(out_f);
            let desc = KernelDesc::new("at::native::reduce_kernel<512, ReduceAdd>", g, blk)
                .arg(grad_out.ptr, grad_out.bytes)
                .arg(gb.ptr, gb.bytes)
                .body(
                    KernelBody::default()
                        .with_flops(grad_out.numel())
                        .access(AccessSpec::load(0, grad_out.bytes))
                        .access(AccessSpec::store(1, gb.bytes)),
                );
            s.launch(desc)?;
            Some(gb)
        } else {
            None
        };
        Ok((grad_x, grad_w, grad_b))
    })
}

/// Convolution configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dCfg {
    /// Input channels.
    pub cin: usize,
    /// Output channels.
    pub cout: usize,
    /// Square kernel edge.
    pub k: usize,
    /// Stride.
    pub stride: usize,
    /// Zero padding.
    pub pad: usize,
}

impl Conv2dCfg {
    /// Output spatial edge for an input edge `h`.
    pub fn out_edge(&self, h: usize) -> usize {
        (h + 2 * self.pad - self.k) / self.stride + 1
    }
}

/// `aten::conv2d` via im2col+GEMM for large kernels (the AlexNet path —
/// `at::native::im2col_kernel` is one of the paper's hottest kernels) or
/// implicit GEMM for small kernels (the ResNet path).
///
/// `x: [n, cin, h, w]` → `[n, cout, oh, ow]`.
pub fn conv2d(
    s: &mut Session<'_>,
    x: &Tensor,
    w: &Tensor,
    bias: Option<&Tensor>,
    cfg: Conv2dCfg,
    act: Act,
) -> Result<Tensor, AccelError> {
    let (n, h) = (x.shape[0], x.shape[2]);
    let oh = cfg.out_edge(h);
    let ow = cfg.out_edge(x.shape[3]);
    let out_shape = [n, cfg.cout, oh, ow];
    let m = cfg.cout as u64;
    let kk = (cfg.cin * cfg.k * cfg.k) as u64;
    let nn = (n * oh * ow) as u64;
    s.with_op("aten::conv2d", |s| {
        let y = s.alloc_tensor(&out_shape, DType::F32)?;
        if cfg.k >= 5 {
            // Explicit im2col: materialize the column buffer (a large
            // transient tensor — exactly the kind of allocation that makes
            // object-level prefetching move dead weight).
            let col = s.alloc_tensor(&[n, cfg.cin * cfg.k * cfg.k, oh * ow], DType::F32)?;
            let (g, blk) = launch_cfg(col.numel() / 4);
            let desc = KernelDesc::new("at::native::im2col_kernel", g, blk)
                .arg(x.ptr, x.bytes)
                .arg(col.ptr, col.bytes)
                .body(
                    KernelBody::default()
                        .with_flops(col.numel())
                        .access(AccessSpec::load(0, x.bytes).with_bytes(col.bytes))
                        .access(AccessSpec::store(1, col.bytes)),
                );
            s.launch(desc)?;
            gemm_kernel(s, "128x64", w, &col, &y, m, nn, kk, bias, act)?;
            s.free_tensor(&col);
        } else {
            // Implicit GEMM with a cuDNN-style workspace whose size depends
            // on the backend's workspace factor (the Fig. 14 peak-memory
            // contrast).
            let ws_bytes =
                ((kk * nn.min(4096) * 4) as f64 * s.backend().conv_workspace_factor) as u64;
            let ws = s.alloc_tensor(&[(ws_bytes / 4) as usize], DType::F32)?;
            let grid = Dim3::plane(
                ceil_div(nn, TILE).max(1) as u32,
                ceil_div(m, 64).max(1) as u32,
            );
            let fused = s.backend().fused_epilogue;
            let name = if fused && (bias.is_some() || act != Act::None) {
                format!("implicit_convolve_sgemm{}", act.kernel_suffix())
            } else {
                "implicit_convolve_sgemm".to_owned()
            };
            let mut desc = KernelDesc::new(name, grid, Dim3::linear(256))
                .arg(x.ptr, x.bytes)
                .arg(w.ptr, w.bytes)
                .arg(y.ptr, y.bytes)
                .arg(ws.ptr, ws.bytes);
            let mut body = KernelBody::default()
                .with_flops(2 * m * nn * kk)
                .with_barriers((kk / 16).max(1) as u32)
                .with_shared_mem(32 << 10)
                .access(AccessSpec::load(0, x.bytes).with_bytes(x.bytes * (cfg.k * cfg.k) as u64))
                .access(AccessSpec::load(1, w.bytes).with_bytes(w.bytes * ceil_div(nn, TILE)))
                .access(AccessSpec::store(2, y.bytes))
                .access(AccessSpec::load(3, ws.bytes).with_bytes(ws.bytes / 2));
            if fused {
                if let Some(b) = bias {
                    desc = desc.arg(b.ptr, b.bytes);
                    body = body.access(AccessSpec::load(4, b.bytes));
                }
            }
            s.launch(desc.body(body))?;
            s.free_tensor(&ws);
            if !fused {
                unfused_epilogue(s, &y, bias, act)?;
            }
        }
        Ok(y)
    })
}

/// Backward of [`conv2d`]: returns `(grad_x, grad_w, grad_b)`.
pub fn conv2d_backward(
    s: &mut Session<'_>,
    x: &Tensor,
    w: &Tensor,
    grad_out: &Tensor,
    cfg: Conv2dCfg,
) -> Result<(Tensor, Tensor, Tensor), AccelError> {
    let n = x.shape[0];
    let (oh, ow) = (grad_out.shape[2], grad_out.shape[3]);
    let m = cfg.cout as u64;
    let kk = (cfg.cin * cfg.k * cfg.k) as u64;
    let nn = (n * oh * ow) as u64;
    s.with_op("aten::convolution_backward", |s| {
        let grad_x = s.alloc_tensor(&x.shape, DType::F32)?;
        let grad_w = s.alloc_tensor(&w.shape, DType::F32)?;
        let grad_b = s.alloc_tensor(&[cfg.cout], DType::F32)?;
        // dgrad: dX = Wᵀ ⊛ dY (col2im path for the large-kernel flavour).
        gemm_kernel(
            s,
            "128x64_dgrad",
            w,
            grad_out,
            &grad_x,
            kk,
            nn,
            m,
            None,
            Act::None,
        )?;
        if cfg.k >= 5 {
            let (g, blk) = launch_cfg(grad_x.numel() / 4);
            let desc = KernelDesc::new("at::native::col2im_kernel", g, blk)
                .arg(grad_x.ptr, grad_x.bytes)
                .body(
                    KernelBody::default()
                        .with_flops(grad_x.numel())
                        .access(AccessSpec::load(0, grad_x.bytes))
                        .access(AccessSpec::store(0, grad_x.bytes)),
                );
            s.launch(desc)?;
        }
        // wgrad: dW = dY × Xᵀ.
        gemm_kernel(
            s,
            "128x64_wgrad",
            grad_out,
            x,
            &grad_w,
            m,
            kk,
            nn,
            None,
            Act::None,
        )?;
        // bias grad.
        let (g, blk) = launch_cfg(m);
        let desc = KernelDesc::new("at::native::reduce_kernel<512, ReduceAdd>", g, blk)
            .arg(grad_out.ptr, grad_out.bytes)
            .arg(grad_b.ptr, grad_b.bytes)
            .body(
                KernelBody::default()
                    .with_flops(grad_out.numel())
                    .access(AccessSpec::load(0, grad_out.bytes))
                    .access(AccessSpec::store(1, grad_b.bytes)),
            );
        s.launch(desc)?;
        Ok((grad_x, grad_w, grad_b))
    })
}

/// `aten::max_pool2d` (square window).
pub fn maxpool2d(
    s: &mut Session<'_>,
    x: &Tensor,
    k: usize,
    stride: usize,
) -> Result<Tensor, AccelError> {
    let (n, c, h, w) = (x.shape[0], x.shape[1], x.shape[2], x.shape[3]);
    let oh = (h - k) / stride + 1;
    let ow = (w - k) / stride + 1;
    s.with_op("aten::max_pool2d", |s| {
        let y = s.alloc_tensor(&[n, c, oh, ow], DType::F32)?;
        let (g, blk) = launch_cfg(y.numel() / 4);
        let desc = KernelDesc::new(
            "at::native::(anonymous namespace)::max_pool_forward_nchw",
            g,
            blk,
        )
        .arg(x.ptr, x.bytes)
        .arg(y.ptr, y.bytes)
        .body(
            KernelBody::default()
                .with_flops(y.numel() * (k * k) as u64)
                .access(AccessSpec::load(0, x.bytes))
                .access(AccessSpec::store(1, y.bytes)),
        );
        s.launch(desc)?;
        Ok(y)
    })
}

/// Backward of [`maxpool2d`].
pub fn maxpool2d_backward(
    s: &mut Session<'_>,
    x: &Tensor,
    grad_out: &Tensor,
) -> Result<Tensor, AccelError> {
    s.with_op("aten::max_pool2d_backward", |s| {
        let grad_x = s.alloc_tensor(&x.shape, DType::F32)?;
        let (g, blk) = launch_cfg(grad_x.numel() / 4);
        let desc = KernelDesc::new(
            "at::native::(anonymous namespace)::max_pool_backward_nchw",
            g,
            blk,
        )
        .arg(grad_out.ptr, grad_out.bytes)
        .arg(grad_x.ptr, grad_x.bytes)
        .body(
            KernelBody::default()
                .with_flops(grad_x.numel())
                .access(AccessSpec::load(0, grad_out.bytes))
                .access(AccessSpec::store(1, grad_x.bytes)),
        );
        s.launch(desc)?;
        Ok(grad_x)
    })
}

/// `aten::batch_norm` forward: two kernels (statistics + transform),
/// matching cuDNN's decomposition.
pub fn batchnorm2d(
    s: &mut Session<'_>,
    x: &Tensor,
    gamma: &Tensor,
    beta: &Tensor,
) -> Result<Tensor, AccelError> {
    s.with_op("aten::batch_norm", |s| {
        let y = s.alloc_tensor(&x.shape, DType::F32)?;
        let c = x.shape[1];
        let (g, blk) = launch_cfg(x.numel() / 8);
        let stats = KernelDesc::new(
            "at::native::batch_norm_collect_statistics_kernel",
            Dim3::linear(c as u32),
            blk,
        )
        .arg(x.ptr, x.bytes)
        .body(
            KernelBody::default()
                .with_flops(2 * x.numel())
                .with_barriers(4)
                .access(AccessSpec::load(0, x.bytes)),
        );
        s.launch(stats)?;
        let transform = KernelDesc::new("at::native::batch_norm_transform_input_kernel", g, blk)
            .arg(x.ptr, x.bytes)
            .arg(y.ptr, y.bytes)
            .arg(gamma.ptr, gamma.bytes)
            .arg(beta.ptr, beta.bytes)
            .body(
                KernelBody::default()
                    .with_flops(2 * x.numel())
                    .access(AccessSpec::load(0, x.bytes))
                    .access(AccessSpec::store(1, y.bytes))
                    .access(AccessSpec::load(2, gamma.bytes))
                    .access(AccessSpec::load(3, beta.bytes)),
            );
        s.launch(transform)?;
        Ok(y)
    })
}

/// Backward of [`batchnorm2d`]: returns `(grad_x, grad_gamma, grad_beta)`.
pub fn batchnorm2d_backward(
    s: &mut Session<'_>,
    x: &Tensor,
    grad_out: &Tensor,
) -> Result<(Tensor, Tensor, Tensor), AccelError> {
    let c = x.shape[1];
    s.with_op("aten::batch_norm_backward", |s| {
        let grad_x = s.alloc_tensor(&x.shape, DType::F32)?;
        let grad_gamma = s.alloc_tensor(&[c], DType::F32)?;
        let grad_beta = s.alloc_tensor(&[c], DType::F32)?;
        let (g, blk) = launch_cfg(x.numel() / 8);
        let desc = KernelDesc::new("at::native::batch_norm_backward_kernel", g, blk)
            .arg(x.ptr, x.bytes)
            .arg(grad_out.ptr, grad_out.bytes)
            .arg(grad_x.ptr, grad_x.bytes)
            .arg(grad_gamma.ptr, grad_gamma.bytes)
            .arg(grad_beta.ptr, grad_beta.bytes)
            .body(
                KernelBody::default()
                    .with_flops(4 * x.numel())
                    .with_barriers(4)
                    .access(AccessSpec::load(0, x.bytes))
                    .access(AccessSpec::load(1, grad_out.bytes))
                    .access(AccessSpec::store(2, grad_x.bytes))
                    .access(AccessSpec::store(3, grad_gamma.bytes))
                    .access(AccessSpec::store(4, grad_beta.bytes)),
            );
        s.launch(desc)?;
        Ok((grad_x, grad_gamma, grad_beta))
    })
}

/// `aten::layer_norm` over the last dimension.
pub fn layernorm(
    s: &mut Session<'_>,
    x: &Tensor,
    gamma: &Tensor,
    beta: &Tensor,
) -> Result<Tensor, AccelError> {
    s.with_op("aten::layer_norm", |s| {
        let y = s.alloc_tensor(&x.shape, DType::F32)?;
        let rows = x.numel() / *x.shape.last().expect("rank>0") as u64;
        let desc = KernelDesc::new(
            "at::native::(anonymous namespace)::vectorized_layer_norm_kernel",
            Dim3::linear(rows.min(u32::MAX as u64) as u32),
            Dim3::linear(256),
        )
        .arg(x.ptr, x.bytes)
        .arg(y.ptr, y.bytes)
        .arg(gamma.ptr, gamma.bytes)
        .arg(beta.ptr, beta.bytes)
        .body(
            KernelBody::default()
                .with_flops(4 * x.numel())
                .with_barriers(2)
                .access(AccessSpec::load(0, x.bytes))
                .access(AccessSpec::store(1, y.bytes))
                .access(AccessSpec::load(2, gamma.bytes).with_bytes(gamma.bytes * rows))
                .access(AccessSpec::load(3, beta.bytes).with_bytes(beta.bytes * rows)),
        );
        s.launch(desc)?;
        Ok(y)
    })
}

/// Backward of [`layernorm`]: returns `(grad_x, grad_gamma, grad_beta)`.
pub fn layernorm_backward(
    s: &mut Session<'_>,
    x: &Tensor,
    grad_out: &Tensor,
    width: usize,
) -> Result<(Tensor, Tensor, Tensor), AccelError> {
    s.with_op("aten::layer_norm_backward", |s| {
        let grad_x = s.alloc_tensor(&x.shape, DType::F32)?;
        let grad_gamma = s.alloc_tensor(&[width], DType::F32)?;
        let grad_beta = s.alloc_tensor(&[width], DType::F32)?;
        let (g, blk) = launch_cfg(x.numel() / 4);
        let desc = KernelDesc::new("at::native::layer_norm_grad_input_kernel", g, blk)
            .arg(x.ptr, x.bytes)
            .arg(grad_out.ptr, grad_out.bytes)
            .arg(grad_x.ptr, grad_x.bytes)
            .arg(grad_gamma.ptr, grad_gamma.bytes)
            .arg(grad_beta.ptr, grad_beta.bytes)
            .body(
                KernelBody::default()
                    .with_flops(6 * x.numel())
                    .with_barriers(2)
                    .access(AccessSpec::load(0, x.bytes))
                    .access(AccessSpec::load(1, grad_out.bytes))
                    .access(AccessSpec::store(2, grad_x.bytes))
                    .access(AccessSpec::store(3, grad_gamma.bytes))
                    .access(AccessSpec::store(4, grad_beta.bytes)),
            );
        s.launch(desc)?;
        Ok((grad_x, grad_gamma, grad_beta))
    })
}

/// `aten::softmax` over the last dimension (fresh output tensor).
pub fn softmax(s: &mut Session<'_>, x: &Tensor) -> Result<Tensor, AccelError> {
    s.with_op("aten::softmax", |s| {
        let y = s.alloc_tensor(&x.shape, DType::F32)?;
        let rows = x.numel() / *x.shape.last().expect("rank>0") as u64;
        let desc = KernelDesc::new(
            "at::native::(anonymous namespace)::cunn_SoftMaxForward",
            Dim3::linear(rows.min(u32::MAX as u64).max(1) as u32),
            Dim3::linear(128),
        )
        .arg(x.ptr, x.bytes)
        .arg(y.ptr, y.bytes)
        .body(
            KernelBody::default()
                .with_flops(3 * x.numel())
                .with_barriers(2)
                .access(AccessSpec::load(0, x.bytes))
                .access(AccessSpec::store(1, y.bytes)),
        );
        s.launch(desc)?;
        Ok(y)
    })
}

/// Backward of [`softmax`].
pub fn softmax_backward(
    s: &mut Session<'_>,
    y: &Tensor,
    grad_out: &Tensor,
) -> Result<Tensor, AccelError> {
    s.with_op("aten::softmax_backward", |s| {
        let grad_x = s.alloc_tensor(&y.shape, DType::F32)?;
        let (g, blk) = launch_cfg(y.numel() / 4);
        let desc = KernelDesc::new("at::native::cunn_SoftMaxBackward", g, blk)
            .arg(y.ptr, y.bytes)
            .arg(grad_out.ptr, grad_out.bytes)
            .arg(grad_x.ptr, grad_x.bytes)
            .body(
                KernelBody::default()
                    .with_flops(3 * y.numel())
                    .access(AccessSpec::load(0, y.bytes))
                    .access(AccessSpec::load(1, grad_out.bytes))
                    .access(AccessSpec::store(2, grad_x.bytes)),
            );
        s.launch(desc)?;
        Ok(grad_x)
    })
}

/// `aten::embedding`: gather rows of `table[vocab, dim]` for
/// `indices: [batch…] (i64)` → `[batch…, dim]`.
pub fn embedding(
    s: &mut Session<'_>,
    table: &Tensor,
    indices: &Tensor,
) -> Result<Tensor, AccelError> {
    let dim = table.shape[1];
    let mut out_shape = indices.shape.clone();
    out_shape.push(dim);
    s.with_op("aten::embedding", |s| {
        let y = s.alloc_tensor(&out_shape, DType::F32)?;
        let (g, blk) = launch_cfg(y.numel() / 4);
        let desc = KernelDesc::new(
            "at::native::(anonymous namespace)::indexSelectLargeIndex",
            g,
            blk,
        )
        .arg(table.ptr, table.bytes)
        .arg(indices.ptr, indices.bytes)
        .arg(y.ptr, y.bytes)
        .body(
            KernelBody::default()
                .with_flops(y.numel())
                // Gathers over the whole table extent, data-dependent.
                .access(
                    AccessSpec::load(0, table.bytes)
                        .with_bytes(y.bytes)
                        .with_pattern(AccessPattern::Random),
                )
                .access(AccessSpec::load(1, indices.bytes))
                .access(AccessSpec::store(2, y.bytes)),
        );
        s.launch(desc)?;
        Ok(y)
    })
}

/// Backward of [`embedding`]: scatter-add into the table gradient.
pub fn embedding_backward(
    s: &mut Session<'_>,
    table: &Tensor,
    indices: &Tensor,
    grad_out: &Tensor,
) -> Result<Tensor, AccelError> {
    s.with_op("aten::embedding_dense_backward", |s| {
        let grad_table = s.alloc_tensor(&table.shape, DType::F32)?;
        let (g, blk) = launch_cfg(grad_out.numel() / 4);
        let desc = KernelDesc::new("at::native::embedding_backward_kernel", g, blk)
            .arg(grad_out.ptr, grad_out.bytes)
            .arg(indices.ptr, indices.bytes)
            .arg(grad_table.ptr, grad_table.bytes)
            .body(
                KernelBody::default()
                    .with_flops(grad_out.numel())
                    .access(AccessSpec::load(0, grad_out.bytes))
                    .access(AccessSpec::load(1, indices.bytes))
                    .access(
                        AccessSpec {
                            kind: AccessKind::Atomic,
                            ..AccessSpec::store(2, grad_table.bytes)
                        }
                        .with_bytes(grad_out.bytes)
                        .with_pattern(AccessPattern::Random),
                    ),
            );
        s.launch(desc)?;
        Ok(grad_table)
    })
}

/// Cross-entropy forward over `logits: [rows, classes]` → scalar loss.
pub fn cross_entropy(s: &mut Session<'_>, logits: &Tensor) -> Result<Tensor, AccelError> {
    s.with_op("aten::cross_entropy_loss", |s| {
        let sm = softmax(s, logits)?;
        let loss = s.alloc_tensor(&[1], DType::F32)?;
        let rows = logits.numel() / *logits.shape.last().expect("rank>0") as u64;
        let desc = KernelDesc::new(
            "at::native::(anonymous namespace)::nll_loss_forward_reduce_cuda_kernel_2d",
            Dim3::linear(1),
            Dim3::linear(256),
        )
        .arg(sm.ptr, sm.bytes)
        .arg(loss.ptr, loss.bytes)
        .body(
            KernelBody::default()
                .with_flops(rows)
                .access(AccessSpec::load(0, sm.bytes).with_bytes(rows * 4))
                .access(AccessSpec::store(1, loss.bytes)),
        );
        s.launch(desc)?;
        s.free_tensor(&sm);
        Ok(loss)
    })
}

/// Cross-entropy backward: gradient of the logits.
pub fn cross_entropy_backward(s: &mut Session<'_>, logits: &Tensor) -> Result<Tensor, AccelError> {
    s.with_op("aten::nll_loss_backward", |s| {
        let grad = s.alloc_tensor(&logits.shape, DType::F32)?;
        let (g, blk) = launch_cfg(grad.numel() / 4);
        let desc = KernelDesc::new(
            "at::native::nll_loss_backward_reduce_cuda_kernel_2d",
            g,
            blk,
        )
        .arg(logits.ptr, logits.bytes)
        .arg(grad.ptr, grad.bytes)
        .body(
            KernelBody::default()
                .with_flops(grad.numel())
                .access(AccessSpec::load(0, logits.bytes))
                .access(AccessSpec::store(1, grad.bytes)),
        );
        s.launch(desc)?;
        Ok(grad)
    })
}

/// One fused Adam step over a parameter/gradient/moment quartet
/// (`multi_tensor_apply`, as in `torch.optim.Adam(fused=True)`).
pub fn adam_step(
    s: &mut Session<'_>,
    param: &Tensor,
    grad: &Tensor,
    m: &Tensor,
    v: &Tensor,
) -> Result<(), AccelError> {
    s.with_op("aten::_fused_adam_", |s| {
        let (g, blk) = launch_cfg(param.numel() / 4);
        let desc = KernelDesc::new(
            "at::native::(anonymous namespace)::multi_tensor_apply_kernel<adam>",
            g,
            blk,
        )
        .arg(param.ptr, param.bytes)
        .arg(grad.ptr, grad.bytes)
        .arg(m.ptr, m.bytes)
        .arg(v.ptr, v.bytes)
        .body(
            KernelBody::default()
                .with_flops(8 * param.numel())
                .access(AccessSpec::load(0, param.bytes))
                .access(AccessSpec::store(0, param.bytes))
                .access(AccessSpec::load(1, grad.bytes))
                .access(AccessSpec::load(2, m.bytes))
                .access(AccessSpec::store(2, m.bytes))
                .access(AccessSpec::load(3, v.bytes))
                .access(AccessSpec::store(3, v.bytes)),
        );
        s.launch(desc)?;
        Ok(())
    })
}

/// A ring all-reduce collective over `t` (NCCL/RCCL flavoured name).
pub fn allreduce(s: &mut Session<'_>, t: &Tensor) -> Result<(), AccelError> {
    let name = s.backend().collective_kernel("AllReduce_RING_LL");
    s.with_op("c10d::allreduce_", |s| {
        let (g, blk) = launch_cfg(t.numel() / 8);
        let desc = KernelDesc::new(name.clone(), g, blk)
            .arg(t.ptr, t.bytes)
            .body(
                KernelBody::default()
                    .with_flops(t.numel())
                    // Ring all-reduce moves ~2× the payload per rank.
                    .access(AccessSpec::load(0, t.bytes).with_bytes(2 * t.bytes))
                    .access(AccessSpec::store(0, t.bytes)),
            );
        s.launch(desc)?;
        Ok(())
    })
}

/// All-to-all token exchange (MoE expert routing): `t`'s payload is
/// partitioned uniformly across `world` ranks, and every non-local
/// slice crosses the peer fabric as a `DeviceToDevice` copy — which the
/// engine prices over the peer matrix (`DeviceSpec::p2p_bandwidth_gbps`)
/// — followed by one AllToAll collective kernel touching the full
/// buffer (the pack/unpack traffic). Deterministic per lane: the slice
/// sizes depend only on `t` and `world`, never on peer timing, so the
/// sequential reference reproduces the exact stream.
pub fn all_to_all(s: &mut Session<'_>, t: &Tensor, world: usize) -> Result<(), AccelError> {
    let world = world.max(1);
    let name = s.backend().collective_kernel("AllToAll");
    s.with_op("c10d::all_to_all_single", |s| {
        let per_rank = t.bytes / world as u64;
        if per_rank > 0 {
            for _ in 0..world - 1 {
                s.runtime_mut().memcpy(
                    t.ptr,
                    t.ptr,
                    per_rank,
                    accel_sim::CopyDirection::DeviceToDevice,
                )?;
            }
        }
        let (g, blk) = launch_cfg(t.numel() / 8);
        let desc = KernelDesc::new(name.clone(), g, blk)
            .arg(t.ptr, t.bytes)
            .body(
                KernelBody::default()
                    .access(AccessSpec::load(0, t.bytes))
                    .access(AccessSpec::store(0, t.bytes)),
            );
        s.launch(desc)?;
        Ok(())
    })
}

/// Point-to-point activation send/recv (pipeline parallelism).
pub fn send_recv(s: &mut Session<'_>, t: &Tensor) -> Result<(), AccelError> {
    let name = s.backend().collective_kernel("SendRecv");
    s.with_op("c10d::send", |s| {
        let (g, blk) = launch_cfg(t.numel() / 8);
        let desc = KernelDesc::new(name.clone(), g, blk)
            .arg(t.ptr, t.bytes)
            .body(
                KernelBody::default()
                    .access(AccessSpec::load(0, t.bytes))
                    .access(AccessSpec::store(0, t.bytes)),
            );
        s.launch(desc)?;
        Ok(())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use accel_sim::DeviceSpec;
    use vendor_nv::CudaContext;

    fn with_session<T>(f: impl FnOnce(&mut Session<'_>) -> T) -> T {
        let mut rt = CudaContext::new(vec![DeviceSpec::a100_80gb()]);
        let mut s = Session::new(&mut rt);
        f(&mut s)
    }

    #[test]
    fn linear_shapes_and_kernels() {
        with_session(|s| {
            let x = s.alloc_tensor(&[16, 128, 768], DType::F32).unwrap();
            let w = s.alloc_tensor(&[3072, 768], DType::F32).unwrap();
            let b = s.alloc_tensor(&[3072], DType::F32).unwrap();
            let y = linear(s, &x, &w, Some(&b), Act::Gelu).unwrap();
            assert_eq!(y.shape, vec![16, 128, 3072]);
            // NVIDIA backend fuses: one GEMM kernel only.
            assert_eq!(s.kernels_launched(), 1);
        });
    }

    #[test]
    fn amd_backend_decomposes_bias_and_act() {
        let mut rt = vendor_amd::HipContext::new(vec![DeviceSpec::mi300x()]);
        let mut s = Session::new(&mut rt);
        let x = s.alloc_tensor(&[8, 512], DType::F32).unwrap();
        let w = s.alloc_tensor(&[512, 512], DType::F32).unwrap();
        let b = s.alloc_tensor(&[512], DType::F32).unwrap();
        let _y = linear(&mut s, &x, &w, Some(&b), Act::Relu).unwrap();
        assert_eq!(
            s.kernels_launched(),
            3,
            "gemm + bias add + relu on the unfused backend"
        );
    }

    #[test]
    fn conv2d_large_kernel_uses_im2col() {
        with_session(|s| {
            let x = s.alloc_tensor(&[8, 3, 224, 224], DType::F32).unwrap();
            let cfg = Conv2dCfg {
                cin: 3,
                cout: 64,
                k: 11,
                stride: 4,
                pad: 2,
            };
            let w = s.alloc_tensor(&[64, 3 * 11 * 11], DType::F32).unwrap();
            let before = s.allocator_stats().allocated;
            let y = conv2d(s, &x, &w, None, cfg, Act::None).unwrap();
            assert_eq!(y.shape, vec![8, 64, 55, 55]);
            // im2col + gemm, and the column buffer was freed.
            assert_eq!(s.kernels_launched(), 2);
            s.release_workspaces();
            let after = s.allocator_stats().allocated;
            assert_eq!(
                after,
                before + round512(y.bytes),
                "only the conv output survives; the column buffer is freed"
            );
        });
    }

    fn round512(b: u64) -> u64 {
        b.div_ceil(512) * 512
    }

    #[test]
    fn conv2d_small_kernel_uses_implicit_gemm() {
        with_session(|s| {
            let x = s.alloc_tensor(&[8, 64, 56, 56], DType::F32).unwrap();
            let cfg = Conv2dCfg {
                cin: 64,
                cout: 64,
                k: 3,
                stride: 1,
                pad: 1,
            };
            let w = s.alloc_tensor(&[64, 64 * 9], DType::F32).unwrap();
            let y = conv2d(s, &x, &w, None, cfg, Act::None).unwrap();
            assert_eq!(y.shape, vec![8, 64, 56, 56]);
            assert_eq!(s.kernels_launched(), 1, "single implicit-gemm kernel");
        });
    }

    #[test]
    fn embedding_gathers_over_table() {
        with_session(|s| {
            let table = s.alloc_tensor(&[50257, 768], DType::F32).unwrap();
            let idx = s.alloc_tensor(&[8, 1024], DType::I64).unwrap();
            let y = embedding(s, &table, &idx).unwrap();
            assert_eq!(y.shape, vec![8, 1024, 768]);
        });
    }

    #[test]
    fn linear_backward_produces_three_grads() {
        with_session(|s| {
            let x = s.alloc_tensor(&[32, 512], DType::F32).unwrap();
            let w = s.alloc_tensor(&[256, 512], DType::F32).unwrap();
            let gy = s.alloc_tensor(&[32, 256], DType::F32).unwrap();
            let (gx, gw, gb) = linear_backward(s, &x, &w, &gy, true).unwrap();
            assert_eq!(gx.shape, x.shape);
            assert_eq!(gw.shape, w.shape);
            assert_eq!(gb.unwrap().shape, vec![256]);
            assert_eq!(s.kernels_launched(), 3, "dgrad + wgrad + bias reduce");
        });
    }

    #[test]
    fn cross_entropy_frees_intermediate_softmax() {
        with_session(|s| {
            let logits = s.alloc_tensor(&[128, 1000], DType::F32).unwrap();
            let before = s.allocator_stats().allocated;
            let loss = cross_entropy(s, &logits).unwrap();
            assert_eq!(loss.shape, vec![1]);
            let after = s.allocator_stats().allocated;
            assert_eq!(after, before + 512, "only the scalar loss survives");
        });
    }

    #[test]
    fn pool_shapes() {
        with_session(|s| {
            let x = s.alloc_tensor(&[4, 64, 55, 55], DType::F32).unwrap();
            let y = maxpool2d(s, &x, 3, 2).unwrap();
            assert_eq!(y.shape, vec![4, 64, 27, 27]);
        });
    }

    #[test]
    fn collectives_use_vendor_prefixes() {
        with_session(|s| {
            let t = s.alloc_tensor(&[1 << 20], DType::F32).unwrap();
            allreduce(s, &t).unwrap();
        });
        let mut rt = vendor_amd::HipContext::new(vec![DeviceSpec::mi300x()]);
        let mut s = Session::new(&mut rt);
        let t = s.alloc_tensor(&[1 << 10], DType::F32).unwrap();
        allreduce(&mut s, &t).unwrap();
        // Name checking happens inside backend tests; here we just assert
        // the launches happened.
        assert_eq!(s.kernels_launched(), 1);
    }
}
