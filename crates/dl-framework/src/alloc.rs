//! A pool-based caching allocator modeled on PyTorch's
//! `CUDACachingAllocator`.
//!
//! The paper's tensor-aware UVM work (§V-C1) hinges on one fact about this
//! allocator: it requests **large segments** from the device runtime
//! (`cudaMalloc`/`cudaMallocManaged`) and then carves tensors out of them,
//! so *a single memory object contains many tensors with different
//! lifetimes and access patterns*. This implementation reproduces the
//! mechanics that matter:
//!
//! * sizes round to 512-byte multiples;
//! * requests under 1 MiB come from 2 MiB "small-pool" segments;
//! * larger requests come from 20 MiB "large-pool" segments, or a
//!   dedicated rounded segment above 10 MiB;
//! * free blocks split on allocation and coalesce with free neighbours on
//!   release;
//! * on out-of-memory the allocator releases cached fully-free segments
//!   and retries before failing.

use accel_sim::{AccelError, DevicePtr, DeviceRuntime};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Allocator tuning knobs (PyTorch defaults).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AllocatorConfig {
    /// Granularity of size rounding, bytes.
    pub round: u64,
    /// Requests at or below this use the small pool.
    pub small_threshold: u64,
    /// Segment size of the small pool.
    pub small_segment: u64,
    /// Segment size of the large pool.
    pub large_segment: u64,
    /// Requests above this get a dedicated, size-rounded segment.
    pub huge_threshold: u64,
    /// Back segments with `cudaMallocManaged` instead of `cudaMalloc`
    /// (the UVM experiments run the allocator in this mode).
    pub use_managed: bool,
}

impl Default for AllocatorConfig {
    fn default() -> Self {
        AllocatorConfig {
            round: 512,
            small_threshold: 1 << 20,
            small_segment: 2 << 20,
            large_segment: 20 << 20,
            huge_threshold: 10 << 20,
            use_managed: false,
        }
    }
}

impl AllocatorConfig {
    /// The managed (UVM) variant: `cudaMallocManaged` calls are far more
    /// expensive than `cudaMalloc`, so UVM-backed pools amortize them with
    /// much larger segments — which is precisely why object-level
    /// prefetching drags so much dead weight per object (paper §V-C1).
    pub fn managed() -> Self {
        AllocatorConfig {
            use_managed: true,
            small_segment: 8 << 20,
            large_segment: 128 << 20,
            huge_threshold: 96 << 20,
            ..AllocatorConfig::default()
        }
    }
}

/// Which pool a segment belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
enum Pool {
    Small,
    Large,
}

#[derive(Debug, Clone, Copy)]
struct Block {
    size: u64,
    free: bool,
    segment_base: u64,
}

#[derive(Debug, Clone)]
struct Segment {
    base: u64,
    size: u64,
    pool: Pool,
}

/// Aggregate allocator statistics (the numbers `reportMemoryUsage` events
/// carry, plus peaks).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AllocatorStats {
    /// Live tensor bytes.
    pub allocated: u64,
    /// Bytes reserved from the device runtime (all segments).
    pub reserved: u64,
    /// High-water mark of `allocated`.
    pub peak_allocated: u64,
    /// High-water mark of `reserved`.
    pub peak_reserved: u64,
    /// Allocation events served.
    pub alloc_events: u64,
    /// Free events served.
    pub free_events: u64,
    /// Segments requested from the device runtime.
    pub segments_created: u64,
    /// Times the allocator had to release cached segments to make room.
    pub cache_flushes: u64,
}

/// The caching allocator for one device.
#[derive(Debug)]
pub struct CachingAllocator {
    config: AllocatorConfig,
    /// All blocks, keyed by base address.
    blocks: BTreeMap<u64, Block>,
    /// Free-block index per pool: (size, addr) for best-fit.
    free_index: BTreeMap<Pool, BTreeSet<(u64, u64)>>,
    /// Segments by base address.
    segments: BTreeMap<u64, Segment>,
    stats: AllocatorStats,
}

impl CachingAllocator {
    /// Creates an allocator with the given config.
    pub fn new(config: AllocatorConfig) -> Self {
        let mut free_index = BTreeMap::new();
        free_index.insert(Pool::Small, BTreeSet::new());
        free_index.insert(Pool::Large, BTreeSet::new());
        CachingAllocator {
            config,
            blocks: BTreeMap::new(),
            free_index,
            segments: BTreeMap::new(),
            stats: AllocatorStats::default(),
        }
    }

    /// Current statistics.
    pub fn stats(&self) -> AllocatorStats {
        self.stats
    }

    /// The config in effect.
    pub fn config(&self) -> &AllocatorConfig {
        &self.config
    }

    /// Live segment ranges `(base, size)` — the "memory objects" that
    /// object-level UVM prefetching operates on.
    pub fn segments(&self) -> Vec<(u64, u64)> {
        self.segments.values().map(|s| (s.base, s.size)).collect()
    }

    /// The segment containing `addr`, if any.
    pub fn segment_of(&self, addr: u64) -> Option<(u64, u64)> {
        self.segments
            .range(..=addr)
            .next_back()
            .map(|(_, s)| (s.base, s.size))
            .filter(|&(base, size)| addr < base + size)
    }

    /// Rounds a request per pool rules.
    fn round_size(&self, bytes: u64) -> u64 {
        bytes.max(1).div_ceil(self.config.round) * self.config.round
    }

    fn pool_for(&self, rounded: u64) -> Pool {
        if rounded <= self.config.small_threshold {
            Pool::Small
        } else {
            Pool::Large
        }
    }

    fn segment_size_for(&self, rounded: u64, pool: Pool) -> u64 {
        match pool {
            Pool::Small => self.config.small_segment,
            Pool::Large => {
                if rounded >= self.config.huge_threshold {
                    rounded.div_ceil(2 << 20) * (2 << 20)
                } else {
                    self.config.large_segment
                }
            }
        }
    }

    /// Takes a best-fit free block from `pool`, splitting the remainder.
    fn take_from_pool(&mut self, pool: Pool, rounded: u64) -> Option<u64> {
        let index = self.free_index.get_mut(&pool)?;
        let &(size, addr) = index.range((rounded, 0)..).next()?;
        index.remove(&(size, addr));
        let block = self.blocks.get_mut(&addr).expect("indexed block exists");
        debug_assert!(block.free && block.size == size);
        let segment_base = block.segment_base;
        if size > rounded && size - rounded >= self.config.round {
            // Split: the tail becomes a new free block.
            block.size = rounded;
            block.free = false;
            let tail_addr = addr + rounded;
            let tail_size = size - rounded;
            self.blocks.insert(
                tail_addr,
                Block {
                    size: tail_size,
                    free: true,
                    segment_base,
                },
            );
            self.free_index
                .get_mut(&pool)
                .expect("pool index")
                .insert((tail_size, tail_addr));
        } else {
            block.free = false;
        }
        Some(addr)
    }

    fn add_segment(
        &mut self,
        rt: &mut dyn DeviceRuntime,
        size: u64,
        pool: Pool,
    ) -> Result<(), AccelError> {
        let ptr = if self.config.use_managed {
            rt.malloc_managed(size)?
        } else {
            rt.malloc(size)?
        };
        let base = ptr.addr();
        self.segments.insert(base, Segment { base, size, pool });
        self.blocks.insert(
            base,
            Block {
                size,
                free: true,
                segment_base: base,
            },
        );
        self.free_index
            .get_mut(&pool)
            .expect("pool index")
            .insert((size, base));
        self.stats.reserved += size;
        self.stats.peak_reserved = self.stats.peak_reserved.max(self.stats.reserved);
        self.stats.segments_created += 1;
        Ok(())
    }

    /// Releases fully-free cached segments back to the runtime
    /// (`torch.cuda.empty_cache()`'s behaviour under memory pressure).
    pub fn release_cached_segments(&mut self, rt: &mut dyn DeviceRuntime) -> u64 {
        let releasable: Vec<u64> = self
            .segments
            .values()
            .filter(|s| {
                self.blocks
                    .get(&s.base)
                    .is_some_and(|b| b.free && b.size == s.size)
            })
            .map(|s| s.base)
            .collect();
        let mut released = 0;
        for base in releasable {
            let seg = self.segments.remove(&base).expect("segment exists");
            self.blocks.remove(&base);
            self.free_index
                .get_mut(&seg.pool)
                .expect("pool index")
                .remove(&(seg.size, base));
            // Ignore runtime errors on teardown paths (C-DTOR-FAIL spirit).
            let _ = rt.free(DevicePtr(base));
            self.stats.reserved -= seg.size;
            released += seg.size;
        }
        released
    }

    /// Allocates `bytes`, returning the block base address and the rounded
    /// size actually reserved for it.
    ///
    /// # Errors
    ///
    /// Returns the runtime's [`AccelError::OutOfMemory`] when even after
    /// releasing cached segments no segment can be created.
    pub fn alloc(
        &mut self,
        rt: &mut dyn DeviceRuntime,
        bytes: u64,
    ) -> Result<(DevicePtr, u64), AccelError> {
        let rounded = self.round_size(bytes);
        let pool = self.pool_for(rounded);
        if let Some(addr) = self.take_from_pool(pool, rounded) {
            self.finish_alloc(rounded);
            return Ok((DevicePtr(addr), rounded));
        }
        let seg_size = self.segment_size_for(rounded, pool);
        match self.add_segment(rt, seg_size, pool) {
            Ok(()) => {}
            Err(_oom) => {
                // PyTorch behaviour: flush the cache and retry once.
                self.stats.cache_flushes += 1;
                self.release_cached_segments(rt);
                self.add_segment(rt, seg_size, pool)?;
            }
        }
        let addr = self
            .take_from_pool(pool, rounded)
            .expect("fresh segment satisfies request");
        self.finish_alloc(rounded);
        Ok((DevicePtr(addr), rounded))
    }

    fn finish_alloc(&mut self, rounded: u64) {
        self.stats.allocated += rounded;
        self.stats.peak_allocated = self.stats.peak_allocated.max(self.stats.allocated);
        self.stats.alloc_events += 1;
    }

    /// Returns a block to its pool, coalescing free neighbours within the
    /// same segment.
    ///
    /// # Panics
    ///
    /// Panics on double-free or a pointer the allocator never produced —
    /// both are framework bugs, as in PyTorch.
    pub fn free(&mut self, ptr: DevicePtr) -> u64 {
        let addr = ptr.addr();
        let block = *self
            .blocks
            .get(&addr)
            .unwrap_or_else(|| panic!("free of unknown block {addr:#x}"));
        assert!(!block.free, "double free of block {addr:#x}");
        let seg = self.segments[&block.segment_base].clone();
        let pool = seg.pool;
        let rounded = block.size;

        let mut start = addr;
        let mut size = block.size;
        // Coalesce with the previous block when free and in-segment.
        if let Some((&p_addr, &p)) = self.blocks.range(..addr).next_back() {
            if p.free && p.segment_base == block.segment_base && p_addr + p.size == addr {
                self.free_index
                    .get_mut(&pool)
                    .expect("pool index")
                    .remove(&(p.size, p_addr));
                self.blocks.remove(&p_addr);
                start = p_addr;
                size += p.size;
            }
        }
        // Coalesce with the next block.
        let next_addr = addr + block.size;
        if let Some(&n) = self.blocks.get(&next_addr) {
            if n.free && n.segment_base == block.segment_base {
                self.free_index
                    .get_mut(&pool)
                    .expect("pool index")
                    .remove(&(n.size, next_addr));
                self.blocks.remove(&next_addr);
                size += n.size;
            }
        }
        self.blocks.remove(&addr);
        self.blocks.insert(
            start,
            Block {
                size,
                free: true,
                segment_base: block.segment_base,
            },
        );
        self.free_index
            .get_mut(&pool)
            .expect("pool index")
            .insert((size, start));
        self.stats.allocated -= rounded;
        self.stats.free_events += 1;
        rounded
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accel_sim::{DeviceRuntime, DeviceSpec};
    use vendor_nv::CudaContext;

    fn rt() -> CudaContext {
        CudaContext::new(vec![DeviceSpec::rtx_3060()])
    }

    #[test]
    fn small_allocations_share_a_segment() {
        let mut rt = rt();
        let mut a = CachingAllocator::new(AllocatorConfig::default());
        let (p1, _) = a.alloc(&mut rt, 100 << 10).unwrap();
        let (p2, _) = a.alloc(&mut rt, 100 << 10).unwrap();
        assert_eq!(a.segments().len(), 1, "two small tensors, one object");
        let seg = a.segment_of(p1.addr()).unwrap();
        assert_eq!(a.segment_of(p2.addr()).unwrap(), seg);
        assert_eq!(seg.1, 2 << 20);
        // The backing runtime saw exactly one cudaMalloc.
        assert_eq!(rt.stats(accel_sim::DeviceId(0)).allocs, 1);
    }

    #[test]
    fn sizes_round_to_512() {
        let mut rt = rt();
        let mut a = CachingAllocator::new(AllocatorConfig::default());
        let (_, rounded) = a.alloc(&mut rt, 1).unwrap();
        assert_eq!(rounded, 512);
        let (_, rounded) = a.alloc(&mut rt, 513).unwrap();
        assert_eq!(rounded, 1024);
    }

    #[test]
    fn freed_blocks_are_reused_not_returned() {
        let mut rt = rt();
        let mut a = CachingAllocator::new(AllocatorConfig::default());
        let (p1, _) = a.alloc(&mut rt, 512 << 10).unwrap();
        a.free(p1);
        let reserved = a.stats().reserved;
        let (p2, _) = a.alloc(&mut rt, 512 << 10).unwrap();
        assert_eq!(p1, p2, "cached block reused");
        assert_eq!(a.stats().reserved, reserved, "no new segment");
        assert_eq!(
            rt.stats(accel_sim::DeviceId(0)).frees,
            0,
            "nothing freed to runtime"
        );
    }

    #[test]
    fn coalescing_allows_big_reuse() {
        let mut rt = rt();
        let mut a = CachingAllocator::new(AllocatorConfig::default());
        let (p1, _) = a.alloc(&mut rt, 512 << 10).unwrap();
        let (p2, _) = a.alloc(&mut rt, 512 << 10).unwrap();
        let (p3, _) = a.alloc(&mut rt, 512 << 10).unwrap();
        a.free(p1);
        a.free(p3);
        a.free(p2); // middle free merges all three + the tail
                    // The whole 2 MiB segment is one free block again: a 1.5 MiB small
                    // request would not fit the small pool, but 1 MiB does.
        let (p4, _) = a.alloc(&mut rt, 1 << 20).unwrap();
        assert_eq!(p4, p1, "coalesced run starts at the segment base");
    }

    #[test]
    fn huge_allocations_get_dedicated_segments() {
        let mut rt = rt();
        let mut a = CachingAllocator::new(AllocatorConfig::default());
        let (_p, _) = a.alloc(&mut rt, 64 << 20).unwrap();
        let segs = a.segments();
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].1, 64 << 20, "rounded to 2 MiB multiples");
    }

    #[test]
    fn large_pool_uses_20mib_segments() {
        let mut rt = rt();
        let mut a = CachingAllocator::new(AllocatorConfig::default());
        let (_p, _) = a.alloc(&mut rt, 3 << 20).unwrap();
        assert_eq!(a.segments()[0].1, 20 << 20);
        // A second 3 MiB tensor fits the same 20 MiB object.
        let (_q, _) = a.alloc(&mut rt, 3 << 20).unwrap();
        assert_eq!(a.segments().len(), 1);
    }

    #[test]
    fn stats_track_peaks_and_events() {
        let mut rt = rt();
        let mut a = CachingAllocator::new(AllocatorConfig::default());
        let (p1, r1) = a.alloc(&mut rt, 1 << 20).unwrap();
        let (_p2, r2) = a.alloc(&mut rt, 1 << 20).unwrap();
        assert_eq!(a.stats().allocated, r1 + r2);
        a.free(p1);
        assert_eq!(a.stats().allocated, r2);
        assert_eq!(a.stats().peak_allocated, r1 + r2);
        assert_eq!(a.stats().alloc_events, 2);
        assert_eq!(a.stats().free_events, 1);
    }

    #[test]
    fn oom_flushes_cache_and_retries() {
        let mut rt = rt();
        rt.engine_mut()
            .device_mut(accel_sim::DeviceId(0))
            .limit_usable_capacity(64 << 20);
        let mut a = CachingAllocator::new(AllocatorConfig::default());
        let (p, _) = a.alloc(&mut rt, 40 << 20).unwrap();
        a.free(p); // cached, still reserved
                   // 40 MiB is cached; a 60 MiB request cannot fit alongside it.
        let r = a.alloc(&mut rt, 60 << 20);
        assert!(r.is_ok(), "cache flush must free room: {r:?}");
        assert_eq!(a.stats().cache_flushes, 1);
    }

    #[test]
    fn oom_propagates_when_truly_full() {
        let mut rt = rt();
        rt.engine_mut()
            .device_mut(accel_sim::DeviceId(0))
            .limit_usable_capacity(16 << 20);
        let mut a = CachingAllocator::new(AllocatorConfig::default());
        assert!(matches!(
            a.alloc(&mut rt, 64 << 20),
            Err(AccelError::OutOfMemory { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut rt = rt();
        let mut a = CachingAllocator::new(AllocatorConfig::default());
        let (p, _) = a.alloc(&mut rt, 4096).unwrap();
        a.free(p);
        a.free(p);
    }

    #[test]
    fn managed_mode_allocates_managed_segments() {
        let mut rt = rt();
        let mut a = CachingAllocator::new(AllocatorConfig::managed());
        let (p, _) = a.alloc(&mut rt, 1 << 20).unwrap();
        assert!(accel_sim::Engine::is_managed_addr(p.addr()));
    }

    #[test]
    fn release_cached_segments_returns_memory() {
        let mut rt = rt();
        let mut a = CachingAllocator::new(AllocatorConfig::default());
        let (p, _) = a.alloc(&mut rt, 30 << 20).unwrap();
        a.free(p);
        let released = a.release_cached_segments(&mut rt);
        assert_eq!(released, 30 << 20);
        assert_eq!(a.stats().reserved, 0);
        assert_eq!(rt.stats(accel_sim::DeviceId(0)).frees, 1);
    }
}
