//! ROCm runtime callback events.
//!
//! These mirror ROCProfiler-SDK's HIP-API and kernel-dispatch callbacks.
//! Two conventions differ from the NVIDIA facade on purpose (the paper's
//! §III-G normalization examples):
//!
//! * memory size changes are signed **deltas** — allocation positive,
//!   release *negative* — where CUDA reports positive sizes on both;
//! * kernels are "dispatched" with workgroup counts rather than "launched"
//!   with grids (same semantics, different vocabulary).

use accel_sim::{CopyDirection, DeviceId, Dim3, LaunchId, SimTime, StreamId, Symbol};
use serde::{Deserialize, Serialize};

/// A host-side callback from the simulated ROCm runtime.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RocCallback {
    /// HIP API entry (`ApiEnter("hipMalloc")`).
    ApiEnter {
        /// HIP API symbol.
        name: &'static str,
        /// Device current at the call.
        device: DeviceId,
        /// Host time.
        at: SimTime,
    },
    /// HIP API exit.
    ApiExit {
        /// HIP API symbol.
        name: &'static str,
        /// Device current at the call.
        device: DeviceId,
        /// Host time.
        at: SimTime,
    },
    /// `ROCPROFILER_CALLBACK_TRACING_KERNEL_DISPATCH` (enter phase).
    KernelDispatch {
        /// Dispatch sequence number.
        launch: LaunchId,
        /// Device ordinal.
        device: DeviceId,
        /// HIP stream.
        stream: StreamId,
        /// Kernel symbol, interned.
        name: Symbol,
        /// Workgroup count (≙ CUDA grid).
        workgroups: Dim3,
        /// Workgroup size (≙ CUDA block).
        workgroup_size: Dim3,
        /// Device start time.
        start: SimTime,
    },
    /// Kernel dispatch completed.
    KernelComplete {
        /// Dispatch sequence number.
        launch: LaunchId,
        /// Device ordinal.
        device: DeviceId,
        /// Device end time.
        end: SimTime,
    },
    /// Memory pool size change: **signed delta** (positive = allocate,
    /// negative = release).
    MemoryDelta {
        /// Device ordinal.
        device: DeviceId,
        /// Base address.
        addr: u64,
        /// Signed size change in bytes.
        delta: i64,
        /// Allocated through `hipMallocManaged`.
        managed: bool,
        /// Host time.
        at: SimTime,
    },
    /// `hipMemcpy*` completed.
    MemoryCopy {
        /// Device ordinal.
        device: DeviceId,
        /// Direction.
        direction: CopyDirection,
        /// Bytes copied.
        bytes: u64,
        /// Host time.
        at: SimTime,
    },
    /// `hipMemset*` completed.
    MemorySet {
        /// Device ordinal.
        device: DeviceId,
        /// Base address.
        addr: u64,
        /// Bytes set.
        bytes: u64,
        /// Host time.
        at: SimTime,
    },
    /// `hipDeviceSynchronize` completed.
    Synchronize {
        /// Device ordinal.
        device: DeviceId,
        /// Host time after the wait.
        at: SimTime,
    },
    /// Batch memory op (prefetch/advise analogues).
    BatchMemOp {
        /// Device ordinal.
        device: DeviceId,
        /// Operation label.
        op: &'static str,
        /// Base address.
        addr: u64,
        /// Bytes covered.
        bytes: u64,
        /// Host time.
        at: SimTime,
    },
    /// SVM/XNACK page-migration activity a kernel triggered — ROCm's
    /// vocabulary for what CUDA calls UVM faults; the PASTA handler
    /// normalizes both onto one event. `device` is the *faulting* device
    /// (the dispatch target), never the host thread's current device.
    PageMigrate {
        /// Dispatch whose accesses migrated pages.
        launch: LaunchId,
        /// The faulting device.
        device: DeviceId,
        /// Fault (retry) groups serviced.
        groups: u64,
        /// Bytes migrated host→device.
        migrated_bytes: u64,
        /// Bytes written back device→host under pressure.
        evicted_bytes: u64,
        /// Device stall charged to the dispatch, ns.
        stall_ns: u64,
        /// Host time after the dispatch was enqueued.
        at: SimTime,
    },
    /// xGMI peer copy / invalidation on a shared managed range — ROCm's
    /// vocabulary for what CUDA calls a UVM peer migration; the PASTA
    /// handler normalizes both onto one event. Carries both devices so
    /// the sharded hub can route by the *destination*.
    PeerCopy {
        /// Dispatch whose accesses triggered the operation.
        launch: LaunchId,
        /// Device the data (or the invalidating write) came from.
        src: DeviceId,
        /// Device whose residency changed.
        dst: DeviceId,
        /// Pages read-duplicated onto `dst`.
        duplicated_pages: u64,
        /// `dst` duplicate pages invalidated by `src`'s write.
        invalidated_pages: u64,
        /// Bytes moved over the xGMI link (duplications only).
        bytes: u64,
        /// Device stall charged to the dispatch, ns.
        stall_ns: u64,
        /// Host time after the dispatch was enqueued.
        at: SimTime,
    },
}

impl RocCallback {
    /// ROCProfiler-style callback-kind label.
    pub fn kind(&self) -> &'static str {
        match self {
            RocCallback::ApiEnter { .. } => "ROCPROFILER_HIP_API_ENTER",
            RocCallback::ApiExit { .. } => "ROCPROFILER_HIP_API_EXIT",
            RocCallback::KernelDispatch { .. } => "ROCPROFILER_KERNEL_DISPATCH",
            RocCallback::KernelComplete { .. } => "ROCPROFILER_KERNEL_COMPLETE",
            RocCallback::MemoryDelta { .. } => "ROCPROFILER_MEMORY_DELTA",
            RocCallback::MemoryCopy { .. } => "ROCPROFILER_MEMORY_COPY",
            RocCallback::MemorySet { .. } => "ROCPROFILER_MEMORY_SET",
            RocCallback::Synchronize { .. } => "ROCPROFILER_SYNCHRONIZE",
            RocCallback::BatchMemOp { .. } => "ROCPROFILER_BATCH_MEMOP",
            RocCallback::PageMigrate { .. } => "ROCPROFILER_PAGE_MIGRATE",
            RocCallback::PeerCopy { .. } => "ROCPROFILER_PAGE_PEER_COPY",
        }
    }
}

/// A host-callback subscriber.
pub type RocSubscriber = Box<dyn FnMut(&RocCallback) + Send>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn release_deltas_are_negative_by_convention() {
        let release = RocCallback::MemoryDelta {
            device: DeviceId(0),
            addr: 0x100,
            delta: -4096,
            managed: false,
            at: SimTime(0),
        };
        if let RocCallback::MemoryDelta { delta, .. } = release {
            assert!(delta < 0, "AMD reports releases as negative deltas");
        }
    }

    #[test]
    fn kinds_use_rocprofiler_naming() {
        let cb = RocCallback::Synchronize {
            device: DeviceId(0),
            at: SimTime(0),
        };
        assert!(cb.kind().starts_with("ROCPROFILER_"));
    }
}
