//! ROCProfiler-SDK facade.
//!
//! The paper integrates ROCprofiler-SDK for AMD GPUs, noting its callbacks
//! are "analogous to NVIDIA's Compute Sanitizer callbacks" (§III-D). Host
//! callbacks come from [`crate::HipContext::subscribe`]
//! (`rocprofiler_configure_callback…`); this module attaches the device
//! trace side with memory/barrier coverage and either analysis mode.

use crate::hip::HipContext;
use accel_sim::instrument::{BackendCosts, ProfilerHandle, TraceProfiler};
use accel_sim::trace::TraceBufferModel;
use accel_sim::{AnalysisMode, InstrCoverage};
use serde::{Deserialize, Serialize};

/// Configuration of a ROCProfiler-SDK device-trace attachment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RocProfilerConfig {
    /// Where trace analysis runs.
    pub mode: AnalysisMode,
    /// Record sampling factor; 1 = all.
    pub sampling_rate: u32,
    /// Device trace-buffer size in bytes.
    pub buffer_bytes: u64,
    /// On-device analysis thread-group width (GPU-resident mode).
    pub gpu_analysis_threads: u64,
}

impl Default for RocProfilerConfig {
    fn default() -> Self {
        RocProfilerConfig {
            mode: AnalysisMode::GpuResident,
            sampling_rate: 1,
            buffer_bytes: 4 << 20,
            gpu_analysis_threads: 4_096,
        }
    }
}

impl RocProfilerConfig {
    /// Overrides the analysis mode.
    pub fn with_mode(mut self, mode: AnalysisMode) -> Self {
        self.mode = mode;
        self
    }

    /// Overrides the sampling rate.
    pub fn with_sampling(mut self, rate: u32) -> Self {
        self.sampling_rate = rate.max(1);
        self
    }
}

/// Per-record costs for ROCProfiler device tracing; CDNA3's wide CU array
/// amortizes callbacks similarly to the Compute Sanitizer numbers.
fn rocprofiler_costs(buffer_bytes: u64, threads: u64) -> BackendCosts {
    BackendCosts {
        device_callback_ns_per_record: 3.1,
        cpu_analysis_ns_per_record: 3_000.0,
        cpu_drain_ns_per_record: 160.0,
        gpu_analysis_ns_per_record: 1.0,
        gpu_analysis_threads: threads,
        buffer: TraceBufferModel::with_bytes(buffer_bytes),
        buffer_flush_latency_ns: 32_000,
        sass_parse_ns_per_kernel: 0,
        result_buffer_bytes: 64 << 10,
    }
}

/// Attaches ROCProfiler-SDK device tracing to a HIP context; the analogue
/// of `rocprofiler_configure_callback_tracing_service`.
pub fn attach(ctx: &mut HipContext, config: RocProfilerConfig) -> ProfilerHandle {
    let costs = rocprofiler_costs(config.buffer_bytes, config.gpu_analysis_threads);
    let link_bw = ctx.link_bandwidths();
    let (profiler, handle) = TraceProfiler::new(
        InstrCoverage::MemoryAndBarrier,
        config.mode,
        costs,
        link_bw,
        config.sampling_rate,
    );
    ctx.install_profiler(Box::new(profiler));
    handle
}

#[cfg(test)]
mod tests {
    use super::*;
    use accel_sim::{DeviceRuntime, DeviceSpec, Dim3, KernelBody, KernelDesc};

    #[test]
    fn attach_installs_probe_and_counts_records() {
        let mut ctx = HipContext::new(vec![DeviceSpec::mi300x()]);
        let handle = attach(&mut ctx, RocProfilerConfig::default());
        assert!(ctx.has_profiler());
        let p = ctx.malloc(1 << 20).unwrap();
        let desc = KernelDesc::new("gemm", Dim3::linear(64), Dim3::linear(256))
            .arg(p, 1 << 20)
            .body(KernelBody::streaming(1 << 19, 1 << 19));
        let rec = ctx.launch(desc).unwrap();
        assert!(rec.records_emitted > 0);
        assert_eq!(handle.records_total(), rec.records_emitted);
        assert_eq!(handle.kernels(), 1);
    }

    #[test]
    fn config_builders() {
        let c = RocProfilerConfig::default()
            .with_mode(AnalysisMode::CpuPostProcess)
            .with_sampling(0);
        assert_eq!(c.mode, AnalysisMode::CpuPostProcess);
        assert_eq!(c.sampling_rate, 1);
    }

    #[test]
    fn costs_have_no_sass_parse() {
        let c = rocprofiler_costs(4 << 20, 4_096);
        assert_eq!(c.sass_parse_ns_per_kernel, 0);
    }
}
