//! Simulated HIP runtime.
//!
//! [`HipContext`] is the AMD twin of `vendor_nv::CudaContext`: it owns an
//! [`accel_sim::Engine`] of AMD devices and implements
//! [`accel_sim::DeviceRuntime`], emitting [`RocCallback`] events with ROCm
//! conventions (signed memory deltas, dispatch vocabulary).

use crate::callbacks::{RocCallback, RocSubscriber};
use accel_sim::runtime::MemAdvise;
use accel_sim::{
    AccelError, CopyDirection, DeviceId, DeviceProbe, DeviceRuntime, DeviceSpec, Engine,
    KernelDesc, LaunchRecord, ResidencyAdvice, RuntimeStats, SimTime, StreamId, Vendor,
};
use uvm_sim::{PrefetchPlan, UvmManager};

/// The simulated HIP runtime context.
pub struct HipContext {
    engine: Engine,
    current: DeviceId,
    subscribers: Vec<RocSubscriber>,
    prefetch_plan: Option<PrefetchPlan>,
    launches_seen: u64,
    uvm_attached: bool,
}

impl std::fmt::Debug for HipContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HipContext")
            .field("engine", &self.engine)
            .field("current", &self.current)
            .field("subscribers", &self.subscribers.len())
            .field("uvm_attached", &self.uvm_attached)
            .finish()
    }
}

impl HipContext {
    /// Creates a context over AMD devices.
    ///
    /// # Panics
    ///
    /// Panics when `specs` is empty or contains a non-AMD device.
    pub fn new(specs: Vec<DeviceSpec>) -> Self {
        assert!(
            specs.iter().all(|s| s.vendor == Vendor::Amd),
            "HipContext requires AMD device specs"
        );
        HipContext {
            engine: Engine::new(specs),
            current: DeviceId(0),
            subscribers: Vec::new(),
            prefetch_plan: None,
            launches_seen: 0,
            uvm_attached: false,
        }
    }

    /// Subscribes to host callbacks (ROCProfiler callback registration).
    pub fn subscribe(&mut self, subscriber: RocSubscriber) {
        self.subscribers.push(subscriber);
    }

    /// Number of subscribers.
    pub fn subscriber_count(&self) -> usize {
        self.subscribers.len()
    }

    /// Installs a device instrumentation probe.
    pub fn install_profiler(&mut self, probe: Box<dyn DeviceProbe>) {
        self.engine.set_probe(probe);
    }

    /// True when a device probe is installed.
    pub fn has_profiler(&self) -> bool {
        self.engine.has_probe()
    }

    /// Attaches a UVM (here: HMM/XNACK-style) manager.
    pub fn attach_uvm(&mut self, uvm: UvmManager) {
        self.engine.set_residency(Box::new(uvm));
        self.uvm_attached = true;
    }

    /// Installs a prefetch plan replayed before each subsequent launch.
    pub fn set_prefetch_plan(&mut self, plan: PrefetchPlan) {
        self.prefetch_plan = Some(plan);
        self.launches_seen = 0;
    }

    /// Host-link bandwidths per device, GB/s.
    pub fn link_bandwidths(&self) -> Vec<f64> {
        self.engine
            .device_ids()
            .into_iter()
            .map(|d| self.engine.device(d).spec().link_bandwidth_gbps)
            .collect()
    }

    /// The underlying engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Mutable engine access.
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }

    fn emit(&mut self, cb: RocCallback) {
        for s in &mut self.subscribers {
            s(&cb);
        }
    }

    fn emit_api(&mut self, name: &'static str) {
        let (device, at) = (self.current, self.engine.host_now());
        self.emit(RocCallback::ApiEnter { name, device, at });
    }

    fn emit_api_exit(&mut self, name: &'static str) {
        let (device, at) = (self.current, self.engine.host_now());
        self.emit(RocCallback::ApiExit { name, device, at });
    }

    /// Drains the residency model's peer-to-peer coherence log (shared
    /// managed ranges: read duplications, write invalidations).
    fn take_peer_transfers(&mut self) -> Vec<accel_sim::PeerTransfer> {
        self.engine
            .residency_mut()
            .map(|res| res.take_peer_transfers())
            .unwrap_or_default()
    }

    /// Surfaces drained coherence operations as `PeerCopy` callbacks
    /// carrying source *and* destination devices.
    fn emit_peer_transfers(
        &mut self,
        launch: accel_sim::LaunchId,
        transfers: Vec<accel_sim::PeerTransfer>,
    ) {
        if transfers.is_empty() {
            return;
        }
        let at = self.engine.host_now();
        for t in transfers {
            self.emit(RocCallback::PeerCopy {
                launch,
                src: t.src,
                dst: t.dst,
                duplicated_pages: t.duplicated_pages,
                invalidated_pages: t.invalidated_pages,
                bytes: t.bytes,
                stall_ns: t.stall_ns,
                at,
            });
        }
    }

    fn run_prefetch_plan(&mut self, stream: StreamId) {
        let Some(plan) = self.prefetch_plan.as_ref() else {
            return;
        };
        let ranges: Vec<uvm_sim::Range> = plan.ranges_for(self.launches_seen as usize).to_vec();
        if ranges.is_empty() {
            return;
        }
        let device = self.current;
        let mut stall_total = 0u64;
        if let Some(res) = self.engine.residency_mut() {
            for r in &ranges {
                stall_total += res.prefetch(device, r.base, r.len);
            }
        }
        if stall_total > 0 {
            let t = self.engine.device(device).stream_time(stream);
            self.engine
                .device_mut(device)
                .set_stream_time(stream, t + stall_total);
        }
        // Plan prefetches over shared ranges may have read-duplicated
        // pages; drain their transfers here, attributed to the launch
        // being issued, so they never bleed into the launch's own drain
        // (whose stall arithmetic assumes launch-time transfers only).
        let transfers = self.take_peer_transfers();
        self.emit_peer_transfers(accel_sim::LaunchId(self.launches_seen), transfers);
    }
}

impl DeviceRuntime for HipContext {
    fn vendor(&self) -> Vendor {
        Vendor::Amd
    }

    fn device_count(&self) -> usize {
        self.engine.device_ids().len()
    }

    fn set_device(&mut self, device: DeviceId) -> Result<(), AccelError> {
        if device.index() >= self.device_count() {
            return Err(AccelError::UnknownDevice(device));
        }
        self.current = device;
        Ok(())
    }

    fn current_device(&self) -> DeviceId {
        self.current
    }

    fn malloc(&mut self, bytes: u64) -> Result<accel_sim::DevicePtr, AccelError> {
        self.emit_api("hipMalloc");
        let alloc = self.engine.malloc_info(self.current, bytes)?;
        let at = self.engine.host_now();
        let (device, addr) = (self.current, alloc.addr);
        self.emit(RocCallback::MemoryDelta {
            device,
            addr,
            delta: bytes as i64,
            managed: false,
            at,
        });
        self.emit_api_exit("hipMalloc");
        Ok(accel_sim::DevicePtr(addr))
    }

    fn malloc_managed(&mut self, bytes: u64) -> Result<accel_sim::DevicePtr, AccelError> {
        self.emit_api("hipMallocManaged");
        let alloc = self.engine.malloc_managed(bytes)?;
        if let Some(res) = self.engine.residency_mut() {
            res.register(alloc.addr, bytes);
        }
        let at = self.engine.host_now();
        let (device, addr) = (self.current, alloc.addr);
        self.emit(RocCallback::MemoryDelta {
            device,
            addr,
            delta: bytes as i64,
            managed: true,
            at,
        });
        self.emit_api_exit("hipMallocManaged");
        Ok(accel_sim::DevicePtr(addr))
    }

    fn free(&mut self, ptr: accel_sim::DevicePtr) -> Result<(), AccelError> {
        self.emit_api("hipFree");
        let addr = ptr.addr();
        let alloc = if Engine::is_managed_addr(addr) {
            let alloc = self.engine.free_managed(addr)?;
            if let Some(res) = self.engine.residency_mut() {
                res.unregister(addr);
            }
            alloc
        } else {
            self.engine.free(self.current, addr)?
        };
        let at = self.engine.host_now();
        let device = self.current;
        // ROCm convention: a release is a *negative* delta.
        self.emit(RocCallback::MemoryDelta {
            device,
            addr,
            delta: -(alloc.size as i64),
            managed: alloc.managed,
            at,
        });
        self.emit_api_exit("hipFree");
        Ok(())
    }

    fn memcpy(
        &mut self,
        dst: accel_sim::DevicePtr,
        src: accel_sim::DevicePtr,
        bytes: u64,
        dir: CopyDirection,
    ) -> Result<(), AccelError> {
        self.emit_api("hipMemcpy");
        self.engine.memcpy(self.current, dst, src, bytes, dir)?;
        let at = self.engine.host_now();
        let device = self.current;
        self.emit(RocCallback::MemoryCopy {
            device,
            direction: dir,
            bytes,
            at,
        });
        self.emit_api_exit("hipMemcpy");
        Ok(())
    }

    fn memset(&mut self, dst: accel_sim::DevicePtr, bytes: u64) -> Result<(), AccelError> {
        self.emit_api("hipMemset");
        self.engine.memset(self.current, dst, bytes)?;
        let at = self.engine.host_now();
        let (device, addr) = (self.current, dst.addr());
        self.emit(RocCallback::MemorySet {
            device,
            addr,
            bytes,
            at,
        });
        self.emit_api_exit("hipMemset");
        Ok(())
    }

    fn launch_on(
        &mut self,
        stream: StreamId,
        desc: KernelDesc,
    ) -> Result<LaunchRecord, AccelError> {
        self.emit_api("hipLaunchKernel");
        self.run_prefetch_plan(stream);
        let record = self.engine.launch(self.current, stream, &desc)?;
        self.launches_seen += 1;
        self.emit(RocCallback::KernelDispatch {
            launch: record.launch,
            device: record.device,
            stream,
            name: record.name.clone(),
            workgroups: record.grid,
            workgroup_size: record.block,
            start: record.start,
        });
        self.emit(RocCallback::KernelComplete {
            launch: record.launch,
            device: record.device,
            end: record.end,
        });
        // Page-migration activity reports the *faulting* device — the
        // dispatch target (`record.device`), never `self.current`. The
        // sharded hub routes on this field.
        // The dispatch's total UVM stall covers host faulting AND peer
        // coherence; the peer share is reported by the PeerCopy events
        // below, so PageMigrate carries only the host remainder — tools
        // summing both streams must not double-count.
        let transfers = self.take_peer_transfers();
        let peer_stall: u64 = transfers.iter().map(|t| t.stall_ns).sum();
        if record.uvm_faults > 0 || record.uvm_migrated_bytes > 0 || record.uvm_evicted_bytes > 0 {
            let at = self.engine.host_now();
            self.emit(RocCallback::PageMigrate {
                launch: record.launch,
                device: record.device,
                groups: record.uvm_faults,
                migrated_bytes: record.uvm_migrated_bytes,
                evicted_bytes: record.uvm_evicted_bytes,
                stall_ns: record.uvm_stall_ns.saturating_sub(peer_stall),
                at,
            });
        }
        self.emit_peer_transfers(record.launch, transfers);
        self.emit_api_exit("hipLaunchKernel");
        Ok(record)
    }

    fn synchronize(&mut self) {
        self.emit_api("hipDeviceSynchronize");
        self.engine.synchronize(self.current);
        let at = self.engine.host_now();
        let device = self.current;
        self.emit(RocCallback::Synchronize { device, at });
        self.emit_api_exit("hipDeviceSynchronize");
    }

    fn device_capacity(&self) -> u64 {
        self.engine.device(self.current).usable_capacity()
    }

    fn host_time(&self) -> SimTime {
        self.engine.host_now()
    }

    fn mem_prefetch(&mut self, ptr: accel_sim::DevicePtr, bytes: u64) -> Result<(), AccelError> {
        self.emit_api("hipMemPrefetchAsync");
        let device = self.current;
        let mut stall = 0;
        if let Some(res) = self.engine.residency_mut() {
            stall = res.prefetch(device, ptr.addr(), bytes);
        }
        if stall > 0 {
            let t = self.engine.device(device).stream_time(0);
            self.engine.device_mut(device).set_stream_time(0, t + stall);
        }
        let at = self.engine.host_now();
        self.emit(RocCallback::BatchMemOp {
            device,
            op: "hipMemPrefetchAsync",
            addr: ptr.addr(),
            bytes,
            at,
        });
        // A prefetch of a shared range may have read-duplicated pages.
        // Prefetches front-run the launch that consumes them, so the
        // transfers carry the id of the *upcoming* launch (a forward
        // reference when no further launch is ever issued).
        let transfers = self.take_peer_transfers();
        self.emit_peer_transfers(accel_sim::LaunchId(self.launches_seen), transfers);
        self.emit_api_exit("hipMemPrefetchAsync");
        Ok(())
    }

    fn mem_advise(
        &mut self,
        ptr: accel_sim::DevicePtr,
        bytes: u64,
        advice: MemAdvise,
    ) -> Result<(), AccelError> {
        self.emit_api("hipMemAdvise");
        let device = self.current;
        let mapped = match advice {
            MemAdvise::PreferredLocationDevice => ResidencyAdvice::PinOnDevice,
            MemAdvise::PreferredLocationHost => ResidencyAdvice::PreferHost,
            MemAdvise::ReadMostly => ResidencyAdvice::ReadMostly,
            MemAdvise::Unset => ResidencyAdvice::Unset,
        };
        if let Some(res) = self.engine.residency_mut() {
            res.advise(device, ptr.addr(), bytes, mapped);
        }
        let at = self.engine.host_now();
        self.emit(RocCallback::BatchMemOp {
            device,
            op: "hipMemAdvise",
            addr: ptr.addr(),
            bytes,
            at,
        });
        self.emit_api_exit("hipMemAdvise");
        Ok(())
    }

    fn stats(&self, device: DeviceId) -> RuntimeStats {
        self.engine.stats(device)
    }

    fn residency(&self) -> Option<&dyn accel_sim::ResidencyModel> {
        self.engine.residency()
    }

    fn residency_mut(&mut self) -> Option<&mut dyn accel_sim::ResidencyModel> {
        self.engine.residency_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accel_sim::{Dim3, KernelBody};
    use parking_lot::Mutex;
    use std::sync::Arc;

    fn ctx() -> HipContext {
        HipContext::new(vec![DeviceSpec::mi300x()])
    }

    #[test]
    fn free_emits_negative_delta() {
        let mut c = ctx();
        let deltas = Arc::new(Mutex::new(Vec::new()));
        let d2 = Arc::clone(&deltas);
        c.subscribe(Box::new(move |cb| {
            if let RocCallback::MemoryDelta { delta, .. } = cb {
                d2.lock().push(*delta);
            }
        }));
        let p = c.malloc(4096).unwrap();
        c.free(p).unwrap();
        let deltas = deltas.lock();
        assert_eq!(deltas.len(), 2);
        assert_eq!(deltas[0], 4096);
        assert_eq!(deltas[1], -4096, "release is a negative delta");
    }

    #[test]
    fn dispatch_vocabulary() {
        let mut c = ctx();
        let kinds = Arc::new(Mutex::new(Vec::new()));
        let k2 = Arc::clone(&kinds);
        c.subscribe(Box::new(move |cb| k2.lock().push(cb.kind().to_owned())));
        let p = c.malloc(1 << 20).unwrap();
        let desc = KernelDesc::new("gemm", Dim3::linear(64), Dim3::linear(256))
            .arg(p, 1 << 20)
            .body(KernelBody::streaming(1 << 19, 1 << 19));
        c.launch(desc).unwrap();
        let kinds = kinds.lock();
        assert!(kinds.iter().any(|k| k == "ROCPROFILER_KERNEL_DISPATCH"));
        assert!(kinds.iter().any(|k| k == "ROCPROFILER_KERNEL_COMPLETE"));
    }

    #[test]
    fn rejects_nvidia_specs() {
        let r = std::panic::catch_unwind(|| HipContext::new(vec![DeviceSpec::a100_80gb()]));
        assert!(r.is_err());
    }

    #[test]
    fn vendor_is_amd() {
        let c = ctx();
        assert_eq!(c.vendor(), Vendor::Amd);
        assert_eq!(c.device_count(), 1);
    }

    #[test]
    fn hip_api_names_flow_through() {
        let mut c = ctx();
        let names = Arc::new(Mutex::new(Vec::new()));
        let n2 = Arc::clone(&names);
        c.subscribe(Box::new(move |cb| {
            if let RocCallback::ApiEnter { name, .. } = cb {
                n2.lock().push(*name);
            }
        }));
        let p = c.malloc(64).unwrap();
        c.free(p).unwrap();
        c.synchronize();
        let names = names.lock();
        assert_eq!(*names, vec!["hipMalloc", "hipFree", "hipDeviceSynchronize"]);
    }
}
