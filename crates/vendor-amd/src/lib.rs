//! # vendor-amd — simulated AMD ROCm profiling stack
//!
//! The AMD counterpart of `vendor-nv`, reproducing the pieces the paper
//! integrates for MI300X support (§III-D):
//!
//! * the **HIP runtime** ([`hip::HipContext`]) — `hipMalloc`,
//!   `hipMallocManaged`, `hipLaunchKernel`, `hipMemcpy` … — implementing
//!   the same [`accel_sim::DeviceRuntime`] trait as the CUDA facade, so DL
//!   models run unchanged on either vendor;
//! * **ROCProfiler-SDK** ([`rocprofiler`]) — callback registration
//!   (`rocprofiler_configure_callback…`) and device-trace attachment,
//!   "analogous to NVIDIA's Compute Sanitizer callbacks" per the paper.
//!
//! Event conventions here deliberately *differ* from the NVIDIA facade —
//! `hip*` API names, kernel "dispatches" instead of "launches", and memory
//! releases reported as **negative deltas** — giving PASTA's event-handler
//! normalization layer (paper §III-G) real inconsistencies to unify.

pub mod callbacks;
pub mod hip;
pub mod rocprofiler;

pub use callbacks::{RocCallback, RocSubscriber};
pub use hip::HipContext;
pub use rocprofiler::RocProfilerConfig;
