//! Memory-usage timelines over logical event time (paper Figs. 14–15).
//!
//! Records the allocator's live-bytes total at every tensor
//! allocation/reclamation event, per device. Plotting the series
//! reproduces Fig. 14 (NVIDIA vs AMD GPT-2 training) and Fig. 15
//! (per-GPU curves under DP/TP/PP).

use accel_sim::DeviceId;
use pasta_core::{Event, Interest, Tool, ToolReport};
use serde::{Deserialize, Serialize};
use std::any::Any;
use std::collections::HashMap;

/// One point of the timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimelinePoint {
    /// Logical timestamp: tensor alloc/free event index (the paper's
    /// x-axis).
    pub event_index: u64,
    /// Live tensor bytes after the event.
    pub allocated: u64,
    /// True for an allocation, false for a reclamation.
    pub is_alloc: bool,
}

/// Cumulative UVM traffic one device's launches generated — the managed
/// -memory overlay of the per-device timeline (Fig. 15 under
/// oversubscription).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct UvmTraffic {
    /// Bytes migrated host→device.
    pub migrated_bytes: u64,
    /// Bytes evicted device→host.
    pub evicted_bytes: u64,
    /// Bytes read-duplicated onto this device over the peer link
    /// (shared managed ranges).
    pub peer_in_bytes: u64,
    /// This device's duplicate pages invalidated by remote writes.
    pub invalidated_pages: u64,
    /// Device stall charged by the UVM model, ns.
    pub stall_ns: u64,
}

/// The memory-timeline tool.
#[derive(Debug, Default)]
pub struct MemoryTimelineTool {
    series: HashMap<DeviceId, Vec<TimelinePoint>>,
    /// Managed-memory traffic keyed by the *faulting* device.
    uvm: HashMap<DeviceId, UvmTraffic>,
    counter: u64,
}

impl MemoryTimelineTool {
    /// Creates the tool.
    pub fn new() -> Self {
        MemoryTimelineTool::default()
    }

    /// The timeline of one device.
    pub fn series_for(&self, device: DeviceId) -> &[TimelinePoint] {
        self.series.get(&device).map_or(&[], Vec::as_slice)
    }

    /// Devices with recorded activity (tensor events or UVM traffic).
    pub fn devices(&self) -> Vec<DeviceId> {
        let mut v: Vec<DeviceId> = self.series.keys().copied().collect();
        v.extend(self.uvm.keys().copied());
        v.sort();
        v.dedup();
        v
    }

    /// Cumulative UVM traffic of one device's launches.
    pub fn uvm_for(&self, device: DeviceId) -> UvmTraffic {
        self.uvm.get(&device).copied().unwrap_or_default()
    }

    /// Peak live bytes on one device.
    pub fn peak_for(&self, device: DeviceId) -> u64 {
        self.series_for(device)
            .iter()
            .map(|p| p.allocated)
            .max()
            .unwrap_or(0)
    }

    /// Total alloc+free events on one device.
    pub fn events_for(&self, device: DeviceId) -> usize {
        self.series_for(device).len()
    }

    /// Pointwise difference between two devices' series (the Δ subplots
    /// of Figs. 14–15), sampled at the shorter series' length.
    pub fn delta(&self, a: DeviceId, b: DeviceId) -> Vec<i64> {
        let sa = self.series_for(a);
        let sb = self.series_for(b);
        sa.iter()
            .zip(sb.iter())
            .map(|(x, y)| x.allocated as i64 - y.allocated as i64)
            .collect()
    }
}

impl Tool for MemoryTimelineTool {
    fn name(&self) -> &str {
        "memory-timeline"
    }

    fn interest(&self) -> Interest {
        Interest {
            framework_events: true,
            // Host memory events carry the UVM fault/migration stream.
            host_events: true,
            ..Interest::default()
        }
    }

    fn on_event(&mut self, event: &Event) {
        let (device, allocated, is_alloc) = match event {
            Event::TensorAlloc {
                device,
                allocated_total,
                ..
            } => (*device, *allocated_total, true),
            Event::TensorFree {
                device,
                allocated_total,
                ..
            } => (*device, *allocated_total, false),
            Event::UvmFault {
                device,
                migrated_bytes,
                evicted_bytes,
                stall_ns,
                ..
            } => {
                let traffic = self.uvm.entry(*device).or_default();
                traffic.migrated_bytes += migrated_bytes;
                traffic.evicted_bytes += evicted_bytes;
                traffic.stall_ns += stall_ns;
                return;
            }
            Event::UvmPeerMigrate {
                dst,
                bytes,
                invalidated_pages,
                stall_ns,
                ..
            } => {
                // Peer traffic lands on the *destination* device's
                // overlay — that is whose residency changed.
                let traffic = self.uvm.entry(*dst).or_default();
                traffic.peer_in_bytes += bytes;
                traffic.invalidated_pages += invalidated_pages;
                traffic.stall_ns += stall_ns;
                return;
            }
            _ => return,
        };
        let series = self.series.entry(device).or_default();
        let event_index = series.len() as u64;
        self.counter += 1;
        series.push(TimelinePoint {
            event_index,
            allocated,
            is_alloc,
        });
    }

    fn report(&self) -> ToolReport {
        let mut report = ToolReport::new(self.name());
        for device in self.devices() {
            report = report
                .metric(format!("{device}_events"), self.events_for(device) as f64)
                .metric(
                    format!("{device}_peak_mb"),
                    crate::util::mb(self.peak_for(device)),
                );
            let traffic = self.uvm_for(device);
            if traffic != UvmTraffic::default() {
                report = report
                    .metric(
                        format!("{device}_uvm_migrated_mb"),
                        crate::util::mb(traffic.migrated_bytes),
                    )
                    .metric(
                        format!("{device}_uvm_evicted_mb"),
                        crate::util::mb(traffic.evicted_bytes),
                    );
                if traffic.peer_in_bytes > 0 || traffic.invalidated_pages > 0 {
                    report = report
                        .metric(
                            format!("{device}_uvm_peer_in_mb"),
                            crate::util::mb(traffic.peer_in_bytes),
                        )
                        .metric(
                            format!("{device}_uvm_invalidated_pages"),
                            traffic.invalidated_pages as f64,
                        );
                }
            }
        }
        report
    }

    fn reset(&mut self) {
        self.series.clear();
        self.uvm.clear();
        self.counter = 0;
    }

    fn fork(&self) -> Option<Box<dyn Tool>> {
        Some(Box::new(MemoryTimelineTool::new()))
    }

    fn merge(&mut self, other: &dyn Tool) {
        let Some(other) = other.as_any().downcast_ref::<MemoryTimelineTool>() else {
            return;
        };
        // Shards see disjoint devices, so this is normally a plain union;
        // overlapping devices append after the existing points, reindexed
        // to keep per-device event indices dense.
        for (device, points) in &other.series {
            let series = self.series.entry(*device).or_default();
            let base = series.len() as u64;
            series.extend(points.iter().enumerate().map(|(i, p)| TimelinePoint {
                event_index: base + i as u64,
                ..*p
            }));
        }
        for (device, traffic) in &other.uvm {
            let mine = self.uvm.entry(*device).or_default();
            mine.migrated_bytes += traffic.migrated_bytes;
            mine.evicted_bytes += traffic.evicted_bytes;
            mine.peer_in_bytes += traffic.peer_in_bytes;
            mine.invalidated_pages += traffic.invalidated_pages;
            mine.stall_ns += traffic.stall_ns;
        }
        self.counter += other.counter;
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dl_framework::tensor::TensorId;

    fn alloc(device: u32, total: u64) -> Event {
        Event::TensorAlloc {
            tensor: TensorId(0),
            addr: 0,
            bytes: 1,
            allocated_total: total,
            reserved_total: total,
            device: DeviceId(device),
        }
    }

    fn free(device: u32, total: u64) -> Event {
        Event::TensorFree {
            tensor: TensorId(0),
            addr: 0,
            bytes: 1,
            allocated_total: total,
            reserved_total: total,
            device: DeviceId(device),
        }
    }

    #[test]
    fn ramp_up_peak_ramp_down() {
        let mut t = MemoryTimelineTool::new();
        for total in [100, 200, 300] {
            t.on_event(&alloc(0, total));
        }
        for total in [200, 100, 0] {
            t.on_event(&free(0, total));
        }
        let series = t.series_for(DeviceId(0));
        assert_eq!(series.len(), 6);
        assert_eq!(t.peak_for(DeviceId(0)), 300);
        assert!(series[2].is_alloc);
        assert!(!series[3].is_alloc);
        assert_eq!(series.last().unwrap().allocated, 0);
    }

    #[test]
    fn per_device_series_and_delta() {
        let mut t = MemoryTimelineTool::new();
        t.on_event(&alloc(0, 100));
        t.on_event(&alloc(1, 60));
        t.on_event(&alloc(0, 200));
        t.on_event(&alloc(1, 160));
        assert_eq!(t.devices(), vec![DeviceId(0), DeviceId(1)]);
        assert_eq!(t.delta(DeviceId(0), DeviceId(1)), vec![40, 40]);
        let r = t.report();
        assert_eq!(r.get("gpu0_events"), Some(2.0));
        assert_eq!(r.get("gpu1_events"), Some(2.0));
    }

    #[test]
    fn merge_unions_disjoint_devices() {
        let mut a = MemoryTimelineTool::new();
        a.on_event(&alloc(0, 100));
        let mut b = MemoryTimelineTool::new();
        b.on_event(&alloc(1, 60));
        b.on_event(&free(1, 0));
        let mut merged = a.fork().unwrap();
        merged.merge(&a);
        merged.merge(&b);
        let merged = merged
            .as_any()
            .downcast_ref::<MemoryTimelineTool>()
            .unwrap();
        assert_eq!(merged.devices(), vec![DeviceId(0), DeviceId(1)]);
        assert_eq!(merged.events_for(DeviceId(1)), 2);
        assert_eq!(merged.series_for(DeviceId(1))[1].event_index, 1);
        assert_eq!(merged.peak_for(DeviceId(0)), 100);
    }

    #[test]
    fn uvm_traffic_attributes_to_the_faulting_device() {
        use accel_sim::{LaunchId, SimTime};
        let mut t = MemoryTimelineTool::new();
        t.on_event(&Event::UvmFault {
            launch: LaunchId(0),
            device: DeviceId(1),
            groups: 2,
            migrated_bytes: 6 << 20,
            evicted_bytes: 1 << 20,
            stall_ns: 500,
            at: SimTime(0),
        });
        assert_eq!(t.uvm_for(DeviceId(1)).migrated_bytes, 6 << 20);
        assert_eq!(t.uvm_for(DeviceId(0)), UvmTraffic::default());
        assert_eq!(t.devices(), vec![DeviceId(1)]);
        let r = t.report();
        assert_eq!(r.get("gpu1_uvm_migrated_mb"), Some(6.0));
        assert_eq!(r.get("gpu1_uvm_evicted_mb"), Some(1.0));
        // Merge sums traffic per device.
        let mut other = MemoryTimelineTool::new();
        other.on_event(&Event::UvmFault {
            launch: LaunchId(1),
            device: DeviceId(1),
            groups: 1,
            migrated_bytes: 2 << 20,
            evicted_bytes: 0,
            stall_ns: 100,
            at: SimTime(1),
        });
        let mut merged = t.fork().unwrap();
        merged.merge(&t);
        merged.merge(&other);
        let merged = merged
            .as_any()
            .downcast_ref::<MemoryTimelineTool>()
            .unwrap();
        assert_eq!(merged.uvm_for(DeviceId(1)).migrated_bytes, 8 << 20);
    }

    #[test]
    fn peer_traffic_overlays_the_destination_device() {
        use accel_sim::{LaunchId, SimTime};
        let mut t = MemoryTimelineTool::new();
        t.on_event(&Event::UvmPeerMigrate {
            launch: LaunchId(0),
            src: DeviceId(0),
            dst: DeviceId(1),
            duplicated_pages: 32,
            invalidated_pages: 3,
            bytes: 2 << 20,
            stall_ns: 700,
            at: SimTime(0),
        });
        assert_eq!(t.uvm_for(DeviceId(1)).peer_in_bytes, 2 << 20);
        assert_eq!(t.uvm_for(DeviceId(1)).invalidated_pages, 3);
        assert_eq!(t.uvm_for(DeviceId(0)), UvmTraffic::default());
        let r = t.report();
        assert_eq!(r.get("gpu1_uvm_peer_in_mb"), Some(2.0));
        assert_eq!(r.get("gpu1_uvm_invalidated_pages"), Some(3.0));
        // Merge folds the overlay per device.
        let mut merged = t.fork().unwrap();
        merged.merge(&t);
        merged.merge(&t);
        let merged = merged
            .as_any()
            .downcast_ref::<MemoryTimelineTool>()
            .unwrap();
        assert_eq!(merged.uvm_for(DeviceId(1)).peer_in_bytes, 4 << 20);
    }

    #[test]
    fn event_index_is_per_device() {
        let mut t = MemoryTimelineTool::new();
        t.on_event(&alloc(0, 1));
        t.on_event(&alloc(1, 1));
        t.on_event(&alloc(0, 2));
        assert_eq!(t.series_for(DeviceId(0))[1].event_index, 1);
        assert_eq!(t.series_for(DeviceId(1))[0].event_index, 0);
    }
}
