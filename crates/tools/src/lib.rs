//! # pasta-tools — analysis tools built on the PASTA framework
//!
//! The paper demonstrates PASTA by building tools "with only a few lines
//! of code" (§V-B). This crate contains those case-study tools plus the
//! §III-H extensibility examples:
//!
//! * [`KernelFrequencyTool`] — kernel invocation frequency distribution
//!   (Fig. 7);
//! * [`MemoryCharacteristicsTool`] — per-kernel working sets, model
//!   footprints, min/avg/median/p90 statistics (Table V);
//! * [`HotnessTool`] — time-series access hotness per 2 MiB block
//!   (Fig. 13);
//! * [`MemoryTimelineTool`] — tensor alloc/free memory curves over logical
//!   time (Figs. 14–15);
//! * [`UvmPrefetchAdvisor`] — profiles kernel↔object↔tensor access
//!   correlations and generates object-level or tensor-level prefetch
//!   plans (the §V-C tensor-aware UVM prefetcher);
//! * [`BarrierStallTool`] — memory-barrier stall analysis (§III-H);
//! * [`OverflowSanitizerTool`] — a value-based numeric-overflow sanitizer
//!   sketch (§III-H);
//! * [`LaunchCensusTool`] — launch-geometry census (quickstart example);
//! * [`OpKernelMapTool`] — the §III-E operator→kernel mapping that DL
//!   frameworks hide from users;
//! * [`TransferTool`] — CPU↔GPU transfer analysis in the spirit of the
//!   cited DrGPUM/Diogenes tools.

pub mod barrier_stall;
pub mod hotness;
pub mod kernel_freq;
pub mod launch_census;
pub mod mem_timeline;
pub mod memchar;
pub mod op_kernel_map;
pub mod overflow_sanitizer;
pub mod serving;
pub mod transfer;
pub mod util;
pub mod uvm_advisor;

pub use barrier_stall::BarrierStallTool;
pub use hotness::HotnessTool;
pub use kernel_freq::KernelFrequencyTool;
pub use launch_census::LaunchCensusTool;
pub use mem_timeline::{MemoryTimelineTool, TimelinePoint, UvmTraffic};
pub use memchar::{MemoryCharacteristics, MemoryCharacteristicsTool};
pub use op_kernel_map::OpKernelMapTool;
pub use overflow_sanitizer::OverflowSanitizerTool;
pub use serving::ServingReport;
pub use transfer::TransferTool;
pub use uvm_advisor::{PeerTraffic, UvmActivity, UvmPrefetchAdvisor};
