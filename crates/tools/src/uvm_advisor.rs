//! The tensor-aware UVM prefetch advisor (paper §V-C1).
//!
//! PASTA's cross-layer capture is what makes this tool possible: it sees
//! *low-level* managed-memory objects (`cudaMallocManaged` segments of the
//! caching allocator) **and** *high-level* tensors (framework allocation
//! events) **and** the per-kernel access extents, so it can correlate all
//! three. From one profiled run it generates:
//!
//! * an **object-level** plan — before each kernel, prefetch every managed
//!   segment the kernel touches (the strategy of prior UVM work); or
//! * a **tensor-level** plan — prefetch only the tensors the kernel
//!   touches, skipping the dead weight that shares their segments.
//!
//! Replaying the plan through the runtime's prefetch hook produces the
//! Fig. 11/12 comparisons.

use pasta_core::{Event, Interest, Tool, ToolReport};
use std::any::Any;
use std::collections::BTreeMap;
use uvm_sim::{PrefetchGranularity, PrefetchPlan, Range};

/// Observed UVM fault/migration activity, per device.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UvmActivity {
    /// Fault groups serviced.
    pub fault_groups: u64,
    /// Bytes migrated host→device.
    pub migrated_bytes: u64,
    /// Bytes evicted device→host.
    pub evicted_bytes: u64,
    /// Device stall charged to launches, ns.
    pub stall_ns: u64,
}

impl UvmActivity {
    fn merge_from(&mut self, other: &UvmActivity) {
        self.fault_groups += other.fault_groups;
        self.migrated_bytes += other.migrated_bytes;
        self.evicted_bytes += other.evicted_bytes;
        self.stall_ns += other.stall_ns;
    }
}

/// Observed peer-to-peer coherence traffic between one (src, dst) device
/// pair — shared managed ranges only.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PeerTraffic {
    /// Pages read-duplicated src→dst.
    pub duplicated_pages: u64,
    /// dst duplicate pages invalidated by src's writes.
    pub invalidated_pages: u64,
    /// Bytes moved over the peer link.
    pub bytes: u64,
    /// Device stall charged to launches, ns.
    pub stall_ns: u64,
}

impl PeerTraffic {
    fn merge_from(&mut self, other: &PeerTraffic) {
        self.duplicated_pages += other.duplicated_pages;
        self.invalidated_pages += other.invalidated_pages;
        self.bytes += other.bytes;
        self.stall_ns += other.stall_ns;
    }
}

/// The profiling-side advisor.
#[derive(Debug, Default)]
pub struct UvmPrefetchAdvisor {
    /// Live managed objects: base → len.
    objects: BTreeMap<u64, u64>,
    /// Live tensors: base → len.
    tensors: BTreeMap<u64, u64>,
    /// Per-launch-index touched object ranges.
    launch_objects: Vec<Vec<Range>>,
    /// Per-launch-index touched tensor ranges.
    launch_tensors: Vec<Vec<Range>>,
    /// Fault/migration activity keyed by the *faulting* device (the
    /// routed `Event::UvmFault` stream — under parallel lanes each shard
    /// sees exactly its own device's faults).
    uvm: BTreeMap<accel_sim::DeviceId, UvmActivity>,
    /// Peer-to-peer coherence traffic keyed by (src, dst) — the routed
    /// `Event::UvmPeerMigrate` stream (each shard sees the operations
    /// whose *destination* is its device).
    peer: BTreeMap<(accel_sim::DeviceId, accel_sim::DeviceId), PeerTraffic>,
}

fn containing(map: &BTreeMap<u64, u64>, addr: u64) -> Option<Range> {
    map.range(..=addr)
        .next_back()
        .filter(|&(&base, &len)| addr < base + len)
        .map(|(&base, &len)| Range::new(base, len))
}

impl UvmPrefetchAdvisor {
    /// Creates the advisor.
    pub fn new() -> Self {
        UvmPrefetchAdvisor::default()
    }

    fn slot(&mut self, launch: usize) -> (&mut Vec<Range>, &mut Vec<Range>) {
        if launch >= self.launch_objects.len() {
            self.launch_objects.resize(launch + 1, Vec::new());
            self.launch_tensors.resize(launch + 1, Vec::new());
        }
        (
            &mut self.launch_objects[launch],
            &mut self.launch_tensors[launch],
        )
    }

    /// Number of launches profiled.
    pub fn launches_profiled(&self) -> usize {
        self.launch_objects.len()
    }

    /// Builds the prefetch plan at the requested granularity.
    pub fn build_plan(&self, granularity: PrefetchGranularity) -> PrefetchPlan {
        let mut plan = PrefetchPlan::with_capacity(self.launch_objects.len());
        plan.granularity = Some(granularity);
        let source = match granularity {
            PrefetchGranularity::None => return plan,
            PrefetchGranularity::Object => &self.launch_objects,
            PrefetchGranularity::Tensor => &self.launch_tensors,
        };
        for (i, ranges) in source.iter().enumerate() {
            for r in ranges {
                plan.add(i, *r);
            }
        }
        plan
    }

    /// Total bytes an object-level plan would move versus a tensor-level
    /// one — the "dead weight" factor.
    pub fn object_vs_tensor_bytes(&self) -> (u64, u64) {
        (
            self.build_plan(PrefetchGranularity::Object).total_bytes(),
            self.build_plan(PrefetchGranularity::Tensor).total_bytes(),
        )
    }

    /// Observed fault/migration activity of one device.
    pub fn uvm_activity_for(&self, device: accel_sim::DeviceId) -> UvmActivity {
        self.uvm.get(&device).copied().unwrap_or_default()
    }

    /// Devices with observed UVM activity, ascending.
    pub fn uvm_devices(&self) -> Vec<accel_sim::DeviceId> {
        self.uvm.keys().copied().collect()
    }

    /// Observed peer traffic of one (src, dst) device pair.
    pub fn peer_traffic_for(
        &self,
        src: accel_sim::DeviceId,
        dst: accel_sim::DeviceId,
    ) -> PeerTraffic {
        self.peer.get(&(src, dst)).copied().unwrap_or_default()
    }

    /// The full per-pair peer-traffic matrix, ascending (src, dst).
    pub fn peer_matrix(&self) -> Vec<((accel_sim::DeviceId, accel_sim::DeviceId), PeerTraffic)> {
        self.peer.iter().map(|(&k, &v)| (k, v)).collect()
    }
}

impl Tool for UvmPrefetchAdvisor {
    fn name(&self) -> &str {
        "uvm-prefetch-advisor"
    }

    fn interest(&self) -> Interest {
        Interest {
            global_accesses: true,
            host_events: true,
            framework_events: true,
            ..Interest::default()
        }
    }

    fn on_event(&mut self, event: &Event) {
        match event {
            Event::ResourceAlloc {
                addr,
                bytes,
                managed: true,
                ..
            } => {
                self.objects.insert(*addr, *bytes);
            }
            Event::ResourceFree { addr, .. } => {
                self.objects.remove(addr);
            }
            Event::TensorAlloc { addr, bytes, .. } => {
                self.tensors.insert(*addr, *bytes);
            }
            Event::TensorFree { addr, .. } => {
                self.tensors.remove(addr);
            }
            Event::GlobalAccess { launch, batch, .. } => {
                let object = containing(&self.objects, batch.base);
                let tensor = containing(&self.tensors, batch.base)
                    .unwrap_or(Range::new(batch.base, batch.len));
                let idx = launch.value() as usize;
                let (objs, tens) = self.slot(idx);
                if let Some(o) = object {
                    if !objs.contains(&o) {
                        objs.push(o);
                    }
                }
                if !tens.contains(&tensor) {
                    tens.push(tensor);
                }
            }
            Event::UvmFault {
                device,
                groups,
                migrated_bytes,
                evicted_bytes,
                stall_ns,
                ..
            } => {
                self.uvm
                    .entry(*device)
                    .or_default()
                    .merge_from(&UvmActivity {
                        fault_groups: *groups,
                        migrated_bytes: *migrated_bytes,
                        evicted_bytes: *evicted_bytes,
                        stall_ns: *stall_ns,
                    });
            }
            Event::UvmPeerMigrate {
                src,
                dst,
                duplicated_pages,
                invalidated_pages,
                bytes,
                stall_ns,
                ..
            } => {
                self.peer
                    .entry((*src, *dst))
                    .or_default()
                    .merge_from(&PeerTraffic {
                        duplicated_pages: *duplicated_pages,
                        invalidated_pages: *invalidated_pages,
                        bytes: *bytes,
                        stall_ns: *stall_ns,
                    });
            }
            _ => {}
        }
    }

    fn report(&self) -> ToolReport {
        let (obj, ten) = self.object_vs_tensor_bytes();
        let mut report = ToolReport::new(self.name())
            .metric("launches", self.launches_profiled() as f64)
            .metric("object_plan_mb", crate::util::mb(obj))
            .metric("tensor_plan_mb", crate::util::mb(ten))
            .metric(
                "object_overfetch_factor",
                if ten > 0 {
                    obj as f64 / ten as f64
                } else {
                    0.0
                },
            );
        for (device, activity) in &self.uvm {
            report = report
                .metric(
                    format!("{device}_fault_groups"),
                    activity.fault_groups as f64,
                )
                .metric(
                    format!("{device}_migrated_mb"),
                    crate::util::mb(activity.migrated_bytes),
                )
                .metric(
                    format!("{device}_evicted_mb"),
                    crate::util::mb(activity.evicted_bytes),
                );
        }
        for ((src, dst), traffic) in &self.peer {
            report = report
                .metric(
                    format!("{src}_to_{dst}_peer_mb"),
                    crate::util::mb(traffic.bytes),
                )
                .metric(
                    format!("{src}_to_{dst}_invalidated_pages"),
                    traffic.invalidated_pages as f64,
                );
        }
        report
    }

    fn reset(&mut self) {
        self.objects.clear();
        self.tensors.clear();
        self.launch_objects.clear();
        self.launch_tensors.clear();
        self.uvm.clear();
        self.peer.clear();
    }

    fn fork(&self) -> Option<Box<dyn Tool>> {
        Some(Box::new(UvmPrefetchAdvisor::new()))
    }

    fn merge(&mut self, other: &dyn Tool) {
        let Some(other) = other.as_any().downcast_ref::<UvmPrefetchAdvisor>() else {
            return;
        };
        for (&base, &len) in &other.objects {
            self.objects.insert(base, len);
        }
        for (&base, &len) in &other.tensors {
            self.tensors.insert(base, len);
        }
        for (idx, ranges) in other.launch_objects.iter().enumerate() {
            let (objs, _) = self.slot(idx);
            for r in ranges {
                if !objs.contains(r) {
                    objs.push(*r);
                }
            }
        }
        for (idx, ranges) in other.launch_tensors.iter().enumerate() {
            let (_, tens) = self.slot(idx);
            for r in ranges {
                if !tens.contains(r) {
                    tens.push(*r);
                }
            }
        }
        for (device, activity) in &other.uvm {
            self.uvm.entry(*device).or_default().merge_from(activity);
        }
        for (pair, traffic) in &other.peer {
            self.peer.entry(*pair).or_default().merge_from(traffic);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accel_sim::{
        AccessBatch, AccessKind, AccessPattern, DeviceId, LaunchId, MemSpace, SimTime,
    };
    use dl_framework::tensor::TensorId;

    fn managed_alloc(addr: u64, bytes: u64) -> Event {
        Event::ResourceAlloc {
            device: DeviceId(0),
            addr,
            bytes,
            managed: true,
            at: SimTime(0),
        }
    }

    fn tensor_alloc(addr: u64, bytes: u64) -> Event {
        Event::TensorAlloc {
            tensor: TensorId(addr),
            addr,
            bytes,
            allocated_total: 0,
            reserved_total: 0,
            device: DeviceId(0),
        }
    }

    fn access(launch: u64, base: u64, len: u64) -> Event {
        Event::GlobalAccess {
            launch: LaunchId(launch),
            kernel: "k".into(),
            batch: AccessBatch {
                launch: LaunchId(launch),
                spec_index: 0,
                base,
                len,
                records: 1,
                bytes: len,
                elem_size: 4,
                kind: AccessKind::Load,
                space: MemSpace::Global,
                pattern: AccessPattern::Sequential,
            },
        }
    }

    #[test]
    fn object_plan_overfetches_tensor_plan() {
        let mut a = UvmPrefetchAdvisor::new();
        // One 20 MiB segment holding a 1 MiB tensor that kernel 0 touches.
        a.on_event(&managed_alloc(0x1000_0000, 20 << 20));
        a.on_event(&tensor_alloc(0x1000_0000, 1 << 20));
        a.on_event(&access(0, 0x1000_0000, 1 << 20));
        let (obj, ten) = a.object_vs_tensor_bytes();
        assert_eq!(obj, 20 << 20, "object plan moves the whole segment");
        assert_eq!(ten, 1 << 20, "tensor plan moves just the tensor");
        let r = a.report();
        assert_eq!(r.get("object_overfetch_factor"), Some(20.0));
    }

    #[test]
    fn plans_index_by_launch() {
        let mut a = UvmPrefetchAdvisor::new();
        a.on_event(&managed_alloc(0, 4 << 20));
        a.on_event(&tensor_alloc(0, 1 << 20));
        a.on_event(&tensor_alloc(1 << 20, 1 << 20));
        a.on_event(&access(0, 0, 1 << 20));
        a.on_event(&access(2, 1 << 20, 1 << 20));
        let plan = a.build_plan(PrefetchGranularity::Tensor);
        assert_eq!(plan.ranges_for(0), &[Range::new(0, 1 << 20)]);
        assert!(plan.ranges_for(1).is_empty());
        assert_eq!(plan.ranges_for(2), &[Range::new(1 << 20, 1 << 20)]);
    }

    #[test]
    fn duplicate_touches_dedup() {
        let mut a = UvmPrefetchAdvisor::new();
        a.on_event(&managed_alloc(0, 4 << 20));
        a.on_event(&tensor_alloc(0, 1 << 20));
        a.on_event(&access(0, 0, 512 << 10));
        a.on_event(&access(0, 0, 512 << 10));
        let plan = a.build_plan(PrefetchGranularity::Object);
        assert_eq!(plan.ranges_for(0).len(), 1);
    }

    #[test]
    fn freed_objects_stop_matching() {
        let mut a = UvmPrefetchAdvisor::new();
        a.on_event(&managed_alloc(0, 4 << 20));
        a.on_event(&Event::ResourceFree {
            device: DeviceId(0),
            addr: 0,
            bytes: 4 << 20,
            at: SimTime(1),
        });
        a.on_event(&access(0, 0, 1 << 20));
        let plan = a.build_plan(PrefetchGranularity::Object);
        assert!(plan.ranges_for(0).is_empty());
        // Tensor plan falls back to the raw batch extent.
        let tplan = a.build_plan(PrefetchGranularity::Tensor);
        assert_eq!(tplan.ranges_for(0).len(), 1);
    }

    #[test]
    fn fault_activity_accumulates_per_faulting_device_and_merges() {
        fn fault(device: u32, groups: u64, migrated: u64) -> Event {
            Event::UvmFault {
                launch: LaunchId(0),
                device: DeviceId(device),
                groups,
                migrated_bytes: migrated,
                evicted_bytes: migrated / 4,
                stall_ns: groups * 100,
                at: SimTime(0),
            }
        }
        let mut shard0 = UvmPrefetchAdvisor::new();
        shard0.on_event(&fault(0, 2, 8 << 20));
        shard0.on_event(&fault(0, 1, 4 << 20));
        let mut shard1 = UvmPrefetchAdvisor::new();
        shard1.on_event(&fault(1, 5, 16 << 20));

        let a0 = shard0.uvm_activity_for(DeviceId(0));
        assert_eq!(a0.fault_groups, 3);
        assert_eq!(a0.migrated_bytes, 12 << 20);
        assert_eq!(shard0.uvm_activity_for(DeviceId(1)), UvmActivity::default());

        let mut merged = shard0.fork().unwrap();
        merged.merge(&shard0);
        merged.merge(&shard1);
        let merged = merged
            .as_any()
            .downcast_ref::<UvmPrefetchAdvisor>()
            .unwrap();
        assert_eq!(merged.uvm_devices(), vec![DeviceId(0), DeviceId(1)]);
        assert_eq!(merged.uvm_activity_for(DeviceId(0)).fault_groups, 3);
        assert_eq!(merged.uvm_activity_for(DeviceId(1)).fault_groups, 5);
        let r = merged.report();
        assert_eq!(r.get("gpu0_migrated_mb"), Some(12.0));
        assert_eq!(r.get("gpu1_fault_groups"), Some(5.0));
    }

    #[test]
    fn peer_matrix_accumulates_per_pair_and_merges() {
        fn peer(src: u32, dst: u32, pages: u64, invalidated: u64) -> Event {
            Event::UvmPeerMigrate {
                launch: LaunchId(0),
                src: DeviceId(src),
                dst: DeviceId(dst),
                duplicated_pages: pages,
                invalidated_pages: invalidated,
                bytes: pages * (64 << 10),
                stall_ns: pages * 10,
                at: SimTime(0),
            }
        }
        let mut shard1 = UvmPrefetchAdvisor::new();
        shard1.on_event(&peer(0, 1, 16, 0));
        shard1.on_event(&peer(0, 1, 16, 4));
        let mut shard0 = UvmPrefetchAdvisor::new();
        shard0.on_event(&peer(1, 0, 8, 0));

        let t = shard1.peer_traffic_for(DeviceId(0), DeviceId(1));
        assert_eq!(t.duplicated_pages, 32);
        assert_eq!(t.invalidated_pages, 4);
        assert_eq!(
            shard1.peer_traffic_for(DeviceId(1), DeviceId(0)),
            PeerTraffic::default(),
            "directions are distinct matrix cells"
        );

        let mut merged = shard0.fork().unwrap();
        merged.merge(&shard0);
        merged.merge(&shard1);
        let merged = merged
            .as_any()
            .downcast_ref::<UvmPrefetchAdvisor>()
            .unwrap();
        assert_eq!(
            merged
                .peer_matrix()
                .iter()
                .map(|&(pair, _)| pair)
                .collect::<Vec<_>>(),
            vec![(DeviceId(0), DeviceId(1)), (DeviceId(1), DeviceId(0)),],
            "matrix rows ascending by (src, dst)"
        );
        let r = merged.report();
        assert_eq!(r.get("gpu0_to_gpu1_peer_mb"), Some(2.0));
        assert_eq!(r.get("gpu0_to_gpu1_invalidated_pages"), Some(4.0));
        assert_eq!(r.get("gpu1_to_gpu0_peer_mb"), Some(0.5));
    }

    #[test]
    fn none_granularity_is_empty() {
        let mut a = UvmPrefetchAdvisor::new();
        a.on_event(&managed_alloc(0, 1 << 20));
        a.on_event(&access(0, 0, 1 << 20));
        assert!(a.build_plan(PrefetchGranularity::None).is_empty());
    }
}
