//! The tensor-aware UVM prefetch advisor (paper §V-C1).
//!
//! PASTA's cross-layer capture is what makes this tool possible: it sees
//! *low-level* managed-memory objects (`cudaMallocManaged` segments of the
//! caching allocator) **and** *high-level* tensors (framework allocation
//! events) **and** the per-kernel access extents, so it can correlate all
//! three. From one profiled run it generates:
//!
//! * an **object-level** plan — before each kernel, prefetch every managed
//!   segment the kernel touches (the strategy of prior UVM work); or
//! * a **tensor-level** plan — prefetch only the tensors the kernel
//!   touches, skipping the dead weight that shares their segments.
//!
//! Replaying the plan through the runtime's prefetch hook produces the
//! Fig. 11/12 comparisons.

use pasta_core::{Event, Interest, Tool, ToolReport};
use std::any::Any;
use std::collections::BTreeMap;
use uvm_sim::{PrefetchGranularity, PrefetchPlan, Range};

/// The profiling-side advisor.
#[derive(Debug, Default)]
pub struct UvmPrefetchAdvisor {
    /// Live managed objects: base → len.
    objects: BTreeMap<u64, u64>,
    /// Live tensors: base → len.
    tensors: BTreeMap<u64, u64>,
    /// Per-launch-index touched object ranges.
    launch_objects: Vec<Vec<Range>>,
    /// Per-launch-index touched tensor ranges.
    launch_tensors: Vec<Vec<Range>>,
}

fn containing(map: &BTreeMap<u64, u64>, addr: u64) -> Option<Range> {
    map.range(..=addr)
        .next_back()
        .filter(|&(&base, &len)| addr < base + len)
        .map(|(&base, &len)| Range::new(base, len))
}

impl UvmPrefetchAdvisor {
    /// Creates the advisor.
    pub fn new() -> Self {
        UvmPrefetchAdvisor::default()
    }

    fn slot(&mut self, launch: usize) -> (&mut Vec<Range>, &mut Vec<Range>) {
        if launch >= self.launch_objects.len() {
            self.launch_objects.resize(launch + 1, Vec::new());
            self.launch_tensors.resize(launch + 1, Vec::new());
        }
        (
            &mut self.launch_objects[launch],
            &mut self.launch_tensors[launch],
        )
    }

    /// Number of launches profiled.
    pub fn launches_profiled(&self) -> usize {
        self.launch_objects.len()
    }

    /// Builds the prefetch plan at the requested granularity.
    pub fn build_plan(&self, granularity: PrefetchGranularity) -> PrefetchPlan {
        let mut plan = PrefetchPlan::with_capacity(self.launch_objects.len());
        plan.granularity = Some(granularity);
        let source = match granularity {
            PrefetchGranularity::None => return plan,
            PrefetchGranularity::Object => &self.launch_objects,
            PrefetchGranularity::Tensor => &self.launch_tensors,
        };
        for (i, ranges) in source.iter().enumerate() {
            for r in ranges {
                plan.add(i, *r);
            }
        }
        plan
    }

    /// Total bytes an object-level plan would move versus a tensor-level
    /// one — the "dead weight" factor.
    pub fn object_vs_tensor_bytes(&self) -> (u64, u64) {
        (
            self.build_plan(PrefetchGranularity::Object).total_bytes(),
            self.build_plan(PrefetchGranularity::Tensor).total_bytes(),
        )
    }
}

impl Tool for UvmPrefetchAdvisor {
    fn name(&self) -> &str {
        "uvm-prefetch-advisor"
    }

    fn interest(&self) -> Interest {
        Interest {
            global_accesses: true,
            host_events: true,
            framework_events: true,
            ..Interest::default()
        }
    }

    fn on_event(&mut self, event: &Event) {
        match event {
            Event::ResourceAlloc {
                addr,
                bytes,
                managed: true,
                ..
            } => {
                self.objects.insert(*addr, *bytes);
            }
            Event::ResourceFree { addr, .. } => {
                self.objects.remove(addr);
            }
            Event::TensorAlloc { addr, bytes, .. } => {
                self.tensors.insert(*addr, *bytes);
            }
            Event::TensorFree { addr, .. } => {
                self.tensors.remove(addr);
            }
            Event::GlobalAccess { launch, batch, .. } => {
                let object = containing(&self.objects, batch.base);
                let tensor = containing(&self.tensors, batch.base)
                    .unwrap_or(Range::new(batch.base, batch.len));
                let idx = launch.value() as usize;
                let (objs, tens) = self.slot(idx);
                if let Some(o) = object {
                    if !objs.contains(&o) {
                        objs.push(o);
                    }
                }
                if !tens.contains(&tensor) {
                    tens.push(tensor);
                }
            }
            _ => {}
        }
    }

    fn report(&self) -> ToolReport {
        let (obj, ten) = self.object_vs_tensor_bytes();
        ToolReport::new(self.name())
            .metric("launches", self.launches_profiled() as f64)
            .metric("object_plan_mb", crate::util::mb(obj))
            .metric("tensor_plan_mb", crate::util::mb(ten))
            .metric(
                "object_overfetch_factor",
                if ten > 0 {
                    obj as f64 / ten as f64
                } else {
                    0.0
                },
            )
    }

    fn reset(&mut self) {
        self.objects.clear();
        self.tensors.clear();
        self.launch_objects.clear();
        self.launch_tensors.clear();
    }

    fn fork(&self) -> Option<Box<dyn Tool>> {
        Some(Box::new(UvmPrefetchAdvisor::new()))
    }

    fn merge(&mut self, other: &dyn Tool) {
        let Some(other) = other.as_any().downcast_ref::<UvmPrefetchAdvisor>() else {
            return;
        };
        for (&base, &len) in &other.objects {
            self.objects.insert(base, len);
        }
        for (&base, &len) in &other.tensors {
            self.tensors.insert(base, len);
        }
        for (idx, ranges) in other.launch_objects.iter().enumerate() {
            let (objs, _) = self.slot(idx);
            for r in ranges {
                if !objs.contains(r) {
                    objs.push(*r);
                }
            }
        }
        for (idx, ranges) in other.launch_tensors.iter().enumerate() {
            let (_, tens) = self.slot(idx);
            for r in ranges {
                if !tens.contains(r) {
                    tens.push(*r);
                }
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accel_sim::{
        AccessBatch, AccessKind, AccessPattern, DeviceId, LaunchId, MemSpace, SimTime,
    };
    use dl_framework::tensor::TensorId;

    fn managed_alloc(addr: u64, bytes: u64) -> Event {
        Event::ResourceAlloc {
            device: DeviceId(0),
            addr,
            bytes,
            managed: true,
            at: SimTime(0),
        }
    }

    fn tensor_alloc(addr: u64, bytes: u64) -> Event {
        Event::TensorAlloc {
            tensor: TensorId(addr),
            addr,
            bytes,
            allocated_total: 0,
            reserved_total: 0,
            device: DeviceId(0),
        }
    }

    fn access(launch: u64, base: u64, len: u64) -> Event {
        Event::GlobalAccess {
            launch: LaunchId(launch),
            kernel: "k".into(),
            batch: AccessBatch {
                launch: LaunchId(launch),
                spec_index: 0,
                base,
                len,
                records: 1,
                bytes: len,
                elem_size: 4,
                kind: AccessKind::Load,
                space: MemSpace::Global,
                pattern: AccessPattern::Sequential,
            },
        }
    }

    #[test]
    fn object_plan_overfetches_tensor_plan() {
        let mut a = UvmPrefetchAdvisor::new();
        // One 20 MiB segment holding a 1 MiB tensor that kernel 0 touches.
        a.on_event(&managed_alloc(0x1000_0000, 20 << 20));
        a.on_event(&tensor_alloc(0x1000_0000, 1 << 20));
        a.on_event(&access(0, 0x1000_0000, 1 << 20));
        let (obj, ten) = a.object_vs_tensor_bytes();
        assert_eq!(obj, 20 << 20, "object plan moves the whole segment");
        assert_eq!(ten, 1 << 20, "tensor plan moves just the tensor");
        let r = a.report();
        assert_eq!(r.get("object_overfetch_factor"), Some(20.0));
    }

    #[test]
    fn plans_index_by_launch() {
        let mut a = UvmPrefetchAdvisor::new();
        a.on_event(&managed_alloc(0, 4 << 20));
        a.on_event(&tensor_alloc(0, 1 << 20));
        a.on_event(&tensor_alloc(1 << 20, 1 << 20));
        a.on_event(&access(0, 0, 1 << 20));
        a.on_event(&access(2, 1 << 20, 1 << 20));
        let plan = a.build_plan(PrefetchGranularity::Tensor);
        assert_eq!(plan.ranges_for(0), &[Range::new(0, 1 << 20)]);
        assert!(plan.ranges_for(1).is_empty());
        assert_eq!(plan.ranges_for(2), &[Range::new(1 << 20, 1 << 20)]);
    }

    #[test]
    fn duplicate_touches_dedup() {
        let mut a = UvmPrefetchAdvisor::new();
        a.on_event(&managed_alloc(0, 4 << 20));
        a.on_event(&tensor_alloc(0, 1 << 20));
        a.on_event(&access(0, 0, 512 << 10));
        a.on_event(&access(0, 0, 512 << 10));
        let plan = a.build_plan(PrefetchGranularity::Object);
        assert_eq!(plan.ranges_for(0).len(), 1);
    }

    #[test]
    fn freed_objects_stop_matching() {
        let mut a = UvmPrefetchAdvisor::new();
        a.on_event(&managed_alloc(0, 4 << 20));
        a.on_event(&Event::ResourceFree {
            device: DeviceId(0),
            addr: 0,
            bytes: 4 << 20,
            at: SimTime(1),
        });
        a.on_event(&access(0, 0, 1 << 20));
        let plan = a.build_plan(PrefetchGranularity::Object);
        assert!(plan.ranges_for(0).is_empty());
        // Tensor plan falls back to the raw batch extent.
        let tplan = a.build_plan(PrefetchGranularity::Tensor);
        assert_eq!(tplan.ranges_for(0).len(), 1);
    }

    #[test]
    fn none_granularity_is_empty() {
        let mut a = UvmPrefetchAdvisor::new();
        a.on_event(&managed_alloc(0, 1 << 20));
        a.on_event(&access(0, 0, 1 << 20));
        assert!(a.build_plan(PrefetchGranularity::None).is_empty());
    }
}
