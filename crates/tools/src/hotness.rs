//! Time-series access-hotness analysis (paper §V-C2, Fig. 13).
//!
//! Tracks access counts per 2 MiB virtual block over logical time,
//! revealing long-lived hot blocks (parameters — pin/prefetch candidates)
//! versus short-lived bursts (transients — eviction candidates), the
//! signal an efficient UVM prefetching algorithm needs.

use pasta_core::{Event, Interest, Tool, ToolReport};
use std::any::Any;
use uvm_sim::{BlockHotness, HotnessSeries};

/// The hotness-tracking tool.
#[derive(Debug)]
pub struct HotnessTool {
    hotness: BlockHotness,
}

impl Default for HotnessTool {
    fn default() -> Self {
        HotnessTool::new(64)
    }
}

impl HotnessTool {
    /// Creates a tool binning logical time every `bin_events` batches.
    pub fn new(bin_events: u64) -> Self {
        HotnessTool {
            hotness: BlockHotness::new(bin_events),
        }
    }

    /// Dense (block × time-bin) series.
    pub fn series(&self) -> HotnessSeries {
        self.hotness.series()
    }

    /// Blocks live in at least `threshold` of the bins — the paper's
    /// "frequently accessed throughout the entire execution" set.
    pub fn persistent_blocks(&self, threshold: f64) -> Vec<u64> {
        self.series().persistent_blocks(threshold)
    }
}

impl Tool for HotnessTool {
    fn name(&self) -> &str {
        "hotness"
    }

    fn interest(&self) -> Interest {
        Interest {
            global_accesses: true,
            ..Interest::default()
        }
    }

    fn on_event(&mut self, event: &Event) {
        if let Event::GlobalAccess { batch, .. } = event {
            self.hotness.record(batch.base, batch.len, batch.records);
        }
    }

    fn report(&self) -> ToolReport {
        let series = self.series();
        let persistent = series.persistent_blocks(0.75);
        let mut text = String::new();
        for (row, &block) in series.blocks.iter().enumerate().take(20) {
            let marker = if persistent.contains(&block) {
                "HOT"
            } else {
                "   "
            };
            text.push_str(&format!(
                "  block {block:>8} {marker} liveness {:.2} total {}\n",
                series.block_liveness(row),
                series.block_total(row)
            ));
        }
        ToolReport::new(self.name())
            .metric("blocks", series.blocks.len() as f64)
            .metric("bins", series.bins() as f64)
            .metric("persistent_blocks", persistent.len() as f64)
            .body(text)
    }

    fn reset(&mut self) {
        self.hotness = BlockHotness::new(self.hotness.bin_events());
    }

    fn fork(&self) -> Option<Box<dyn Tool>> {
        Some(Box::new(HotnessTool::new(self.hotness.bin_events())))
    }

    fn merge(&mut self, other: &dyn Tool) {
        let Some(other) = other.as_any().downcast_ref::<HotnessTool>() else {
            return;
        };
        self.hotness.merge_from(&other.hotness);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accel_sim::{AccessBatch, AccessKind, AccessPattern, LaunchId, MemSpace};
    use uvm_sim::BLOCK_SIZE;

    fn access(base: u64, len: u64, records: u64) -> Event {
        Event::GlobalAccess {
            launch: LaunchId(0),
            kernel: "k".into(),
            batch: AccessBatch {
                launch: LaunchId(0),
                spec_index: 0,
                base,
                len,
                records,
                bytes: len,
                elem_size: 4,
                kind: AccessKind::Load,
                space: MemSpace::Global,
                pattern: AccessPattern::Sequential,
            },
        }
    }

    #[test]
    fn persistent_vs_bursty_blocks() {
        let mut t = HotnessTool::new(1);
        for _ in 0..10 {
            t.on_event(&access(0, 1024, 100)); // block 0: every bin
        }
        t.on_event(&access(5 * BLOCK_SIZE, 1024, 5000)); // block 5: one burst
        let persistent = t.persistent_blocks(0.8);
        assert_eq!(persistent, vec![0]);
        let r = t.report();
        assert_eq!(r.get("blocks"), Some(2.0));
        assert!(r.text.contains("HOT"));
    }

    #[test]
    fn series_dimensions() {
        let mut t = HotnessTool::new(2);
        for i in 0..6 {
            t.on_event(&access(i % 2 * BLOCK_SIZE, 128, 10));
        }
        let s = t.series();
        assert_eq!(s.blocks.len(), 2);
        assert_eq!(s.bins(), 3);
    }

    #[test]
    fn merge_sums_block_bins() {
        let mut a = HotnessTool::new(1);
        a.on_event(&access(0, 1024, 100));
        let mut b = HotnessTool::new(1);
        b.on_event(&access(0, 1024, 50));
        b.on_event(&access(5 * BLOCK_SIZE, 1024, 7));
        let mut merged = a.fork().unwrap();
        merged.merge(&a);
        merged.merge(&b);
        let merged = merged.as_any().downcast_ref::<HotnessTool>().unwrap();
        let s = merged.series();
        assert_eq!(s.blocks, vec![0, 5]);
        assert_eq!(s.block_total(0), 150, "bin 0 of both shards sums");
    }

    #[test]
    fn reset_empties_series() {
        let mut t = HotnessTool::default();
        t.on_event(&access(0, 128, 1));
        t.reset();
        assert_eq!(t.series().blocks.len(), 0);
    }
}
