//! A numeric-overflow sanitizer sketch — the paper's §III-H value-based
//! extensibility example: "instrument arithmetic instructions and track
//! operand ranges to detect overflow or underflow events".
//!
//! Real operand values do not exist in the simulator, so the tool tracks
//! the *coverage* side exactly (instructions checked per kernel, via the
//! full-coverage NVBit backend) and models detection with a deterministic
//! screen: kernels whose accumulation depth (FLOPs per output byte)
//! exceeds a threshold are flagged as overflow-risk candidates — the same
//! population a real sanitizer watches hardest.

use accel_sim::Symbol;
use pasta_core::{Event, Interest, Tool, ToolReport};
use std::any::Any;
use std::collections::HashMap;

/// Accumulation-depth threshold above which a kernel is flagged.
const RISK_FLOPS_PER_BYTE: f64 = 64.0;

/// Per-kernel sanitizer coverage.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SanitizerCoverage {
    /// Dynamic instructions checked.
    pub instructions_checked: u64,
    /// Bytes written by the kernel.
    pub bytes_stored: u64,
}

/// The overflow-sanitizer tool.
#[derive(Debug, Default)]
pub struct OverflowSanitizerTool {
    per_kernel: HashMap<Symbol, SanitizerCoverage>,
    current_kernel: HashMap<u64, Symbol>,
}

impl OverflowSanitizerTool {
    /// Creates the tool.
    pub fn new() -> Self {
        OverflowSanitizerTool::default()
    }

    /// Total instructions checked across all kernels.
    pub fn instructions_checked(&self) -> u64 {
        self.per_kernel
            .values()
            .map(|c| c.instructions_checked)
            .sum()
    }

    /// Kernels flagged as overflow-risk (deep accumulation).
    pub fn flagged(&self) -> Vec<Symbol> {
        let mut v: Vec<Symbol> = self
            .per_kernel
            .iter()
            .filter(|(_, c)| {
                c.bytes_stored > 0
                    && c.instructions_checked as f64 / c.bytes_stored as f64 > RISK_FLOPS_PER_BYTE
            })
            .map(|(k, _)| k.clone())
            .collect();
        v.sort();
        v
    }
}

impl Tool for OverflowSanitizerTool {
    fn name(&self) -> &str {
        "overflow-sanitizer"
    }

    fn interest(&self) -> Interest {
        Interest {
            instructions: true,
            global_accesses: true,
            host_events: true,
            ..Interest::default()
        }
    }

    fn on_event(&mut self, event: &Event) {
        match event {
            Event::KernelLaunchBegin { launch, name, .. } => {
                self.current_kernel.insert(launch.value(), name.clone());
            }
            Event::Instructions { launch, count } => {
                if let Some(name) = self.current_kernel.get(&launch.value()) {
                    self.per_kernel
                        .entry(name.clone())
                        .or_default()
                        .instructions_checked += count;
                }
            }
            Event::GlobalAccess { launch, batch, .. }
                if batch.kind == accel_sim::AccessKind::Store =>
            {
                if let Some(name) = self.current_kernel.get(&launch.value()) {
                    self.per_kernel
                        .entry(name.clone())
                        .or_default()
                        .bytes_stored += batch.bytes;
                }
            }
            Event::KernelLaunchEnd { launch, .. } => {
                self.current_kernel.remove(&launch.value());
            }
            _ => {}
        }
    }

    fn report(&self) -> ToolReport {
        let flagged = self.flagged();
        let mut text = String::new();
        for kernel in &flagged {
            text.push_str(&format!("  RISK  {kernel}\n"));
        }
        ToolReport::new(self.name())
            .metric("instructions_checked", self.instructions_checked() as f64)
            .metric("kernels_covered", self.per_kernel.len() as f64)
            .metric("flagged", flagged.len() as f64)
            .body(text)
    }

    fn reset(&mut self) {
        self.per_kernel.clear();
        self.current_kernel.clear();
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accel_sim::{AccessBatch, AccessKind, AccessPattern, DeviceId, Dim3, LaunchId, MemSpace};

    fn begin(launch: u64, name: &str) -> Event {
        Event::KernelLaunchBegin {
            launch: LaunchId(launch),
            device: DeviceId(0),
            stream: 0,
            name: name.into(),
            grid: Dim3::linear(1),
            block: Dim3::linear(32),
        }
    }

    fn store(launch: u64, bytes: u64) -> Event {
        Event::GlobalAccess {
            launch: LaunchId(launch),
            kernel: "x".into(),
            batch: AccessBatch {
                launch: LaunchId(launch),
                spec_index: 0,
                base: 0,
                len: bytes,
                records: 1,
                bytes,
                elem_size: 4,
                kind: AccessKind::Store,
                space: MemSpace::Global,
                pattern: AccessPattern::Sequential,
            },
        }
    }

    #[test]
    fn deep_accumulation_is_flagged() {
        let mut t = OverflowSanitizerTool::new();
        // gemm: 1e6 instructions over 1 KiB of output — deep accumulation.
        t.on_event(&begin(0, "gemm"));
        t.on_event(&Event::Instructions {
            launch: LaunchId(0),
            count: 1_000_000,
        });
        t.on_event(&store(0, 1024));
        // copy: shallow — one instruction per stored word.
        t.on_event(&begin(1, "copy"));
        t.on_event(&Event::Instructions {
            launch: LaunchId(1),
            count: 256,
        });
        t.on_event(&store(1, 1024));
        assert_eq!(t.flagged(), vec![Symbol::intern("gemm")]);
        assert_eq!(t.instructions_checked(), 1_000_256);
        let r = t.report();
        assert_eq!(r.get("flagged"), Some(1.0));
        assert!(r.text.contains("RISK  gemm"));
    }

    #[test]
    fn requires_instruction_coverage() {
        let t = OverflowSanitizerTool::new();
        assert!(t.interest().instructions, "needs the NVBit-style backend");
    }
}
