//! Memory characteristics / working-set analysis (paper §V-B2, Table V).
//!
//! The working set of a workload is "the maximum memory footprint of any
//! single kernel execution" — which requires knowing which bytes each
//! kernel *actually accesses*, not just its argument list. The tool
//! accumulates the access-batch extents of each launch, merges them, and
//! keeps the distribution of per-kernel footprints alongside the model's
//! overall reserved-memory footprint.

use crate::util::{mb, merged_extent, percentile};
use accel_sim::{AccessBatch, LaunchId};
use pasta_core::{Event, Interest, Tool, ToolReport};
use std::any::Any;

/// Table V's row for one run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MemoryCharacteristics {
    /// Kernel launches observed.
    pub kernel_count: u64,
    /// Peak reserved memory (the paper's "Memory Footprint"), bytes.
    pub footprint: u64,
    /// Maximum per-kernel accessed bytes (the "Working Set").
    pub working_set: u64,
    /// Minimum per-kernel accessed bytes.
    pub min_ws: u64,
    /// Mean per-kernel accessed bytes.
    pub avg_ws: u64,
    /// Median per-kernel accessed bytes.
    pub median_ws: u64,
    /// 90th-percentile per-kernel accessed bytes.
    pub p90_ws: u64,
    /// UVM fault groups kernels serviced (managed-allocator runs).
    pub uvm_fault_groups: u64,
    /// Bytes the UVM model migrated in for kernel accesses.
    pub uvm_migrated_bytes: u64,
    /// Bytes read-duplicated over the peer link (shared managed ranges).
    pub uvm_peer_bytes: u64,
    /// Duplicate pages invalidated by writes to shared ranges.
    pub uvm_invalidated_pages: u64,
}

/// The working-set analysis tool.
#[derive(Debug, Default)]
pub struct MemoryCharacteristicsTool {
    current_launch: Option<LaunchId>,
    current_ranges: Vec<(u64, u64)>,
    per_kernel_ws: Vec<u64>,
    peak_reserved: u64,
    uvm_fault_groups: u64,
    uvm_migrated_bytes: u64,
    uvm_peer_bytes: u64,
    uvm_invalidated_pages: u64,
}

impl MemoryCharacteristicsTool {
    /// Creates the tool.
    pub fn new() -> Self {
        MemoryCharacteristicsTool::default()
    }

    fn finish_launch(&mut self) {
        if self.current_launch.take().is_some() {
            let ws = merged_extent(std::mem::take(&mut self.current_ranges));
            if ws > 0 {
                self.per_kernel_ws.push(ws);
            }
        }
    }

    fn add_batch(&mut self, launch: LaunchId, batch: &AccessBatch) {
        if self.current_launch != Some(launch) {
            self.finish_launch();
            self.current_launch = Some(launch);
        }
        self.current_ranges.push((batch.base, batch.len));
    }

    /// Closes the in-flight launch and computes the Table V row.
    pub fn characteristics(&mut self) -> MemoryCharacteristics {
        self.finish_launch();
        let mut sorted = self.per_kernel_ws.clone();
        sorted.sort_unstable();
        let count = sorted.len() as u64;
        let sum: u64 = sorted.iter().sum();
        MemoryCharacteristics {
            kernel_count: count,
            footprint: self.peak_reserved,
            working_set: sorted.last().copied().unwrap_or(0),
            min_ws: sorted.first().copied().unwrap_or(0),
            avg_ws: sum.checked_div(count).unwrap_or(0),
            // A run with no kernels reports 0 across the row (same
            // convention as min/avg/working-set above).
            median_ws: percentile(&sorted, 50.0).unwrap_or(0),
            p90_ws: percentile(&sorted, 90.0).unwrap_or(0),
            uvm_fault_groups: self.uvm_fault_groups,
            uvm_migrated_bytes: self.uvm_migrated_bytes,
            uvm_peer_bytes: self.uvm_peer_bytes,
            uvm_invalidated_pages: self.uvm_invalidated_pages,
        }
    }
}

impl Tool for MemoryCharacteristicsTool {
    fn name(&self) -> &str {
        "memory-characteristics"
    }

    fn interest(&self) -> Interest {
        Interest {
            global_accesses: true,
            host_events: true,
            framework_events: true,
            ..Interest::default()
        }
    }

    fn on_event(&mut self, event: &Event) {
        match event {
            Event::GlobalAccess { launch, batch, .. } => self.add_batch(*launch, batch),
            Event::TensorAlloc { reserved_total, .. }
            | Event::TensorFree { reserved_total, .. } => {
                self.peak_reserved = self.peak_reserved.max(*reserved_total);
            }
            Event::UvmFault {
                groups,
                migrated_bytes,
                ..
            } => {
                self.uvm_fault_groups += groups;
                self.uvm_migrated_bytes += migrated_bytes;
            }
            Event::UvmPeerMigrate {
                bytes,
                invalidated_pages,
                ..
            } => {
                self.uvm_peer_bytes += bytes;
                self.uvm_invalidated_pages += invalidated_pages;
            }
            _ => {}
        }
    }

    fn report(&self) -> ToolReport {
        // `report` takes &self; clone to finish the in-flight launch.
        let mut snapshot = MemoryCharacteristicsTool {
            current_launch: self.current_launch,
            current_ranges: self.current_ranges.clone(),
            per_kernel_ws: self.per_kernel_ws.clone(),
            peak_reserved: self.peak_reserved,
            uvm_fault_groups: self.uvm_fault_groups,
            uvm_migrated_bytes: self.uvm_migrated_bytes,
            uvm_peer_bytes: self.uvm_peer_bytes,
            uvm_invalidated_pages: self.uvm_invalidated_pages,
        };
        let c = snapshot.characteristics();
        ToolReport::new(self.name())
            .metric("kernel_count", c.kernel_count as f64)
            .metric("footprint_mb", mb(c.footprint))
            .metric("working_set_mb", mb(c.working_set))
            .metric("min_ws_bytes", c.min_ws as f64)
            .metric("avg_ws_mb", mb(c.avg_ws))
            .metric("median_ws_mb", mb(c.median_ws))
            .metric("p90_ws_mb", mb(c.p90_ws))
            .metric("uvm_fault_groups", c.uvm_fault_groups as f64)
            .metric("uvm_migrated_mb", mb(c.uvm_migrated_bytes))
            .metric("uvm_peer_mb", mb(c.uvm_peer_bytes))
            .metric("uvm_invalidated_pages", c.uvm_invalidated_pages as f64)
    }

    fn reset(&mut self) {
        self.current_launch = None;
        self.current_ranges.clear();
        self.per_kernel_ws.clear();
        self.peak_reserved = 0;
        self.uvm_fault_groups = 0;
        self.uvm_migrated_bytes = 0;
        self.uvm_peer_bytes = 0;
        self.uvm_invalidated_pages = 0;
    }

    fn fork(&self) -> Option<Box<dyn Tool>> {
        Some(Box::new(MemoryCharacteristicsTool::new()))
    }

    fn merge(&mut self, other: &dyn Tool) {
        let Some(other) = other.as_any().downcast_ref::<MemoryCharacteristicsTool>() else {
            return;
        };
        // Close the other shard's in-flight launch on a snapshot so its
        // working set joins the distribution.
        let mut snapshot = MemoryCharacteristicsTool {
            current_launch: other.current_launch,
            current_ranges: other.current_ranges.clone(),
            per_kernel_ws: Vec::new(),
            peak_reserved: 0,
            uvm_fault_groups: 0,
            uvm_migrated_bytes: 0,
            uvm_peer_bytes: 0,
            uvm_invalidated_pages: 0,
        };
        snapshot.finish_launch();
        self.per_kernel_ws
            .extend(other.per_kernel_ws.iter().copied());
        self.per_kernel_ws.extend(snapshot.per_kernel_ws);
        self.peak_reserved = self.peak_reserved.max(other.peak_reserved);
        self.uvm_fault_groups += other.uvm_fault_groups;
        self.uvm_migrated_bytes += other.uvm_migrated_bytes;
        self.uvm_peer_bytes += other.uvm_peer_bytes;
        self.uvm_invalidated_pages += other.uvm_invalidated_pages;
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accel_sim::{AccessKind, AccessPattern, DeviceId, MemSpace};
    use dl_framework::tensor::TensorId;

    fn batch(base: u64, len: u64) -> AccessBatch {
        AccessBatch {
            launch: LaunchId(0),
            spec_index: 0,
            base,
            len,
            records: len / 128,
            bytes: len,
            elem_size: 4,
            kind: AccessKind::Load,
            space: MemSpace::Global,
            pattern: AccessPattern::Sequential,
        }
    }

    fn access(launch: u64, base: u64, len: u64) -> Event {
        Event::GlobalAccess {
            launch: LaunchId(launch),
            kernel: "k".into(),
            batch: batch(base, len),
        }
    }

    #[test]
    fn working_set_is_max_per_kernel_extent() {
        let mut t = MemoryCharacteristicsTool::new();
        // Kernel 0 touches two overlapping ranges: 0..100 and 50..150.
        t.on_event(&access(0, 0, 100));
        t.on_event(&access(0, 50, 100));
        // Kernel 1 touches a disjoint 1000-byte extent.
        t.on_event(&access(1, 10_000, 1_000));
        let c = t.characteristics();
        assert_eq!(c.kernel_count, 2);
        assert_eq!(c.working_set, 1_000);
        assert_eq!(c.min_ws, 150, "overlap merged, not summed");
        assert_eq!(c.avg_ws, (150 + 1000) / 2);
    }

    #[test]
    fn footprint_tracks_reserved_peak() {
        let mut t = MemoryCharacteristicsTool::new();
        t.on_event(&Event::TensorAlloc {
            tensor: TensorId(0),
            addr: 0,
            bytes: 10,
            allocated_total: 10,
            reserved_total: 40 << 20,
            device: DeviceId(0),
        });
        t.on_event(&Event::TensorFree {
            tensor: TensorId(0),
            addr: 0,
            bytes: 10,
            allocated_total: 0,
            reserved_total: 40 << 20,
            device: DeviceId(0),
        });
        assert_eq!(t.characteristics().footprint, 40 << 20);
    }

    #[test]
    fn percentiles_cover_distribution() {
        let mut t = MemoryCharacteristicsTool::new();
        for i in 0..10u64 {
            t.on_event(&access(i, i * 1_000_000, (i + 1) * 100));
        }
        let c = t.characteristics();
        assert_eq!(c.kernel_count, 10);
        assert_eq!(c.median_ws, 500);
        assert_eq!(c.p90_ws, 900);
        assert_eq!(c.working_set, 1000);
    }

    #[test]
    fn report_is_in_megabytes() {
        let mut t = MemoryCharacteristicsTool::new();
        t.on_event(&access(0, 0, 10 << 20));
        let r = t.report();
        assert_eq!(r.get("working_set_mb"), Some(10.0));
        assert_eq!(r.get("kernel_count"), Some(1.0));
    }

    #[test]
    fn peer_and_invalidation_columns_accumulate_and_merge() {
        use accel_sim::{DeviceId as Dev, SimTime};
        let peer = |bytes: u64, invalidated: u64| Event::UvmPeerMigrate {
            launch: LaunchId(0),
            src: Dev(0),
            dst: Dev(1),
            duplicated_pages: bytes / (64 << 10),
            invalidated_pages: invalidated,
            bytes,
            stall_ns: 1,
            at: SimTime(0),
        };
        let mut t = MemoryCharacteristicsTool::new();
        t.on_event(&peer(4 << 20, 0));
        t.on_event(&peer(2 << 20, 5));
        let c = t.characteristics();
        assert_eq!(c.uvm_peer_bytes, 6 << 20);
        assert_eq!(c.uvm_invalidated_pages, 5);
        let r = t.report();
        assert_eq!(r.get("uvm_peer_mb"), Some(6.0));
        assert_eq!(r.get("uvm_invalidated_pages"), Some(5.0));
        let mut merged = t.fork().unwrap();
        merged.merge(&t);
        merged.merge(&t);
        let merged = merged
            .as_any()
            .downcast_ref::<MemoryCharacteristicsTool>()
            .unwrap();
        let mut merged = MemoryCharacteristicsTool {
            current_launch: merged.current_launch,
            current_ranges: merged.current_ranges.clone(),
            per_kernel_ws: merged.per_kernel_ws.clone(),
            peak_reserved: merged.peak_reserved,
            uvm_fault_groups: merged.uvm_fault_groups,
            uvm_migrated_bytes: merged.uvm_migrated_bytes,
            uvm_peer_bytes: merged.uvm_peer_bytes,
            uvm_invalidated_pages: merged.uvm_invalidated_pages,
        };
        assert_eq!(merged.characteristics().uvm_peer_bytes, 12 << 20);
        assert_eq!(merged.characteristics().uvm_invalidated_pages, 10);
        t.reset();
        assert_eq!(t.characteristics().uvm_peer_bytes, 0);
    }

    #[test]
    fn empty_run_is_zeroed() {
        let mut t = MemoryCharacteristicsTool::new();
        let c = t.characteristics();
        assert_eq!(c.kernel_count, 0);
        assert_eq!(c.working_set, 0);
    }
}
