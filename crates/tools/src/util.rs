//! Formatting and interval helpers shared by the tools.

/// Formats bytes with an adaptive binary unit (Table V prints MB).
pub fn format_bytes(bytes: u64) -> String {
    let b = bytes as f64;
    if b >= (1 << 30) as f64 {
        format!("{:.2} GB", b / (1u64 << 30) as f64)
    } else if b >= (1 << 20) as f64 {
        format!("{:.2} MB", b / (1u64 << 20) as f64)
    } else if b >= (1 << 10) as f64 {
        format!("{:.2} KB", b / (1u64 << 10) as f64)
    } else {
        format!("{bytes} B")
    }
}

/// Bytes as MB (Table V's unit).
pub fn mb(bytes: u64) -> f64 {
    bytes as f64 / (1u64 << 20) as f64
}

/// Merges possibly-overlapping `(base, len)` intervals and returns the
/// total distinct bytes covered — the working-set arithmetic.
pub fn merged_extent(mut ranges: Vec<(u64, u64)>) -> u64 {
    ranges.retain(|&(_, len)| len > 0);
    if ranges.is_empty() {
        return 0;
    }
    ranges.sort_unstable_by_key(|&(base, _)| base);
    let mut total = 0u64;
    let (mut cur_base, mut cur_end) = (ranges[0].0, ranges[0].0 + ranges[0].1);
    for &(base, len) in &ranges[1..] {
        let end = base + len;
        if base <= cur_end {
            cur_end = cur_end.max(end);
        } else {
            total += cur_end - cur_base;
            cur_base = base;
            cur_end = end;
        }
    }
    total + (cur_end - cur_base)
}

/// Percentile of a sorted slice (nearest-rank; `p` in `[0, 100]`, with
/// `p = 0` clamped to the first element).
///
/// Returns `None` for an empty slice — "no samples" must not read as
/// "0 ns" in a latency column (a serving run that admitted no requests
/// has no p99, not a zero one).
pub fn percentile(sorted: &[u64], p: f64) -> Option<u64> {
    if sorted.is_empty() {
        return None;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    Some(sorted[rank.min(sorted.len()) - 1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_formatting() {
        assert_eq!(format_bytes(512), "512 B");
        assert_eq!(format_bytes(2048), "2.00 KB");
        assert_eq!(format_bytes(3 << 20), "3.00 MB");
        assert_eq!(format_bytes(5 << 30), "5.00 GB");
        assert!((mb(10 << 20) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn merging_handles_overlap_and_gaps() {
        assert_eq!(merged_extent(vec![]), 0);
        assert_eq!(merged_extent(vec![(0, 10)]), 10);
        assert_eq!(merged_extent(vec![(0, 10), (5, 10)]), 15, "overlap");
        assert_eq!(merged_extent(vec![(0, 10), (20, 10)]), 20, "gap");
        assert_eq!(merged_extent(vec![(0, 10), (10, 10)]), 20, "adjacent");
        assert_eq!(
            merged_extent(vec![(20, 5), (0, 10), (22, 1), (0, 3)]),
            15,
            "unsorted with containment"
        );
        assert_eq!(merged_extent(vec![(5, 0), (10, 2)]), 2, "zero-len dropped");
    }

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<u64> = (1..=10).collect();
        assert_eq!(percentile(&v, 50.0), Some(5));
        assert_eq!(percentile(&v, 90.0), Some(9));
        assert_eq!(percentile(&v, 100.0), Some(10));
        assert_eq!(percentile(&v, 0.0), Some(1), "p=0 clamps to the minimum");
    }

    #[test]
    fn percentile_edge_inputs() {
        // Empty: no samples is None, never a fabricated 0 ns.
        assert_eq!(percentile(&[], 50.0), None);
        assert_eq!(percentile(&[], 0.0), None);
        assert_eq!(percentile(&[], 100.0), None);
        // Single element: every percentile is that element.
        assert_eq!(percentile(&[7], 0.0), Some(7));
        assert_eq!(percentile(&[7], 50.0), Some(7));
        assert_eq!(percentile(&[7], 99.0), Some(7));
        assert_eq!(percentile(&[7], 100.0), Some(7));
    }
}
