//! Kernel invocation frequency analysis (paper §V-B1, Fig. 7).
//!
//! The paper's flagship "few lines of code" example: maintain a map from
//! kernel name to invocation count. The insight it surfaces — thousands of
//! kernels launch, but a handful (`at::native::im2col_kernel`,
//! `ampere_sgemm_*`) dominate — directs optimization effort.

use accel_sim::Symbol;
use pasta_core::{Event, Interest, Tool, ToolReport};
use std::any::Any;
use std::collections::HashMap;

/// Counts kernel invocations by symbol name. Keys are interned
/// [`Symbol`]s, so counting a launch is allocation-free.
#[derive(Debug, Default)]
pub struct KernelFrequencyTool {
    counts: HashMap<Symbol, u64>,
    total: u64,
}

impl KernelFrequencyTool {
    /// Creates the tool.
    pub fn new() -> Self {
        KernelFrequencyTool::default()
    }

    /// Total launches observed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct kernel symbols.
    pub fn unique(&self) -> usize {
        self.counts.len()
    }

    /// Invocations of one kernel.
    pub fn count_of(&self, kernel: &str) -> u64 {
        self.counts.get(kernel).copied().unwrap_or(0)
    }

    /// `(kernel, count)` pairs sorted by descending count (name breaks
    /// ties deterministically).
    pub fn ranking(&self) -> Vec<(Symbol, u64)> {
        let mut v: Vec<(Symbol, u64)> = self.counts.iter().map(|(k, &c)| (k.clone(), c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        v
    }

    /// The `top` most-invoked kernels.
    pub fn top(&self, top: usize) -> Vec<(Symbol, u64)> {
        let mut v = self.ranking();
        v.truncate(top);
        v
    }
}

impl Tool for KernelFrequencyTool {
    fn name(&self) -> &str {
        "kernel-frequency"
    }

    fn interest(&self) -> Interest {
        Interest {
            host_events: true,
            ..Interest::default()
        }
    }

    fn on_event(&mut self, event: &Event) {
        if let Event::KernelLaunchEnd { name, .. } = event {
            *self.counts.entry(name.clone()).or_insert(0) += 1;
            self.total += 1;
        }
    }

    fn report(&self) -> ToolReport {
        let mut text = String::new();
        for (kernel, count) in self.top(15) {
            text.push_str(&format!("  {count:>8}  {kernel}\n"));
        }
        ToolReport::new(self.name())
            .metric("total_launches", self.total as f64)
            .metric("unique_kernels", self.unique() as f64)
            .body(text)
    }

    fn reset(&mut self) {
        self.counts.clear();
        self.total = 0;
    }

    fn fork(&self) -> Option<Box<dyn Tool>> {
        Some(Box::new(KernelFrequencyTool::new()))
    }

    fn merge(&mut self, other: &dyn Tool) {
        let Some(other) = other.as_any().downcast_ref::<KernelFrequencyTool>() else {
            return;
        };
        for (kernel, &count) in &other.counts {
            *self.counts.entry(kernel.clone()).or_insert(0) += count;
        }
        self.total += other.total;
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accel_sim::{DeviceId, LaunchId, SimTime};

    fn launch(name: &str, id: u64) -> Event {
        Event::KernelLaunchEnd {
            launch: LaunchId(id),
            device: DeviceId(0),
            name: name.into(),
            start: SimTime(0),
            end: SimTime(1),
        }
    }

    #[test]
    fn counts_and_ranks() {
        let mut t = KernelFrequencyTool::new();
        for i in 0..5 {
            t.on_event(&launch("gemm", i));
        }
        t.on_event(&launch("relu", 5));
        assert_eq!(t.total(), 6);
        assert_eq!(t.unique(), 2);
        assert_eq!(t.count_of("gemm"), 5);
        assert_eq!(t.count_of("missing"), 0);
        assert_eq!(t.top(1), vec![(Symbol::intern("gemm"), 5)]);
        let report = t.report();
        assert_eq!(report.get("total_launches"), Some(6.0));
        assert!(report.text.contains("gemm"));
    }

    #[test]
    fn ties_break_deterministically() {
        let mut t = KernelFrequencyTool::new();
        t.on_event(&launch("zeta", 0));
        t.on_event(&launch("alpha", 1));
        let r = t.ranking();
        assert_eq!(r[0].0, "alpha");
        assert_eq!(r[1].0, "zeta");
    }

    #[test]
    fn only_needs_host_events() {
        let t = KernelFrequencyTool::new();
        assert!(!t.interest().wants_device_events(), "cheap tool");
    }

    #[test]
    fn fork_is_empty_and_merge_sums() {
        let mut a = KernelFrequencyTool::new();
        for i in 0..3 {
            a.on_event(&launch("gemm", i));
        }
        let mut b = a.fork().unwrap();
        assert_eq!(b.report().get("total_launches"), Some(0.0), "fork is fresh");
        b.on_event(&launch("gemm", 3));
        b.on_event(&launch("relu", 4));
        let mut merged = a.fork().unwrap();
        merged.merge(&a);
        merged.merge(&*b);
        let merged = merged
            .as_any()
            .downcast_ref::<KernelFrequencyTool>()
            .unwrap();
        assert_eq!(merged.count_of("gemm"), 4);
        assert_eq!(merged.count_of("relu"), 1);
        assert_eq!(merged.total(), 5);
        // The merge reads, never drains, its sources.
        assert_eq!(a.total(), 3);
    }

    #[test]
    fn reset_clears() {
        let mut t = KernelFrequencyTool::new();
        t.on_event(&launch("k", 0));
        t.reset();
        assert_eq!(t.total(), 0);
        assert_eq!(t.unique(), 0);
    }
}
