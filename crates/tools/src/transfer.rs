//! CPU↔GPU transfer analysis (in the spirit of DrGPUM/Diogenes, which the
//! paper cites as tools that "pinpoint memory-related inefficiencies, such
//! as inefficient CPU-GPU memory transfers" — here rebuilt as a PASTA
//! tool in a few dozen lines).

use accel_sim::CopyDirection;
use pasta_core::{Event, Interest, Tool, ToolReport};
use std::any::Any;

/// Aggregate transfer statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransferStats {
    /// Host→device copies and bytes.
    pub h2d: (u64, u64),
    /// Device→host copies and bytes.
    pub d2h: (u64, u64),
    /// Device→device copies and bytes.
    pub d2d: (u64, u64),
    /// Copies smaller than 64 KiB (latency-bound — the classic
    /// inefficiency DrGPUM flags).
    pub small_copies: u64,
    /// UVM batch operations (prefetch/advise) and bytes covered.
    pub batch_ops: (u64, u64),
}

/// The transfer-analysis tool.
#[derive(Debug, Default)]
pub struct TransferTool {
    stats: TransferStats,
}

impl TransferTool {
    /// Creates the tool.
    pub fn new() -> Self {
        TransferTool::default()
    }

    /// Current aggregate statistics.
    pub fn stats(&self) -> TransferStats {
        self.stats
    }

    /// Fraction of explicit copies that are latency-bound (< 64 KiB).
    pub fn small_copy_fraction(&self) -> f64 {
        let total = self.stats.h2d.0 + self.stats.d2h.0 + self.stats.d2d.0;
        if total == 0 {
            return 0.0;
        }
        self.stats.small_copies as f64 / total as f64
    }
}

impl Tool for TransferTool {
    fn name(&self) -> &str {
        "transfer-analysis"
    }

    fn interest(&self) -> Interest {
        Interest {
            host_events: true,
            ..Interest::default()
        }
    }

    fn on_event(&mut self, event: &Event) {
        match event {
            Event::MemCopy {
                direction, bytes, ..
            } => {
                let slot = match direction {
                    CopyDirection::HostToDevice => &mut self.stats.h2d,
                    CopyDirection::DeviceToHost => &mut self.stats.d2h,
                    _ => &mut self.stats.d2d,
                };
                slot.0 += 1;
                slot.1 += bytes;
                if *bytes < 64 << 10 {
                    self.stats.small_copies += 1;
                }
            }
            Event::BatchMemOp { bytes, .. } => {
                self.stats.batch_ops.0 += 1;
                self.stats.batch_ops.1 += bytes;
            }
            _ => {}
        }
    }

    fn report(&self) -> ToolReport {
        let s = self.stats;
        ToolReport::new(self.name())
            .metric("h2d_copies", s.h2d.0 as f64)
            .metric("h2d_mb", crate::util::mb(s.h2d.1))
            .metric("d2h_copies", s.d2h.0 as f64)
            .metric("d2h_mb", crate::util::mb(s.d2h.1))
            .metric("d2d_copies", s.d2d.0 as f64)
            .metric("small_copy_fraction", self.small_copy_fraction())
            .metric("uvm_batch_ops", s.batch_ops.0 as f64)
    }

    fn reset(&mut self) {
        self.stats = TransferStats::default();
    }

    fn fork(&self) -> Option<Box<dyn Tool>> {
        Some(Box::new(TransferTool::new()))
    }

    fn merge(&mut self, other: &dyn Tool) {
        let Some(other) = other.as_any().downcast_ref::<TransferTool>() else {
            return;
        };
        let o = &other.stats;
        let s = &mut self.stats;
        s.h2d = (s.h2d.0 + o.h2d.0, s.h2d.1 + o.h2d.1);
        s.d2h = (s.d2h.0 + o.d2h.0, s.d2h.1 + o.d2h.1);
        s.d2d = (s.d2d.0 + o.d2d.0, s.d2d.1 + o.d2d.1);
        s.small_copies += o.small_copies;
        s.batch_ops = (s.batch_ops.0 + o.batch_ops.0, s.batch_ops.1 + o.batch_ops.1);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accel_sim::{DeviceId, SimTime};

    fn copy(direction: CopyDirection, bytes: u64) -> Event {
        Event::MemCopy {
            device: DeviceId(0),
            direction,
            bytes,
            at: SimTime(0),
        }
    }

    #[test]
    fn directions_and_small_copies_tracked() {
        let mut t = TransferTool::new();
        t.on_event(&copy(CopyDirection::HostToDevice, 1 << 20));
        t.on_event(&copy(CopyDirection::HostToDevice, 100)); // tiny
        t.on_event(&copy(CopyDirection::DeviceToHost, 4096)); // tiny
        t.on_event(&copy(CopyDirection::DeviceToDevice, 1 << 30));
        let s = t.stats();
        assert_eq!(s.h2d, (2, (1 << 20) + 100));
        assert_eq!(s.d2h, (1, 4096));
        assert_eq!(s.d2d.0, 1);
        assert_eq!(s.small_copies, 2);
        assert!((t.small_copy_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn batch_ops_counted() {
        let mut t = TransferTool::new();
        t.on_event(&Event::BatchMemOp {
            device: DeviceId(0),
            op: "mem_prefetch".into(),
            addr: 0,
            bytes: 2 << 20,
            at: SimTime(0),
        });
        assert_eq!(t.stats().batch_ops, (1, 2 << 20));
        let r = t.report();
        assert_eq!(r.get("uvm_batch_ops"), Some(1.0));
    }

    #[test]
    fn empty_is_zero() {
        let t = TransferTool::new();
        assert_eq!(t.small_copy_fraction(), 0.0);
    }
}
