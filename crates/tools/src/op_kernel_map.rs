//! Operator→kernel mapping.
//!
//! The paper's §III-E motivation: "DL frameworks run one or multiple
//! kernels within a single operator to complete a specific computation,
//! where this operator-to-kernel mapping information is hidden from the
//! users." PASTA sees both the `RecordFunction` operator boundaries and
//! the kernel launches between them, so the mapping falls out of event
//! ordering.

use accel_sim::Symbol;
use pasta_core::{Event, Interest, Tool, ToolReport};
use std::any::Any;
use std::collections::HashMap;

/// Aggregate of one operator's kernel usage.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OpProfile {
    /// Times the operator executed.
    pub calls: u64,
    /// Total kernels launched inside it.
    pub kernels: u64,
    /// Distinct kernel symbols it launched, with counts.
    pub kernel_counts: HashMap<Symbol, u64>,
    /// Total device time of its kernels, ns.
    pub device_ns: u64,
}

impl OpProfile {
    /// Mean kernels per call.
    pub fn kernels_per_call(&self) -> f64 {
        if self.calls == 0 {
            return 0.0;
        }
        self.kernels as f64 / self.calls as f64
    }
}

/// The operator→kernel mapping tool.
#[derive(Debug, Default)]
pub struct OpKernelMapTool {
    per_op: HashMap<Symbol, OpProfile>,
    /// Operator nesting stack: kernels attribute to the innermost op.
    stack: Vec<Symbol>,
}

impl OpKernelMapTool {
    /// Creates the tool.
    pub fn new() -> Self {
        OpKernelMapTool::default()
    }

    /// Profile of one operator.
    pub fn profile(&self, op: &str) -> Option<&OpProfile> {
        self.per_op.get(op)
    }

    /// Operators ranked by total device time, descending.
    pub fn ranking(&self) -> Vec<(Symbol, OpProfile)> {
        let mut v: Vec<(Symbol, OpProfile)> = self
            .per_op
            .iter()
            .map(|(k, p)| (k.clone(), p.clone()))
            .collect();
        v.sort_by(|a, b| {
            b.1.device_ns
                .cmp(&a.1.device_ns)
                .then_with(|| a.0.cmp(&b.0))
        });
        v
    }

    /// Number of distinct operators observed.
    pub fn op_count(&self) -> usize {
        self.per_op.len()
    }
}

impl Tool for OpKernelMapTool {
    fn name(&self) -> &str {
        "op-kernel-map"
    }

    fn interest(&self) -> Interest {
        Interest::coarse()
    }

    fn on_event(&mut self, event: &Event) {
        match event {
            Event::OpStart { name, .. } => {
                self.per_op.entry(name.clone()).or_default().calls += 1;
                self.stack.push(name.clone());
            }
            Event::OpEnd { .. } => {
                self.stack.pop();
            }
            Event::KernelLaunchEnd {
                name, start, end, ..
            } => {
                if let Some(op) = self.stack.last() {
                    let p = self
                        .per_op
                        .get_mut(op.as_str())
                        .expect("op on stack was started");
                    p.kernels += 1;
                    *p.kernel_counts.entry(name.clone()).or_insert(0) += 1;
                    p.device_ns += *end - *start;
                }
            }
            _ => {}
        }
    }

    fn report(&self) -> ToolReport {
        let ranking = self.ranking();
        let mut text = String::new();
        for (op, p) in ranking.iter().take(12) {
            text.push_str(&format!(
                "  {:<36} {:>6} calls  {:>7.1} kernels/call  {:>12} ns\n",
                op,
                p.calls,
                p.kernels_per_call(),
                p.device_ns
            ));
        }
        ToolReport::new(self.name())
            .metric("operators", self.op_count() as f64)
            .metric(
                "total_kernels",
                self.per_op.values().map(|p| p.kernels).sum::<u64>() as f64,
            )
            .body(text)
    }

    fn reset(&mut self) {
        self.per_op.clear();
        self.stack.clear();
    }

    fn fork(&self) -> Option<Box<dyn Tool>> {
        Some(Box::new(OpKernelMapTool::new()))
    }

    fn merge(&mut self, other: &dyn Tool) {
        let Some(other) = other.as_any().downcast_ref::<OpKernelMapTool>() else {
            return;
        };
        // `stack` is in-flight operator nesting and never merges.
        for (op, theirs) in &other.per_op {
            let p = self.per_op.entry(op.clone()).or_default();
            p.calls += theirs.calls;
            p.kernels += theirs.kernels;
            p.device_ns += theirs.device_ns;
            for (kernel, &count) in &theirs.kernel_counts {
                *p.kernel_counts.entry(kernel.clone()).or_insert(0) += count;
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accel_sim::{DeviceId, LaunchId, SimTime};

    fn op_start(name: &str, seq: u64) -> Event {
        Event::OpStart {
            seq,
            name: name.into(),
            device: DeviceId(0),
            py_stack: Vec::new(),
        }
    }

    fn op_end(name: &str, seq: u64) -> Event {
        Event::OpEnd {
            seq,
            name: name.into(),
            device: DeviceId(0),
        }
    }

    fn kernel(name: &str, id: u64, dur: u64) -> Event {
        Event::KernelLaunchEnd {
            launch: LaunchId(id),
            device: DeviceId(0),
            name: name.into(),
            start: SimTime(0),
            end: SimTime(dur),
        }
    }

    #[test]
    fn kernels_attribute_to_innermost_op() {
        let mut t = OpKernelMapTool::new();
        t.on_event(&op_start("aten::linear", 0));
        t.on_event(&kernel("sgemm", 0, 100));
        t.on_event(&op_start("aten::add", 1)); // nested
        t.on_event(&kernel("elementwise", 1, 10));
        t.on_event(&op_end("aten::add", 1));
        t.on_event(&kernel("bias", 2, 5));
        t.on_event(&op_end("aten::linear", 0));

        let lin = t.profile("aten::linear").unwrap();
        assert_eq!(lin.kernels, 2, "sgemm + bias, not the nested add's");
        assert_eq!(lin.device_ns, 105);
        let add = t.profile("aten::add").unwrap();
        assert_eq!(add.kernels, 1);
        assert_eq!(add.kernel_counts["elementwise"], 1);
    }

    #[test]
    fn kernels_outside_any_op_are_unattributed() {
        let mut t = OpKernelMapTool::new();
        t.on_event(&kernel("stray", 0, 50));
        assert_eq!(t.op_count(), 0);
    }

    #[test]
    fn merge_sums_op_profiles() {
        let mut a = OpKernelMapTool::new();
        a.on_event(&op_start("aten::linear", 0));
        a.on_event(&kernel("sgemm", 0, 100));
        a.on_event(&op_end("aten::linear", 0));
        let mut b = OpKernelMapTool::new();
        b.on_event(&op_start("aten::linear", 0));
        b.on_event(&kernel("sgemm", 1, 50));
        b.on_event(&kernel("bias", 2, 5));
        b.on_event(&op_end("aten::linear", 0));
        let mut merged = a.fork().unwrap();
        merged.merge(&a);
        merged.merge(&b);
        let merged = merged.as_any().downcast_ref::<OpKernelMapTool>().unwrap();
        let p = merged.profile("aten::linear").unwrap();
        assert_eq!(p.calls, 2);
        assert_eq!(p.kernels, 3);
        assert_eq!(p.device_ns, 155);
        assert_eq!(p.kernel_counts["sgemm"], 2);
    }

    #[test]
    fn ranking_by_device_time() {
        let mut t = OpKernelMapTool::new();
        t.on_event(&op_start("cheap", 0));
        t.on_event(&kernel("k", 0, 10));
        t.on_event(&op_end("cheap", 0));
        t.on_event(&op_start("expensive", 1));
        t.on_event(&kernel("k", 1, 1_000));
        t.on_event(&op_end("expensive", 1));
        let r = t.ranking();
        assert_eq!(r[0].0, "expensive");
        assert!((r[0].1.kernels_per_call() - 1.0).abs() < 1e-9);
        let report = t.report();
        assert_eq!(report.get("operators"), Some(2.0));
    }
}
