//! Launch-geometry census: grid/block shape distribution across a run.
//!
//! A small utility tool (used by the quickstart example) showing the
//! minimal extension surface: one overridden handler, one report.

use pasta_core::{Event, Interest, Tool, ToolReport};
use std::any::Any;

/// Aggregate launch-geometry statistics.
#[derive(Debug, Default)]
pub struct LaunchCensusTool {
    launches: u64,
    total_blocks: u64,
    total_threads: u64,
    max_threads: u64,
    single_block_launches: u64,
}

impl LaunchCensusTool {
    /// Creates the tool.
    pub fn new() -> Self {
        LaunchCensusTool::default()
    }

    /// Launches observed.
    pub fn launches(&self) -> u64 {
        self.launches
    }

    /// Mean threads per launch.
    pub fn avg_threads(&self) -> f64 {
        if self.launches == 0 {
            return 0.0;
        }
        self.total_threads as f64 / self.launches as f64
    }

    /// Fraction of launches with a single block (under-occupancy signal).
    pub fn single_block_fraction(&self) -> f64 {
        if self.launches == 0 {
            return 0.0;
        }
        self.single_block_launches as f64 / self.launches as f64
    }
}

impl Tool for LaunchCensusTool {
    fn name(&self) -> &str {
        "launch-census"
    }

    fn interest(&self) -> Interest {
        Interest {
            host_events: true,
            block_boundaries: true,
            ..Interest::default()
        }
    }

    fn on_event(&mut self, event: &Event) {
        if let Event::KernelLaunchBegin { grid, block, .. } = event {
            self.launches += 1;
            let blocks = grid.count();
            let threads = blocks * block.count();
            self.total_blocks += blocks;
            self.total_threads += threads;
            self.max_threads = self.max_threads.max(threads);
            if blocks == 1 {
                self.single_block_launches += 1;
            }
        }
    }

    fn report(&self) -> ToolReport {
        ToolReport::new(self.name())
            .metric("launches", self.launches as f64)
            .metric("avg_threads", self.avg_threads())
            .metric("max_threads", self.max_threads as f64)
            .metric("single_block_fraction", self.single_block_fraction())
    }

    fn reset(&mut self) {
        *self = LaunchCensusTool::default();
    }

    fn fork(&self) -> Option<Box<dyn Tool>> {
        Some(Box::<LaunchCensusTool>::default())
    }

    fn merge(&mut self, other: &dyn Tool) {
        let Some(other) = other.as_any().downcast_ref::<LaunchCensusTool>() else {
            return;
        };
        self.launches += other.launches;
        self.total_blocks += other.total_blocks;
        self.total_threads += other.total_threads;
        self.max_threads = self.max_threads.max(other.max_threads);
        self.single_block_launches += other.single_block_launches;
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accel_sim::{DeviceId, Dim3, LaunchId};

    fn begin(launch: u64, grid: u32, block: u32) -> Event {
        Event::KernelLaunchBegin {
            launch: LaunchId(launch),
            device: DeviceId(0),
            stream: 0,
            name: "k".into(),
            grid: Dim3::linear(grid),
            block: Dim3::linear(block),
        }
    }

    #[test]
    fn census_math() {
        let mut t = LaunchCensusTool::new();
        t.on_event(&begin(0, 10, 100)); // 1000 threads
        t.on_event(&begin(1, 1, 64)); // 64 threads, single block
        assert_eq!(t.launches(), 2);
        assert!((t.avg_threads() - 532.0).abs() < 1e-9);
        assert!((t.single_block_fraction() - 0.5).abs() < 1e-9);
        let r = t.report();
        assert_eq!(r.get("max_threads"), Some(1000.0));
    }

    #[test]
    fn empty_census_is_zero() {
        let t = LaunchCensusTool::new();
        assert_eq!(t.avg_threads(), 0.0);
        assert_eq!(t.single_block_fraction(), 0.0);
    }
}
