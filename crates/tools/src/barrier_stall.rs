//! Memory-barrier stall analysis — the paper's §III-H memory-centric
//! extensibility example: "quantify synchronization delays … identify
//! kernels or layers that suffer from excessive synchronization overhead".

use accel_sim::Symbol;
use pasta_core::{Event, Interest, Tool, ToolReport};
use std::any::Any;
use std::collections::HashMap;

/// Estimated stall per barrier execution, ns (warp re-convergence plus
/// scheduler latency at typical occupancy).
const STALL_PER_BARRIER_NS: f64 = 0.12;

/// Per-kernel barrier statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BarrierStats {
    /// Barrier executions.
    pub barriers: u64,
    /// Kernel invocations.
    pub calls: u64,
    /// Total kernel device time, ns.
    pub duration_ns: u64,
}

impl BarrierStats {
    /// Estimated stall time, ns.
    pub fn stall_ns(&self) -> u64 {
        (self.barriers as f64 * STALL_PER_BARRIER_NS) as u64
    }

    /// Stall as a fraction of kernel time.
    pub fn stall_fraction(&self) -> f64 {
        if self.duration_ns == 0 {
            return 0.0;
        }
        self.stall_ns() as f64 / self.duration_ns as f64
    }
}

/// The barrier-stall tool.
#[derive(Debug, Default)]
pub struct BarrierStallTool {
    per_kernel: HashMap<Symbol, BarrierStats>,
    current_kernel: HashMap<u64, Symbol>,
}

impl BarrierStallTool {
    /// Creates the tool.
    pub fn new() -> Self {
        BarrierStallTool::default()
    }

    /// Statistics for one kernel.
    pub fn stats_for(&self, kernel: &str) -> Option<BarrierStats> {
        self.per_kernel.get(kernel).copied()
    }

    /// Kernels ranked by estimated stall time, descending.
    pub fn ranking(&self) -> Vec<(Symbol, BarrierStats)> {
        let mut v: Vec<(Symbol, BarrierStats)> = self
            .per_kernel
            .iter()
            .map(|(k, &s)| (k.clone(), s))
            .collect();
        v.sort_by(|a, b| {
            b.1.stall_ns()
                .cmp(&a.1.stall_ns())
                .then_with(|| a.0.cmp(&b.0))
        });
        v
    }
}

impl Tool for BarrierStallTool {
    fn name(&self) -> &str {
        "barrier-stall"
    }

    fn interest(&self) -> Interest {
        Interest {
            barriers: true,
            host_events: true,
            ..Interest::default()
        }
    }

    fn on_event(&mut self, event: &Event) {
        match event {
            Event::KernelLaunchBegin { launch, name, .. } => {
                self.current_kernel.insert(launch.value(), name.clone());
            }
            Event::Barrier { launch, count, .. } => {
                if let Some(name) = self.current_kernel.get(&launch.value()) {
                    let s = self.per_kernel.entry(name.clone()).or_default();
                    s.barriers += count;
                }
            }
            Event::KernelLaunchEnd {
                launch,
                name,
                start,
                end,
                ..
            } => {
                let s = self.per_kernel.entry(name.clone()).or_default();
                s.calls += 1;
                s.duration_ns += *end - *start;
                self.current_kernel.remove(&launch.value());
            }
            _ => {}
        }
    }

    fn report(&self) -> ToolReport {
        let ranking = self.ranking();
        let total_stall: u64 = ranking.iter().map(|(_, s)| s.stall_ns()).sum();
        let mut text = String::new();
        for (kernel, s) in ranking.iter().take(10) {
            text.push_str(&format!(
                "  {:>10} barriers  {:>8} ns stall  {:>5.1}%  {kernel}\n",
                s.barriers,
                s.stall_ns(),
                s.stall_fraction() * 100.0
            ));
        }
        ToolReport::new(self.name())
            .metric("kernels_with_barriers", self.per_kernel.len() as f64)
            .metric("total_stall_ns", total_stall as f64)
            .body(text)
    }

    fn reset(&mut self) {
        self.per_kernel.clear();
        self.current_kernel.clear();
    }

    fn fork(&self) -> Option<Box<dyn Tool>> {
        Some(Box::new(BarrierStallTool::new()))
    }

    fn merge(&mut self, other: &dyn Tool) {
        let Some(other) = other.as_any().downcast_ref::<BarrierStallTool>() else {
            return;
        };
        // `current_kernel` is in-flight launch state and never merges.
        for (kernel, theirs) in &other.per_kernel {
            let s = self.per_kernel.entry(kernel.clone()).or_default();
            s.barriers += theirs.barriers;
            s.calls += theirs.calls;
            s.duration_ns += theirs.duration_ns;
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accel_sim::{DeviceId, Dim3, LaunchId, SimTime};

    fn begin(launch: u64, name: &str) -> Event {
        Event::KernelLaunchBegin {
            launch: LaunchId(launch),
            device: DeviceId(0),
            stream: 0,
            name: name.into(),
            grid: Dim3::linear(1),
            block: Dim3::linear(32),
        }
    }

    fn barrier(launch: u64, count: u64) -> Event {
        Event::Barrier {
            launch: LaunchId(launch),
            count,
            cluster: false,
        }
    }

    fn end(launch: u64, name: &str, dur: u64) -> Event {
        Event::KernelLaunchEnd {
            launch: LaunchId(launch),
            device: DeviceId(0),
            name: name.into(),
            start: SimTime(0),
            end: SimTime(dur),
        }
    }

    #[test]
    fn attributes_barriers_to_kernels() {
        let mut t = BarrierStallTool::new();
        t.on_event(&begin(0, "gemm"));
        t.on_event(&barrier(0, 1_000_000));
        t.on_event(&end(0, "gemm", 10_000_000));
        t.on_event(&begin(1, "relu"));
        t.on_event(&end(1, "relu", 1_000));
        let s = t.stats_for("gemm").unwrap();
        assert_eq!(s.barriers, 1_000_000);
        assert_eq!(s.calls, 1);
        assert!(s.stall_ns() > 0);
        assert!(s.stall_fraction() > 0.0 && s.stall_fraction() < 1.0);
        assert_eq!(t.stats_for("relu").unwrap().barriers, 0);
        assert_eq!(t.ranking()[0].0, "gemm");
    }

    #[test]
    fn merge_sums_per_kernel_stats() {
        let mut a = BarrierStallTool::new();
        a.on_event(&begin(0, "gemm"));
        a.on_event(&barrier(0, 100));
        a.on_event(&end(0, "gemm", 1_000));
        let mut b = BarrierStallTool::new();
        b.on_event(&begin(1, "gemm"));
        b.on_event(&barrier(1, 50));
        b.on_event(&end(1, "gemm", 500));
        let mut merged = a.fork().unwrap();
        merged.merge(&a);
        merged.merge(&b);
        let merged = merged.as_any().downcast_ref::<BarrierStallTool>().unwrap();
        let s = merged.stats_for("gemm").unwrap();
        assert_eq!(s.barriers, 150);
        assert_eq!(s.calls, 2);
        assert_eq!(s.duration_ns, 1_500);
    }

    #[test]
    fn report_ranks_by_stall() {
        let mut t = BarrierStallTool::new();
        t.on_event(&begin(0, "light"));
        t.on_event(&barrier(0, 10));
        t.on_event(&end(0, "light", 100));
        t.on_event(&begin(1, "heavy"));
        t.on_event(&barrier(1, 10_000_000));
        t.on_event(&end(1, "heavy", 100));
        let r = t.report();
        assert_eq!(r.get("kernels_with_barriers"), Some(2.0));
        let first = r.text.lines().next().unwrap();
        assert!(first.contains("heavy"));
    }
}
