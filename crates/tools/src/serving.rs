//! Serving-latency report: tail percentiles next to the UVM curves.
//!
//! A serving run answers two questions at once — *how slow were the
//! tails* (p50/p95/p99 time-to-first-token and per-decode-step latency)
//! and *why* (demand faults, evictions and peer duplications as KV
//! growth oversubscribed the budget). [`ServingReport`] folds a
//! [`ServingRun`] and the session's merged [`UvmReport`] into one row so
//! an offered-load sweep prints the pairing directly: as the eviction
//! column climbs, the tail columns explain what it cost.

use crate::util::{format_bytes, percentile};
use dl_framework::serving::ServingRun;
use pasta_core::report::UvmReport;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Latency tails of one serving run beside its UVM traffic.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServingReport {
    /// Lanes the run served on.
    pub lanes: usize,
    /// Requests completed across all lanes.
    pub completed: u64,
    /// TTFT percentiles, virtual ns — `None` when no request completed
    /// prefill (no samples must not read as a 0 ns tail).
    pub ttft_p50_ns: Option<u64>,
    /// 95th-percentile TTFT, virtual ns.
    pub ttft_p95_ns: Option<u64>,
    /// 99th-percentile TTFT, virtual ns.
    pub ttft_p99_ns: Option<u64>,
    /// Decode-step latency percentiles, virtual ns.
    pub decode_p50_ns: Option<u64>,
    /// 95th-percentile decode step, virtual ns.
    pub decode_p95_ns: Option<u64>,
    /// 99th-percentile decode step, virtual ns.
    pub decode_p99_ns: Option<u64>,
    /// Peak concurrent KV bytes, summed over lanes (each lane peaks
    /// independently; the sum bounds the fleet's cache footprint).
    pub kv_peak_bytes: u64,
    /// KV pages allocated (and freed) over the run, all lanes.
    pub kv_pages_allocated: u64,
    /// Demand-fault pages migrated in (from the merged UVM stats).
    pub demand_pages_in: u64,
    /// Pages evicted as the cache outgrew the budget.
    pub pages_evicted: u64,
    /// Pages read-duplicated over the peer link (shared weights).
    pub peer_pages_in: u64,
    /// Total UVM stall across the run, virtual ns.
    pub uvm_stall_ns: u64,
}

impl ServingReport {
    /// Builds the report from a run and the session's UVM slice (pass
    /// `None` when the session ran without UVM — the traffic columns
    /// report zero, the latency columns still stand).
    pub fn from_run(run: &ServingRun, uvm: Option<&UvmReport>) -> ServingReport {
        let ttft = run.ttft_sorted();
        let decode = run.decode_sorted();
        let stats = uvm.map(|u| u.stats).unwrap_or_default();
        ServingReport {
            lanes: run.lanes.len(),
            completed: run.completed(),
            ttft_p50_ns: percentile(&ttft, 50.0),
            ttft_p95_ns: percentile(&ttft, 95.0),
            ttft_p99_ns: percentile(&ttft, 99.0),
            decode_p50_ns: percentile(&decode, 50.0),
            decode_p95_ns: percentile(&decode, 95.0),
            decode_p99_ns: percentile(&decode, 99.0),
            kv_peak_bytes: run.lanes.iter().map(|l| l.kv_peak_bytes).sum(),
            kv_pages_allocated: run.lanes.iter().map(|l| l.kv_pages_allocated).sum(),
            demand_pages_in: stats.demand_pages_in,
            pages_evicted: stats.pages_evicted,
            peer_pages_in: stats.peer_pages_in,
            uvm_stall_ns: stats.total_stall_ns(),
        }
    }
}

/// `123456` ns → `"123.5us"`, `None` → `"-"`; keeps sweep rows aligned
/// without pretending absent samples are instant.
fn ns(v: Option<u64>) -> String {
    match v {
        None => "-".into(),
        Some(n) if n >= 1_000_000 => format!("{:.2}ms", n as f64 / 1e6),
        Some(n) if n >= 1_000 => format!("{:.1}us", n as f64 / 1e3),
        Some(n) => format!("{n}ns"),
    }
}

impl fmt::Display for ServingReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "serving: {} requests on {} lane(s), kv peak {} ({} pages churned)",
            self.completed,
            self.lanes,
            format_bytes(self.kv_peak_bytes),
            self.kv_pages_allocated,
        )?;
        writeln!(
            f,
            "  ttft   p50 {:>9}  p95 {:>9}  p99 {:>9}",
            ns(self.ttft_p50_ns),
            ns(self.ttft_p95_ns),
            ns(self.ttft_p99_ns),
        )?;
        writeln!(
            f,
            "  decode p50 {:>9}  p95 {:>9}  p99 {:>9}",
            ns(self.decode_p50_ns),
            ns(self.decode_p95_ns),
            ns(self.decode_p99_ns),
        )?;
        writeln!(
            f,
            "  uvm    faults_in {}  evicted {}  peer_in {}  stall {}",
            self.demand_pages_in,
            self.pages_evicted,
            self.peer_pages_in,
            ns(Some(self.uvm_stall_ns)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dl_framework::serving::LaneServing;
    use pasta_core::report::UvmReport;

    fn lane(device: u32, ttft: Vec<u64>, decode: Vec<u64>) -> LaneServing {
        LaneServing {
            device: accel_sim::DeviceId(device),
            completed: ttft.len() as u64,
            steps: 4,
            ttft_ns: ttft,
            decode_step_ns: decode,
            kv_peak_bytes: 1024,
            kv_pages_allocated: 3,
        }
    }

    #[test]
    fn report_folds_lanes_and_uvm() {
        let run = ServingRun {
            lanes: vec![
                lane(0, vec![100, 300], vec![10, 30]),
                lane(1, vec![200], vec![20]),
            ],
        };
        let mut uvm = UvmReport::default();
        uvm.stats.demand_pages_in = 7;
        uvm.stats.pages_evicted = 5;
        uvm.stats.peer_pages_in = 3;
        uvm.stats.fault_stall_ns = 900;
        let report = ServingReport::from_run(&run, Some(&uvm));
        assert_eq!(report.completed, 3);
        assert_eq!(report.lanes, 2);
        assert_eq!(report.ttft_p50_ns, Some(200));
        assert_eq!(report.ttft_p99_ns, Some(300));
        assert_eq!(report.decode_p50_ns, Some(20));
        assert_eq!(report.kv_peak_bytes, 2048);
        assert_eq!(report.kv_pages_allocated, 6);
        assert_eq!(report.pages_evicted, 5);
        assert_eq!(report.uvm_stall_ns, 900);
        let text = report.to_string();
        assert!(text.contains("evicted 5"), "traffic column renders: {text}");
    }

    #[test]
    fn empty_run_renders_dashes_not_zeros() {
        let report = ServingReport::from_run(&ServingRun { lanes: vec![] }, None);
        assert_eq!(report.ttft_p50_ns, None);
        assert_eq!(report.decode_p99_ns, None);
        let text = report.to_string();
        assert!(
            text.contains("p50         -"),
            "absent samples render as '-': {text}"
        );
    }
}
