//! # uvm-sim — unified virtual memory simulator
//!
//! The paper's UVM case study (§V-C) optimizes NVIDIA's Unified Virtual
//! Memory: a page-fault-driven, on-demand migration system with optional
//! prefetching (`cudaMemPrefetchAsync`) and advice (`cudaMemAdvise`). This
//! crate reproduces those mechanics over the [`accel_sim`] substrate:
//!
//! * 64 KiB pages grouped into 2 MiB blocks ([`page`]);
//! * demand faulting with fault-group latency plus migration bandwidth
//!   ([`UvmManager::on_kernel_access`]);
//! * LRU eviction with write-back under memory pressure ([`state`]);
//! * asynchronous prefetch with a compute-overlap discount
//!   ([`UvmManager::prefetch`]);
//! * pinning/advice ([`accel_sim::ResidencyAdvice`]);
//! * per-2 MiB-block hotness accounting ([`hotness`]);
//! * peer-to-peer coherence for managed ranges *shared* across devices
//!   or parallel lanes ([`coherence`]): remote reads read-duplicate the
//!   owner's home copy over the peer link, remote writes invalidate the
//!   other devices' duplicates — see
//!   [`UvmManager::register_shared`](manager::UvmManager::register_shared).
//!
//! [`UvmManager`] implements [`accel_sim::ResidencyModel`], so plugging it
//! into an engine turns every kernel access to managed ranges into faults,
//! migrations and evictions whose costs land on the simulated clocks. The
//! paper's Fig. 11/12 dynamics — prefetching wins without oversubscription,
//! object-level prefetching thrashes at 3× oversubscription — *emerge* from
//! these mechanics.
//!
//! ## Example
//!
//! ```
//! use uvm_sim::{UvmConfig, UvmManager};
//! use accel_sim::{DeviceId, ResidencyModel, AccessKind};
//!
//! let mut uvm = UvmManager::new(UvmConfig::default());
//! uvm.add_device(512 << 20, 24.0, 25_000); // 512 MiB budget, PCIe 24 GB/s
//! uvm.register(0x4000_0000_0000, 64 << 20);
//! let out = uvm.on_kernel_access(
//!     DeviceId(0), 0x4000_0000_0000, 64 << 20, 64 << 20, AccessKind::Load);
//! assert!(out.faults > 0, "cold pages fault");
//! ```

pub mod coherence;
pub mod config;
pub mod hotness;
pub mod manager;
pub mod page;
pub mod plan;
pub mod state;
pub mod stats;

pub use coherence::{CoherenceDirectory, RangeDirectory};
pub use config::UvmConfig;
pub use hotness::{BlockHotness, HotnessSeries};
pub use manager::UvmManager;
pub use page::{block_of_addr, page_range, PageRange, BLOCK_SIZE, PAGE_SIZE};
pub use plan::{PrefetchGranularity, PrefetchPlan, Range};
pub use stats::UvmStats;
