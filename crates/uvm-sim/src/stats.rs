//! UVM activity counters.

use serde::{Deserialize, Serialize};

/// Aggregate UVM statistics across a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct UvmStats {
    /// Fault groups serviced.
    pub fault_groups: u64,
    /// Pages migrated host→device by demand faulting.
    pub demand_pages_in: u64,
    /// Pages migrated host→device by prefetch.
    pub prefetch_pages_in: u64,
    /// Pages evicted device→host.
    pub pages_evicted: u64,
    /// Device stall caused by demand faults, ns.
    pub fault_stall_ns: u64,
    /// Device stall caused by non-overlapped prefetch, ns.
    pub prefetch_stall_ns: u64,
    /// Device stall caused by eviction write-back, ns.
    pub evict_stall_ns: u64,
    /// Prefetch requests that found all pages already resident.
    pub prefetch_noops: u64,
    /// Pages read-duplicated device→device over the peer link (shared
    /// managed ranges only).
    pub peer_pages_in: u64,
    /// Device stall caused by peer read-duplication, ns.
    pub peer_stall_ns: u64,
    /// Remote duplicate pages invalidated by writes to shared ranges.
    pub duplicates_invalidated: u64,
}

impl UvmStats {
    /// Total pages migrated in from the *host*, by either mechanism
    /// (peer duplications are device→device and counted separately in
    /// [`UvmStats::peer_pages_in`]).
    pub fn pages_in(&self) -> u64 {
        self.demand_pages_in + self.prefetch_pages_in
    }

    /// Total device stall attributable to UVM, ns.
    pub fn total_stall_ns(&self) -> u64 {
        self.fault_stall_ns + self.prefetch_stall_ns + self.evict_stall_ns + self.peer_stall_ns
    }

    /// Folds another counter set into this one, field-wise — the merge
    /// stage of the per-lane UVM shards (every field is a sum, so the
    /// fold is commutative and any merge order yields the same totals).
    pub fn merge_from(&mut self, other: &UvmStats) {
        self.fault_groups += other.fault_groups;
        self.demand_pages_in += other.demand_pages_in;
        self.prefetch_pages_in += other.prefetch_pages_in;
        self.pages_evicted += other.pages_evicted;
        self.fault_stall_ns += other.fault_stall_ns;
        self.prefetch_stall_ns += other.prefetch_stall_ns;
        self.evict_stall_ns += other.evict_stall_ns;
        self.prefetch_noops += other.prefetch_noops;
        self.peer_pages_in += other.peer_pages_in;
        self.peer_stall_ns += other.peer_stall_ns;
        self.duplicates_invalidated += other.duplicates_invalidated;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_components() {
        let s = UvmStats {
            fault_groups: 2,
            demand_pages_in: 10,
            prefetch_pages_in: 5,
            pages_evicted: 3,
            fault_stall_ns: 100,
            prefetch_stall_ns: 50,
            evict_stall_ns: 25,
            prefetch_noops: 1,
            peer_pages_in: 6,
            peer_stall_ns: 30,
            duplicates_invalidated: 2,
        };
        assert_eq!(s.pages_in(), 15, "peer pages are not host pages");
        assert_eq!(s.total_stall_ns(), 205, "peer stall is device stall");
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(UvmStats::default().pages_in(), 0);
        assert_eq!(UvmStats::default().total_stall_ns(), 0);
    }

    #[test]
    fn merge_sums_every_field() {
        let a = UvmStats {
            fault_groups: 1,
            demand_pages_in: 2,
            prefetch_pages_in: 3,
            pages_evicted: 4,
            fault_stall_ns: 5,
            prefetch_stall_ns: 6,
            evict_stall_ns: 7,
            prefetch_noops: 8,
            peer_pages_in: 9,
            peer_stall_ns: 10,
            duplicates_invalidated: 11,
        };
        let b = UvmStats {
            fault_groups: 10,
            demand_pages_in: 20,
            prefetch_pages_in: 30,
            pages_evicted: 40,
            fault_stall_ns: 50,
            prefetch_stall_ns: 60,
            evict_stall_ns: 70,
            prefetch_noops: 80,
            peer_pages_in: 90,
            peer_stall_ns: 100,
            duplicates_invalidated: 110,
        };
        let mut ab = a;
        ab.merge_from(&b);
        let mut ba = b;
        ba.merge_from(&a);
        assert_eq!(ab, ba, "field-wise sums commute");
        assert_eq!(ab.fault_groups, 11);
        assert_eq!(ab.pages_in(), 55);
        assert_eq!(ab.peer_pages_in, 99);
        assert_eq!(ab.duplicates_invalidated, 121);
        assert_eq!(ab.total_stall_ns(), 308);
        // The zero counters are the identity element.
        let mut id = a;
        id.merge_from(&UvmStats::default());
        assert_eq!(id, a);
    }
}
