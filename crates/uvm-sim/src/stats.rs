//! UVM activity counters.

use serde::{Deserialize, Serialize};

/// Aggregate UVM statistics across a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct UvmStats {
    /// Fault groups serviced.
    pub fault_groups: u64,
    /// Pages migrated host→device by demand faulting.
    pub demand_pages_in: u64,
    /// Pages migrated host→device by prefetch.
    pub prefetch_pages_in: u64,
    /// Pages evicted device→host.
    pub pages_evicted: u64,
    /// Device stall caused by demand faults, ns.
    pub fault_stall_ns: u64,
    /// Device stall caused by non-overlapped prefetch, ns.
    pub prefetch_stall_ns: u64,
    /// Device stall caused by eviction write-back, ns.
    pub evict_stall_ns: u64,
    /// Prefetch requests that found all pages already resident.
    pub prefetch_noops: u64,
}

impl UvmStats {
    /// Total pages migrated in, by either mechanism.
    pub fn pages_in(&self) -> u64 {
        self.demand_pages_in + self.prefetch_pages_in
    }

    /// Total device stall attributable to UVM, ns.
    pub fn total_stall_ns(&self) -> u64 {
        self.fault_stall_ns + self.prefetch_stall_ns + self.evict_stall_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_components() {
        let s = UvmStats {
            fault_groups: 2,
            demand_pages_in: 10,
            prefetch_pages_in: 5,
            pages_evicted: 3,
            fault_stall_ns: 100,
            prefetch_stall_ns: 50,
            evict_stall_ns: 25,
            prefetch_noops: 1,
        };
        assert_eq!(s.pages_in(), 15);
        assert_eq!(s.total_stall_ns(), 175);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(UvmStats::default().pages_in(), 0);
        assert_eq!(UvmStats::default().total_stall_ns(), 0);
    }
}
