//! Prefetch plans.
//!
//! The paper's tensor-aware UVM prefetcher (§V-C1) profiles a run with
//! PASTA, correlates kernels with the memory objects and tensors they
//! access, and generates a **multi-level prefetching scheme**: before each
//! kernel launch, prefetch either the whole memory *objects* it touches
//! (object-level) or only the *tensors* it touches (tensor-level). A
//! [`PrefetchPlan`] is that scheme; the vendor runtimes replay it.

use serde::{Deserialize, Serialize};

/// A contiguous byte range in managed memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Range {
    /// Base address.
    pub base: u64,
    /// Length in bytes.
    pub len: u64,
}

impl Range {
    /// Constructs a range.
    pub fn new(base: u64, len: u64) -> Self {
        Range { base, len }
    }

    /// Exclusive end address.
    pub fn end(&self) -> u64 {
        self.base + self.len
    }

    /// True when the ranges overlap.
    pub fn overlaps(&self, other: &Range) -> bool {
        self.base < other.end() && other.base < self.end()
    }
}

/// Granularity of a prefetch plan, matching the paper's comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PrefetchGranularity {
    /// No prefetching (the baseline: pure demand paging).
    None,
    /// Prefetch every memory *object* (allocator segment) the kernel
    /// touches — the conventional strategy of prior UVM work.
    Object,
    /// Prefetch only the *tensors* the kernel touches — PASTA's
    /// tensor-aware strategy enabled by cross-layer event capture.
    Tensor,
}

impl PrefetchGranularity {
    /// Human-readable label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            PrefetchGranularity::None => "no-prefetch",
            PrefetchGranularity::Object => "object-level",
            PrefetchGranularity::Tensor => "tensor-level",
        }
    }
}

/// Ranges to prefetch before each kernel launch, indexed by the launch
/// sequence number local to the planned run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefetchPlan {
    /// Strategy that produced the plan.
    pub granularity: Option<PrefetchGranularity>,
    per_launch: Vec<Vec<Range>>,
}

impl PrefetchPlan {
    /// An empty plan for `launches` upcoming kernels.
    pub fn with_capacity(launches: usize) -> Self {
        PrefetchPlan {
            granularity: None,
            per_launch: vec![Vec::new(); launches],
        }
    }

    /// Adds a range to prefetch before launch `index`, growing the plan if
    /// needed and merging exact duplicates.
    pub fn add(&mut self, index: usize, range: Range) {
        if range.len == 0 {
            return;
        }
        if index >= self.per_launch.len() {
            self.per_launch.resize(index + 1, Vec::new());
        }
        let slot = &mut self.per_launch[index];
        if !slot.contains(&range) {
            slot.push(range);
        }
    }

    /// Ranges planned before launch `index` (empty when past the plan).
    pub fn ranges_for(&self, index: usize) -> &[Range] {
        self.per_launch.get(index).map_or(&[], Vec::as_slice)
    }

    /// Number of launches covered.
    pub fn len(&self) -> usize {
        self.per_launch.len()
    }

    /// True when no launch has any planned range.
    pub fn is_empty(&self) -> bool {
        self.per_launch.iter().all(Vec::is_empty)
    }

    /// Total bytes the plan will prefetch (ignoring residency).
    pub fn total_bytes(&self) -> u64 {
        self.per_launch.iter().flatten().map(|r| r.len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_overlap() {
        let a = Range::new(0, 100);
        let b = Range::new(50, 100);
        let c = Range::new(100, 10);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c), "half-open ranges: end is exclusive");
        assert_eq!(a.end(), 100);
    }

    #[test]
    fn plan_grows_and_dedups() {
        let mut p = PrefetchPlan::default();
        p.add(3, Range::new(0, 10));
        p.add(3, Range::new(0, 10)); // duplicate
        p.add(3, Range::new(20, 10));
        assert_eq!(p.len(), 4);
        assert_eq!(p.ranges_for(3).len(), 2);
        assert!(p.ranges_for(0).is_empty());
        assert!(p.ranges_for(99).is_empty());
        assert_eq!(p.total_bytes(), 20);
    }

    #[test]
    fn zero_length_ranges_ignored() {
        let mut p = PrefetchPlan::default();
        p.add(0, Range::new(5, 0));
        assert!(p.is_empty());
    }

    #[test]
    fn labels() {
        assert_eq!(PrefetchGranularity::None.label(), "no-prefetch");
        assert_eq!(PrefetchGranularity::Object.label(), "object-level");
        assert_eq!(PrefetchGranularity::Tensor.label(), "tensor-level");
    }
}
