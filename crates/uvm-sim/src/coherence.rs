//! The per-range coherence directory behind shared managed ranges.
//!
//! A managed range marked *shared* ([`crate::UvmManager::register_shared`])
//! is visible to every lane of a parallel run: remote reads
//! **read-duplicate** the owner's home copy over the peer link, remote
//! writes **invalidate** the other devices' duplicates. The directory is
//! the one piece of state the lane managers genuinely share — an
//! `Arc<CoherenceDirectory>` cloned into every [`crate::UvmManager::fork`]
//! — so it is deliberately small and deliberately partitioned:
//!
//! * the outer registration map is locked only on
//!   `register_shared`/`unregister_shared` (rare, setup-time);
//! * each shared range carries its **own** lock ([`RangeDirectory`]), so
//!   two lanes touching different shared ranges never contend;
//! * private ranges never reach the directory at all — the residency hot
//!   path for private ranges stays lock-free (measured by the
//!   `uvm_parallel` / `uvm_p2p` benches).
//!
//! What the directory tracks, per shared range:
//!
//! * **holders** — which devices currently hold a duplicate of each page
//!   (the owner's copy included). Read duplications add holders; shared
//!   evictions and write invalidations remove them.
//! * **pending invalidations** — pages a writer invalidated that a
//!   *forked* lane manager still carries in its private residency. A lane
//!   cannot reach into another lane's `DeviceState`, so the victim drains
//!   its pending list at its next shared-range access and drops the stale
//!   pages then; an unforked (single) manager owns every `DeviceState`
//!   and invalidates eagerly instead. Either way no stale duplicate is
//!   ever *served*: the directory's holder set is the source of truth,
//!   and it is updated under the range lock at write time.

use accel_sim::DeviceId;
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Directory state of one shared managed range.
#[derive(Debug)]
pub struct RangeDirectory {
    base: u64,
    len: u64,
    owner: DeviceId,
    /// Live `register_shared` registrations; the directory drops the
    /// range when the count reaches zero (see
    /// [`CoherenceDirectory::release`]).
    registrants: AtomicUsize,
    state: Mutex<RangeState>,
}

#[derive(Debug, Default)]
struct RangeState {
    /// page index → devices holding a duplicate (owner included).
    holders: BTreeMap<u64, BTreeSet<DeviceId>>,
    /// device → stale pages it must drop before trusting its residency.
    pending: BTreeMap<DeviceId, Vec<u64>>,
}

impl RangeDirectory {
    /// Base address of the shared range.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Adds one registration to this range without going through
    /// [`CoherenceDirectory::ensure`] — how [`crate::UvmManager::fork`]
    /// and merge-imported cache entries keep the range alive, so an
    /// inheritor calling `unregister_shared` cannot tear the directory
    /// down under the managers it inherited from.
    pub fn retain(&self) {
        self.registrants.fetch_add(1, Ordering::AcqRel);
    }

    /// Length of the shared range, bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True for an empty (zero-length) range.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The device holding the range's home copy.
    pub fn owner(&self) -> DeviceId {
        self.owner
    }

    /// Records that `device` now holds a duplicate of `page`.
    pub fn add_holder(&self, page: u64, device: DeviceId) {
        self.add_holders(std::iter::once(page), device);
    }

    /// Records `device` as a holder of every page in `pages` under one
    /// range-lock acquisition (the fault path registers whole batches).
    pub fn add_holders(&self, pages: impl IntoIterator<Item = u64>, device: DeviceId) {
        let mut st = self.state.lock();
        for page in pages {
            st.holders.entry(page).or_default().insert(device);
        }
    }

    /// Removes `device` from `page`'s holder set (duplicate evicted).
    pub fn remove_holder(&self, page: u64, device: DeviceId) {
        let mut st = self.state.lock();
        if let Some(set) = st.holders.get_mut(&page) {
            set.remove(&device);
            if set.is_empty() {
                st.holders.remove(&page);
            }
        }
    }

    /// Devices currently holding `page`, ascending.
    pub fn holders(&self, page: u64) -> Vec<DeviceId> {
        self.state
            .lock()
            .holders
            .get(&page)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// A write by `writer` to `page`: every *other* holder is removed
    /// from the directory and queued on its pending-invalidation list;
    /// `writer` becomes the sole holder. Returns the victims (ascending
    /// device id), so the caller can count invalidations and log the
    /// src→dst coherence events.
    pub fn write(&self, page: u64, writer: DeviceId) -> Vec<DeviceId> {
        self.write_range(std::iter::once(page), writer)
            .into_iter()
            .map(|(v, _)| v)
            .collect()
    }

    /// Batched form of [`RangeDirectory::write`]: one lock acquisition
    /// over the whole written page range. Returns `(victim, page)` pairs
    /// in page order (victims ascending within a page).
    pub fn write_range(
        &self,
        pages: impl IntoIterator<Item = u64>,
        writer: DeviceId,
    ) -> Vec<(DeviceId, u64)> {
        let mut st = self.state.lock();
        let mut victims = Vec::new();
        for page in pages {
            let vs: Vec<DeviceId> = {
                let set = st.holders.entry(page).or_default();
                let vs = set.iter().copied().filter(|&d| d != writer).collect();
                set.clear();
                set.insert(writer);
                vs
            };
            for v in vs {
                st.pending.entry(v).or_default().push(page);
                victims.push((v, page));
            }
        }
        victims
    }

    /// The read path's single critical section: drains `device`'s
    /// pending invalidations **and** claims holder entries for the pages
    /// of the accessed range that need fetching, under one lock. A page
    /// is "missing" when `resident` denies it *or* when it was pending
    /// invalidation (locally present but stale — the caller must drop
    /// and refetch it). Registering the claim before the data moves
    /// closes the window in which a concurrent writer could miss this
    /// reader entirely: any write that lands after the claim sees the
    /// holder entry and queues a pending invalidation the reader will
    /// drain on its next visit.
    ///
    /// Returns `(stale, missing)`: `stale` is every drained
    /// pending-invalid page (range or not — drop them all locally),
    /// `missing` the accessed pages to fetch (claimed, in page order).
    pub fn claim_read(
        &self,
        device: DeviceId,
        pages: impl IntoIterator<Item = u64>,
        resident: impl Fn(u64) -> bool,
    ) -> (Vec<u64>, Vec<u64>) {
        let mut st = self.state.lock();
        let stale: Vec<u64> = st.pending.remove(&device).unwrap_or_default();
        let stale_set: BTreeSet<u64> = stale.iter().copied().collect();
        let mut missing = Vec::new();
        for p in pages {
            if !resident(p) || stale_set.contains(&p) {
                st.holders.entry(p).or_default().insert(device);
                missing.push(p);
            }
        }
        (stale, missing)
    }

    /// Drains `device`'s pending stale pages (set by remote writes since
    /// the last drain). The caller drops them from its local residency.
    pub fn drain_pending(&self, device: DeviceId) -> Vec<u64> {
        self.state
            .lock()
            .pending
            .remove(&device)
            .unwrap_or_default()
    }

    /// Pages `device` currently holds in this range, ascending — one
    /// lock acquisition (the merge reconciliation's batch query).
    pub fn pages_held_by(&self, device: DeviceId) -> Vec<u64> {
        self.state
            .lock()
            .holders
            .iter()
            .filter(|(_, set)| set.contains(&device))
            .map(|(&p, _)| p)
            .collect()
    }

    /// Total duplicate entries across all pages (testing/reporting).
    pub fn holder_entries(&self) -> u64 {
        self.state
            .lock()
            .holders
            .values()
            .map(|s| s.len() as u64)
            .sum()
    }
}

/// The shared registration map: base address → per-range directory.
#[derive(Debug, Default)]
pub struct CoherenceDirectory {
    ranges: Mutex<BTreeMap<u64, Arc<RangeDirectory>>>,
}

impl CoherenceDirectory {
    /// Creates an empty directory.
    pub fn new() -> Self {
        CoherenceDirectory::default()
    }

    /// Registers (or fetches) the shared range at `base`. The first
    /// registration fixes `len` and `owner`; later calls — e.g. a second
    /// lane registering the same replicated tensor — return the existing
    /// entry, so every lane resolves against one range lock. Each call
    /// counts as one registration; pair it with
    /// [`CoherenceDirectory::release`].
    pub fn ensure(&self, base: u64, len: u64, owner: DeviceId) -> Arc<RangeDirectory> {
        let entry = Arc::clone(self.ranges.lock().entry(base).or_insert_with(|| {
            Arc::new(RangeDirectory {
                base,
                len,
                owner,
                registrants: AtomicUsize::new(0),
                state: Mutex::new(RangeState::default()),
            })
        }));
        entry.registrants.fetch_add(1, Ordering::AcqRel);
        entry
    }

    /// Releases one registration of the range at `base`; the range is
    /// dropped only when the last registrant releases it — a lane
    /// finishing early must not tear the directory down under siblings
    /// still sharing the range. Releasing more often than registered is
    /// harmless (the count saturates at zero; it never wraps).
    pub fn release(&self, base: u64) {
        let mut ranges = self.ranges.lock();
        if let Some(entry) = ranges.get(&base) {
            let prev = entry
                .registrants
                .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| n.checked_sub(1))
                .unwrap_or(0);
            if prev <= 1 {
                ranges.remove(&base);
            }
        }
    }

    /// The shared range containing `addr`, if any.
    pub fn range_containing(&self, addr: u64) -> Option<Arc<RangeDirectory>> {
        self.ranges
            .lock()
            .range(..=addr)
            .next_back()
            .filter(|(&base, r)| addr < base + r.len)
            .map(|(_, r)| Arc::clone(r))
    }

    /// Drops the shared range at `base` (its pages fall back to private
    /// semantics). Lanes still holding the `Arc` keep a valid — but
    /// orphaned — range directory.
    pub fn remove(&self, base: u64) -> Option<Arc<RangeDirectory>> {
        self.ranges.lock().remove(&base)
    }

    /// Number of registered shared ranges.
    pub fn range_count(&self) -> usize {
        self.ranges.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ensure_is_idempotent_across_registrants() {
        let dir = CoherenceDirectory::new();
        let a = dir.ensure(0x1000, 4096, DeviceId(0));
        let b = dir.ensure(0x1000, 9999, DeviceId(1)); // later args ignored
        assert!(Arc::ptr_eq(&a, &b), "both lanes resolve one range lock");
        assert_eq!(b.len(), 4096);
        assert_eq!(b.owner(), DeviceId(0), "first registration wins");
        assert_eq!(dir.range_count(), 1);
    }

    #[test]
    fn range_lookup_respects_bounds() {
        let dir = CoherenceDirectory::new();
        dir.ensure(0x1000, 0x100, DeviceId(0));
        assert!(dir.range_containing(0x1000).is_some());
        assert!(dir.range_containing(0x10ff).is_some());
        assert!(dir.range_containing(0x1100).is_none());
        assert!(dir.range_containing(0xfff).is_none());
        dir.remove(0x1000);
        assert!(dir.range_containing(0x1000).is_none());
    }

    #[test]
    fn write_removes_other_holders_and_queues_pending() {
        let dir = CoherenceDirectory::new();
        let r = dir.ensure(0, 1 << 20, DeviceId(0));
        r.add_holder(5, DeviceId(0));
        r.add_holder(5, DeviceId(1));
        r.add_holder(5, DeviceId(2));
        let victims = r.write(5, DeviceId(1));
        assert_eq!(victims, vec![DeviceId(0), DeviceId(2)], "ascending");
        assert_eq!(r.holders(5), vec![DeviceId(1)], "writer is sole holder");
        assert_eq!(r.drain_pending(DeviceId(0)), vec![5]);
        assert_eq!(r.drain_pending(DeviceId(2)), vec![5]);
        assert!(r.drain_pending(DeviceId(0)).is_empty(), "drained once");
        assert!(r.drain_pending(DeviceId(1)).is_empty(), "writer unaffected");
    }

    #[test]
    fn evicted_duplicates_leave_the_holder_set() {
        let dir = CoherenceDirectory::new();
        let r = dir.ensure(0, 1 << 20, DeviceId(0));
        r.add_holder(7, DeviceId(0));
        r.add_holder(7, DeviceId(1));
        assert_eq!(r.holder_entries(), 2);
        r.remove_holder(7, DeviceId(1));
        assert_eq!(r.holders(7), vec![DeviceId(0)]);
        r.remove_holder(7, DeviceId(0));
        assert_eq!(r.holder_entries(), 0, "empty sets are pruned");
    }

    #[test]
    fn claim_read_drains_pending_and_registers_holders_atomically() {
        let dir = CoherenceDirectory::new();
        let r = dir.ensure(0, 1 << 20, DeviceId(0));
        // Device 1 holds page 4; device 0 writes it → pending for 1.
        r.add_holder(4, DeviceId(1));
        r.write(4, DeviceId(0));
        // Device 1 re-reads pages 4..6: page 4 is locally present but
        // stale, pages 5 is absent, page 3 is validly resident.
        let locally_resident = [3u64, 4];
        let (stale, missing) = r.claim_read(DeviceId(1), 3..6, |p| locally_resident.contains(&p));
        assert_eq!(stale, vec![4], "the drained pending page");
        assert_eq!(missing, vec![4, 5], "stale counts as missing");
        // The claim registered device 1 before any data moved.
        assert_eq!(r.holders(4), vec![DeviceId(0), DeviceId(1)]);
        assert_eq!(r.holders(5), vec![DeviceId(1)]);
        assert_eq!(
            r.holders(3),
            Vec::<DeviceId>::new(),
            "valid hit: no new claim"
        );
        // A write landing after the claim now sees the reader.
        assert_eq!(r.write(5, DeviceId(0)), vec![DeviceId(1)]);
        assert_eq!(r.drain_pending(DeviceId(1)), vec![5]);
    }

    #[test]
    fn write_range_batches_under_one_lock_with_page_victims() {
        let dir = CoherenceDirectory::new();
        let r = dir.ensure(0, 1 << 20, DeviceId(0));
        r.add_holder(1, DeviceId(1));
        r.add_holder(2, DeviceId(1));
        r.add_holder(2, DeviceId(2));
        let victims = r.write_range(1..4, DeviceId(0));
        assert_eq!(
            victims,
            vec![(DeviceId(1), 1), (DeviceId(1), 2), (DeviceId(2), 2)]
        );
        for p in 1..4 {
            assert_eq!(r.holders(p), vec![DeviceId(0)]);
        }
        assert_eq!(r.drain_pending(DeviceId(1)), vec![1, 2]);
        assert_eq!(r.drain_pending(DeviceId(2)), vec![2]);
    }

    #[test]
    fn write_to_unheld_page_claims_it_without_victims() {
        let dir = CoherenceDirectory::new();
        let r = dir.ensure(0, 1 << 20, DeviceId(0));
        assert!(r.write(3, DeviceId(1)).is_empty());
        assert_eq!(r.holders(3), vec![DeviceId(1)]);
    }
}
