//! UVM cost-model configuration.

use serde::{Deserialize, Serialize};

/// Tunable constants of the UVM simulator.
///
/// Defaults are calibrated against public UVM measurements (Allen & Ge,
/// SC'21): demand paging achieves roughly half of link bandwidth because
/// fault handling serializes with transfer, while explicit prefetch
/// saturates the link and largely overlaps with compute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UvmConfig {
    /// Pages migrated per fault group (the driver batches neighbouring
    /// faults; 16 × 64 KiB = 1 MiB per group).
    pub fault_group_pages: u64,
    /// Fraction of link bandwidth achieved by demand-fault migration.
    pub demand_bw_efficiency: f64,
    /// Fraction of link bandwidth achieved by prefetch DMA.
    pub prefetch_bw_efficiency: f64,
    /// Base fraction of prefetch transfer time hidden behind compute
    /// (small transfers barely overlap: the call is issued right before
    /// the launch that needs the data).
    pub prefetch_overlap_base: f64,
    /// Extra overlap per doubling of the transfer size above 1 MiB —
    /// bulk DMA pipelines against compute much better than many small
    /// requests, which is why object-level prefetching edges out
    /// tensor-level when memory is plentiful (paper Fig. 11).
    pub prefetch_overlap_per_log2_mb: f64,
    /// Ceiling on the effective overlap.
    pub prefetch_overlap_max: f64,
    /// Fixed host/driver latency per prefetch call that moves pages, ns.
    pub prefetch_call_latency_ns: u64,
    /// Fraction of evicted bytes that are dirty and must be written back.
    pub writeback_fraction: f64,
    /// Logical-time bin width for hotness tracking (in access events).
    pub hotness_bin_events: u64,
}

impl Default for UvmConfig {
    fn default() -> Self {
        UvmConfig {
            fault_group_pages: 16,
            demand_bw_efficiency: 0.45,
            prefetch_bw_efficiency: 0.95,
            prefetch_overlap_base: 0.25,
            prefetch_overlap_per_log2_mb: 0.08,
            prefetch_overlap_max: 0.85,
            prefetch_call_latency_ns: 8_000,
            writeback_fraction: 0.5,
            hotness_bin_events: 64,
        }
    }
}

impl UvmConfig {
    /// Effective compute overlap for a prefetch of `bytes`.
    ///
    /// Under memory pressure callers should ignore this and charge the
    /// full transfer: a saturated link hides nothing.
    pub fn prefetch_overlap_for(&self, bytes: u64) -> f64 {
        let mb = (bytes as f64 / (1 << 20) as f64).max(1.0);
        (self.prefetch_overlap_base + self.prefetch_overlap_per_log2_mb * mb.log2())
            .clamp(self.prefetch_overlap_base, self.prefetch_overlap_max)
    }
}

impl UvmConfig {
    /// Validates invariants; call after hand-editing a config.
    ///
    /// # Panics
    ///
    /// Panics when any efficiency/overlap value leaves `(0, 1]` or the
    /// fault group is empty.
    pub fn validate(&self) {
        assert!(self.fault_group_pages > 0, "fault group must be non-empty");
        for (name, v) in [
            ("demand_bw_efficiency", self.demand_bw_efficiency),
            ("prefetch_bw_efficiency", self.prefetch_bw_efficiency),
        ] {
            assert!(v > 0.0 && v <= 1.0, "{name} must be in (0, 1], got {v}");
        }
        assert!(
            (0.0..=1.0).contains(&self.prefetch_overlap_base)
                && (0.0..=1.0).contains(&self.prefetch_overlap_max)
                && self.prefetch_overlap_base <= self.prefetch_overlap_max,
            "prefetch overlap bounds must be ordered within [0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&self.writeback_fraction),
            "writeback_fraction must be in [0, 1]"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        UvmConfig::default().validate();
    }

    #[test]
    fn default_prefetch_beats_demand() {
        let c = UvmConfig::default();
        assert!(c.prefetch_bw_efficiency > c.demand_bw_efficiency);
        assert!(c.prefetch_overlap_base > 0.0);
    }

    #[test]
    fn bulk_transfers_overlap_better() {
        let c = UvmConfig::default();
        let small = c.prefetch_overlap_for(1 << 20);
        let big = c.prefetch_overlap_for(64 << 20);
        assert!(big > small, "bulk DMA pipelines better: {big} vs {small}");
        assert!(c.prefetch_overlap_for(1 << 40) <= c.prefetch_overlap_max);
        assert!((small - c.prefetch_overlap_base).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "demand_bw_efficiency")]
    fn validate_rejects_zero_efficiency() {
        let c = UvmConfig {
            demand_bw_efficiency: 0.0,
            ..UvmConfig::default()
        };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "fault group")]
    fn validate_rejects_empty_group() {
        let c = UvmConfig {
            fault_group_pages: 0,
            ..UvmConfig::default()
        };
        c.validate();
    }
}
