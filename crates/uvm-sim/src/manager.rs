//! The UVM manager: demand faulting, prefetch, advice, eviction.

use crate::coherence::{CoherenceDirectory, RangeDirectory};
use crate::config::UvmConfig;
use crate::hotness::BlockHotness;
use crate::page::{page_of_addr, page_range, PAGE_SIZE};
use crate::state::DeviceState;
use crate::stats::UvmStats;
use accel_sim::{
    AccessKind, AccessOutcome, DeviceId, PeerTransfer, ResidencyAdvice, ResidencyModel,
};
use std::collections::BTreeMap;
use std::sync::Arc;

/// One shared-range registration as a lane manager caches it: the static
/// facts (extent, owner) read lock-free on every access, plus the `Arc`
/// of the range's directory, touched only when shared pages actually
/// move.
#[derive(Debug, Clone)]
struct SharedEntry {
    len: u64,
    owner: DeviceId,
    dir: Arc<RangeDirectory>,
}

/// One slice of an access that straddles private and shared territory
/// (see [`UvmManager::segments`]).
enum Segment {
    /// Resolve privately (lock-free demand path).
    Private { base: u64, len: u64 },
    /// Resolve through the range's coherence directory.
    Shared {
        dir: Arc<RangeDirectory>,
        owner: DeviceId,
        base: u64,
        len: u64,
    },
}

/// The unified-virtual-memory manager.
///
/// Implements [`ResidencyModel`], so an [`accel_sim::Engine`] with a
/// `UvmManager` attached charges kernels for page faults, migrations and
/// evictions on every access to a registered managed range.
///
/// # Shared managed ranges
///
/// A range marked shared ([`UvmManager::register_shared`]) is visible to
/// every lane of a parallel run under home-backed coherence semantics:
/// the registration names an **owner** device whose memory backs the
/// range.
///
/// * The owner demand-faults the range from the host like any private
///   range.
/// * A **read** by any other device **read-duplicates** the touched
///   pages from the owner over the peer link: a [`PeerTransfer`] plus a
///   local clean duplicate, counted in [`UvmStats::peer_pages_in`]. The
///   classification is static (owner vs. not), so for **read-only**
///   shared usage a lane's counters depend only on its own access
///   stream — the determinism contract that keeps concurrent runs
///   byte-identical to the sequential reference (what the `uvm_p2p`
///   differential suite pins).
/// * A **write** to a shared page **invalidates** every other device's
///   duplicate through the per-range coherence directory
///   ([`crate::coherence`]): the directory's holder set is updated under
///   the range lock at write time, so no stale duplicate is ever served.
///   An unforked manager owns all device states and drops the victims'
///   pages eagerly; a forked lane cannot reach its siblings' residency,
///   so each victim drains its pending-invalidation list (and drops the
///   stale pages) at its next shared-range access. Invalidation counts
///   and refetches are inherently cross-lane: workloads that *write*
///   shared ranges while siblings touch them concurrently observe
///   schedule-dependent counters (conservation still holds — the
///   property suite pins it) and sit outside the byte-identity
///   contract; drive them through the sequential reference schedule
///   when exact reproducibility is required.
///
/// Private ranges never touch the directory — their residency hot path
/// stays lock-free.
#[derive(Debug)]
pub struct UvmManager {
    config: UvmConfig,
    devices: Vec<DeviceState>,
    /// Registered managed allocations: base → length.
    allocs: BTreeMap<u64, u64>,
    /// Shared-range cache: base → (len, owner, range directory). Read
    /// lock-free on the access path; empty unless sharing is in use.
    shared: BTreeMap<u64, SharedEntry>,
    /// Rendezvous for shared registrations: forks clone the `Arc`, so a
    /// range registered by one lane at run time resolves to the same
    /// per-range lock in every lane.
    directory: Arc<CoherenceDirectory>,
    /// Peer coherence operations since the last drain (read duplications
    /// and write invalidations, in order).
    peer_log: Vec<PeerTransfer>,
    /// (src, dst) → bytes read-duplicated over the peer link.
    peer_bytes: BTreeMap<(DeviceId, DeviceId), u64>,
    /// Global LRU sequence counter.
    seq: u64,
    stats: UvmStats,
    hotness: BlockHotness,
    /// The device a forked lane manager serves (`None` for the session's
    /// shared manager).
    home: Option<DeviceId>,
}

impl UvmManager {
    /// Creates a manager with no devices registered.
    ///
    /// # Panics
    ///
    /// Panics when `config` violates its invariants.
    pub fn new(config: UvmConfig) -> Self {
        config.validate();
        let bin = config.hotness_bin_events;
        UvmManager {
            config,
            devices: Vec::new(),
            allocs: BTreeMap::new(),
            shared: BTreeMap::new(),
            directory: Arc::new(CoherenceDirectory::new()),
            peer_log: Vec::new(),
            peer_bytes: BTreeMap::new(),
            seq: 0,
            stats: UvmStats::default(),
            hotness: BlockHotness::new(bin),
            home: None,
        }
    }

    /// Registers a device with a managed-memory `budget` (bytes), host
    /// link bandwidth (GB/s), and fault-group latency (ns). Devices are
    /// indexed in registration order, matching engine device ids. The
    /// peer link defaults to the host link bandwidth; use
    /// [`UvmManager::add_device_p2p`] when the devices have a faster
    /// direct interconnect (NVLink/xGMI).
    pub fn add_device(&mut self, budget: u64, link_bandwidth_gbps: f64, fault_latency_ns: u64) {
        self.add_device_p2p(
            budget,
            link_bandwidth_gbps,
            link_bandwidth_gbps,
            fault_latency_ns,
        );
    }

    /// Like [`UvmManager::add_device`] with an explicit peer-link
    /// bandwidth (GB/s) used to price shared-range read duplications.
    pub fn add_device_p2p(
        &mut self,
        budget: u64,
        link_bandwidth_gbps: f64,
        p2p_bandwidth_gbps: f64,
        fault_latency_ns: u64,
    ) {
        let mut st = DeviceState::new(budget, link_bandwidth_gbps, fault_latency_ns);
        st.p2p_bandwidth_gbps = p2p_bandwidth_gbps;
        self.devices.push(st);
    }

    /// Shrinks or grows a device's managed budget (oversubscription knob).
    ///
    /// **Snapshot semantics with forked lanes**: [`UvmManager::fork`]
    /// copies the device table, budgets included, at fork time. Setting a
    /// budget on the parent afterwards does *not* reach managers already
    /// forked — a sweep that tightens `budget_bytes` between load waves
    /// must do so on the managers that will actually run the next wave
    /// (in practice: reconfigure before the parallel region opens, so the
    /// next round of forks inherits the new budget, or build a fresh
    /// session per budget point the way the oversubscription examples
    /// do).
    ///
    /// # Panics
    ///
    /// Panics when the device was never added.
    pub fn set_budget(&mut self, device: DeviceId, budget: u64) {
        self.devices[device.index()].budget = budget;
    }

    /// The managed budget currently configured for `device` (bytes).
    ///
    /// # Panics
    ///
    /// Panics when the device was never added.
    pub fn budget(&self, device: DeviceId) -> u64 {
        self.devices[device.index()].budget
    }

    /// Number of devices registered.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// A lane-local manager for `device`, mirroring `Tool::fork` in the
    /// sharded event hub: same config, same device table (budgets, link
    /// bandwidths, fault latencies), same registered managed allocations —
    /// but fresh residency, statistics and hotness, so a parallel lane
    /// driving `device` starts cold and accumulates its own state with no
    /// shared lock. Lane state folds back via [`UvmManager::merge`] at
    /// session end.
    ///
    /// The device table is a **snapshot**: a later
    /// [`UvmManager::set_budget`] on the parent never reaches a manager
    /// forked before the call (and a fork's `set_budget` never reaches
    /// the parent). Budget changes must land before the forks that
    /// should observe them are taken.
    ///
    /// `device` names the lane's home device; it is recorded for merge
    /// ordering and asserted to exist so a mis-pinned lane fails fast.
    ///
    /// # Panics
    ///
    /// Panics when `device` was never added.
    pub fn fork(&self, device: DeviceId) -> UvmManager {
        assert!(
            device.index() < self.devices.len(),
            "fork target {device:?} is not a registered UVM device"
        );
        UvmManager {
            config: self.config.clone(),
            devices: self
                .devices
                .iter()
                .map(|d| {
                    let mut st =
                        DeviceState::new(d.budget, d.link_bandwidth_gbps, d.fault_latency_ns);
                    st.p2p_bandwidth_gbps = d.p2p_bandwidth_gbps;
                    st
                })
                .collect(),
            allocs: self.allocs.clone(),
            // Shared ranges and the coherence directory are the one thing
            // lanes genuinely share: the cached entries clone their Arcs
            // and the directory handle is the rendezvous for ranges a
            // lane registers *after* the fork. Each inherited entry
            // counts as a registration, so a lane tearing its shared
            // state down cannot drop the range under its siblings. (A
            // lane dropped without unregistering leaks its count; the
            // allocation-free force-removal is the backstop.)
            shared: {
                let shared = self.shared.clone();
                for e in shared.values() {
                    e.dir.retain();
                }
                shared
            },
            directory: Arc::clone(&self.directory),
            peer_log: Vec::new(),
            peer_bytes: BTreeMap::new(),
            seq: 0,
            stats: UvmStats::default(),
            // Lane hotness records an event log so the merge can replay
            // the lane's stream exactly, bin boundaries or not.
            hotness: self.hotness.fork_recording(),
            home: Some(device),
        }
    }

    /// The home device this manager was forked for, if any.
    pub fn home_device(&self) -> Option<DeviceId> {
        self.home
    }

    /// Folds a lane manager's accumulated state into this one — the merge
    /// stage of the per-lane UVM shards, invoked at session end in
    /// ascending device-id order (each lane's stream is internally
    /// ordered, so the fold is deterministic). Statistics sum field-wise;
    /// hotness concatenates the lane's logical time axis after this one
    /// ([`BlockHotness::append_from`]), reproducing a sequential
    /// single-manager reference run that processed the lanes
    /// device-at-a-time. Residency state is *not* imported: a lane's
    /// pages belong to its private replica of the managed space and are
    /// dropped with it.
    pub fn merge(&mut self, other: &UvmManager) {
        self.stats.merge_from(&other.stats);
        self.hotness.append_from(&other.hotness);
        for (&pair, &bytes) in &other.peer_bytes {
            *self.peer_bytes.entry(pair).or_insert(0) += bytes;
        }
        // Shared-range registrations a lane made after the fork travel
        // back with the merge, so the parent keeps routing the range
        // through the coherence path — the directory entry is shared
        // already; only the lane-local cache needs importing (counted as
        // a registration of its own). Copies this manager holds from
        // *before* it learned the range was shared are untracked in the
        // directory and may predate shared writes — drop them unless the
        // directory lists them; they refault under coherence.
        let imported: Vec<(u64, SharedEntry)> = other
            .shared
            .iter()
            .filter(|(rbase, _)| !self.shared.contains_key(rbase))
            .map(|(&rbase, e)| (rbase, e.clone()))
            .collect();
        for (rbase, e) in imported {
            let range = page_range(rbase, e.len);
            for (i, st) in self.devices.iter_mut().enumerate() {
                let device = DeviceId(i as u32);
                for p in range.iter() {
                    if st.is_resident(p) && !e.dir.holders(p).contains(&device) {
                        st.remove(p);
                    }
                }
            }
            e.dir.retain();
            self.shared.insert(rbase, e);
        }
        // Any coherence operations a lane performed after its last
        // launch drain (normally none) surface through the parent.
        self.peer_log.extend(other.peer_log.iter().copied());
    }

    /// Aggregate statistics so far.
    pub fn stats(&self) -> UvmStats {
        self.stats
    }

    /// Resets statistics, the peer-traffic matrix and the undrained peer
    /// log (budgets and residency stay).
    pub fn reset_stats(&mut self) {
        self.stats = UvmStats::default();
        self.peer_bytes.clear();
        self.peer_log.clear();
    }

    /// Bytes read-duplicated over the peer link, per (src, dst) device
    /// pair, ascending — the session-level peer-traffic matrix behind
    /// `MergedReport::uvm`.
    pub fn peer_matrix(&self) -> Vec<((DeviceId, DeviceId), u64)> {
        self.peer_bytes.iter().map(|(&p, &b)| (p, b)).collect()
    }

    /// The shared-range coherence directory (forks share it).
    pub fn directory(&self) -> &Arc<CoherenceDirectory> {
        &self.directory
    }

    /// The owner of the shared range containing `addr`, if any.
    pub fn shared_owner(&self, addr: u64) -> Option<DeviceId> {
        self.shared_entry_for(addr).map(|(_, _, e)| e.owner)
    }

    /// True when `addr`'s page is resident on `device` (tests and the
    /// conformance suites; private *and* shared pages).
    pub fn page_resident(&self, device: DeviceId, addr: u64) -> bool {
        self.devices
            .get(device.index())
            .is_some_and(|st| st.is_resident(page_of_addr(addr)))
    }

    /// Resets the hotness accumulator (same bin width, fresh counts and
    /// clock). Paired with [`UvmManager::reset_stats`] by the session's
    /// analysis reset, so statistics and hotness always describe the
    /// same analysis window.
    pub fn reset_hotness(&mut self) {
        self.hotness = self.hotness.fork();
    }

    /// The hotness accumulator (Fig. 13 data source).
    pub fn hotness(&self) -> &BlockHotness {
        &self.hotness
    }

    /// Bytes resident on `device`.
    pub fn resident_bytes(&self, device: DeviceId) -> u64 {
        self.devices
            .get(device.index())
            .map_or(0, DeviceState::resident_bytes)
    }

    /// Clamps `[base, len)` to the registered allocation containing `base`.
    fn clamp_to_alloc(&self, base: u64, len: u64) -> Option<(u64, u64)> {
        let (&abase, &alen) = self.allocs.range(..=base).next_back()?;
        if base >= abase + alen {
            return None;
        }
        let end = (base + len).min(abase + alen);
        Some((base, end - base))
    }

    fn migration_ns(&self, st: &DeviceState, bytes: u64, efficiency: f64) -> u64 {
        (bytes as f64 / (st.link_bandwidth_gbps * efficiency)) as u64
    }

    fn peer_migration_ns(&self, st: &DeviceState, bytes: u64, efficiency: f64) -> u64 {
        (bytes as f64 / (st.p2p_bandwidth_gbps * efficiency)) as u64
    }

    /// The cached shared-range entry containing `addr`, if any.
    fn shared_entry_for(&self, addr: u64) -> Option<(u64, u64, &SharedEntry)> {
        self.shared
            .range(..=addr)
            .next_back()
            .filter(|&(&base, e)| addr < base + e.len)
            .map(|(&base, e)| (base, e.len, e))
    }

    /// Splits `[base, base+len)` into alternating private/shared
    /// segments — the one place the straddling-access semantics live,
    /// shared by `on_kernel_access` and `prefetch`. Only called when the
    /// shared map is non-empty.
    fn segments(&self, base: u64, len: u64) -> Vec<Segment> {
        let end = base + len;
        let mut out = Vec::new();
        let mut cur = base;
        while cur < end {
            match self.shared_entry_for(cur) {
                Some((sbase, slen, e)) => {
                    let seg_end = (sbase + slen).min(end);
                    out.push(Segment::Shared {
                        dir: Arc::clone(&e.dir),
                        owner: e.owner,
                        base: cur,
                        len: seg_end - cur,
                    });
                    cur = seg_end;
                }
                None => {
                    // Private up to the next shared range (or the end).
                    let seg_end = self.shared.range(cur..end).next().map_or(end, |(&b, _)| b);
                    out.push(Segment::Private {
                        base: cur,
                        len: seg_end - cur,
                    });
                    cur = seg_end;
                }
            }
        }
        out
    }

    /// Deregisters evicted duplicate pages from their range directories,
    /// so the directory never lists a holder whose copy is gone. Only
    /// called when shared ranges exist at all.
    fn deregister_evicted(&mut self, device: DeviceId, victims: &[u64]) {
        for &page in victims {
            if let Some((_, _, e)) = self.shared_entry_for(page * PAGE_SIZE) {
                e.dir.remove_holder(page, device);
            }
        }
    }

    /// Migrates the missing pages of `[base, len)` onto `device`.
    ///
    /// Returns `(pages_migrated, evict_result, groups)`.
    fn fault_in(
        &mut self,
        device: DeviceId,
        base: u64,
        len: u64,
    ) -> (u64, crate::state::EvictResult, u64) {
        let range = page_range(base, len);
        let mut seq = self.seq;
        let missing: Vec<u64> = {
            let st = &self.devices[device.index()];
            range.iter().filter(|p| !st.is_resident(*p)).collect()
        };
        let wb = self.config.writeback_fraction;
        // Private evictions can evict *shared* duplicates (one budget per
        // device); track victim identities for directory hygiene — but
        // only when sharing is in use, so the private-only hot path stays
        // allocation- and lock-free.
        let track_victims = !self.shared.is_empty();
        let mut victims: Vec<u64> = Vec::new();
        let st = &mut self.devices[device.index()];
        // Refresh already-resident pages first (each with a distinct LRU
        // stamp — the LRU index is keyed by stamp), then fault the missing
        // pages in one at a time so that a range larger than the budget
        // evicts its own earliest pages — the intra-kernel thrashing that
        // makes oversubscribed object-level prefetching pathological in the
        // paper's Fig. 12.
        for p in range.iter() {
            seq += 1;
            st.touch(p, seq);
        }
        let mut evict = crate::state::EvictResult::default();
        for p in &missing {
            let e = st.make_room_logged(
                PAGE_SIZE,
                wb,
                if track_victims {
                    Some(&mut victims)
                } else {
                    None
                },
            );
            evict.pages += e.pages;
            evict.writeback_bytes += e.writeback_bytes;
            seq += 1;
            st.insert(*p, seq);
        }
        self.seq = seq + 1;
        if !victims.is_empty() {
            self.deregister_evicted(device, &victims);
        }
        let groups = (missing.len() as u64).div_ceil(self.config.fault_group_pages.max(1));
        (missing.len() as u64, evict, groups)
    }

    /// The private-range demand path (everything `on_kernel_access` did
    /// before shared ranges existed), factored out so a straddling access
    /// can resolve its private tail here.
    fn private_access(&mut self, device: DeviceId, base: u64, len: u64) -> AccessOutcome {
        let (pages, evict, groups) = self.fault_in(device, base, len);
        if pages == 0 {
            return AccessOutcome::HIT;
        }
        let st = &self.devices[device.index()];
        let migrated = pages * PAGE_SIZE;
        let mut stall = groups * st.fault_latency_ns
            + self.migration_ns(st, migrated, self.config.demand_bw_efficiency);
        let evict_ns = self.migration_ns(st, evict.writeback_bytes, 1.0);
        stall += evict_ns;

        self.stats.fault_groups += groups;
        self.stats.demand_pages_in += pages;
        self.stats.pages_evicted += evict.pages;
        self.stats.fault_stall_ns += stall - evict_ns;
        self.stats.evict_stall_ns += evict_ns;

        AccessOutcome {
            extra_device_ns: stall,
            faults: groups,
            migrated_in_bytes: migrated,
            evicted_bytes: evict.pages * PAGE_SIZE,
            peer_in_bytes: 0,
        }
    }

    /// The private-range prefetch core (the pre-shared-range `prefetch`
    /// body), factored out so a prefetch straddling shared territory can
    /// resolve its private segments here.
    fn private_prefetch(&mut self, device: DeviceId, base: u64, len: u64) -> u64 {
        let (pages, evict, _groups) = self.fault_in(device, base, len);
        if pages == 0 {
            self.stats.prefetch_noops += 1;
            return 0;
        }
        let st = &self.devices[device.index()];
        let migrated = pages * PAGE_SIZE;
        let xfer = self.migration_ns(st, migrated, self.config.prefetch_bw_efficiency);
        // With free memory, prefetch DMA pipelines against compute (bulk
        // transfers overlap better). Under memory pressure — any eviction
        // in this call — the link is saturated and nothing is hidden; the
        // write-back serializes on top. This asymmetry is what turns
        // over-fetching object-level plans pathological at 3x
        // oversubscription (paper Fig. 12) while both plans win without
        // oversubscription (Fig. 11).
        let stall = if evict.pages > 0 {
            xfer + self.migration_ns(st, evict.writeback_bytes, 1.0)
        } else {
            let overlap = self.config.prefetch_overlap_for(migrated);
            ((xfer as f64) * (1.0 - overlap)) as u64
        } + self.config.prefetch_call_latency_ns;

        self.stats.prefetch_pages_in += pages;
        self.stats.pages_evicted += evict.pages;
        self.stats.prefetch_stall_ns += stall;
        stall
    }

    /// The shared-range coherence path: home-backed read duplication plus
    /// write invalidation. `dir`/`owner` come from the caller's cache
    /// lookup; `[base, len)` lies entirely inside the shared range.
    fn shared_access(
        &mut self,
        device: DeviceId,
        dir: Arc<RangeDirectory>,
        owner: DeviceId,
        base: u64,
        len: u64,
        kind: AccessKind,
    ) -> AccessOutcome {
        // 1. One critical section drains this lane's pending
        //    invalidations and claims holder entries for the pages about
        //    to be fetched — registering the claim *before* the data
        //    moves, so a write racing in from another lane either
        //    happened before the claim (its invalidation is in `stale`)
        //    or sees the claim and queues a pending entry this lane
        //    drains on its next visit. A page drained as stale counts as
        //    missing even while locally present: it must refetch.
        let range = page_range(base, len);
        let is_owner = device == owner;
        let wb = self.config.writeback_fraction;
        let (stale, missing) = {
            let st = &self.devices[device.index()];
            dir.claim_read(device, range.iter(), |p| st.is_resident(p))
        };
        if !stale.is_empty() {
            let st = &mut self.devices[device.index()];
            for p in stale {
                st.remove(p);
            }
        }

        // 2. Fault the missing pages in: from the host on the owner, as
        //    clean peer duplicates everywhere else. Classification is
        //    static (owner vs. not), so under read-only sharing a lane's
        //    counters depend only on its own stream — the determinism
        //    contract (writes make invalidation effects cross-lane).
        let mut seq = self.seq;
        let mut victims: Vec<u64> = Vec::new();
        let mut evict = crate::state::EvictResult::default();
        {
            let st = &mut self.devices[device.index()];
            for p in range.iter() {
                seq += 1;
                st.touch(p, seq);
            }
            for p in &missing {
                let e = st.make_room_logged(PAGE_SIZE, wb, Some(&mut victims));
                evict.pages += e.pages;
                evict.writeback_bytes += e.writeback_bytes;
                seq += 1;
                st.insert(*p, seq);
                if !is_owner {
                    // Read duplicates are clean copies: evicting one
                    // needs no write-back (a write below dirties it).
                    st.set_read_mostly(*p, true);
                }
            }
        }
        self.seq = seq + 1;

        let pages = missing.len() as u64;
        let groups = pages.div_ceil(self.config.fault_group_pages.max(1));
        let moved = pages * PAGE_SIZE;
        let evict_ns = {
            let st = &self.devices[device.index()];
            self.migration_ns(st, evict.writeback_bytes, 1.0)
        };
        let mut out = AccessOutcome {
            extra_device_ns: evict_ns,
            faults: 0,
            migrated_in_bytes: 0,
            evicted_bytes: evict.pages * PAGE_SIZE,
            peer_in_bytes: 0,
        };
        self.stats.pages_evicted += evict.pages;
        self.stats.evict_stall_ns += evict_ns;
        // Holder claims were registered up front; an access larger than
        // the budget evicts its own earliest pages mid-loop, and those
        // must end up out of the holder set again.
        if !victims.is_empty() {
            self.deregister_evicted(device, &victims);
        }
        if pages > 0 {
            let st = &self.devices[device.index()];
            if is_owner {
                let stall = groups * st.fault_latency_ns
                    + self.migration_ns(st, moved, self.config.demand_bw_efficiency);
                self.stats.fault_groups += groups;
                self.stats.demand_pages_in += pages;
                self.stats.fault_stall_ns += stall;
                out.extra_device_ns += stall;
                out.faults = groups;
                out.migrated_in_bytes = moved;
            } else {
                let stall = groups * st.fault_latency_ns
                    + self.peer_migration_ns(st, moved, self.config.demand_bw_efficiency);
                self.stats.peer_pages_in += pages;
                self.stats.peer_stall_ns += stall;
                out.extra_device_ns += stall;
                out.peer_in_bytes = moved;
                *self.peer_bytes.entry((owner, device)).or_insert(0) += moved;
                self.peer_log.push(PeerTransfer {
                    src: owner,
                    dst: device,
                    duplicated_pages: pages,
                    invalidated_pages: 0,
                    bytes: moved,
                    stall_ns: stall,
                });
            }
        }

        // 3. Writes claim exclusivity: every other holder of each written
        //    page is invalidated through the directory. The invalidation
        //    itself is metadata (its latency shows up as the victims'
        //    later re-duplication faults).
        if kind != AccessKind::Load {
            let mut victim_pages: BTreeMap<DeviceId, u64> = BTreeMap::new();
            for &(v, p) in &dir.write_range(range.iter(), device) {
                *victim_pages.entry(v).or_insert(0) += 1;
                if self.home.is_none() {
                    // Unforked manager: every device state is local, so
                    // the stale duplicate drops eagerly.
                    self.devices[v.index()].remove(p);
                }
            }
            // `write_range` claims every written page for the writer;
            // where the writer's own copy was evicted mid-access (range
            // larger than the budget), the claim must not outlive it.
            // Everything still resident is now dirty.
            let mut unclaim: Vec<u64> = Vec::new();
            {
                let st = &mut self.devices[device.index()];
                for p in range.iter() {
                    if st.is_resident(p) {
                        st.set_read_mostly(p, false);
                    } else {
                        unclaim.push(p);
                    }
                }
            }
            for p in unclaim {
                dir.remove_holder(p, device);
            }
            if self.home.is_none() {
                for &v in victim_pages.keys() {
                    // Consume the pending entries the directory queued —
                    // the pages are already gone.
                    let _ = dir.drain_pending(v);
                }
            }
            for (&v, &count) in &victim_pages {
                self.stats.duplicates_invalidated += count;
                self.peer_log.push(PeerTransfer {
                    src: device,
                    dst: v,
                    duplicated_pages: 0,
                    invalidated_pages: count,
                    bytes: 0,
                    stall_ns: 0,
                });
            }
        }
        out
    }
}

impl ResidencyModel for UvmManager {
    fn is_managed(&self, addr: u64) -> bool {
        self.allocs
            .range(..=addr)
            .next_back()
            .is_some_and(|(&base, &len)| addr < base + len)
    }

    fn on_kernel_access(
        &mut self,
        device: DeviceId,
        base: u64,
        len: u64,
        bytes: u64,
        kind: AccessKind,
    ) -> AccessOutcome {
        if device.index() >= self.devices.len() {
            return AccessOutcome::HIT;
        }
        let Some((base, len)) = self.clamp_to_alloc(base, len) else {
            return AccessOutcome::HIT;
        };
        let records = bytes / 128; // warp-level records, for hotness only
        self.hotness.record(base, len, records.max(1));

        // Shared ranges go through the coherence path; everything else —
        // including the shared map being empty, the common case — stays
        // on the lock-free private path. An access may straddle any mix
        // of private and shared territory (start before a shared range,
        // run past its end, span several); each segment resolves under
        // its own semantics so shared pages can never slip through the
        // private path and bypass the directory.
        if self.shared.is_empty() {
            return self.private_access(device, base, len);
        }
        let mut out = AccessOutcome::HIT;
        for seg in self.segments(base, len) {
            out = out.merge(match seg {
                Segment::Private { base, len } => self.private_access(device, base, len),
                Segment::Shared {
                    dir,
                    owner,
                    base,
                    len,
                } => self.shared_access(device, dir, owner, base, len, kind),
            });
        }
        out
    }

    fn register(&mut self, base: u64, len: u64) {
        if len > 0 {
            self.allocs.insert(base, len);
        }
    }

    fn unregister(&mut self, base: u64) {
        if let Some(len) = self.allocs.remove(&base) {
            let range = page_range(base, len);
            for st in &mut self.devices {
                for p in range.iter() {
                    st.remove(p);
                }
            }
            // Shared subranges die with the allocation that held them —
            // force-removed from the directory regardless of registrant
            // count, because the backing address range is gone and may
            // be reused.
            let inside: Vec<u64> = self
                .shared
                .range(base..base + len)
                .map(|(&b, _)| b)
                .collect();
            for b in inside {
                self.shared.remove(&b);
                self.directory.remove(b);
            }
        }
    }

    fn register_shared(&mut self, base: u64, len: u64, owner: DeviceId) {
        if len == 0 {
            return;
        }
        // The directory is the rendezvous: whichever lane registers first
        // fixes the extent and the owner, and everyone else's cache entry
        // resolves to the same per-range lock. Registrations are counted,
        // so one lane unregistering does not tear the range down under
        // its siblings.
        let dir = self.directory.ensure(base, len, owner);
        // Pages this manager already holds from pre-registration private
        // accesses become tracked duplicates, so a later write can
        // invalidate them — otherwise the old copies would survive as
        // served-stale data the directory never knew about.
        let range = page_range(dir.base(), dir.len());
        for (i, st) in self.devices.iter().enumerate() {
            let resident: Vec<u64> = range.iter().filter(|&p| st.is_resident(p)).collect();
            if !resident.is_empty() {
                dir.add_holders(resident, DeviceId(i as u32));
            }
        }
        self.shared.insert(
            dir.base(),
            SharedEntry {
                len: dir.len(),
                owner: dir.owner(),
                dir,
            },
        );
    }

    fn unregister_shared(&mut self, base: u64) {
        // Drop the local cache entry; the directory entry survives until
        // the last registrant releases it (a lane finishing early must
        // not split coherence for the lanes still using the range). The
        // cache entry *is* this manager's registration, so only its
        // actual removal releases a count — calling twice cannot release
        // a sibling's registration.
        if self.shared.remove(&base).is_some() {
            self.directory.release(base);
        }
    }

    fn take_peer_transfers(&mut self) -> Vec<PeerTransfer> {
        std::mem::take(&mut self.peer_log)
    }

    fn prefetch(&mut self, device: DeviceId, base: u64, len: u64) -> u64 {
        if device.index() >= self.devices.len() {
            return 0;
        }
        let Some((base, len)) = self.clamp_to_alloc(base, len) else {
            return 0;
        };
        if self.shared.is_empty() {
            return self.private_prefetch(device, base, len);
        }
        // Prefetching a shared segment behaves like a read access: the
        // owner pulls from the host, everyone else read-duplicates —
        // counted under the demand/peer counters, and the directory
        // learns the new holders either way. Private segments (before,
        // between or after shared ranges) keep the prefetch cost model.
        let mut stall = 0u64;
        for seg in self.segments(base, len) {
            stall += match seg {
                Segment::Private { base, len } => self.private_prefetch(device, base, len),
                Segment::Shared {
                    dir,
                    owner,
                    base,
                    len,
                } => {
                    self.shared_access(device, dir, owner, base, len, AccessKind::Load)
                        .extra_device_ns
                }
            };
        }
        stall
    }

    fn advise(&mut self, device: DeviceId, base: u64, len: u64, advice: ResidencyAdvice) {
        if device.index() >= self.devices.len() {
            return;
        }
        let Some((base, len)) = self.clamp_to_alloc(base, len) else {
            return;
        };
        let range = page_range(base, len);
        match advice {
            ResidencyAdvice::PinOnDevice => {
                // Pinning implies making the range resident first.
                let _ = self.fault_in(device, base, len);
                {
                    let st = &mut self.devices[device.index()];
                    for p in range.iter() {
                        st.set_pinned(p, true);
                    }
                }
                // Pinned shared pages are duplicates like any other: the
                // directory must list them or a write cannot see them.
                if !self.shared.is_empty() {
                    for p in range.iter() {
                        if let Some((_, _, e)) = self.shared_entry_for(p * PAGE_SIZE) {
                            e.dir.add_holder(p, device);
                        }
                    }
                }
            }
            ResidencyAdvice::PreferHost => {
                let dropped: Vec<u64> = {
                    let st = &mut self.devices[device.index()];
                    range
                        .iter()
                        .filter(|&p| {
                            st.set_pinned(p, false);
                            let was = st.is_resident(p);
                            st.remove(p);
                            was
                        })
                        .collect()
                };
                // Dropped shared duplicates leave the holder set, so the
                // directory census keeps matching actual residency.
                if !self.shared.is_empty() {
                    self.deregister_evicted(device, &dropped);
                }
            }
            ResidencyAdvice::ReadMostly => {
                let st = &mut self.devices[device.index()];
                for p in range.iter() {
                    st.set_read_mostly(p, true);
                }
            }
            ResidencyAdvice::Unset => {
                let st = &mut self.devices[device.index()];
                for p in range.iter() {
                    st.set_pinned(p, false);
                    st.set_read_mostly(p, false);
                }
            }
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any + Send> {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: u64 = 0x4000_0000_0000;
    const MB: u64 = 1 << 20;

    fn manager(budget_mb: u64) -> UvmManager {
        let mut m = UvmManager::new(UvmConfig::default());
        m.add_device(budget_mb * MB, 24.0, 25_000);
        m
    }

    #[test]
    fn cold_access_faults_warm_access_hits() {
        let mut m = manager(512);
        m.register(BASE, 64 * MB);
        let cold = m.on_kernel_access(DeviceId(0), BASE, 64 * MB, 64 * MB, AccessKind::Load);
        assert!(cold.faults > 0);
        assert_eq!(cold.migrated_in_bytes, 64 * MB);
        let warm = m.on_kernel_access(DeviceId(0), BASE, 64 * MB, 64 * MB, AccessKind::Load);
        assert_eq!(warm, AccessOutcome::HIT);
    }

    /// Pins the snapshot semantics [`UvmManager::fork`] documents: the
    /// fork copies the budget table, so `set_budget` on the parent after
    /// the fork never reaches the lane manager (and vice versa). A sweep
    /// that tightens budgets between waves must reconfigure *before*
    /// forking the lanes that should feel the squeeze.
    #[test]
    fn fork_snapshots_budgets_and_later_set_budget_does_not_propagate() {
        let mut parent = manager(512);
        let fork = parent.fork(DeviceId(0));
        assert_eq!(fork.budget(DeviceId(0)), 512 * MB, "fork inherits");

        parent.set_budget(DeviceId(0), 32 * MB);
        assert_eq!(parent.budget(DeviceId(0)), 32 * MB);
        assert_eq!(
            fork.budget(DeviceId(0)),
            512 * MB,
            "parent set_budget must not reach an existing fork"
        );

        let mut late = parent.fork(DeviceId(0));
        assert_eq!(late.budget(DeviceId(0)), 32 * MB, "new forks see it");
        late.set_budget(DeviceId(0), MB);
        assert_eq!(
            parent.budget(DeviceId(0)),
            32 * MB,
            "a fork's set_budget must not reach the parent"
        );
    }

    #[test]
    fn unregistered_ranges_are_free() {
        let mut m = manager(512);
        let out = m.on_kernel_access(DeviceId(0), BASE, MB, MB, AccessKind::Load);
        assert_eq!(out, AccessOutcome::HIT);
        assert!(!m.is_managed(BASE));
    }

    #[test]
    fn oversubscription_causes_eviction_and_thrash() {
        let mut m = manager(32); // 32 MiB budget
        m.register(BASE, 128 * MB); // 4x oversubscribed
        let first = m.on_kernel_access(DeviceId(0), BASE, 64 * MB, 64 * MB, AccessKind::Load);
        assert!(first.evicted_bytes > 0, "64 MiB through 32 MiB must evict");
        // Re-touching the start now misses again: thrashing.
        let again = m.on_kernel_access(DeviceId(0), BASE, MB, MB, AccessKind::Load);
        assert!(again.faults > 0, "evicted pages fault again");
    }

    #[test]
    fn prefetch_is_cheaper_than_demand_fault() {
        let mut a = manager(512);
        a.register(BASE, 64 * MB);
        let demand = a.on_kernel_access(DeviceId(0), BASE, 64 * MB, 64 * MB, AccessKind::Load);

        let mut b = manager(512);
        b.register(BASE, 64 * MB);
        let stall = b.prefetch(DeviceId(0), BASE, 64 * MB);
        let after = b.on_kernel_access(DeviceId(0), BASE, 64 * MB, 64 * MB, AccessKind::Load);
        assert_eq!(after, AccessOutcome::HIT, "prefetched pages are resident");
        assert!(
            stall * 3 < demand.extra_device_ns,
            "prefetch stall {stall} should be well under demand stall {}",
            demand.extra_device_ns
        );
    }

    #[test]
    fn prefetch_of_resident_range_is_noop() {
        let mut m = manager(512);
        m.register(BASE, MB);
        m.prefetch(DeviceId(0), BASE, MB);
        let stall = m.prefetch(DeviceId(0), BASE, MB);
        assert_eq!(stall, 0);
        assert_eq!(m.stats().prefetch_noops, 1);
    }

    #[test]
    fn pinned_ranges_survive_pressure() {
        let mut m = manager(4);
        m.register(BASE, 16 * MB);
        m.advise(DeviceId(0), BASE, 2 * MB, ResidencyAdvice::PinOnDevice);
        // Flood the rest of the budget several times over.
        m.on_kernel_access(
            DeviceId(0),
            BASE + 4 * MB,
            12 * MB,
            12 * MB,
            AccessKind::Load,
        );
        // The pinned prefix must still be resident: re-access is free.
        let out = m.on_kernel_access(DeviceId(0), BASE, 2 * MB, 2 * MB, AccessKind::Load);
        assert_eq!(out, AccessOutcome::HIT, "pinned pages never evicted");
    }

    #[test]
    fn unregister_drops_residency() {
        let mut m = manager(512);
        m.register(BASE, MB);
        m.on_kernel_access(DeviceId(0), BASE, MB, MB, AccessKind::Load);
        assert!(m.resident_bytes(DeviceId(0)) >= MB);
        m.unregister(BASE);
        assert_eq!(m.resident_bytes(DeviceId(0)), 0);
        assert!(!m.is_managed(BASE));
    }

    #[test]
    fn clamping_respects_allocation_bounds() {
        let mut m = manager(512);
        m.register(BASE, MB);
        // Access claims 10 MiB but the allocation is 1 MiB; only 1 MiB moves.
        let out = m.on_kernel_access(DeviceId(0), BASE, 10 * MB, 10 * MB, AccessKind::Load);
        assert_eq!(out.migrated_in_bytes, MB);
    }

    #[test]
    fn stats_accumulate() {
        let mut m = manager(512);
        m.register(BASE, 4 * MB);
        m.on_kernel_access(DeviceId(0), BASE, 2 * MB, 2 * MB, AccessKind::Load);
        m.prefetch(DeviceId(0), BASE + 2 * MB, 2 * MB);
        let s = m.stats();
        assert!(s.demand_pages_in > 0);
        assert!(s.prefetch_pages_in > 0);
        assert_eq!(s.pages_in(), s.demand_pages_in + s.prefetch_pages_in);
        m.reset_stats();
        assert_eq!(m.stats().pages_in(), 0);
    }

    #[test]
    fn read_mostly_evicts_without_writeback() {
        let mut m = manager(2);
        m.register(BASE, 8 * MB);
        m.on_kernel_access(DeviceId(0), BASE, 2 * MB, 2 * MB, AccessKind::Load);
        m.advise(DeviceId(0), BASE, 2 * MB, ResidencyAdvice::ReadMostly);
        let before = m.stats().evict_stall_ns;
        m.on_kernel_access(DeviceId(0), BASE + 2 * MB, 2 * MB, 2 * MB, AccessKind::Load);
        let after = m.stats().evict_stall_ns;
        assert_eq!(before, after, "read-mostly eviction skips write-back");
    }

    #[test]
    fn unknown_device_is_harmless() {
        let mut m = manager(16);
        m.register(BASE, MB);
        let out = m.on_kernel_access(DeviceId(7), BASE, MB, MB, AccessKind::Load);
        assert_eq!(out, AccessOutcome::HIT);
        assert_eq!(m.prefetch(DeviceId(7), BASE, MB), 0);
    }

    fn two_device_manager(budget_mb: u64) -> UvmManager {
        let mut m = UvmManager::new(UvmConfig::default());
        m.add_device(budget_mb * MB, 24.0, 25_000);
        m.add_device(budget_mb * MB, 24.0, 25_000);
        m
    }

    #[test]
    fn fork_starts_cold_with_parent_config_and_allocs() {
        let mut parent = two_device_manager(64);
        parent.register(BASE, 16 * MB);
        parent.on_kernel_access(DeviceId(0), BASE, 4 * MB, 4 * MB, AccessKind::Load);
        let mut lane = parent.fork(DeviceId(1));
        assert_eq!(lane.home_device(), Some(DeviceId(1)));
        assert_eq!(lane.device_count(), 2);
        assert!(lane.is_managed(BASE), "registrations travel with the fork");
        assert_eq!(lane.stats(), UvmStats::default(), "fresh statistics");
        assert_eq!(lane.resident_bytes(DeviceId(0)), 0, "fresh residency");
        // The fork services faults independently of the parent.
        let parent_before = parent.stats();
        let out = lane.on_kernel_access(DeviceId(1), BASE, 4 * MB, 4 * MB, AccessKind::Load);
        assert!(out.faults > 0);
        assert_eq!(
            parent.stats(),
            parent_before,
            "parent untouched by lane activity"
        );
    }

    #[test]
    fn reset_hotness_clears_counts_and_clock_with_stats() {
        let mut m = manager(64);
        m.register(BASE, 4 * MB);
        m.on_kernel_access(DeviceId(0), BASE, 2 * MB, 2 * MB, AccessKind::Load);
        assert!(m.hotness().events_seen() > 0);
        m.reset_stats();
        m.reset_hotness();
        assert_eq!(m.stats(), UvmStats::default());
        assert_eq!(m.hotness().events_seen(), 0);
        assert!(m.hotness().series().blocks.is_empty());
        assert_eq!(
            m.hotness().bin_events(),
            UvmConfig::default().hotness_bin_events,
            "bin width survives the reset"
        );
    }

    #[test]
    #[should_panic(expected = "not a registered UVM device")]
    fn fork_of_unknown_device_panics() {
        let m = manager(16);
        let _ = m.fork(DeviceId(3));
    }

    #[test]
    fn shared_owner_faults_from_host_and_remote_reads_duplicate() {
        let mut m = two_device_manager(512);
        m.register(BASE, 8 * MB);
        m.register_shared(BASE, 4 * MB, DeviceId(0));
        assert_eq!(m.shared_owner(BASE), Some(DeviceId(0)));
        assert_eq!(m.shared_owner(BASE + 4 * MB), None, "rest stays private");

        // Owner read: plain host demand faulting.
        let own = m.on_kernel_access(DeviceId(0), BASE, 4 * MB, 4 * MB, AccessKind::Load);
        assert!(own.faults > 0);
        assert_eq!(own.peer_in_bytes, 0);
        assert_eq!(own.migrated_in_bytes, 4 * MB);

        // Remote read: a peer read-duplication, not a host migration.
        let remote = m.on_kernel_access(DeviceId(1), BASE, 4 * MB, 4 * MB, AccessKind::Load);
        assert_eq!(remote.faults, 0, "no host fault groups");
        assert_eq!(remote.migrated_in_bytes, 0);
        assert_eq!(remote.peer_in_bytes, 4 * MB);
        assert!(
            remote.extra_device_ns > 0,
            "peer transfer stalls the kernel"
        );

        // Both copies are resident; the directory lists both holders.
        assert!(m.page_resident(DeviceId(0), BASE));
        assert!(m.page_resident(DeviceId(1), BASE));
        let dir = m.directory().range_containing(BASE).unwrap();
        assert_eq!(
            dir.holders(BASE / PAGE_SIZE),
            vec![DeviceId(0), DeviceId(1)]
        );

        let s = m.stats();
        assert_eq!(s.demand_pages_in, (4 * MB) / PAGE_SIZE);
        assert_eq!(s.peer_pages_in, (4 * MB) / PAGE_SIZE);
        assert!(s.peer_stall_ns > 0);
        assert_eq!(
            m.peer_matrix(),
            vec![((DeviceId(0), DeviceId(1)), 4 * MB)],
            "per-pair traffic matrix records src→dst bytes"
        );
    }

    #[test]
    fn peer_link_bandwidth_prices_duplication() {
        // NVLink-class peer link: duplication must stall far less than a
        // host demand fault of the same bytes.
        let mut m = UvmManager::new(UvmConfig::default());
        m.add_device_p2p(512 * MB, 24.0, 300.0, 25_000);
        m.add_device_p2p(512 * MB, 24.0, 300.0, 25_000);
        m.register(BASE, 8 * MB);
        m.register_shared(BASE, 8 * MB, DeviceId(0));
        let host = m.on_kernel_access(DeviceId(0), BASE, 8 * MB, 8 * MB, AccessKind::Load);
        let peer = m.on_kernel_access(DeviceId(1), BASE, 8 * MB, 8 * MB, AccessKind::Load);
        assert!(
            peer.extra_device_ns * 2 < host.extra_device_ns,
            "peer {} should be well under host {}",
            peer.extra_device_ns,
            host.extra_device_ns
        );
    }

    #[test]
    fn shared_write_invalidates_remote_duplicates_eagerly_on_unforked_manager() {
        let mut m = two_device_manager(512);
        m.register(BASE, 4 * MB);
        m.register_shared(BASE, 4 * MB, DeviceId(0));
        m.on_kernel_access(DeviceId(0), BASE, 4 * MB, 4 * MB, AccessKind::Load);
        m.on_kernel_access(DeviceId(1), BASE, 4 * MB, 4 * MB, AccessKind::Load);
        assert!(m.page_resident(DeviceId(1), BASE));

        // Owner writes: device 1's duplicates drop immediately — an
        // unforked manager owns every device state.
        m.on_kernel_access(DeviceId(0), BASE, 4 * MB, 4 * MB, AccessKind::Store);
        assert!(m.page_resident(DeviceId(0), BASE), "writer keeps its copy");
        assert!(
            !m.page_resident(DeviceId(1), BASE),
            "stale duplicate must not be counted as resident"
        );
        let dir = m.directory().range_containing(BASE).unwrap();
        assert_eq!(dir.holders(BASE / PAGE_SIZE), vec![DeviceId(0)]);
        assert_eq!(m.stats().duplicates_invalidated, (4 * MB) / PAGE_SIZE);

        // The next remote read re-duplicates.
        let before = m.stats().peer_pages_in;
        let again = m.on_kernel_access(DeviceId(1), BASE, 4 * MB, 4 * MB, AccessKind::Load);
        assert_eq!(again.peer_in_bytes, 4 * MB);
        assert_eq!(m.stats().peer_pages_in, before + (4 * MB) / PAGE_SIZE);
    }

    #[test]
    fn forked_lane_invalidation_is_lazy_but_never_served() {
        let mut parent = two_device_manager(512);
        parent.register(BASE, 2 * MB);
        parent.register_shared(BASE, 2 * MB, DeviceId(0));
        let mut lane0 = parent.fork(DeviceId(0));
        let mut lane1 = parent.fork(DeviceId(1));

        lane1.on_kernel_access(DeviceId(1), BASE, 2 * MB, 2 * MB, AccessKind::Load);
        assert!(lane1.page_resident(DeviceId(1), BASE));
        lane0.on_kernel_access(DeviceId(0), BASE, 2 * MB, 2 * MB, AccessKind::Store);

        // The directory no longer lists lane 1 — the write removed the
        // holder under the range lock, so the stale copy can never be
        // *served* as the authoritative duplicate...
        let dir = parent.directory().range_containing(BASE).unwrap();
        assert_eq!(dir.holders(BASE / PAGE_SIZE), vec![DeviceId(0)]);
        assert_eq!(
            lane0.stats().duplicates_invalidated,
            (2 * MB) / PAGE_SIZE,
            "the writer counted every victim page"
        );
        // ...and lane 1's next touch of the range drains the pending
        // invalidations: the pages drop, refault over the peer link, and
        // residency is consistent again.
        let before = lane1.stats().peer_pages_in;
        let refetch = lane1.on_kernel_access(DeviceId(1), BASE, 2 * MB, 2 * MB, AccessKind::Load);
        assert_eq!(refetch.peer_in_bytes, 2 * MB, "stale pages refault");
        assert_eq!(lane1.stats().peer_pages_in, before + (2 * MB) / PAGE_SIZE);
        assert!(lane1.page_resident(DeviceId(1), BASE));
    }

    #[test]
    fn shared_ranges_registered_after_fork_rendezvous_in_the_directory() {
        let mut parent = two_device_manager(512);
        parent.register(BASE, 2 * MB);
        let mut lane0 = parent.fork(DeviceId(0));
        let mut lane1 = parent.fork(DeviceId(1));
        // Both lanes register the same replicated tensor at run time —
        // the TP pattern. They must resolve to one range directory.
        lane0.register_shared(BASE, 2 * MB, DeviceId(0));
        lane1.register_shared(BASE, 2 * MB, DeviceId(0));
        lane1.on_kernel_access(DeviceId(1), BASE, MB, MB, AccessKind::Load);
        let dir = lane0.directory().range_containing(BASE).unwrap();
        assert_eq!(
            dir.holders(BASE / PAGE_SIZE),
            vec![DeviceId(1)],
            "lane 0 sees lane 1's duplicate through the shared directory"
        );
    }

    #[test]
    fn access_straddling_the_shared_range_end_splits() {
        let mut m = two_device_manager(512);
        m.register(BASE, 8 * MB);
        m.register_shared(BASE, 2 * MB, DeviceId(0));
        let out = m.on_kernel_access(DeviceId(1), BASE, 4 * MB, 4 * MB, AccessKind::Load);
        assert_eq!(out.peer_in_bytes, 2 * MB, "shared head duplicates");
        assert_eq!(out.migrated_in_bytes, 2 * MB, "private tail demand-faults");
        let s = m.stats();
        assert_eq!(s.peer_pages_in, (2 * MB) / PAGE_SIZE);
        assert_eq!(s.demand_pages_in, (2 * MB) / PAGE_SIZE);
    }

    #[test]
    fn access_starting_before_the_shared_range_still_takes_the_coherence_path() {
        // Review regression: an access whose *base* lies in private
        // territory but which overlaps a shared range must not resolve
        // the shared pages privately (that would bypass the directory
        // and leave un-invalidatable duplicates).
        let mut m = two_device_manager(512);
        m.register(BASE, 8 * MB);
        m.register_shared(BASE + 4 * MB, 2 * MB, DeviceId(0));
        // Device 1 reads [BASE, BASE+8MB): 4 MiB private head, 2 MiB
        // shared middle, 2 MiB private tail.
        let out = m.on_kernel_access(DeviceId(1), BASE, 8 * MB, 8 * MB, AccessKind::Load);
        assert_eq!(out.peer_in_bytes, 2 * MB, "shared middle duplicated");
        assert_eq!(out.migrated_in_bytes, 6 * MB, "private head+tail demand");
        let dir = m.directory().range_containing(BASE + 4 * MB).unwrap();
        assert_eq!(
            dir.holders((BASE + 4 * MB) / PAGE_SIZE),
            vec![DeviceId(1)],
            "the duplicate is directory-tracked"
        );
        // A write by the owner therefore invalidates it.
        m.on_kernel_access(
            DeviceId(0),
            BASE + 4 * MB,
            2 * MB,
            2 * MB,
            AccessKind::Store,
        );
        assert!(!m.page_resident(DeviceId(1), BASE + 4 * MB));
        assert_eq!(m.stats().duplicates_invalidated, (2 * MB) / PAGE_SIZE);
    }

    #[test]
    fn prefetch_straddling_the_shared_range_end_covers_the_private_tail() {
        // Review regression: a prefetch over [shared | private] must not
        // silently drop the private tail.
        let mut m = two_device_manager(512);
        m.register(BASE, 8 * MB);
        m.register_shared(BASE, 2 * MB, DeviceId(0));
        let stall = m.prefetch(DeviceId(1), BASE, 4 * MB);
        assert!(stall > 0);
        let s = m.stats();
        assert_eq!(
            s.peer_pages_in,
            (2 * MB) / PAGE_SIZE,
            "shared head duplicated"
        );
        assert_eq!(
            s.prefetch_pages_in,
            (2 * MB) / PAGE_SIZE,
            "private tail prefetched"
        );
        // The whole 4 MiB is now resident: a read is a pure hit.
        let out = m.on_kernel_access(DeviceId(1), BASE, 4 * MB, 4 * MB, AccessKind::Load);
        assert_eq!(out, AccessOutcome::HIT);
    }

    #[test]
    fn merge_imports_lane_shared_registrations() {
        // Review regression: a range a lane registered after the fork
        // must survive the merge, or the parent would resolve it through
        // the private path while the shared directory still tracks it.
        let mut parent = two_device_manager(512);
        parent.register(BASE, 4 * MB);
        let mut lane1 = parent.fork(DeviceId(1));
        lane1.register_shared(BASE, 4 * MB, DeviceId(0));
        lane1.on_kernel_access(DeviceId(1), BASE, MB, MB, AccessKind::Load);
        parent.merge(&lane1);
        assert_eq!(parent.shared_owner(BASE), Some(DeviceId(0)));
        // The parent routes the range through the coherence path now.
        let out = parent.on_kernel_access(DeviceId(1), BASE, MB, MB, AccessKind::Load);
        assert_eq!(out.peer_in_bytes, MB, "coherence semantics, not private");
    }

    #[test]
    fn register_shared_imports_pre_existing_residency() {
        // Review regression: pages resident from *before* the range was
        // marked shared must become tracked duplicates — otherwise a
        // later write cannot invalidate them and the old copy survives
        // as served-stale data.
        let mut m = two_device_manager(512);
        m.register(BASE, 2 * MB);
        m.on_kernel_access(DeviceId(1), BASE, 2 * MB, 2 * MB, AccessKind::Load);
        m.register_shared(BASE, 2 * MB, DeviceId(0));
        let dir = m.directory().range_containing(BASE).unwrap();
        assert_eq!(
            dir.holders(BASE / PAGE_SIZE),
            vec![DeviceId(1)],
            "pre-registration copy is directory-tracked"
        );
        m.on_kernel_access(DeviceId(0), BASE, 2 * MB, 2 * MB, AccessKind::Store);
        assert!(
            !m.page_resident(DeviceId(1), BASE),
            "the old private copy was invalidated by the shared write"
        );
        let hit = m.on_kernel_access(DeviceId(1), BASE, MB, MB, AccessKind::Load);
        assert_eq!(hit.peer_in_bytes, MB, "stale data refaults, never served");
    }

    #[test]
    fn merge_reconciles_pre_fork_copies_against_imported_shared_ranges() {
        // Review regression (round 3): the parent holds a private copy
        // from *before* a lane marked the range shared and wrote it. The
        // merge imports the registration; the parent's untracked copy
        // must not survive as a servable hit — it predates the write.
        let mut parent = two_device_manager(512);
        parent.register(BASE, 2 * MB);
        parent.on_kernel_access(DeviceId(1), BASE, 2 * MB, 2 * MB, AccessKind::Load);
        let mut lane0 = parent.fork(DeviceId(0));
        lane0.register_shared(BASE, 2 * MB, DeviceId(0));
        lane0.on_kernel_access(DeviceId(0), BASE, 2 * MB, 2 * MB, AccessKind::Store);
        parent.merge(&lane0);
        assert_eq!(parent.shared_owner(BASE), Some(DeviceId(0)));
        assert!(
            !parent.page_resident(DeviceId(1), BASE),
            "the untracked pre-fork copy was dropped at import"
        );
        let out = parent.on_kernel_access(DeviceId(1), BASE, 2 * MB, 2 * MB, AccessKind::Load);
        assert_eq!(
            out.peer_in_bytes,
            2 * MB,
            "stale data refaults, never served"
        );
    }

    #[test]
    fn fork_inherited_shared_entries_count_as_registrations() {
        // Review regression (round 3): a fork inherits the parent's
        // shared cache; tearing it down must not drop the range under
        // the parent, and over-releasing must not wrap the count.
        let mut parent = two_device_manager(512);
        parent.register(BASE, 2 * MB);
        parent.register_shared(BASE, 2 * MB, DeviceId(0));
        let mut lane1 = parent.fork(DeviceId(1));
        lane1.unregister_shared(BASE);
        lane1.unregister_shared(BASE); // over-release: harmless
        assert!(
            parent.directory().range_containing(BASE).is_some(),
            "the parent's registration keeps the range alive"
        );
        let out = parent.on_kernel_access(DeviceId(1), BASE, MB, MB, AccessKind::Load);
        assert_eq!(out.peer_in_bytes, MB, "parent still routes coherently");
    }

    #[test]
    fn unregister_shared_is_refcounted_across_registrants() {
        // Review regression: one lane finishing early must not tear the
        // range directory down under siblings still sharing it — a late
        // registrant would otherwise get a fresh directory and coherence
        // would split.
        let mut parent = two_device_manager(512);
        parent.register(BASE, 2 * MB);
        let mut lane0 = parent.fork(DeviceId(0));
        let mut lane1 = parent.fork(DeviceId(1));
        lane0.register_shared(BASE, 2 * MB, DeviceId(0));
        lane1.register_shared(BASE, 2 * MB, DeviceId(0));
        let dir_before = lane1.directory().range_containing(BASE).unwrap();
        // Lane 0 finishes and unregisters; lane 1 is still registered.
        lane0.unregister_shared(BASE);
        let dir_after = parent
            .directory()
            .range_containing(BASE)
            .expect("range survives while lane 1 is registered");
        assert!(
            Arc::ptr_eq(&dir_before, &dir_after),
            "same directory: no coherence split"
        );
        // A late registrant rendezvouses with the surviving directory.
        let mut late = parent.fork(DeviceId(0));
        late.register_shared(BASE, 2 * MB, DeviceId(0));
        lane1.on_kernel_access(DeviceId(1), BASE, MB, MB, AccessKind::Load);
        late.on_kernel_access(DeviceId(0), BASE, MB, MB, AccessKind::Store);
        assert_eq!(
            dir_after.holders(BASE / PAGE_SIZE),
            vec![DeviceId(0)],
            "the write went through the one shared directory"
        );
        // Last registrants release → the range is dropped.
        lane1.unregister_shared(BASE);
        late.unregister_shared(BASE);
        assert!(parent.directory().range_containing(BASE).is_none());
    }

    #[test]
    fn advise_keeps_the_directory_census_consistent() {
        let mut m = two_device_manager(512);
        m.register(BASE, 2 * MB);
        m.register_shared(BASE, 2 * MB, DeviceId(0));
        let dir = m.directory().range_containing(BASE).unwrap();

        // PinOnDevice faults pages in through the private core: the
        // holders must still be registered.
        m.advise(DeviceId(1), BASE, MB, ResidencyAdvice::PinOnDevice);
        assert!(m.page_resident(DeviceId(1), BASE));
        assert_eq!(dir.holders(BASE / PAGE_SIZE), vec![DeviceId(1)]);

        // PreferHost drops the pages: the holders must leave with them.
        m.advise(DeviceId(1), BASE, MB, ResidencyAdvice::PreferHost);
        assert!(!m.page_resident(DeviceId(1), BASE));
        assert_eq!(dir.holders(BASE / PAGE_SIZE), Vec::<DeviceId>::new());
        assert_eq!(dir.holder_entries(), 0, "census matches residency");
    }

    #[test]
    fn take_peer_transfers_drains_operations_in_order() {
        let mut m = two_device_manager(512);
        m.register(BASE, 2 * MB);
        m.register_shared(BASE, 2 * MB, DeviceId(0));
        m.on_kernel_access(DeviceId(1), BASE, 2 * MB, 2 * MB, AccessKind::Load);
        m.on_kernel_access(DeviceId(0), BASE, 2 * MB, 2 * MB, AccessKind::Store);
        let ops = m.take_peer_transfers();
        assert_eq!(ops.len(), 2, "one duplication, one invalidation");
        assert_eq!(ops[0].src, DeviceId(0));
        assert_eq!(ops[0].dst, DeviceId(1));
        assert_eq!(ops[0].duplicated_pages, (2 * MB) / PAGE_SIZE);
        assert_eq!(ops[0].bytes, 2 * MB);
        assert!(ops[0].stall_ns > 0);
        assert_eq!(ops[1].src, DeviceId(0));
        assert_eq!(ops[1].dst, DeviceId(1));
        assert_eq!(ops[1].invalidated_pages, (2 * MB) / PAGE_SIZE);
        assert!(m.take_peer_transfers().is_empty(), "drained once");
    }

    #[test]
    fn unregister_drops_shared_subranges_with_the_allocation() {
        let mut m = two_device_manager(512);
        m.register(BASE, 4 * MB);
        m.register_shared(BASE + MB, MB, DeviceId(0));
        assert!(m.shared_owner(BASE + MB).is_some());
        m.unregister(BASE);
        assert!(m.shared_owner(BASE + MB).is_none());
        assert!(m.directory().range_containing(BASE + MB).is_none());
    }

    #[test]
    fn shared_duplicates_evict_clean_and_deregister() {
        // 1 MiB budget on device 1, 2 MiB shared range: duplicating the
        // second half evicts the first — with no write-back (duplicates
        // are clean) and with the directory updated.
        let mut m = UvmManager::new(UvmConfig::default());
        m.add_device(512 * MB, 24.0, 25_000);
        m.add_device(MB, 24.0, 25_000);
        m.register(BASE, 2 * MB);
        m.register_shared(BASE, 2 * MB, DeviceId(0));
        m.on_kernel_access(DeviceId(1), BASE, MB, MB, AccessKind::Load);
        let evict_stall_before = m.stats().evict_stall_ns;
        let out = m.on_kernel_access(DeviceId(1), BASE + MB, MB, MB, AccessKind::Load);
        assert!(out.evicted_bytes > 0, "budget forces eviction");
        assert_eq!(
            m.stats().evict_stall_ns,
            evict_stall_before,
            "clean duplicates evict without write-back"
        );
        let dir = m.directory().range_containing(BASE).unwrap();
        assert_eq!(
            dir.holders(BASE / PAGE_SIZE),
            Vec::<DeviceId>::new(),
            "evicted duplicate left the holder set"
        );
    }

    #[test]
    fn merge_folds_lane_stats_and_hotness_deterministically() {
        // Bin width 1 puts every lane stream on a bin boundary, so the
        // appended hotness axes line up exactly with the reference's
        // single clock (wider bins align whenever a lane's event count is
        // a bin multiple — see `BlockHotness::append_from`).
        let config = UvmConfig {
            hotness_bin_events: 1,
            ..UvmConfig::default()
        };
        let two_device_manager = |budget_mb: u64| {
            let mut m = UvmManager::new(config.clone());
            m.add_device(budget_mb * MB, 24.0, 25_000);
            m.add_device(budget_mb * MB, 24.0, 25_000);
            m
        };
        let mut parent = two_device_manager(512);
        parent.register(BASE, 8 * MB);
        let mut lane0 = parent.fork(DeviceId(0));
        let mut lane1 = parent.fork(DeviceId(1));
        lane0.on_kernel_access(DeviceId(0), BASE, 2 * MB, 2 * MB, AccessKind::Load);
        lane1.on_kernel_access(DeviceId(1), BASE, 4 * MB, 4 * MB, AccessKind::Load);

        // The sequential single-manager reference: same accesses,
        // device-at-a-time, through one manager.
        let mut reference = two_device_manager(512);
        reference.register(BASE, 8 * MB);
        reference.on_kernel_access(DeviceId(0), BASE, 2 * MB, 2 * MB, AccessKind::Load);
        reference.on_kernel_access(DeviceId(1), BASE, 4 * MB, 4 * MB, AccessKind::Load);

        parent.merge(&lane0);
        parent.merge(&lane1);
        assert_eq!(parent.stats(), reference.stats());
        assert_eq!(parent.hotness().series(), reference.hotness().series());
        // Lane residency is private and never imported.
        assert_eq!(parent.resident_bytes(DeviceId(0)), 0);
        assert_eq!(parent.resident_bytes(DeviceId(1)), 0);
    }
}
